// Distributed tracing: spans with parent/child ids stamped with virtual
// timestamps, propagated over the simulated wire.
//
// One TraceCollector is shared by every node of a cluster (owned by
// net::Cluster). A distributed query produces a tree:
//
//   distributed query (coordinator)
//     └─ task (coordinator, one per shard task; worker/shard-group attrs)
//          └─ worker execution (worker node, created when the request's
//             trace context reaches the remote session)
//
// Context crosses the wire as a "trace_id:span_id" string carried on
// net::Request; the worker session parses it and parents its span under
// the originating task span. Tracing is opt-in per query (EXPLAIN ANALYZE
// turns it on), so benches pay nothing.
#ifndef CITUSX_OBS_TRACE_H_
#define CITUSX_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "sim/simulation.h"

namespace citusx::obs {

using SpanId = uint64_t;
using TraceId = uint64_t;

struct Span {
  SpanId id = 0;
  SpanId parent_id = 0;  // 0 for a root span
  TraceId trace_id = 0;
  std::string name;   // "distributed query", "task", "worker execution"
  std::string node;   // node that produced the span
  sim::Time start = 0;
  sim::Time end = 0;
  int64_t rows = -1;  // rows produced / affected, -1 if unknown
  std::map<std::string, std::string> attrs;  // worker, shard_group, sql, ...

  sim::Time duration() const { return end - start; }
};

class TraceCollector {
 public:
  TraceId NewTraceId();

  /// Opens a span; returns its id. `parent` is 0 for a root span.
  SpanId StartSpan(TraceId trace, SpanId parent, std::string name,
                   std::string node, sim::Time now);
  void SetAttr(SpanId span, const std::string& key, std::string value);
  void SetRows(SpanId span, int64_t rows);
  void EndSpan(SpanId span, sim::Time now);

  /// All spans of one trace, sorted by (start, id). Copies.
  std::vector<Span> TraceSpans(TraceId trace) const;

  /// Most recently allocated trace id (0 if none) — convenient for tests
  /// and for EXPLAIN ANALYZE rendering right after execution.
  TraceId last_trace_id() const;

  void Clear();

 private:
  mutable OrderedMutex trace_mu_{LockRank::kTraceCollector};
  uint64_t next_id_ = 1;
  TraceId last_trace_ = 0;
  std::map<SpanId, Span> spans_;
};

/// Wire encoding of (trace, span): "trace_id:span_id".
std::string FormatTraceContext(TraceId trace, SpanId span);
/// Returns false (leaving outputs untouched) if `s` is not a valid context.
bool ParseTraceContext(const std::string& s, TraceId* trace, SpanId* span);

}  // namespace citusx::obs

#endif  // CITUSX_OBS_TRACE_H_
