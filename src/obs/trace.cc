#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>

namespace citusx::obs {

TraceId TraceCollector::NewTraceId() {
  std::lock_guard<OrderedMutex> lock(trace_mu_);
  last_trace_ = next_id_++;
  return last_trace_;
}

SpanId TraceCollector::StartSpan(TraceId trace, SpanId parent,
                                 std::string name, std::string node,
                                 sim::Time now) {
  std::lock_guard<OrderedMutex> lock(trace_mu_);
  SpanId id = next_id_++;
  Span& span = spans_[id];
  span.id = id;
  span.parent_id = parent;
  span.trace_id = trace;
  span.name = std::move(name);
  span.node = std::move(node);
  span.start = now;
  span.end = now;
  return id;
}

void TraceCollector::SetAttr(SpanId span, const std::string& key,
                             std::string value) {
  std::lock_guard<OrderedMutex> lock(trace_mu_);
  auto it = spans_.find(span);
  if (it != spans_.end()) it->second.attrs[key] = std::move(value);
}

void TraceCollector::SetRows(SpanId span, int64_t rows) {
  std::lock_guard<OrderedMutex> lock(trace_mu_);
  auto it = spans_.find(span);
  if (it != spans_.end()) it->second.rows = rows;
}

void TraceCollector::EndSpan(SpanId span, sim::Time now) {
  std::lock_guard<OrderedMutex> lock(trace_mu_);
  auto it = spans_.find(span);
  if (it != spans_.end()) it->second.end = now;
}

std::vector<Span> TraceCollector::TraceSpans(TraceId trace) const {
  std::lock_guard<OrderedMutex> lock(trace_mu_);
  std::vector<Span> out;
  for (const auto& [id, span] : spans_) {
    if (span.trace_id == trace) out.push_back(span);
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start != b.start ? a.start < b.start : a.id < b.id;
  });
  return out;
}

TraceId TraceCollector::last_trace_id() const {
  std::lock_guard<OrderedMutex> lock(trace_mu_);
  return last_trace_;
}

void TraceCollector::Clear() {
  std::lock_guard<OrderedMutex> lock(trace_mu_);
  spans_.clear();
}

std::string FormatTraceContext(TraceId trace, SpanId span) {
  return std::to_string(trace) + ":" + std::to_string(span);
}

bool ParseTraceContext(const std::string& s, TraceId* trace, SpanId* span) {
  size_t colon = s.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return false;
  }
  char* end = nullptr;
  uint64_t t = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + colon) return false;
  uint64_t p = std::strtoull(s.c_str() + colon + 1, &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *trace = t;
  *span = p;
  return true;
}

}  // namespace citusx::obs
