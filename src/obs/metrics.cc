#include "obs/metrics.h"

#include <algorithm>

namespace citusx::obs {

Counter* Metrics::counter(const std::string& name) {
  std::lock_guard<OrderedMutex> lock(metrics_mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Metrics::gauge(const std::string& name) {
  std::lock_guard<OrderedMutex> lock(metrics_mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Metrics::histogram(const std::string& name) {
  std::lock_guard<OrderedMutex> lock(metrics_mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<MetricSample> Metrics::Snapshot() const {
  std::lock_guard<OrderedMutex> lock(metrics_mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.value = h->count();
    s.sum = h->sum();
    s.p50 = h->Percentile(50);
    s.p95 = h->Percentile(95);
    s.p99 = h->Percentile(99);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

int64_t Metrics::CounterValue(const std::string& name) const {
  std::lock_guard<OrderedMutex> lock(metrics_mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

}  // namespace citusx::obs
