// Metrics registry: named counters, gauges, and virtual-time histograms.
//
// Each engine::Node owns one Metrics registry. Instrumented subsystems
// (buffer pool, lock manager, txn manager, net, citus executor) resolve
// their metric handles once (Counter*/Gauge*/Histogram*) and then update
// them on the hot path with a single relaxed atomic op — no map lookups,
// no locks. Handles stay valid for the lifetime of the registry.
//
// Values that represent durations are simulated time (sim::Time, ns).
#ifndef CITUSX_OBS_METRICS_H_
#define CITUSX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "sim/histogram.h"

namespace citusx::obs {

/// Monotonically increasing counter.
class Counter {
 public:
  void Inc(int64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Value that can move both ways (pool sizes, queue depths).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Distribution of virtual-time durations (or any int64), log-bucketed.
/// The simulation serializes process execution, so the underlying
/// sim::Histogram needs no extra synchronization on the record path.
class Histogram {
 public:
  void Record(int64_t v) { h_.Record(v); }
  int64_t count() const { return h_.count(); }
  int64_t sum() const { return h_.sum(); }
  int64_t Percentile(double p) const { return h_.Percentile(p); }
  const sim::Histogram& base() const { return h_; }

 private:
  sim::Histogram h_;
};

/// One metric's state at snapshot time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  int64_t value = 0;                            // counter/gauge value, or count
  int64_t sum = 0, p50 = 0, p95 = 0, p99 = 0;   // histogram only
};

class Metrics {
 public:
  /// Get-or-create by name. Returned pointers are stable forever.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// All metrics, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Convenience for tests: counter value, 0 if never registered.
  int64_t CounterValue(const std::string& name) const;

 private:
  // Guards the maps, not the metric values.
  mutable OrderedMutex metrics_mu_{LockRank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace citusx::obs

#endif  // CITUSX_OBS_METRICS_H_
