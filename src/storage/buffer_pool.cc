#include "storage/buffer_pool.h"

namespace citusx::storage {

int64_t BufferPool::EvictIfNeeded() {
  int64_t writes = 0;
  while (static_cast<int64_t>(lru_.size()) >= capacity_pages_ &&
         !lru_.empty()) {
    const Entry& victim = lru_.back();
    if (victim.dirty) writes++;
    map_.erase(victim.block);
    lru_.pop_back();
    evictions_++;
    if (evictions_metric_ != nullptr) evictions_metric_->Inc();
  }
  return writes;
}

bool BufferPool::Access(BlockId block, bool dirty) {
  auto it = map_.find(block);
  if (it != map_.end()) {
    hits_++;
    if (hits_metric_ != nullptr) hits_metric_->Inc();
    it->second->dirty = it->second->dirty || dirty;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  misses_++;
  if (misses_metric_ != nullptr) misses_metric_->Inc();
  int64_t writes = EvictIfNeeded();
  lru_.push_front(Entry{block, dirty});
  map_[block] = lru_.begin();
  // One read for the miss plus any dirty-evict writes.
  return disk_->Io(1 + writes);
}

bool BufferPool::AppendBlock(BlockId block) {
  auto it = map_.find(block);
  if (it != map_.end()) {
    it->second->dirty = true;
    lru_.splice(lru_.begin(), lru_, it->second);
    return disk_->Io(1);
  }
  int64_t writes = EvictIfNeeded();
  lru_.push_front(Entry{block, true});
  map_[block] = lru_.begin();
  return disk_->Io(1 + writes);
}

void BufferPool::Forget(uint64_t object_id) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->block.object_id == object_id) {
      map_.erase(it->block);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace citusx::storage
