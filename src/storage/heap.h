// MVCC heap table: append-only tuple versions grouped into logical blocks
// whose residency is tracked by the BufferPool.
#ifndef CITUSX_STORAGE_HEAP_H_
#define CITUSX_STORAGE_HEAP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sql/datum.h"
#include "sql/types.h"
#include "storage/buffer_pool.h"
#include "storage/mvcc.h"

namespace citusx::storage {

/// Index of a logical row (version chain) within a heap table.
using RowId = uint64_t;

/// A single heap table. All mutation methods are simulation-domain: they may
/// yield while waiting on simulated I/O, so callers must not hold references
/// into the heap across calls.
class HeapTable {
 public:
  HeapTable(uint64_t object_id, sql::Schema schema, BufferPool* pool)
      : object_id_(object_id), schema_(std::move(schema)), pool_(pool) {}

  HeapTable(const HeapTable&) = delete;
  HeapTable& operator=(const HeapTable&) = delete;

  const sql::Schema& schema() const { return schema_; }
  uint64_t object_id() const { return object_id_; }

  /// Append a new logical row; charges block I/O. Returns its RowId.
  Result<RowId> Insert(sql::Row row, TxnId xmin);

  /// Number of logical row slots (including dead rows); scan bound.
  RowId num_rows() const { return static_cast<RowId>(rows_.size()); }

  /// Charge buffer-pool access for the block containing `rid`.
  bool TouchRow(RowId rid, bool dirty);

  /// The version of `rid` visible to `snap`, or nullptr. The pointer is
  /// invalidated by any yield (I/O wait) or mutation.
  const TupleVersion* VisibleVersion(RowId rid, const Snapshot& snap,
                                     const TxnStatusResolver& resolver) const;

  /// Newest version not created by an aborted transaction (what an UPDATE
  /// sees after acquiring the row lock), or nullptr if the row is dead.
  const TupleVersion* LatestVersion(RowId rid,
                                    const TxnStatusResolver& resolver) const;

  /// MVCC update: mark the latest version superseded by `xid` and append a
  /// new version. Caller must hold the row lock.
  Status UpdateRow(RowId rid, sql::Row new_row, TxnId xid,
                   const TxnStatusResolver& resolver);

  /// MVCC delete: set xmax of the latest version. Caller must hold the lock.
  Status DeleteRow(RowId rid, TxnId xid, const TxnStatusResolver& resolver);

  /// Remove versions no transaction can see. Returns versions reclaimed.
  int64_t Vacuum(TxnId oldest_active, const TxnStatusResolver& resolver);

  /// Logical on-disk footprint.
  int64_t data_bytes() const { return data_bytes_; }
  int64_t num_blocks() const { return next_block_ + 1; }
  /// Dead-version count (drives autovacuum scheduling).
  int64_t dead_versions() const { return dead_versions_; }

  /// Remove all rows without I/O (TRUNCATE).
  void Truncate();

 private:
  struct HeapRow {
    std::vector<TupleVersion> versions;  // oldest first
    uint64_t block_no = 0;
  };

  uint64_t object_id_;
  sql::Schema schema_;
  BufferPool* pool_;
  std::vector<HeapRow> rows_;
  uint64_t next_block_ = 0;
  int64_t block_bytes_used_ = 0;
  int64_t data_bytes_ = 0;
  int64_t dead_versions_ = 0;
};

}  // namespace citusx::storage

#endif  // CITUSX_STORAGE_HEAP_H_
