#include "storage/heap.h"

namespace citusx::storage {

namespace {
int64_t RowBytes(const sql::Row& row) {
  int64_t n = 24;  // tuple header
  for (const auto& d : row) n += d.PhysicalSize();
  return n;
}
}  // namespace

Result<RowId> HeapTable::Insert(sql::Row row, TxnId xmin) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::Internal("row width does not match schema");
  }
  int64_t bytes = RowBytes(row);
  bool new_block = false;
  if (block_bytes_used_ + bytes > pool_->page_bytes() &&
      block_bytes_used_ > 0) {
    next_block_++;
    block_bytes_used_ = 0;
    new_block = true;
  }
  block_bytes_used_ += bytes;
  data_bytes_ += bytes;
  HeapRow hr;
  hr.block_no = next_block_;
  hr.versions.push_back(TupleVersion{std::move(row), xmin, kInvalidTxn});
  rows_.push_back(std::move(hr));
  RowId rid = static_cast<RowId>(rows_.size() - 1);
  BlockId block{object_id_, rows_[rid].block_no};
  if (new_block || rid == 0) {
    pool_->AppendBlock(block);
  } else {
    pool_->Access(block, /*dirty=*/true);
  }
  return rid;
}

bool HeapTable::TouchRow(RowId rid, bool dirty) {
  if (rid >= rows_.size()) return true;
  return pool_->Access(BlockId{object_id_, rows_[rid].block_no}, dirty);
}

const TupleVersion* HeapTable::VisibleVersion(
    RowId rid, const Snapshot& snap, const TxnStatusResolver& resolver) const {
  if (rid >= rows_.size()) return nullptr;
  const auto& versions = rows_[rid].versions;
  // Newest-first: at most one version is visible to a snapshot.
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (VersionVisible(*it, snap, resolver)) return &*it;
  }
  return nullptr;
}

const TupleVersion* HeapTable::LatestVersion(
    RowId rid, const TxnStatusResolver& resolver) const {
  if (rid >= rows_.size()) return nullptr;
  const auto& versions = rows_[rid].versions;
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (!resolver.IsAborted(it->xmin)) return &*it;
  }
  return nullptr;
}

Status HeapTable::UpdateRow(RowId rid, sql::Row new_row, TxnId xid,
                            const TxnStatusResolver& resolver) {
  if (rid >= rows_.size()) return Status::Internal("bad row id in update");
  auto& versions = rows_[rid].versions;
  TupleVersion* latest = nullptr;
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (!resolver.IsAborted(it->xmin)) {
      latest = &*it;
      break;
    }
  }
  if (latest == nullptr || (latest->xmax != kInvalidTxn &&
                            latest->xmax != xid &&
                            !resolver.IsAborted(latest->xmax))) {
    return Status::Aborted("row was deleted concurrently");
  }
  latest->xmax = xid;
  int64_t bytes = RowBytes(new_row);
  data_bytes_ += bytes;
  dead_versions_++;  // the superseded version becomes garbage on commit
  versions.push_back(TupleVersion{std::move(new_row), xid, kInvalidTxn});
  return Status::OK();
}

Status HeapTable::DeleteRow(RowId rid, TxnId xid,
                            const TxnStatusResolver& resolver) {
  if (rid >= rows_.size()) return Status::Internal("bad row id in delete");
  auto& versions = rows_[rid].versions;
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (!resolver.IsAborted(it->xmin)) {
      if (it->xmax != kInvalidTxn && it->xmax != xid &&
          !resolver.IsAborted(it->xmax)) {
        return Status::Aborted("row was deleted concurrently");
      }
      it->xmax = xid;
      dead_versions_++;
      return Status::OK();
    }
  }
  return Status::Aborted("row is gone");
}

int64_t HeapTable::Vacuum(TxnId oldest_active,
                          const TxnStatusResolver& resolver) {
  int64_t reclaimed = 0;
  for (auto& hr : rows_) {
    auto& versions = hr.versions;
    for (auto it = versions.begin(); it != versions.end();) {
      if (VersionDead(*it, oldest_active, resolver)) {
        data_bytes_ -= RowBytes(it->row);
        it = versions.erase(it);
        reclaimed++;
      } else {
        ++it;
      }
    }
  }
  dead_versions_ -= reclaimed;
  if (dead_versions_ < 0) dead_versions_ = 0;
  return reclaimed;
}

void HeapTable::Truncate() {
  rows_.clear();
  next_block_ = 0;
  block_bytes_used_ = 0;
  data_bytes_ = 0;
  dead_versions_ = 0;
  pool_->Forget(object_id_);
}

}  // namespace citusx::storage
