// MVCC primitives: transaction ids, snapshots, tuple version visibility.
#ifndef CITUSX_STORAGE_MVCC_H_
#define CITUSX_STORAGE_MVCC_H_

#include <cstdint>
#include <vector>

#include "sql/datum.h"

namespace citusx::storage {

using TxnId = uint64_t;
constexpr TxnId kInvalidTxn = 0;

/// Resolves the commit status of transaction ids (implemented by the
/// engine's transaction manager; storage is agnostic of txn lifecycle).
class TxnStatusResolver {
 public:
  virtual ~TxnStatusResolver() = default;
  virtual bool IsCommitted(TxnId xid) const = 0;
  virtual bool IsAborted(TxnId xid) const = 0;
};

/// An MVCC snapshot: transactions < xmax that are not in `in_progress`
/// (and committed) are visible; `self` sees its own writes.
struct Snapshot {
  TxnId self = kInvalidTxn;
  TxnId xmax = 0;                  // first unassigned txn id at snapshot time
  std::vector<TxnId> in_progress;  // sorted

  bool XidInProgress(TxnId xid) const {
    for (TxnId t : in_progress) {
      if (t == xid) return true;
      if (t > xid) break;
    }
    return false;
  }

  /// True if effects of `xid` are visible to this snapshot.
  bool XidVisible(TxnId xid, const TxnStatusResolver& resolver) const {
    if (xid == kInvalidTxn) return false;
    if (xid == self) return true;
    if (xid >= xmax) return false;
    if (XidInProgress(xid)) return false;
    return resolver.IsCommitted(xid);
  }
};

/// One version of a tuple in an MVCC version chain.
struct TupleVersion {
  sql::Row row;
  TxnId xmin = kInvalidTxn;  // creating transaction
  TxnId xmax = kInvalidTxn;  // deleting/superseding transaction (0 = live)
};

/// Standard PostgreSQL-style visibility check.
inline bool VersionVisible(const TupleVersion& v, const Snapshot& snap,
                           const TxnStatusResolver& resolver) {
  if (!snap.XidVisible(v.xmin, resolver)) return false;
  if (v.xmax != kInvalidTxn && snap.XidVisible(v.xmax, resolver)) return false;
  return true;
}

/// True if every transaction that could see this version is gone:
/// the version was deleted by a committed transaction older than `oldest`.
inline bool VersionDead(const TupleVersion& v, TxnId oldest_active,
                        const TxnStatusResolver& resolver) {
  if (resolver.IsAborted(v.xmin)) return true;
  if (v.xmax == kInvalidTxn) return false;
  return v.xmax < oldest_active && resolver.IsCommitted(v.xmax);
}

}  // namespace citusx::storage

#endif  // CITUSX_STORAGE_MVCC_H_
