// Columnar storage (cstore-style): append-only stripes with per-column
// blocks, so scans only pay I/O for projected columns and benefit from a
// modelled compression ratio. Matches Citus columnar semantics: no UPDATE or
// DELETE, visibility at stripe granularity.
#ifndef CITUSX_STORAGE_COLUMNAR_H_
#define CITUSX_STORAGE_COLUMNAR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sql/datum.h"
#include "sql/types.h"
#include "storage/buffer_pool.h"
#include "storage/mvcc.h"

namespace citusx::storage {

class ColumnarTable {
 public:
  static constexpr int64_t kStripeRows = 10000;
  static constexpr double kCompressionRatio = 3.0;

  ColumnarTable(uint64_t object_id, sql::Schema schema, BufferPool* pool)
      : object_id_(object_id), schema_(std::move(schema)), pool_(pool) {}

  const sql::Schema& schema() const { return schema_; }

  /// Append a row (buffered into the open stripe). Charges I/O when a stripe
  /// fills.
  Status Insert(sql::Row row, TxnId xmin);

  int64_t num_stripes() const { return static_cast<int64_t>(stripes_.size()); }
  int64_t num_rows() const;
  int64_t data_bytes() const { return data_bytes_; }

  /// Iterate all rows visible to `snap`, charging I/O only for the columns
  /// in `projection` (empty = all). The callback receives each full row
  /// (non-projected columns are NULL). Returns false if cancelled.
  bool Scan(const Snapshot& snap, const TxnStatusResolver& resolver,
            const std::vector<int>& projection,
            const std::function<bool(const sql::Row&)>& fn);

  void Truncate();

 private:
  struct Stripe {
    // Column-major storage.
    std::vector<std::vector<sql::Datum>> columns;
    std::vector<int64_t> column_bytes;
    TxnId xmin = kInvalidTxn;
    int64_t rows = 0;
    uint64_t first_block = 0;
  };

  void SealStripe(TxnId xmin);

  uint64_t object_id_;
  sql::Schema schema_;
  BufferPool* pool_;
  std::vector<Stripe> stripes_;
  Stripe open_;
  bool open_active_ = false;
  int64_t data_bytes_ = 0;
  uint64_t next_block_ = 0;
};

}  // namespace citusx::storage

#endif  // CITUSX_STORAGE_COLUMNAR_H_
