// Columnar storage (cstore-style): append-only stripes with per-column
// blocks, so scans only pay I/O for projected columns and benefit from a
// modelled compression ratio. Matches Citus columnar semantics: no UPDATE or
// DELETE, visibility at stripe granularity.
//
// Two read paths:
//  - Scan(): row-at-a-time callback, used by the volcano executor.
//  - ReadStripe(): zero-copy column views over one stripe, used by the
//    vectorized executor (src/exec) with min/max pruning via StripeStats().
#ifndef CITUSX_STORAGE_COLUMNAR_H_
#define CITUSX_STORAGE_COLUMNAR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "sql/datum.h"
#include "sql/types.h"
#include "storage/buffer_pool.h"
#include "storage/mvcc.h"

namespace citusx::storage {

/// Per-stripe, per-column min/max (NULLs excluded), sealed-stripe metadata
/// for predicate pruning. `has_values` is false when every value is NULL.
struct ColumnStats {
  sql::Datum min;
  sql::Datum max;
  bool has_values = false;
};

/// Zero-copy view of one stripe's columns. Only projected columns are
/// non-null; pointers are invalidated by any mutation of the table.
struct StripeView {
  int64_t rows = 0;
  std::vector<const std::vector<sql::Datum>*> columns;  // nullptr = skipped
};

class ColumnarTable {
 public:
  static constexpr int64_t kStripeRows = 10000;
  static constexpr double kCompressionRatio = 3.0;

  ColumnarTable(uint64_t object_id, sql::Schema schema, BufferPool* pool)
      : object_id_(object_id), schema_(std::move(schema)), pool_(pool) {}

  const sql::Schema& schema() const { return schema_; }
  uint64_t object_id() const { return object_id_; }

  /// Append a row (buffered into the open stripe). Charges I/O when a stripe
  /// fills.
  Status Insert(sql::Row row, TxnId xmin);

  int64_t num_stripes() const { return static_cast<int64_t>(stripes_.size()); }
  int64_t num_rows() const;
  int64_t data_bytes() const { return data_bytes_; }

  /// Iterate all rows visible to `snap`, charging I/O only for the columns
  /// in `projection` (empty = all). The callback receives each full row
  /// (non-projected columns are NULL). Returns false if cancelled.
  bool Scan(const Snapshot& snap, const TxnStatusResolver& resolver,
            const std::vector<int>& projection,
            const std::function<bool(const sql::Row&)>& fn);

  // ---- vectorized read path ----

  /// Stripes addressable by ReadStripe: sealed stripes plus the open stripe
  /// (index num_stripes()) when it holds rows.
  int64_t num_read_units() const {
    return num_stripes() + (open_active_ && open_.rows > 0 ? 1 : 0);
  }

  /// Per-column stats of read unit `index` for pruning, or nullptr for the
  /// open stripe (stats are computed at seal time; the open stripe is never
  /// pruned).
  const std::vector<ColumnStats>* StripeStats(int64_t index) const;

  /// Visibility of read unit `index` under `snap` (stripe granularity).
  bool StripeVisible(int64_t index, const Snapshot& snap,
                     const TxnStatusResolver& resolver) const;

  /// Column views over read unit `index`, charging I/O for the columns in
  /// `projection` (empty = all; the open stripe is memory-resident and
  /// charges nothing). Returns false if cancelled mid-I/O. Callers must
  /// check StripeVisible first.
  bool ReadStripe(int64_t index, const std::vector<int>& projection,
                  StripeView* out);

  void Truncate();

 private:
  struct Stripe {
    // Column-major storage.
    std::vector<std::vector<sql::Datum>> columns;
    std::vector<int64_t> column_bytes;
    std::vector<ColumnStats> stats;  // filled at seal time
    TxnId xmin = kInvalidTxn;
    int64_t rows = 0;
    uint64_t first_block = 0;
  };

  void SealStripe(TxnId xmin);
  int64_t ColumnPages(int64_t bytes) const;
  /// Charge buffer-pool reads for `projection` of `s`; false on cancel.
  bool ChargeStripeRead(const Stripe& s, const std::vector<int>& projection);

  uint64_t object_id_;
  sql::Schema schema_;
  BufferPool* pool_;
  std::vector<Stripe> stripes_;
  Stripe open_;
  bool open_active_ = false;
  int64_t data_bytes_ = 0;
  uint64_t next_block_ = 0;
};

}  // namespace citusx::storage

#endif  // CITUSX_STORAGE_COLUMNAR_H_
