#include "storage/index.h"

#include <algorithm>

#include "common/hash.h"
#include "common/str.h"

namespace citusx::storage {

namespace {
// Entry overhead: key datums + pointer + item header.
int64_t EntryBytes(const IndexKey& key) {
  int64_t n = 16;
  for (const auto& d : key) n += d.PhysicalSize();
  return n;
}
}  // namespace

IndexKey BtreeIndex::KeyFromRow(const sql::Row& row) const {
  IndexKey key;
  key.reserve(key_columns_.size());
  for (int c : key_columns_) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

uint64_t BtreeIndex::LeafPageFor(const IndexKey& key) const {
  uint64_t h = 0;
  for (const auto& d : key) {
    h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(
                      d.PartitionHash())));
  }
  return h % static_cast<uint64_t>(NumLeafPages());
}

bool BtreeIndex::Insert(const IndexKey& key, RowId rid) {
  map_.emplace(key, rid);
  size_bytes_ += EntryBytes(key);
  return pool_->Access(BlockId{object_id_, LeafPageFor(key)}, /*dirty=*/true);
}

void BtreeIndex::Remove(const IndexKey& key, RowId rid) {
  auto [lo, hi] = map_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == rid) {
      size_bytes_ -= EntryBytes(key);
      map_.erase(it);
      return;
    }
  }
}

bool BtreeIndex::EqualRange(const IndexKey& key, std::vector<RowId>* out) {
  if (key.size() == key_columns_.size()) {
    auto [lo, hi] = map_.equal_range(key);
    for (auto it = lo; it != hi; ++it) out->push_back(it->second);
  } else {
    // Prefix scan: [key, key+] using the comparator's prefix behaviour.
    auto it = map_.lower_bound(key);
    for (; it != map_.end(); ++it) {
      bool prefix_match = true;
      for (size_t i = 0; i < key.size(); i++) {
        if (sql::Datum::Compare(it->first[i], key[i]) != 0) {
          prefix_match = false;
          break;
        }
      }
      if (!prefix_match) break;
      out->push_back(it->second);
    }
  }
  return pool_->Access(BlockId{object_id_, LeafPageFor(key)}, /*dirty=*/false);
}

bool BtreeIndex::Range(const sql::Datum* lo, bool lo_inclusive,
                       const sql::Datum* hi, bool hi_inclusive,
                       std::vector<RowId>* out) {
  auto it = map_.begin();
  if (lo != nullptr) {
    IndexKey lo_key = {*lo};
    it = lo_inclusive ? map_.lower_bound(lo_key) : map_.upper_bound(lo_key);
    if (!lo_inclusive) {
      // upper_bound on a prefix key stops at the first key whose first column
      // exceeds lo only if the comparator treats shorter keys as smaller;
      // skip any keys equal on the first column.
      while (it != map_.end() &&
             sql::Datum::Compare(it->first[0], *lo) == 0) {
        ++it;
      }
    }
  }
  int64_t touched = 0;
  for (; it != map_.end(); ++it) {
    if (hi != nullptr) {
      int c = sql::Datum::Compare(it->first[0], *hi);
      if (c > 0 || (c == 0 && !hi_inclusive)) break;
    }
    out->push_back(it->second);
    touched++;
  }
  // Charge one leaf page per ~page worth of entries scanned.
  int64_t entries_per_page =
      std::max<int64_t>(1, pool_->page_bytes() / 32);
  int64_t pages = touched / entries_per_page + 1;
  bool ok = true;
  uint64_t base = lo != nullptr
                      ? LeafPageFor(IndexKey{*lo})
                      : 0;
  for (int64_t p = 0; p < pages; p++) {
    ok = pool_->Access(
        BlockId{object_id_,
                (base + static_cast<uint64_t>(p)) %
                    static_cast<uint64_t>(NumLeafPages())},
        false);
    if (!ok) break;
  }
  return ok;
}

// ---- GIN trigram index ----

std::vector<std::string> GinTrgmIndex::ExtractTrigrams(
    const std::string& text) {
  std::string t = ToLower(text);
  std::set<std::string> out;
  if (t.size() < 3) {
    if (!t.empty()) out.insert(t);
  } else {
    for (size_t i = 0; i + 3 <= t.size(); i++) out.insert(t.substr(i, 3));
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> GinTrgmIndex::PatternTrigrams(
    const std::string& pattern) {
  std::string p = ToLower(pattern);
  std::set<std::string> out;
  std::string run;
  auto flush = [&] {
    if (run.size() >= 3) {
      for (size_t i = 0; i + 3 <= run.size(); i++) out.insert(run.substr(i, 3));
    }
    run.clear();
  };
  for (char c : p) {
    if (c == '%' || c == '_') {
      flush();
    } else {
      run.push_back(c);
    }
  }
  flush();
  return {out.begin(), out.end()};
}

uint64_t GinTrgmIndex::PageFor(const std::string& trgm) const {
  int64_t pages = std::max<int64_t>(1, size_bytes_ / pool_->page_bytes());
  return static_cast<uint64_t>(static_cast<uint32_t>(HashBytes(trgm))) %
         static_cast<uint64_t>(pages);
}

int64_t GinTrgmIndex::Insert(const std::string& text, RowId rid) {
  auto trigrams = ExtractTrigrams(text);
  for (const auto& t : trigrams) {
    auto& plist = postings_[t];
    plist.push_back(rid);
    size_bytes_ += 8 + (plist.size() == 1 ? 16 : 0);
    pool_->Access(BlockId{object_id_, PageFor(t)}, /*dirty=*/true);
  }
  return static_cast<int64_t>(trigrams.size());
}

bool GinTrgmIndex::Candidates(const std::vector<std::string>& trigrams,
                              std::vector<RowId>* out) {
  bool first = true;
  std::vector<RowId> current;
  for (const auto& t : trigrams) {
    if (!pool_->Access(BlockId{object_id_, PageFor(t)}, false)) return false;
    auto it = postings_.find(t);
    if (it == postings_.end()) {
      out->clear();
      return true;
    }
    std::vector<RowId> sorted = it->second;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    if (first) {
      current = std::move(sorted);
      first = false;
    } else {
      std::vector<RowId> merged;
      std::set_intersection(current.begin(), current.end(), sorted.begin(),
                            sorted.end(), std::back_inserter(merged));
      current = std::move(merged);
    }
    if (current.empty()) break;
  }
  *out = std::move(current);
  return true;
}

void GinTrgmIndex::Remove(const std::string& text, RowId rid) {
  for (const auto& t : ExtractTrigrams(text)) {
    auto it = postings_.find(t);
    if (it == postings_.end()) continue;
    auto& plist = it->second;
    for (auto pit = plist.begin(); pit != plist.end(); ++pit) {
      if (*pit == rid) {
        plist.erase(pit);
        size_bytes_ -= 8;
        break;
      }
    }
    if (plist.empty()) {
      postings_.erase(it);
      size_bytes_ -= 16;
    }
  }
}

}  // namespace citusx::storage
