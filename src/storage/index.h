// Secondary indexes: composite-key B-tree and trigram GIN (for ILIKE '%x%').
//
// Index entries reference logical RowIds and are not versioned: lookups
// return candidates whose visible version is re-checked by the executor
// (PostgreSQL-style recheck), and vacuum removes entries for dead rows.
#ifndef CITUSX_STORAGE_INDEX_H_
#define CITUSX_STORAGE_INDEX_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sql/datum.h"
#include "storage/buffer_pool.h"
#include "storage/heap.h"

namespace citusx::storage {

/// A composite index key.
using IndexKey = std::vector<sql::Datum>;

struct IndexKeyLess {
  bool operator()(const IndexKey& a, const IndexKey& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; i++) {
      int c = sql::Datum::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Multi-column B-tree. Charges one leaf-page access per point operation
/// (inner pages are assumed cached) against the buffer pool.
class BtreeIndex {
 public:
  BtreeIndex(uint64_t object_id, std::vector<int> key_columns, bool unique,
             BufferPool* pool)
      : object_id_(object_id),
        key_columns_(std::move(key_columns)),
        unique_(unique),
        pool_(pool) {}

  const std::vector<int>& key_columns() const { return key_columns_; }
  bool unique() const { return unique_; }

  /// Extract this index's key from a full table row.
  IndexKey KeyFromRow(const sql::Row& row) const;

  /// Insert an entry; charges I/O. For unique indexes the caller must have
  /// checked FindConflict first.
  bool Insert(const IndexKey& key, RowId rid);

  /// Remove a specific entry (vacuum).
  void Remove(const IndexKey& key, RowId rid);

  /// All RowIds with exactly `key` (prefix match if key is shorter than the
  /// index width). Charges one leaf access.
  bool EqualRange(const IndexKey& key, std::vector<RowId>* out);

  /// RowIds with lo <= key <= hi on the first column (nullptr = unbounded).
  /// Charges I/O proportional to the entries touched.
  bool Range(const sql::Datum* lo, bool lo_inclusive, const sql::Datum* hi,
             bool hi_inclusive, std::vector<RowId>* out);

  /// True if a row with this key already exists among `candidates` check by
  /// the caller. This only consults the index structure.
  bool HasKey(const IndexKey& key) const { return map_.count(key) > 0; }

  int64_t num_entries() const { return static_cast<int64_t>(map_.size()); }
  int64_t size_bytes() const { return size_bytes_; }

  void Truncate() {
    map_.clear();
    size_bytes_ = 0;
    pool_->Forget(object_id_);
  }

 private:
  int64_t NumLeafPages() const {
    return std::max<int64_t>(1, size_bytes_ / pool_->page_bytes());
  }
  uint64_t LeafPageFor(const IndexKey& key) const;

  uint64_t object_id_;
  std::vector<int> key_columns_;
  bool unique_;
  BufferPool* pool_;
  std::multimap<IndexKey, RowId, IndexKeyLess> map_;
  int64_t size_bytes_ = 0;
};

/// Trigram GIN index over a text expression (pg_trgm-style). Supports
/// candidate retrieval for LIKE/ILIKE patterns containing a literal of
/// length >= 3.
class GinTrgmIndex {
 public:
  GinTrgmIndex(uint64_t object_id, BufferPool* pool)
      : object_id_(object_id), pool_(pool) {}

  /// Extract lowercase trigrams from a text value.
  static std::vector<std::string> ExtractTrigrams(const std::string& text);

  /// Extract trigrams that any match of `pattern` must contain (from maximal
  /// literal runs between wildcards). Empty result = index unusable.
  static std::vector<std::string> PatternTrigrams(const std::string& pattern);

  /// Index `text` for row `rid`; charges one page access per new trigram
  /// posting. Returns number of postings touched.
  int64_t Insert(const std::string& text, RowId rid);

  /// Rows whose indexed text contains all of `trigrams` (candidates; caller
  /// rechecks). Charges one page access per probed trigram.
  bool Candidates(const std::vector<std::string>& trigrams,
                  std::vector<RowId>* out);

  void Remove(const std::string& text, RowId rid);

  int64_t size_bytes() const { return size_bytes_; }
  int64_t num_trigrams() const { return static_cast<int64_t>(postings_.size()); }

  void Truncate() {
    postings_.clear();
    size_bytes_ = 0;
    pool_->Forget(object_id_);
  }

 private:
  uint64_t PageFor(const std::string& trgm) const;

  uint64_t object_id_;
  BufferPool* pool_;
  std::unordered_map<std::string, std::vector<RowId>> postings_;
  int64_t size_bytes_ = 0;
};

}  // namespace citusx::storage

#endif  // CITUSX_STORAGE_INDEX_H_
