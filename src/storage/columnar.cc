#include "storage/columnar.h"

#include <functional>

namespace citusx::storage {

Status ColumnarTable::Insert(sql::Row row, TxnId xmin) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::Internal("columnar row width mismatch");
  }
  if (!open_active_) {
    open_ = Stripe{};
    open_.columns.resize(static_cast<size_t>(schema_.num_columns()));
    open_.column_bytes.assign(static_cast<size_t>(schema_.num_columns()), 0);
    open_.xmin = xmin;
    open_active_ = true;
  }
  for (size_t c = 0; c < row.size(); c++) {
    open_.column_bytes[c] += row[c].PhysicalSize();
    data_bytes_ += row[c].PhysicalSize();
    open_.columns[c].push_back(std::move(row[c]));
  }
  open_.rows++;
  // Later writers in the same stripe own visibility; in practice COPY loads
  // whole stripes in one transaction, matching Citus columnar usage.
  open_.xmin = xmin;
  if (open_.rows >= kStripeRows) SealStripe(xmin);
  return Status::OK();
}

void ColumnarTable::SealStripe(TxnId xmin) {
  if (!open_active_ || open_.rows == 0) return;
  open_.xmin = xmin;
  open_.first_block = next_block_;
  // Charge compressed write I/O for each column block.
  for (size_t c = 0; c < open_.column_bytes.size(); c++) {
    int64_t pages = static_cast<int64_t>(
        static_cast<double>(open_.column_bytes[c]) /
        (kCompressionRatio * static_cast<double>(pool_->page_bytes()))) + 1;
    for (int64_t p = 0; p < pages; p++) {
      pool_->AppendBlock(BlockId{object_id_, next_block_++});
    }
  }
  stripes_.push_back(std::move(open_));
  open_ = Stripe{};
  open_active_ = false;
}

int64_t ColumnarTable::num_rows() const {
  int64_t n = open_active_ ? open_.rows : 0;
  for (const auto& s : stripes_) n += s.rows;
  return n;
}

bool ColumnarTable::Scan(const Snapshot& snap,
                         const TxnStatusResolver& resolver,
                         const std::vector<int>& projection,
                         const std::function<bool(const sql::Row&)>& fn) {
  auto scan_stripe = [&](const Stripe& s, bool charge_io) -> bool {
    if (!snap.XidVisible(s.xmin, resolver)) return true;
    if (charge_io) {
      // Charge I/O for projected column blocks only.
      uint64_t block = s.first_block;
      for (int c = 0; c < static_cast<int>(s.columns.size()); c++) {
        int64_t pages = static_cast<int64_t>(
            static_cast<double>(s.column_bytes[static_cast<size_t>(c)]) /
            (kCompressionRatio * static_cast<double>(pool_->page_bytes()))) + 1;
        bool wanted = projection.empty();
        for (int p : projection) {
          if (p == c) wanted = true;
        }
        if (wanted) {
          for (int64_t p = 0; p < pages; p++) {
            if (!pool_->Access(
                    BlockId{object_id_, block + static_cast<uint64_t>(p)},
                    false)) {
              return false;
            }
          }
        }
        block += static_cast<uint64_t>(pages);
      }
    }
    sql::Row row(s.columns.size());
    for (int64_t r = 0; r < s.rows; r++) {
      for (size_t c = 0; c < s.columns.size(); c++) {
        bool wanted = projection.empty();
        for (int p : projection) {
          if (p == static_cast<int>(c)) wanted = true;
        }
        row[c] = wanted ? s.columns[c][static_cast<size_t>(r)]
                        : sql::Datum::Null();
      }
      if (!fn(row)) return false;
    }
    return true;
  };
  for (const auto& s : stripes_) {
    if (!scan_stripe(s, /*charge_io=*/true)) return false;
  }
  if (open_active_ && !scan_stripe(open_, /*charge_io=*/false)) return false;
  return true;
}

void ColumnarTable::Truncate() {
  stripes_.clear();
  open_ = Stripe{};
  open_active_ = false;
  data_bytes_ = 0;
  next_block_ = 0;
  pool_->Forget(object_id_);
}

}  // namespace citusx::storage
