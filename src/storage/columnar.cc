#include "storage/columnar.h"

#include <functional>

namespace citusx::storage {

Status ColumnarTable::Insert(sql::Row row, TxnId xmin) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::Internal("columnar row width mismatch");
  }
  // Each stripe has exactly one writing transaction (as in Citus, where
  // every writer reserves its own stripe). A new writer seals whatever the
  // previous one left open; otherwise an uncommitted writer appending to a
  // shared open stripe would hide the earlier, committed rows, since
  // visibility is tracked at stripe granularity.
  if (open_active_ && open_.xmin != xmin) SealStripe(open_.xmin);
  if (!open_active_) {
    open_ = Stripe{};
    open_.columns.resize(static_cast<size_t>(schema_.num_columns()));
    open_.column_bytes.assign(static_cast<size_t>(schema_.num_columns()), 0);
    open_.xmin = xmin;
    open_active_ = true;
  }
  for (size_t c = 0; c < row.size(); c++) {
    open_.column_bytes[c] += row[c].PhysicalSize();
    data_bytes_ += row[c].PhysicalSize();
    open_.columns[c].push_back(std::move(row[c]));
  }
  open_.rows++;
  if (open_.rows >= kStripeRows) SealStripe(xmin);
  return Status::OK();
}

int64_t ColumnarTable::ColumnPages(int64_t bytes) const {
  return static_cast<int64_t>(
             static_cast<double>(bytes) /
             (kCompressionRatio * static_cast<double>(pool_->page_bytes()))) +
         1;
}

void ColumnarTable::SealStripe(TxnId xmin) {
  if (!open_active_ || open_.rows == 0) return;
  open_.xmin = xmin;
  open_.first_block = next_block_;
  // Charge compressed write I/O for each column block.
  for (size_t c = 0; c < open_.column_bytes.size(); c++) {
    int64_t pages = ColumnPages(open_.column_bytes[c]);
    for (int64_t p = 0; p < pages; p++) {
      pool_->AppendBlock(BlockId{object_id_, next_block_++});
    }
  }
  // Min/max skip-index entries (cstore chunk group stats): computed once at
  // seal time over non-NULL values.
  open_.stats.resize(open_.columns.size());
  for (size_t c = 0; c < open_.columns.size(); c++) {
    ColumnStats& st = open_.stats[c];
    for (const sql::Datum& v : open_.columns[c]) {
      if (v.is_null()) continue;
      if (!st.has_values) {
        st.min = v;
        st.max = v;
        st.has_values = true;
        continue;
      }
      if (sql::Datum::Compare(v, st.min) < 0) st.min = v;
      if (sql::Datum::Compare(v, st.max) > 0) st.max = v;
    }
  }
  stripes_.push_back(std::move(open_));
  open_ = Stripe{};
  open_active_ = false;
}

int64_t ColumnarTable::num_rows() const {
  int64_t n = open_active_ ? open_.rows : 0;
  for (const auto& s : stripes_) n += s.rows;
  return n;
}

bool ColumnarTable::ChargeStripeRead(const Stripe& s,
                                     const std::vector<int>& projection) {
  uint64_t block = s.first_block;
  for (int c = 0; c < static_cast<int>(s.columns.size()); c++) {
    int64_t pages = ColumnPages(s.column_bytes[static_cast<size_t>(c)]);
    bool wanted = projection.empty();
    for (int p : projection) {
      if (p == c) wanted = true;
    }
    if (wanted) {
      for (int64_t p = 0; p < pages; p++) {
        if (!pool_->Access(
                BlockId{object_id_, block + static_cast<uint64_t>(p)},
                false)) {
          return false;
        }
      }
    }
    block += static_cast<uint64_t>(pages);
  }
  return true;
}

bool ColumnarTable::Scan(const Snapshot& snap,
                         const TxnStatusResolver& resolver,
                         const std::vector<int>& projection,
                         const std::function<bool(const sql::Row&)>& fn) {
  auto scan_stripe = [&](const Stripe& s, bool charge_io) -> bool {
    if (!snap.XidVisible(s.xmin, resolver)) return true;
    if (charge_io && !ChargeStripeRead(s, projection)) return false;
    sql::Row row(s.columns.size());
    for (int64_t r = 0; r < s.rows; r++) {
      for (size_t c = 0; c < s.columns.size(); c++) {
        bool wanted = projection.empty();
        for (int p : projection) {
          if (p == static_cast<int>(c)) wanted = true;
        }
        row[c] = wanted ? s.columns[c][static_cast<size_t>(r)]
                        : sql::Datum::Null();
      }
      if (!fn(row)) return false;
    }
    return true;
  };
  for (const auto& s : stripes_) {
    if (!scan_stripe(s, /*charge_io=*/true)) return false;
  }
  if (open_active_ && !scan_stripe(open_, /*charge_io=*/false)) return false;
  return true;
}

const std::vector<ColumnStats>* ColumnarTable::StripeStats(
    int64_t index) const {
  if (index < 0 || index >= num_stripes()) return nullptr;  // open stripe
  return &stripes_[static_cast<size_t>(index)].stats;
}

bool ColumnarTable::StripeVisible(int64_t index, const Snapshot& snap,
                                  const TxnStatusResolver& resolver) const {
  const Stripe& s = index < num_stripes()
                        ? stripes_[static_cast<size_t>(index)]
                        : open_;
  return snap.XidVisible(s.xmin, resolver);
}

bool ColumnarTable::ReadStripe(int64_t index,
                               const std::vector<int>& projection,
                               StripeView* out) {
  bool is_open = index >= num_stripes();
  const Stripe& s =
      is_open ? open_ : stripes_[static_cast<size_t>(index)];
  // Open stripe is memory-resident: no block I/O.
  if (!is_open && !ChargeStripeRead(s, projection)) return false;
  out->rows = s.rows;
  out->columns.assign(s.columns.size(), nullptr);
  for (size_t c = 0; c < s.columns.size(); c++) {
    bool wanted = projection.empty();
    for (int p : projection) {
      if (p == static_cast<int>(c)) wanted = true;
    }
    if (wanted) out->columns[c] = &s.columns[c];
  }
  return true;
}

void ColumnarTable::Truncate() {
  stripes_.clear();
  open_ = Stripe{};
  open_active_ = false;
  data_bytes_ = 0;
  next_block_ = 0;
  pool_->Forget(object_id_);
}

}  // namespace citusx::storage
