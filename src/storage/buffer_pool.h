// Buffer pool: tracks which logical blocks are memory-resident per node and
// charges simulated disk I/O on misses and dirty evictions.
//
// Data always lives in host RAM (this is a simulation); the pool only decides
// whether an access *would have* hit disk, which is what produces the paper's
// "fits in memory after scaling out" effects (§4).
#ifndef CITUSX_STORAGE_BUFFER_POOL_H_
#define CITUSX_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "obs/metrics.h"
#include "sim/resources.h"
#include "sim/simulation.h"

namespace citusx::storage {

/// Identifies an 8KB logical block of some storage object (table or index).
struct BlockId {
  uint64_t object_id = 0;
  uint64_t block_no = 0;
  bool operator==(const BlockId& o) const {
    return object_id == o.object_id && block_no == o.block_no;
  }
};

struct BlockIdHash {
  size_t operator()(const BlockId& b) const {
    return static_cast<size_t>(b.object_id * 0x9e3779b97f4a7c15ULL +
                               b.block_no);
  }
};

/// LRU block cache model. Simulation-domain (no locking needed).
class BufferPool {
 public:
  BufferPool(sim::Simulation* sim, sim::DiskResource* disk,
             int64_t capacity_bytes, int64_t page_bytes)
      : sim_(sim),
        disk_(disk),
        capacity_pages_(capacity_bytes / page_bytes),
        page_bytes_(page_bytes) {}

  /// Touch a block for read or write. Charges one disk read on a miss and
  /// one disk write when a dirty page is evicted. Returns false if the
  /// calling process was cancelled while waiting on I/O.
  bool Access(BlockId block, bool dirty);

  /// Touch a freshly appended block: resident immediately, one write charged
  /// (models WAL + page write).
  bool AppendBlock(BlockId block);

  /// Drop all blocks belonging to an object (table drop/truncate) without
  /// I/O charge.
  void Forget(uint64_t object_id);

  int64_t capacity_pages() const { return capacity_pages_; }
  int64_t resident_pages() const { return static_cast<int64_t>(lru_.size()); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }
  int64_t page_bytes() const { return page_bytes_; }

  /// Mirror hit/miss/eviction counts into a metrics registry.
  void BindMetrics(obs::Metrics* metrics) {
    hits_metric_ = metrics->counter("bufferpool.hits");
    misses_metric_ = metrics->counter("bufferpool.misses");
    evictions_metric_ = metrics->counter("bufferpool.evictions");
  }

 private:
  struct Entry {
    BlockId block;
    bool dirty;
  };
  using LruList = std::list<Entry>;

  // Make room for one more page. Accumulates dirty-evict write ops and
  // returns their count (charged by the caller in one batch).
  int64_t EvictIfNeeded();

  sim::Simulation* sim_;
  sim::DiskResource* disk_;
  int64_t capacity_pages_;
  int64_t page_bytes_;
  LruList lru_;  // front = most recent
  std::unordered_map<BlockId, LruList::iterator, BlockIdHash> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
  obs::Counter* evictions_metric_ = nullptr;
};

}  // namespace citusx::storage

#endif  // CITUSX_STORAGE_BUFFER_POOL_H_
