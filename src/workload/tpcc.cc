#include "workload/tpcc.h"

#include "common/str.h"
#include "engine/session.h"

namespace citusx::workload {

namespace {


std::string PadText(Rng& rng, int min_len, int max_len) {
  return rng.AlphaString(min_len, max_len);
}

}  // namespace

TpccCounters& GlobalTpccCounters() {
  static TpccCounters counters;
  return counters;
}

Status TpccCreateSchema(net::Connection& conn, const TpccConfig& config) {
  const char* ddl[] = {
      "CREATE TABLE warehouse (w_id bigint PRIMARY KEY, w_name text, "
      "w_city text, w_tax double precision, w_ytd double precision)",
      "CREATE TABLE district (d_w_id bigint, d_id bigint, d_name text, "
      "d_city text, d_tax double precision, d_ytd double precision, "
      "d_next_o_id bigint, PRIMARY KEY (d_w_id, d_id))",
      "CREATE TABLE customer (c_w_id bigint, c_d_id bigint, c_id bigint, "
      "c_name text, c_credit text, c_balance double precision, "
      "c_ytd_payment double precision, c_payment_cnt bigint, "
      "PRIMARY KEY (c_w_id, c_d_id, c_id))",
      "CREATE TABLE history (h_w_id bigint, h_d_id bigint, h_c_id bigint, "
      "h_date timestamp, h_amount double precision)",
      "CREATE TABLE orders (o_w_id bigint, o_d_id bigint, o_id bigint, "
      "o_c_id bigint, o_entry_d timestamp, o_ol_cnt bigint, "
      "PRIMARY KEY (o_w_id, o_d_id, o_id))",
      "CREATE TABLE new_order (no_w_id bigint, no_d_id bigint, no_o_id bigint, "
      "PRIMARY KEY (no_w_id, no_d_id, no_o_id))",
      "CREATE TABLE order_line (ol_w_id bigint, ol_d_id bigint, ol_o_id bigint, "
      "ol_number bigint, ol_i_id bigint, ol_supply_w_id bigint, "
      "ol_quantity bigint, ol_amount double precision, "
      "PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",
      "CREATE TABLE stock (s_w_id bigint, s_i_id bigint, s_quantity bigint, "
      "s_ytd bigint, s_order_cnt bigint, PRIMARY KEY (s_w_id, s_i_id))",
      "CREATE TABLE item (i_id bigint PRIMARY KEY, i_name text, "
      "i_price double precision)",
  };
  for (const char* stmt : ddl) {
    auto r = conn.Query(stmt);
    if (!r.ok()) return r.status();
  }
  if (config.use_citus) {
    // Distribute and co-locate by warehouse id; items become a reference
    // table (§4.1).
    const char* dist[] = {
        "SELECT create_distributed_table('warehouse', 'w_id')",
        "SELECT create_distributed_table('district', 'd_w_id', "
        "colocate_with := 'warehouse')",
        "SELECT create_distributed_table('customer', 'c_w_id', "
        "colocate_with := 'warehouse')",
        "SELECT create_distributed_table('history', 'h_w_id', "
        "colocate_with := 'warehouse')",
        "SELECT create_distributed_table('orders', 'o_w_id', "
        "colocate_with := 'warehouse')",
        "SELECT create_distributed_table('new_order', 'no_w_id', "
        "colocate_with := 'warehouse')",
        "SELECT create_distributed_table('order_line', 'ol_w_id', "
        "colocate_with := 'warehouse')",
        "SELECT create_distributed_table('stock', 's_w_id', "
        "colocate_with := 'warehouse')",
        "SELECT create_reference_table('item')",
    };
    for (const char* stmt : dist) {
      auto r = conn.Query(stmt);
      if (!r.ok()) return r.status();
    }
  }
  return Status::OK();
}

Status TpccDistributeProcedures(net::Connection& conn) {
  const char* calls[] = {
      "SELECT create_distributed_procedure('tpcc_neworder', 0, 'warehouse')",
      "SELECT create_distributed_procedure('tpcc_payment', 0, 'warehouse')",
      "SELECT create_distributed_procedure('tpcc_ostat', 0, 'warehouse')",
      "SELECT create_distributed_procedure('tpcc_delivery', 0, 'warehouse')",
      "SELECT create_distributed_procedure('tpcc_slev', 0, 'warehouse')",
  };
  for (const char* stmt : calls) {
    auto r = conn.Query(stmt);
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

Status TpccLoad(net::Connection& conn, const TpccConfig& config, int first_w,
                int last_w) {
  Rng rng(99);
  // Items (once, not per warehouse).
  if (first_w == 1) {
    std::vector<std::vector<std::string>> items;
    for (int i = 1; i <= config.items; i++) {
      items.push_back({std::to_string(i), PadText(rng, 14, 24),
                       StrFormat("%.2f", 1.0 + rng.NextDouble() * 99.0)});
    }
    auto r = conn.CopyIn("item", {}, std::move(items));
    if (!r.ok()) return r.status();
  }
  for (int w = first_w; w <= last_w; w++) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({std::to_string(w), PadText(rng, 6, 10), PadText(rng, 10, 20),
                    StrFormat("%.4f", rng.NextDouble() * 0.2),
                    "300000.0"});
    auto r = conn.CopyIn("warehouse", {}, std::move(rows));
    if (!r.ok()) return r.status();
    // Districts.
    std::vector<std::vector<std::string>> districts;
    for (int d = 1; d <= config.districts_per_warehouse; d++) {
      districts.push_back(
          {std::to_string(w), std::to_string(d), PadText(rng, 6, 10),
           PadText(rng, 10, 20), StrFormat("%.4f", rng.NextDouble() * 0.2),
           "30000.0", std::to_string(config.orders_per_district + 1)});
    }
    r = conn.CopyIn("district", {}, std::move(districts));
    if (!r.ok()) return r.status();
    // Customers.
    std::vector<std::vector<std::string>> customers;
    for (int d = 1; d <= config.districts_per_warehouse; d++) {
      for (int c = 1; c <= config.customers_per_district; c++) {
        customers.push_back({std::to_string(w), std::to_string(d),
                             std::to_string(c), PadText(rng, 12, 20),
                             rng.Chance(0.1) ? "BC" : "GC", "-10.0", "10.0",
                             "1"});
      }
    }
    r = conn.CopyIn("customer", {}, std::move(customers));
    if (!r.ok()) return r.status();
    // Stock.
    std::vector<std::vector<std::string>> stock;
    for (int i = 1; i <= config.items; i++) {
      stock.push_back({std::to_string(w), std::to_string(i),
                       std::to_string(rng.Uniform(10, 100)), "0", "0"});
    }
    r = conn.CopyIn("stock", {}, std::move(stock));
    if (!r.ok()) return r.status();
    // Orders + order lines + new orders (last third are "new").
    std::vector<std::vector<std::string>> orders, lines, news;
    for (int d = 1; d <= config.districts_per_warehouse; d++) {
      for (int o = 1; o <= config.orders_per_district; o++) {
        int ol_cnt = static_cast<int>(rng.Uniform(5, 15));
        orders.push_back({std::to_string(w), std::to_string(d),
                          std::to_string(o),
                          std::to_string(rng.Uniform(1, config.customers_per_district)),
                          "2020-01-01 00:00:00", std::to_string(ol_cnt)});
        for (int l = 1; l <= ol_cnt; l++) {
          lines.push_back({std::to_string(w), std::to_string(d),
                           std::to_string(o), std::to_string(l),
                           std::to_string(rng.Uniform(1, config.items)),
                           std::to_string(w), "5",
                           StrFormat("%.2f", rng.NextDouble() * 9999.0)});
        }
        if (o > config.orders_per_district * 2 / 3) {
          news.push_back(
              {std::to_string(w), std::to_string(d), std::to_string(o)});
        }
      }
    }
    r = conn.CopyIn("orders", {}, std::move(orders));
    if (!r.ok()) return r.status();
    r = conn.CopyIn("order_line", {}, std::move(lines));
    if (!r.ok()) return r.status();
    r = conn.CopyIn("new_order", {}, std::move(news));
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

namespace {

using engine::QueryResult;
using engine::Session;
using sql::Datum;

Result<QueryResult> Exec(Session& s, const std::string& sql) {
  return s.Execute(sql);
}

// NEW ORDER: update district next_o_id, insert order/new_order, per line:
// read item (reference), update stock, insert order_line.
Result<QueryResult> NewOrderProc(Session& s, const std::vector<Datum>& args,
                                 const TpccConfig& config) {
  int64_t w = args[0].AsInt64();
  int64_t d = args[1].AsInt64();
  int64_t c = args[2].AsInt64();
  int64_t ol_cnt = args[3].AsInt64();
  uint64_t seed = static_cast<uint64_t>(args[4].AsInt64());
  Rng rng(seed);
  CITUSX_RETURN_IF_ERROR(Exec(s, "BEGIN").status());
  auto fail = [&](const Status& st) -> Status {
    CITUSX_IGNORE_STATUS(Exec(s, "ROLLBACK"),
                         "transaction already failing; rollback best-effort");
    return st;
  };
  auto district = Exec(
      s, StrFormat("SELECT d_next_o_id, d_tax FROM district WHERE d_w_id = %lld "
                   "AND d_id = %lld FOR UPDATE",
                   static_cast<long long>(w), static_cast<long long>(d)));
  if (!district.ok()) return fail(district.status());
  if (district->rows.empty()) return fail(Status::NotFound("district missing"));
  int64_t o_id = district->rows[0][0].AsInt64();
  auto upd = Exec(s, StrFormat("UPDATE district SET d_next_o_id = %lld WHERE "
                               "d_w_id = %lld AND d_id = %lld",
                               static_cast<long long>(o_id + 1),
                               static_cast<long long>(w),
                               static_cast<long long>(d)));
  if (!upd.ok()) return fail(upd.status());
  auto ins = Exec(
      s, StrFormat("INSERT INTO orders VALUES (%lld, %lld, %lld, %lld, "
                   "'2021-01-01 00:00:00', %lld)",
                   static_cast<long long>(w), static_cast<long long>(d),
                   static_cast<long long>(o_id), static_cast<long long>(c),
                   static_cast<long long>(ol_cnt)));
  if (!ins.ok()) return fail(ins.status());
  ins = Exec(s, StrFormat("INSERT INTO new_order VALUES (%lld, %lld, %lld)",
                          static_cast<long long>(w), static_cast<long long>(d),
                          static_cast<long long>(o_id)));
  if (!ins.ok()) return fail(ins.status());
  for (int64_t l = 1; l <= ol_cnt; l++) {
    int64_t item = rng.Uniform(1, config.items);
    int64_t supply_w =
        rng.Chance(config.neworder_remote_item_pct) && config.warehouses > 1
            ? (w % config.warehouses) + 1
            : w;
    auto price = Exec(s, StrFormat("SELECT i_price FROM item WHERE i_id = %lld",
                                   static_cast<long long>(item)));
    if (!price.ok()) return fail(price.status());
    if (price->rows.empty()) return fail(Status::NotFound("item missing"));
    auto stock = Exec(
        s, StrFormat("UPDATE stock SET s_quantity = s_quantity - 1, "
                     "s_ytd = s_ytd + 1, s_order_cnt = s_order_cnt + 1 "
                     "WHERE s_w_id = %lld AND s_i_id = %lld",
                     static_cast<long long>(supply_w),
                     static_cast<long long>(item)));
    if (!stock.ok()) return fail(stock.status());
    auto line = Exec(
        s, StrFormat("INSERT INTO order_line VALUES (%lld, %lld, %lld, %lld, "
                     "%lld, %lld, 1, %.2f)",
                     static_cast<long long>(w), static_cast<long long>(d),
                     static_cast<long long>(o_id), static_cast<long long>(l),
                     static_cast<long long>(item),
                     static_cast<long long>(supply_w),
                     price->rows[0][0].AsDouble()));
    if (!line.ok()) return fail(line.status());
  }
  CITUSX_RETURN_IF_ERROR(Exec(s, "COMMIT").status());
  GlobalTpccCounters().new_orders++;
  QueryResult out;
  out.command_tag = "CALL";
  return out;
}

Result<QueryResult> PaymentProc(Session& s, const std::vector<Datum>& args,
                                const TpccConfig& config) {
  int64_t w = args[0].AsInt64();
  int64_t d = args[1].AsInt64();
  int64_t c_w = args[2].AsInt64();  // customer warehouse (may be remote)
  int64_t c_d = args[3].AsInt64();
  int64_t c = args[4].AsInt64();
  double amount = args[5].AsDouble();
  CITUSX_RETURN_IF_ERROR(Exec(s, "BEGIN").status());
  auto fail = [&](const Status& st) -> Status {
    CITUSX_IGNORE_STATUS(Exec(s, "ROLLBACK"),
                         "transaction already failing; rollback best-effort");
    return st;
  };
  auto r = Exec(s, StrFormat("UPDATE warehouse SET w_ytd = w_ytd + %.2f "
                             "WHERE w_id = %lld",
                             amount, static_cast<long long>(w)));
  if (!r.ok()) return fail(r.status());
  r = Exec(s, StrFormat("UPDATE district SET d_ytd = d_ytd + %.2f WHERE "
                        "d_w_id = %lld AND d_id = %lld",
                        amount, static_cast<long long>(w),
                        static_cast<long long>(d)));
  if (!r.ok()) return fail(r.status());
  r = Exec(s, StrFormat(
                  "UPDATE customer SET c_balance = c_balance - %.2f, "
                  "c_ytd_payment = c_ytd_payment + %.2f, c_payment_cnt = "
                  "c_payment_cnt + 1 WHERE c_w_id = %lld AND c_d_id = %lld "
                  "AND c_id = %lld",
                  amount, amount, static_cast<long long>(c_w),
                  static_cast<long long>(c_d), static_cast<long long>(c)));
  if (!r.ok()) return fail(r.status());
  r = Exec(s, StrFormat("INSERT INTO history VALUES (%lld, %lld, %lld, "
                        "'2021-01-01 00:00:00', %.2f)",
                        static_cast<long long>(w), static_cast<long long>(d),
                        static_cast<long long>(c), amount));
  if (!r.ok()) return fail(r.status());
  CITUSX_RETURN_IF_ERROR(Exec(s, "COMMIT").status());
  QueryResult out;
  out.command_tag = "CALL";
  return out;
}

Result<QueryResult> OrderStatusProc(Session& s,
                                    const std::vector<Datum>& args) {
  int64_t w = args[0].AsInt64();
  int64_t d = args[1].AsInt64();
  int64_t c = args[2].AsInt64();
  CITUSX_ASSIGN_OR_RETURN(
      QueryResult last_order,
      Exec(s, StrFormat("SELECT o_id, o_entry_d FROM orders WHERE o_w_id = "
                        "%lld AND o_d_id = %lld AND o_c_id = %lld "
                        "ORDER BY o_id DESC LIMIT 1",
                        static_cast<long long>(w), static_cast<long long>(d),
                        static_cast<long long>(c))));
  if (!last_order.rows.empty()) {
    int64_t o_id = last_order.rows[0][0].AsInt64();
    CITUSX_RETURN_IF_ERROR(
        Exec(s, StrFormat("SELECT ol_i_id, ol_quantity, ol_amount FROM "
                          "order_line WHERE ol_w_id = %lld AND ol_d_id = %lld "
                          "AND ol_o_id = %lld",
                          static_cast<long long>(w),
                          static_cast<long long>(d),
                          static_cast<long long>(o_id)))
            .status());
  }
  QueryResult out;
  out.command_tag = "CALL";
  return out;
}

Result<QueryResult> DeliveryProc(Session& s, const std::vector<Datum>& args,
                                 const TpccConfig& config) {
  int64_t w = args[0].AsInt64();
  CITUSX_RETURN_IF_ERROR(Exec(s, "BEGIN").status());
  auto fail = [&](const Status& st) -> Status {
    CITUSX_IGNORE_STATUS(Exec(s, "ROLLBACK"),
                         "transaction already failing; rollback best-effort");
    return st;
  };
  for (int64_t d = 1; d <= config.districts_per_warehouse; d++) {
    auto oldest = Exec(
        s, StrFormat("SELECT no_o_id FROM new_order WHERE no_w_id = %lld AND "
                     "no_d_id = %lld ORDER BY no_o_id LIMIT 1",
                     static_cast<long long>(w), static_cast<long long>(d)));
    if (!oldest.ok()) return fail(oldest.status());
    if (oldest->rows.empty()) continue;
    int64_t o_id = oldest->rows[0][0].AsInt64();
    auto del = Exec(
        s, StrFormat("DELETE FROM new_order WHERE no_w_id = %lld AND "
                     "no_d_id = %lld AND no_o_id = %lld",
                     static_cast<long long>(w), static_cast<long long>(d),
                     static_cast<long long>(o_id)));
    if (!del.ok()) return fail(del.status());
  }
  CITUSX_RETURN_IF_ERROR(Exec(s, "COMMIT").status());
  QueryResult out;
  out.command_tag = "CALL";
  return out;
}

Result<QueryResult> StockLevelProc(Session& s,
                                   const std::vector<Datum>& args) {
  int64_t w = args[0].AsInt64();
  int64_t d = args[1].AsInt64();
  // Join recent order lines with stock under a threshold.
  CITUSX_RETURN_IF_ERROR(
      Exec(s, StrFormat(
                  "SELECT count(DISTINCT s_i_id) FROM order_line JOIN stock "
                  "ON ol_w_id = s_w_id AND ol_i_id = s_i_id WHERE "
                  "ol_w_id = %lld AND ol_d_id = %lld AND s_quantity < 20",
                  static_cast<long long>(w), static_cast<long long>(d)))
          .status());
  QueryResult out;
  out.command_tag = "CALL";
  return out;
}

}  // namespace

void TpccRegisterProcedures(engine::Node* node, const TpccConfig& config) {
  node->RegisterProcedure(
      "tpcc_neworder",
      [config](Session& s, const std::vector<Datum>& args) {
        return NewOrderProc(s, args, config);
      });
  node->RegisterProcedure(
      "tpcc_payment",
      [config](Session& s, const std::vector<Datum>& args) {
        return PaymentProc(s, args, config);
      });
  node->RegisterProcedure(
      "tpcc_ostat", [](Session& s, const std::vector<Datum>& args) {
        return OrderStatusProc(s, args);
      });
  node->RegisterProcedure(
      "tpcc_delivery",
      [config](Session& s, const std::vector<Datum>& args) {
        return DeliveryProc(s, args, config);
      });
  node->RegisterProcedure(
      "tpcc_slev", [](Session& s, const std::vector<Datum>& args) {
        return StockLevelProc(s, args);
      });
}

ClientTxn TpccMix(const TpccConfig& config) {
  return [config](net::Connection& conn, int client_id, Rng& rng) -> Status {
    int64_t w = rng.Uniform(1, config.warehouses);
    int64_t d = rng.Uniform(1, config.districts_per_warehouse);
    int64_t c = rng.NURand(255, 1, config.customers_per_district, 7);
    int roll = static_cast<int>(rng.Uniform(1, 100));
    Result<engine::QueryResult> r = Status::Internal("unset");
    if (roll <= 45) {
      int64_t ol_cnt = rng.Uniform(5, 15);
      r = conn.Query(StrFormat(
          "CALL tpcc_neworder(%lld, %lld, %lld, %lld, %lld)",
          static_cast<long long>(w), static_cast<long long>(d),
          static_cast<long long>(c), static_cast<long long>(ol_cnt),
          static_cast<long long>(rng.Next() % 1000000)));
    } else if (roll <= 88) {
      // 15% of payments pay a customer of a remote warehouse: these become
      // multi-node distributed transactions.
      int64_t c_w = w;
      if (config.warehouses > 1 && rng.Chance(config.payment_remote_pct)) {
        do {
          c_w = rng.Uniform(1, config.warehouses);
        } while (c_w == w);
      }
      r = conn.Query(StrFormat(
          "CALL tpcc_payment(%lld, %lld, %lld, %lld, %lld, %.2f)",
          static_cast<long long>(w), static_cast<long long>(d),
          static_cast<long long>(c_w), static_cast<long long>(d),
          static_cast<long long>(c), 1.0 + rng.NextDouble() * 4999.0));
    } else if (roll <= 92) {
      r = conn.Query(StrFormat("CALL tpcc_ostat(%lld, %lld, %lld)",
                               static_cast<long long>(w),
                               static_cast<long long>(d),
                               static_cast<long long>(c)));
    } else if (roll <= 96) {
      r = conn.Query(StrFormat("CALL tpcc_delivery(%lld)",
                               static_cast<long long>(w)));
    } else {
      r = conn.Query(StrFormat("CALL tpcc_slev(%lld, %lld)",
                               static_cast<long long>(w),
                               static_cast<long long>(d)));
    }
    return r.status();
  };
}

Status TpccCheckConsistency(net::Connection& conn, const TpccConfig& config) {
  // For every district: d_next_o_id - 1 == max(o_id) of its orders.
  CITUSX_ASSIGN_OR_RETURN(
      engine::QueryResult next,
      conn.Query("SELECT sum(d_next_o_id) FROM district"));
  CITUSX_ASSIGN_OR_RETURN(
      engine::QueryResult orders,
      conn.Query("SELECT count(*) FROM orders"));
  int64_t total_next = next.rows[0][0].AsInt64();
  int64_t district_count =
      static_cast<int64_t>(config.warehouses) * config.districts_per_warehouse;
  int64_t expected_orders = total_next - district_count;
  if (orders.rows[0][0].AsInt64() != expected_orders) {
    return Status::Internal(StrFormat(
        "order count %lld does not match district counters %lld",
        static_cast<long long>(orders.rows[0][0].AsInt64()),
        static_cast<long long>(expected_orders)));
  }
  return Status::OK();
}

}  // namespace citusx::workload
