// TPC-H-derived data warehousing workload (paper §4.4): lineitem and orders
// distributed and co-located by order key, the smaller tables replicated as
// reference tables. Includes a dbgen-style generator and the TPC-H query
// set expressible in the engine's SQL dialect.
#ifndef CITUSX_WORKLOAD_TPCH_H_
#define CITUSX_WORKLOAD_TPCH_H_

#include <string>
#include <vector>

#include "net/cluster.h"

namespace citusx::workload {

struct TpchConfig {
  /// Scale factor as a fraction of TPC-H SF1 (SF1 = 1.5M orders).
  double scale = 0.02;
  bool use_citus = true;
  bool columnar = false;  // store lineitem/orders shards columnar

  int64_t NumOrders() const { return static_cast<int64_t>(150000 * scale); }
  int64_t NumCustomers() const { return static_cast<int64_t>(15000 * scale); }
  int64_t NumParts() const { return static_cast<int64_t>(20000 * scale); }
  int64_t NumSuppliers() const { return static_cast<int64_t>(1000 * scale); }
};

Status TpchCreateSchema(net::Connection& conn, const TpchConfig& config);

/// Generate and COPY all data.
Status TpchLoad(net::Connection& conn, const TpchConfig& config);

/// The supported query set: (name, SQL). Queries follow the TPC-H text with
/// standard parameter values, adapted to the engine dialect (Q19's common
/// join key is hoisted into the ON clause, a textbook rewrite).
std::vector<std::pair<std::string, std::string>> TpchQueries();

}  // namespace citusx::workload

#endif  // CITUSX_WORKLOAD_TPCH_H_
