#include "workload/tpch.h"

#include "common/rng.h"
#include "common/str.h"

namespace citusx::workload {

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
const char* kNations[] = {"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
                          "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
                          "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
                          "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
                          "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
                          "UNITED STATES"};
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP",
                            "TRUCK"};
const char* kShipInstruct[] = {"COLLECT COD", "DELIVER IN PERSON", "NONE",
                               "TAKE BACK RETURN"};
const char* kTypes[] = {"PROMO BRUSHED COPPER", "PROMO BURNISHED STEEL",
                        "ECONOMY ANODIZED BRASS", "STANDARD POLISHED TIN",
                        "MEDIUM PLATED NICKEL", "SMALL BRUSHED STEEL"};
const char* kContainers[] = {"SM CASE", "SM BOX", "SM PACK", "SM PKG",
                             "MED BAG", "MED BOX", "MED PKG", "MED PACK",
                             "LG CASE", "LG BOX", "LG PACK", "LG PKG"};

std::string RandomDate(Rng& rng, int year_lo, int year_hi) {
  int y = static_cast<int>(rng.Uniform(year_lo, year_hi));
  int m = static_cast<int>(rng.Uniform(1, 12));
  int d = static_cast<int>(rng.Uniform(1, 28));
  return StrFormat("%04d-%02d-%02d", y, m, d);
}

}  // namespace

Status TpchCreateSchema(net::Connection& conn, const TpchConfig& config) {
  const char* ddl[] = {
      "CREATE TABLE region (r_regionkey bigint PRIMARY KEY, r_name text)",
      "CREATE TABLE nation (n_nationkey bigint PRIMARY KEY, n_name text, "
      "n_regionkey bigint)",
      "CREATE TABLE supplier (s_suppkey bigint PRIMARY KEY, s_name text, "
      "s_nationkey bigint)",
      "CREATE TABLE customer (c_custkey bigint PRIMARY KEY, c_name text, "
      "c_nationkey bigint, c_acctbal double precision, c_mktsegment text)",
      "CREATE TABLE part (p_partkey bigint PRIMARY KEY, p_name text, "
      "p_brand text, p_type text, p_size bigint, p_container text, "
      "p_retailprice double precision)",
      "CREATE TABLE orders (o_orderkey bigint PRIMARY KEY, o_custkey bigint, "
      "o_orderstatus text, o_totalprice double precision, o_orderdate date, "
      "o_orderpriority text, o_shippriority bigint)",
      "CREATE TABLE lineitem (l_orderkey bigint, l_partkey bigint, "
      "l_suppkey bigint, l_linenumber bigint, l_quantity double precision, "
      "l_extendedprice double precision, l_discount double precision, "
      "l_tax double precision, l_returnflag text, l_linestatus text, "
      "l_shipdate date, l_commitdate date, l_receiptdate date, "
      "l_shipinstruct text, l_shipmode text)",
  };
  for (const char* stmt : ddl) {
    auto r = conn.Query(stmt);
    if (!r.ok()) return r.status();
  }
  if (config.use_citus) {
    if (config.columnar) {
      auto r = conn.Query("SET citusx.shard_access_method = 'columnar'");
      if (!r.ok()) return r.status();
    }
    const char* dist[] = {
        "SELECT create_distributed_table('orders', 'o_orderkey')",
        "SELECT create_distributed_table('lineitem', 'l_orderkey', "
        "colocate_with := 'orders')",
        "SELECT create_reference_table('region')",
        "SELECT create_reference_table('nation')",
        "SELECT create_reference_table('supplier')",
        "SELECT create_reference_table('customer')",
        "SELECT create_reference_table('part')",
    };
    for (const char* stmt : dist) {
      auto r = conn.Query(stmt);
      if (!r.ok()) return r.status();
    }
    if (config.columnar) {
      auto r = conn.Query("SET citusx.shard_access_method = ''");
      if (!r.ok()) return r.status();
    }
  }
  return Status::OK();
}

Status TpchLoad(net::Connection& conn, const TpchConfig& config) {
  Rng rng(7);
  // Dimensions.
  std::vector<std::vector<std::string>> rows;
  for (int r = 0; r < 5; r++) rows.push_back({std::to_string(r), kRegions[r]});
  CITUSX_RETURN_IF_ERROR(conn.CopyIn("region", {}, std::move(rows)).status());
  rows.clear();
  for (int n = 0; n < 25; n++) {
    rows.push_back({std::to_string(n), kNations[n],
                    std::to_string(kNationRegion[n])});
  }
  CITUSX_RETURN_IF_ERROR(conn.CopyIn("nation", {}, std::move(rows)).status());
  rows.clear();
  for (int64_t s = 1; s <= config.NumSuppliers(); s++) {
    rows.push_back({std::to_string(s), StrFormat("Supplier#%09lld",
                                                 static_cast<long long>(s)),
                    std::to_string(rng.Uniform(0, 24))});
  }
  CITUSX_RETURN_IF_ERROR(conn.CopyIn("supplier", {}, std::move(rows)).status());
  rows.clear();
  for (int64_t c = 1; c <= config.NumCustomers(); c++) {
    rows.push_back({std::to_string(c),
                    StrFormat("Customer#%09lld", static_cast<long long>(c)),
                    std::to_string(rng.Uniform(0, 24)),
                    StrFormat("%.2f", rng.NextDouble() * 9999.0),
                    kSegments[rng.Uniform(0, 4)]});
  }
  CITUSX_RETURN_IF_ERROR(conn.CopyIn("customer", {}, std::move(rows)).status());
  rows.clear();
  for (int64_t p = 1; p <= config.NumParts(); p++) {
    rows.push_back({std::to_string(p),
                    "part " + rng.AlphaString(10, 20),
                    StrFormat("Brand#%lld%lld",
                              static_cast<long long>(rng.Uniform(1, 5)),
                              static_cast<long long>(rng.Uniform(1, 5))),
                    kTypes[rng.Uniform(0, 5)],
                    std::to_string(rng.Uniform(1, 50)),
                    kContainers[rng.Uniform(0, 11)],
                    StrFormat("%.2f", 900.0 + rng.NextDouble() * 200.0)});
  }
  CITUSX_RETURN_IF_ERROR(conn.CopyIn("part", {}, std::move(rows)).status());

  // Facts, in COPY batches.
  constexpr int64_t kBatch = 4000;
  std::vector<std::vector<std::string>> orders, lines;
  auto flush = [&]() -> Status {
    if (!orders.empty()) {
      CITUSX_RETURN_IF_ERROR(
          conn.CopyIn("orders", {}, std::move(orders)).status());
      orders.clear();
    }
    if (!lines.empty()) {
      CITUSX_RETURN_IF_ERROR(
          conn.CopyIn("lineitem", {}, std::move(lines)).status());
      lines.clear();
    }
    return Status::OK();
  };
  for (int64_t o = 1; o <= config.NumOrders(); o++) {
    std::string orderdate = RandomDate(rng, 1992, 1998);
    orders.push_back({std::to_string(o),
                      std::to_string(rng.Uniform(1, config.NumCustomers())),
                      rng.Chance(0.5) ? "F" : "O",
                      StrFormat("%.2f", rng.NextDouble() * 400000.0),
                      orderdate, kPriorities[rng.Uniform(0, 4)],
                      std::to_string(rng.Uniform(0, 1))});
    int nlines = static_cast<int>(rng.Uniform(1, 7));
    for (int l = 1; l <= nlines; l++) {
      double qty = static_cast<double>(rng.Uniform(1, 50));
      double price = qty * (900.0 + rng.NextDouble() * 200.0);
      lines.push_back(
          {std::to_string(o), std::to_string(rng.Uniform(1, config.NumParts())),
           std::to_string(rng.Uniform(1, config.NumSuppliers())),
           std::to_string(l), StrFormat("%.0f", qty),
           StrFormat("%.2f", price), StrFormat("%.2f", rng.NextDouble() * 0.1),
           StrFormat("%.2f", rng.NextDouble() * 0.08),
           rng.Chance(0.25) ? "R" : (rng.Chance(0.5) ? "A" : "N"),
           rng.Chance(0.5) ? "O" : "F", RandomDate(rng, 1992, 1998),
           RandomDate(rng, 1992, 1998), RandomDate(rng, 1992, 1998),
           kShipInstruct[rng.Uniform(0, 3)], kShipModes[rng.Uniform(0, 6)]});
    }
    if (orders.size() >= static_cast<size_t>(kBatch)) {
      CITUSX_RETURN_IF_ERROR(flush());
    }
  }
  return flush();
}

std::vector<std::pair<std::string, std::string>> TpchQueries() {
  return {
      {"Q1",
       "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, "
       "sum(l_extendedprice) AS sum_base_price, "
       "sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
       "sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
       "avg(l_quantity) AS avg_qty, avg(l_extendedprice) AS avg_price, "
       "avg(l_discount) AS avg_disc, count(*) AS count_order "
       "FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' "
       "DAY GROUP BY l_returnflag, l_linestatus "
       "ORDER BY l_returnflag, l_linestatus"},
      {"Q3",
       "SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue, "
       "o_orderdate, o_shippriority FROM customer, orders, lineitem "
       "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND "
       "l_orderkey = o_orderkey AND o_orderdate < DATE '1995-03-15' AND "
       "l_shipdate > DATE '1995-03-15' "
       "GROUP BY l_orderkey, o_orderdate, o_shippriority "
       "ORDER BY revenue DESC, o_orderdate LIMIT 10"},
      {"Q5",
       "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM customer, orders, lineitem, supplier, nation, region "
       "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND "
       "l_suppkey = s_suppkey AND c_nationkey = s_nationkey AND "
       "s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND "
       "r_name = 'ASIA' AND o_orderdate >= DATE '1994-01-01' AND "
       "o_orderdate < DATE '1994-01-01' + INTERVAL '1' YEAR "
       "GROUP BY n_name ORDER BY revenue DESC"},
      {"Q6",
       "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem "
       "WHERE l_shipdate >= DATE '1994-01-01' AND "
       "l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR AND "
       "l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"},
      {"Q7",
       "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, "
       "extract(year FROM l_shipdate) AS l_year, "
       "sum(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM supplier, lineitem, orders, customer, nation n1, nation n2 "
       "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND "
       "c_custkey = o_custkey AND s_nationkey = n1.n_nationkey AND "
       "c_nationkey = n2.n_nationkey AND "
       "((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') OR "
       "(n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) AND "
       "l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' "
       "GROUP BY n1.n_name, n2.n_name, extract(year FROM l_shipdate) "
       "ORDER BY 1, 2, 3"},
      {"Q10",
       "SELECT c_custkey, c_name, "
       "sum(l_extendedprice * (1 - l_discount)) AS revenue, c_acctbal, "
       "n_name FROM customer, orders, lineitem, nation "
       "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND "
       "o_orderdate >= DATE '1993-10-01' AND "
       "o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH AND "
       "l_returnflag = 'R' AND c_nationkey = n_nationkey "
       "GROUP BY c_custkey, c_name, c_acctbal, n_name "
       "ORDER BY revenue DESC LIMIT 20"},
      {"Q12",
       "SELECT l_shipmode, "
       "sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = "
       "'2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, "
       "sum(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> "
       "'2-HIGH' THEN 1 ELSE 0 END) AS low_line_count "
       "FROM orders, lineitem WHERE o_orderkey = l_orderkey AND "
       "l_shipmode IN ('MAIL', 'SHIP') AND l_commitdate < l_receiptdate AND "
       "l_shipdate < l_commitdate AND l_receiptdate >= DATE '1994-01-01' AND "
       "l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR "
       "GROUP BY l_shipmode ORDER BY l_shipmode"},
      {"Q14",
       "SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%' THEN "
       "l_extendedprice * (1 - l_discount) ELSE 0 END) / "
       "sum(l_extendedprice * (1 - l_discount)) AS promo_revenue "
       "FROM lineitem, part WHERE l_partkey = p_partkey AND "
       "l_shipdate >= DATE '1995-09-01' AND "
       "l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH"},
      {"Q19",
       "SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM lineitem JOIN part ON p_partkey = l_partkey WHERE "
       "((p_brand = 'Brand#12' AND l_quantity >= 1 AND l_quantity <= 11 AND "
       "p_size BETWEEN 1 AND 5 AND l_shipmode IN ('AIR', 'REG AIR')) OR "
       "(p_brand = 'Brand#23' AND l_quantity >= 10 AND l_quantity <= 20 AND "
       "p_size BETWEEN 1 AND 10 AND l_shipmode IN ('AIR', 'REG AIR')) OR "
       "(p_brand = 'Brand#34' AND l_quantity >= 20 AND l_quantity <= 30 AND "
       "p_size BETWEEN 1 AND 15 AND l_shipmode IN ('AIR', 'REG AIR'))) AND "
       "l_shipinstruct = 'DELIVER IN PERSON'"},
  };
}

}  // namespace citusx::workload
