// Benchmark driver: spawns N simulated clients that run transactions
// against the cluster for a fixed (virtual) duration and reports
// throughput + latency percentiles, like the paper's benchmark drivers
// (HammerDB / YCSB / pgbench) on a separate driver node.
#ifndef CITUSX_WORKLOAD_DRIVER_H_
#define CITUSX_WORKLOAD_DRIVER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "sim/histogram.h"

namespace citusx::workload {

struct DriverOptions {
  int clients = 32;
  sim::Time warmup = 2 * sim::kSecond;
  sim::Time duration = 20 * sim::kSecond;
  /// Virtual think time between transactions (HammerDB "keying time").
  sim::Time sleep_between = 1 * sim::kMillisecond;
  /// Round-robin client connections over these node names.
  std::vector<std::string> endpoints = {"coordinator"};
};

struct DriverResult {
  int64_t transactions = 0;  // completed after warmup
  /// Transient failures an application would retry: deadlock/serialization
  /// aborts, dropped connections, statement timeouts, node-down errors.
  int64_t retryable_errors = 0;
  /// Errors that indicate a real defect (syntax, missing relation, ...).
  int64_t fatal_errors = 0;
  /// Times a client's connection broke and it reconnected with backoff.
  int64_t reconnects = 0;
  std::string last_error;
  sim::Time measured_time = 0;
  sim::Histogram latency;  // nanoseconds

  double PerSecond() const {
    return measured_time > 0 ? static_cast<double>(transactions) * 1e9 /
                                   static_cast<double>(measured_time)
                             : 0;
  }
  double PerMinute() const { return PerSecond() * 60.0; }
};

/// One client transaction: gets its connection and a per-client RNG seed;
/// returns OK / error. The driver records latency around the call.
using ClientTxn =
    std::function<Status(net::Connection& conn, int client_id, Rng& rng)>;

/// Run the workload and collect results. Must be called from outside the
/// simulation (spawns client processes and runs the sim to completion).
DriverResult RunDriver(sim::Simulation* sim, net::NodeDirectory* directory,
                       const DriverOptions& options, const ClientTxn& txn);

}  // namespace citusx::workload

#endif  // CITUSX_WORKLOAD_DRIVER_H_
