// YCSB (paper §4.3): high-performance CRUD on a 10-field usertable.
// Workload A = 50% reads / 50% updates, uniform key distribution.
#ifndef CITUSX_WORKLOAD_YCSB_H_
#define CITUSX_WORKLOAD_YCSB_H_

#include "net/cluster.h"
#include "workload/driver.h"

namespace citusx::workload {

struct YcsbConfig {
  int64_t record_count = 100000;
  int field_length = 100;
  int fields = 10;
  double read_proportion = 0.5;  // workload A
  bool zipfian = false;          // paper used uniform
  bool use_citus = true;
};

Status YcsbCreateSchema(net::Connection& conn, const YcsbConfig& config);

/// Load keys [first, last) via COPY in batches.
Status YcsbLoad(net::Connection& conn, const YcsbConfig& config, int64_t first,
                int64_t last);

/// Workload A transaction (one read or one update).
ClientTxn YcsbWorkloadA(const YcsbConfig& config);

/// Read-only / update-only variants (workloads C and a write-heavy mix).
ClientTxn YcsbWorkloadC(const YcsbConfig& config);

}  // namespace citusx::workload

#endif  // CITUSX_WORKLOAD_YCSB_H_
