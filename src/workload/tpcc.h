// HammerDB-style TPC-C-derived workload (paper §4.1): an order-processing
// multi-tenant OLTP workload where warehouses are the tenants. Tables are
// distributed and co-located by warehouse id; `item` is a reference table;
// stored procedures are delegated by warehouse id.
//
// Scaled down from TPC-C defaults (items/customers/orders per district) so a
// single simulated node's buffer pool can't hold the working set while a
// 4-worker cluster can — the memory-fit effect behind Figure 6.
#ifndef CITUSX_WORKLOAD_TPCC_H_
#define CITUSX_WORKLOAD_TPCC_H_

#include <string>
#include <vector>

#include "engine/node.h"
#include "net/cluster.h"
#include "workload/driver.h"

namespace citusx::workload {

struct TpccConfig {
  int warehouses = 50;
  int districts_per_warehouse = 10;
  int customers_per_district = 120;
  int items = 2000;
  int orders_per_district = 120;
  /// Fraction of payments hitting a remote warehouse (HammerDB default 15%;
  /// combined with new-order remote lines this yields the paper's ~7%
  /// multi-node transactions).
  double payment_remote_pct = 0.15;
  double neworder_remote_item_pct = 0.01;
  bool use_citus = true;  // distribute + delegate; false = plain local tables
};

/// Create the TPC-C schema (and distribute it when use_citus).
Status TpccCreateSchema(net::Connection& conn, const TpccConfig& config);

/// Bulk-load warehouses [first_w, last_w] through COPY.
Status TpccLoad(net::Connection& conn, const TpccConfig& config, int first_w,
                int last_w);

/// Register the five TPC-C stored procedures on `node` (all nodes must get
/// them so delegation works).
void TpccRegisterProcedures(engine::Node* node, const TpccConfig& config);

/// Register delegation metadata (after create_distributed_table).
Status TpccDistributeProcedures(net::Connection& conn);

/// The HammerDB transaction mix (new order 45%, payment 43%, order status
/// 4%, delivery 4%, stock level 4%). Returns the driver transaction.
ClientTxn TpccMix(const TpccConfig& config);

/// Only new-order transactions counted (NOPM reports new orders).
struct TpccCounters {
  int64_t new_orders = 0;
};
TpccCounters& GlobalTpccCounters();

/// Consistency check: sum(d_next_o_id - initial) == new order count etc.
/// Returns a human-readable failure or OK.
Status TpccCheckConsistency(net::Connection& conn, const TpccConfig& config);

}  // namespace citusx::workload

#endif  // CITUSX_WORKLOAD_TPCC_H_
