#include "workload/ycsb.h"

#include "common/str.h"

namespace citusx::workload {

Status YcsbCreateSchema(net::Connection& conn, const YcsbConfig& config) {
  std::string ddl = "CREATE TABLE usertable (ycsb_key bigint PRIMARY KEY";
  for (int f = 0; f < config.fields; f++) {
    ddl += StrFormat(", field%d text", f);
  }
  ddl += ")";
  CITUSX_RETURN_IF_ERROR(conn.Query(ddl).status());
  if (config.use_citus) {
    CITUSX_RETURN_IF_ERROR(
        conn.Query("SELECT create_distributed_table('usertable', 'ycsb_key')")
            .status());
  }
  return Status::OK();
}

Status YcsbLoad(net::Connection& conn, const YcsbConfig& config, int64_t first,
                int64_t last) {
  Rng rng(static_cast<uint64_t>(first) + 5);
  constexpr int64_t kBatch = 5000;
  for (int64_t base = first; base < last; base += kBatch) {
    std::vector<std::vector<std::string>> rows;
    int64_t hi = std::min(base + kBatch, last);
    for (int64_t k = base; k < hi; k++) {
      std::vector<std::string> row;
      row.push_back(std::to_string(k));
      for (int f = 0; f < config.fields; f++) {
        row.push_back(rng.AlphaString(config.field_length, config.field_length));
      }
      rows.push_back(std::move(row));
    }
    CITUSX_RETURN_IF_ERROR(
        conn.CopyIn("usertable", {}, std::move(rows)).status());
  }
  return Status::OK();
}

namespace {

ClientTxn MakeMix(const YcsbConfig& config, double read_fraction) {
  auto zipf = config.zipfian
                  ? std::make_shared<Zipf>(
                        static_cast<uint64_t>(config.record_count))
                  : nullptr;
  return [config, read_fraction, zipf](net::Connection& conn, int client_id,
                                       Rng& rng) -> Status {
    int64_t key = zipf != nullptr
                      ? static_cast<int64_t>(zipf->Next(rng))
                      : rng.Uniform(0, config.record_count - 1);
    if (rng.NextDouble() < read_fraction) {
      auto r = conn.Query(
          StrFormat("SELECT * FROM usertable WHERE ycsb_key = %lld",
                    static_cast<long long>(key)));
      return r.status();
    }
    int field = static_cast<int>(rng.Uniform(0, config.fields - 1));
    auto r = conn.Query(StrFormat(
        "UPDATE usertable SET field%d = '%s' WHERE ycsb_key = %lld", field,
        rng.AlphaString(config.field_length, config.field_length).c_str(),
        static_cast<long long>(key)));
    return r.status();
  };
}

}  // namespace

ClientTxn YcsbWorkloadA(const YcsbConfig& config) {
  return MakeMix(config, config.read_proportion);
}

ClientTxn YcsbWorkloadC(const YcsbConfig& config) {
  return MakeMix(config, 1.0);
}

}  // namespace citusx::workload
