#include "workload/driver.h"

#include <cstdio>

namespace citusx::workload {

DriverResult RunDriver(sim::Simulation* sim, net::NodeDirectory* directory,
                       const DriverOptions& options, const ClientTxn& txn) {
  DriverResult result;
  sim::Time start_measure = sim->now() + options.warmup;
  sim::Time end = start_measure + options.duration;
  for (int c = 0; c < options.clients; c++) {
    const std::string& endpoint =
        options.endpoints[static_cast<size_t>(c) % options.endpoints.size()];
    sim->Spawn("client", [=, &result, &options]() {
      Rng rng(static_cast<uint64_t>(c) * 7919 + 17);
      auto conn = directory->ConnectWithRetry(nullptr, endpoint);
      if (!conn.ok()) {
        std::fprintf(stderr, "client %d: %s\n", c,
                     conn.status().ToString().c_str());
        return;
      }
      while (sim->now() < end) {
        // Clients survive server failures: a broken connection is replaced
        // with capped backoff before the next transaction, like an
        // application-side connection pooler would.
        if (!(*conn)->usable()) {
          auto fresh = directory->ConnectWithRetry(nullptr, endpoint);
          if (!fresh.ok()) {
            if (!sim->WaitFor(100 * sim::kMillisecond)) break;
            continue;
          }
          conn = std::move(fresh);
          result.reconnects++;
        }
        sim::Time t0 = sim->now();
        Status st = txn(**conn, c, rng);
        sim::Time t1 = sim->now();
        if (t0 >= start_measure && t1 <= end) {
          if (st.ok()) {
            result.transactions++;
            result.latency.Record(t1 - t0);
          } else if (st.error_class() == ErrorClass::kRetryableTransient ||
                     st.error_class() == ErrorClass::kNodeDown) {
            // Transient: deadlock/serialization aborts, dropped connections,
            // timeouts, node-down — an application would retry these.
            result.retryable_errors++;
          } else {
            result.fatal_errors++;
            result.last_error = st.ToString();
          }
        }
        if (options.sleep_between > 0 && !sim->WaitFor(options.sleep_between)) {
          break;
        }
      }
    });
  }
  sim->Run();
  result.measured_time = options.duration;
  return result;
}

}  // namespace citusx::workload
