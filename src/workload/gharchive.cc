#include "workload/gharchive.h"

#include "common/str.h"

namespace citusx::workload {

namespace {

const char* kWords[] = {
    "fix",     "bug",      "update",  "readme",  "refactor", "test",
    "cleanup", "feature",  "merge",   "branch",  "release",  "patch",
    "docs",    "typo",     "improve", "remove",  "initial",  "commit",
    "parser",  "index",    "cache",   "query",   "database", "shard",
    "config",  "build",    "deploy",  "linter",  "format",   "rename"};

std::string CommitMessage(Rng& rng, bool mention_postgres) {
  std::string msg;
  int words = static_cast<int>(rng.Uniform(3, 9));
  for (int i = 0; i < words; i++) {
    if (i > 0) msg += " ";
    msg += kWords[rng.Uniform(0, 29)];
  }
  if (mention_postgres) {
    msg += rng.Chance(0.5) ? " postgres" : " PostgreSQL";
    msg += rng.Chance(0.3) ? " upgrade" : "";
  }
  return msg;
}

}  // namespace

Status GhCreateSchema(net::Connection& conn, const GhArchiveConfig& config) {
  CITUSX_RETURN_IF_ERROR(
      conn.Query("CREATE TABLE github_events (event_id text PRIMARY KEY, "
                 "data jsonb)")
          .status());
  if (config.use_citus) {
    CITUSX_RETURN_IF_ERROR(
        conn.Query(
                "SELECT create_distributed_table('github_events', 'event_id')")
            .status());
  }
  // The pg_trgm GIN index over commit messages (§4.2).
  CITUSX_RETURN_IF_ERROR(
      conn.Query("CREATE INDEX text_search_idx ON github_events USING gin "
                 "((jsonb_path_query_array(data, "
                 "'$.payload.commits[*].message')::text) gin_trgm_ops)")
          .status());
  return Status::OK();
}

Status GhCreateCommitsTable(net::Connection& conn,
                            const GhArchiveConfig& config) {
  CITUSX_RETURN_IF_ERROR(
      conn.Query("CREATE TABLE push_commits (event_id text, day date, "
                 "n_commits bigint)")
          .status());
  if (config.use_citus) {
    CITUSX_RETURN_IF_ERROR(
        conn.Query("SELECT create_distributed_table('push_commits', "
                   "'event_id', colocate_with := 'github_events')")
            .status());
  }
  return Status::OK();
}

std::vector<std::vector<std::string>> GhGenerateEvents(
    Rng& rng, const GhArchiveConfig& config, int64_t count, int year,
    int month, int day) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; i++) {
    std::string event_id =
        StrFormat("%04d%02d%02d%010lld", year, month, day,
                  static_cast<long long>(rng.Next() % 10000000000LL));
    int hour = static_cast<int>(rng.Uniform(0, 23));
    int minute = static_cast<int>(rng.Uniform(0, 59));
    bool is_push = rng.Chance(0.6);
    std::string json = "{";
    json += StrFormat("\"type\":\"%s\",",
                      is_push ? "PushEvent" : "WatchEvent");
    json += StrFormat("\"created_at\":\"%04d-%02d-%02dT%02d:%02d:00Z\",",
                      year, month, day, hour, minute);
    json += StrFormat("\"actor\":{\"login\":\"user%lld\"},",
                      static_cast<long long>(rng.Uniform(1, 50000)));
    json += StrFormat("\"repo\":{\"name\":\"org%lld/repo%lld\"},",
                      static_cast<long long>(rng.Uniform(1, 5000)),
                      static_cast<long long>(rng.Uniform(1, 100)));
    json += "\"payload\":{";
    if (is_push) {
      int commits = static_cast<int>(
          rng.Uniform(1, config.max_commits_per_push));
      json += StrFormat("\"size\":%d,\"commits\":[", commits);
      for (int c = 0; c < commits; c++) {
        if (c > 0) json += ",";
        json += StrFormat(
            "{\"sha\":\"%016llx\",\"message\":\"%s\"}",
            static_cast<unsigned long long>(rng.Next()),
            CommitMessage(rng, rng.Chance(config.postgres_mention_pct)).c_str());
      }
      json += "]";
    } else {
      json += "\"action\":\"started\"";
    }
    json += "}}";
    rows.push_back({std::move(event_id), std::move(json)});
  }
  return rows;
}

std::string GhDashboardQuery() {
  // Verbatim shape from §4.2.
  return "SELECT (data->>'created_at')::date, "
         "sum(jsonb_array_length(data->'payload'->'commits')) "
         "FROM github_events WHERE jsonb_path_query_array(data, "
         "'$.payload.commits[*].message')::text ILIKE '%postgres%' "
         "GROUP BY 1 ORDER BY 1 ASC";
}

std::string GhTransformQuery() {
  // Extract per-push commit counts (the §4.2 data transformation).
  return "INSERT INTO push_commits SELECT event_id, "
         "(data->>'created_at')::date, "
         "jsonb_array_length(data->'payload'->'commits') "
         "FROM github_events WHERE data->>'type' = 'PushEvent'";
}

}  // namespace citusx::workload
