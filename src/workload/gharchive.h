// Synthetic GitHub-Archive-style event stream (paper §4.2): JSON push
// events with commit messages, used by the real-time analytics
// microbenchmarks (COPY ingestion with a trigram index, dashboard ILIKE
// query, INSERT..SELECT pre-aggregation).
#ifndef CITUSX_WORKLOAD_GHARCHIVE_H_
#define CITUSX_WORKLOAD_GHARCHIVE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "net/cluster.h"

namespace citusx::workload {

struct GhArchiveConfig {
  /// Fraction of commit messages mentioning "postgres".
  double postgres_mention_pct = 0.02;
  int max_commits_per_push = 5;
  bool use_citus = true;
};

/// Create github_events (event_id text, data jsonb) and the trigram index
/// over the commit messages, exactly as in §4.2.
Status GhCreateSchema(net::Connection& conn, const GhArchiveConfig& config);

/// Rollup target for the INSERT..SELECT microbenchmark.
Status GhCreateCommitsTable(net::Connection& conn,
                            const GhArchiveConfig& config);

/// Generate `count` events for the given day as COPY rows (event_id, json).
std::vector<std::vector<std::string>> GhGenerateEvents(
    Rng& rng, const GhArchiveConfig& config, int64_t count, int year,
    int month, int day);

/// The §4.2 dashboard query: commits mentioning postgres per day.
std::string GhDashboardQuery();

/// The §4.2 INSERT..SELECT transformation: extract commits from push events.
std::string GhTransformQuery();

}  // namespace citusx::workload

#endif  // CITUSX_WORKLOAD_GHARCHIVE_H_
