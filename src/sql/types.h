// SQL type system: type ids and table schemas.
#ifndef CITUSX_SQL_TYPES_H_
#define CITUSX_SQL_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace citusx::sql {

/// Supported SQL types (a PostgreSQL subset).
enum class TypeId : uint8_t {
  kNull = 0,   // the type of a bare NULL literal
  kBool,
  kInt4,
  kInt8,
  kFloat8,
  kText,
  kDate,       // days since 2000-01-01, stored as int64
  kTimestamp,  // microseconds since 2000-01-01, stored as int64
  kJsonb,
};

/// Returns the SQL name of a type ("bigint", "text", ...).
const char* TypeName(TypeId t);

/// Parses a SQL type name; accepts common aliases (int, integer, int4,
/// bigint, int8, double precision, float8, varchar, jsonb, ...).
Result<TypeId> TypeFromName(const std::string& name);

/// True for int4/int8/float8.
inline bool IsNumeric(TypeId t) {
  return t == TypeId::kInt4 || t == TypeId::kInt8 || t == TypeId::kFloat8;
}

inline bool IsIntegral(TypeId t) {
  return t == TypeId::kInt4 || t == TypeId::kInt8;
}

/// Approximate on-disk width in bytes, used for block accounting in the
/// buffer pool simulation.
int TypeWidth(TypeId t);

/// One column of a table schema.
struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kNull;
  bool not_null = false;
  bool primary_key = false;
  std::string default_expr;  // raw SQL text of DEFAULT, empty if none
};

/// A table schema. Passive data carrier.
struct Schema {
  std::vector<ColumnDef> columns;

  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); i++) {
      if (columns[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  int num_columns() const { return static_cast<int>(columns.size()); }

  /// Sum of column widths plus per-row header, for block accounting.
  int RowWidth() const;
};

}  // namespace citusx::sql

#endif  // CITUSX_SQL_TYPES_H_
