// Datum: a single SQL value (possibly NULL) with runtime type tag.
#ifndef CITUSX_SQL_DATUM_H_
#define CITUSX_SQL_DATUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/json.h"
#include "sql/types.h"

namespace citusx::sql {

/// A runtime SQL value. Copyable; strings/JSON are shared or copied cheaply.
class Datum {
 public:
  /// SQL NULL (type kNull).
  Datum() = default;

  static Datum Null() { return Datum(); }
  static Datum Bool(bool b) {
    Datum d;
    d.type_ = TypeId::kBool;
    d.i_ = b ? 1 : 0;
    return d;
  }
  static Datum Int4(int32_t v) {
    Datum d;
    d.type_ = TypeId::kInt4;
    d.i_ = v;
    return d;
  }
  static Datum Int8(int64_t v) {
    Datum d;
    d.type_ = TypeId::kInt8;
    d.i_ = v;
    return d;
  }
  static Datum Float8(double v) {
    Datum d;
    d.type_ = TypeId::kFloat8;
    d.d_ = v;
    return d;
  }
  static Datum Text(std::string s) {
    Datum d;
    d.type_ = TypeId::kText;
    d.s_ = std::move(s);
    return d;
  }
  /// Days since 2000-01-01.
  static Datum Date(int64_t days) {
    Datum d;
    d.type_ = TypeId::kDate;
    d.i_ = days;
    return d;
  }
  /// Microseconds since 2000-01-01.
  static Datum Timestamp(int64_t micros) {
    Datum d;
    d.type_ = TypeId::kTimestamp;
    d.i_ = micros;
    return d;
  }
  static Datum Jsonb(JsonPtr j) {
    Datum d;
    d.type_ = TypeId::kJsonb;
    d.j_ = std::move(j);
    return d;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  bool bool_value() const { return i_ != 0; }
  /// Raw int64 payload (int4/int8/bool/date/timestamp).
  int64_t int_value() const { return i_; }
  double float_value() const { return d_; }
  const std::string& text_value() const { return s_; }
  const JsonPtr& json_value() const { return j_; }

  /// Numeric value as double (int types widen); 0 for non-numerics.
  double AsDouble() const {
    return type_ == TypeId::kFloat8 ? d_ : static_cast<double>(i_);
  }
  /// Numeric value as int64 (float truncates).
  int64_t AsInt64() const {
    return type_ == TypeId::kFloat8 ? static_cast<int64_t>(d_) : i_;
  }

  /// Three-way comparison with numeric cross-type coercion. NULLs sort last.
  /// Values of incomparable types order by type id (stable, for sorting).
  static int Compare(const Datum& a, const Datum& b);

  /// SQL equality (used by joins, group by). NULL != NULL here.
  static bool Equal(const Datum& a, const Datum& b) {
    if (a.is_null() || b.is_null()) return false;
    return Compare(a, b) == 0;
  }

  /// Hash for hash-partitioning / hash joins. NULL hashes to 0.
  int32_t PartitionHash() const;

  /// Key for hash tables (group by / hash join): type-stable string encoding.
  std::string GroupKey() const;

  /// Cast-to-text semantics (PostgreSQL ::text).
  std::string ToText() const;

  /// A SQL literal that re-parses to this value (used when deparsing
  /// queries sent to worker nodes).
  std::string ToSqlLiteral() const;

  /// Parse a text representation into a value of `type` (COPY / casts).
  static Result<Datum> FromText(TypeId type, const std::string& text);

  /// Cast this value to `target`. Implements the ::type operator.
  Result<Datum> CastTo(TypeId target) const;

  /// Approximate in-memory/on-disk size for block accounting.
  int64_t PhysicalSize() const;

 private:
  TypeId type_ = TypeId::kNull;
  int64_t i_ = 0;
  double d_ = 0;
  std::string s_;
  JsonPtr j_;
};

/// One tuple.
using Row = std::vector<Datum>;

// ---- date/time helpers (epoch = 2000-01-01, like PostgreSQL) ----

/// Convert y/m/d to days since 2000-01-01.
int64_t CivilToDays(int year, int month, int day);
/// Convert days since 2000-01-01 to y/m/d.
void DaysToCivil(int64_t days, int* year, int* month, int* day);
/// "YYYY-MM-DD".
std::string FormatDate(int64_t days);
/// "YYYY-MM-DD HH:MM:SS[.ffffff]".
std::string FormatTimestamp(int64_t micros);
/// Parse "YYYY-MM-DD" (extra characters after the date are ignored).
Result<int64_t> ParseDate(const std::string& s);
/// Parse "YYYY-MM-DD[ T]HH:MM:SS[.ffffff][Z]"; time part optional.
Result<int64_t> ParseTimestamp(const std::string& s);

}  // namespace citusx::sql

#endif  // CITUSX_SQL_DATUM_H_
