#include "sql/parser.h"

#include <unordered_set>

#include "common/str.h"
#include "sql/lexer.h"

namespace citusx::sql {

namespace {

bool IsAggregateName(const std::string& name) {
  static const auto* kAggs = new std::unordered_set<std::string>{
      "count", "sum", "avg", "min", "max"};
  return kAggs->count(name) > 0;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    CITUSX_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    // Optional trailing semicolon.
    if (CurIs(TokenType::kOperator, ";")) Advance();
    if (Cur().type != TokenType::kEof) {
      return Error("unexpected input after statement: '" + Cur().text + "'");
    }
    return stmt;
  }

  Result<ExprPtr> ParseSingleExpression() {
    CITUSX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Cur().type != TokenType::kEof) {
      return Status::InvalidArgument("unexpected input after expression");
    }
    return e;
  }

 private:
  // ---- token helpers ----
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t n = 1) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) pos_++;
  }
  bool CurIs(TokenType t, const std::string& text) const {
    return Cur().type == t && Cur().text == text;
  }
  bool CurIsKeyword(const std::string& kw) const {
    // Keywords match the keyword token; non-reserved words (e.g. KEY, STDIN,
    // WORK) lex as identifiers but still satisfy keyword positions, like
    // PostgreSQL's unreserved keywords.
    return (Cur().type == TokenType::kKeyword ||
            Cur().type == TokenType::kIdentifier) &&
           Cur().text == kw;
  }
  bool AcceptKeyword(const std::string& kw) {
    if (CurIsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptOp(const std::string& op) {
    if (CurIs(TokenType::kOperator, op)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(
          StrFormat("expected %s near '%s' (offset %zu)", ToUpper(kw).c_str(),
                    Cur().text.c_str(), Cur().offset));
    }
    return Status::OK();
  }
  Status ExpectOp(const std::string& op) {
    if (!AcceptOp(op)) {
      return Status::InvalidArgument(
          StrFormat("expected '%s' near '%s' (offset %zu)", op.c_str(),
                    Cur().text.c_str(), Cur().offset));
    }
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("%s (offset %zu)", msg.c_str(), Cur().offset));
  }
  Result<std::string> ExpectIdentifier() {
    // Accept non-reserved keywords as identifiers too (e.g. a column named
    // "date" would be quoted in real SQL; we are lenient for common cases).
    if (Cur().type == TokenType::kIdentifier) {
      std::string s = Cur().text;
      Advance();
      return s;
    }
    return Status::InvalidArgument(StrFormat("expected identifier near '%s'",
                                             Cur().text.c_str()));
  }
  Result<std::string> ExpectString() {
    if (Cur().type == TokenType::kString) {
      std::string s = Cur().text;
      Advance();
      return s;
    }
    return Status::InvalidArgument("expected string literal");
  }

  // ---- statements ----

  Result<Statement> ParseStatementInner() {
    if (CurIsKeyword("explain")) {
      Advance();
      bool analyze = false;
      if (CurIsKeyword("analyze")) {
        Advance();
        analyze = true;
      }
      CITUSX_ASSIGN_OR_RETURN(Statement inner, ParseStatementInner());
      if (inner.kind != Statement::Kind::kSelect &&
          inner.kind != Statement::Kind::kInsert &&
          inner.kind != Statement::Kind::kUpdate &&
          inner.kind != Statement::Kind::kDelete) {
        return Status::NotSupported("EXPLAIN supports SELECT/DML only");
      }
      inner.is_explain = true;
      inner.is_analyze = analyze;
      return inner;
    }
    Statement stmt;
    if (CurIsKeyword("select") || CurIs(TokenType::kOperator, "(")) {
      stmt.kind = Statement::Kind::kSelect;
      CITUSX_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      return stmt;
    }
    if (AcceptKeyword("insert")) return ParseInsert();
    if (AcceptKeyword("update")) return ParseUpdate();
    if (AcceptKeyword("delete")) return ParseDelete();
    if (AcceptKeyword("create")) return ParseCreate();
    if (AcceptKeyword("drop")) return ParseDrop();
    if (AcceptKeyword("truncate")) return ParseTruncate();
    if (AcceptKeyword("copy")) return ParseCopy();
    if (AcceptKeyword("call")) return ParseCall();
    if (AcceptKeyword("set")) return ParseSet();
    if (CurIsKeyword("prepare")) {
      // PREPARE TRANSACTION 'gid' is the 2PC statement; everything else is
      // a prepared statement (PREPARE name [(types)] AS <stmt>).
      if (Peek().text == "transaction") return ParseTxn();
      Advance();
      return ParsePrepare();
    }
    if (AcceptKeyword("execute")) return ParseExecute();
    if (AcceptKeyword("deallocate")) return ParseDeallocate();
    if (AcceptKeyword("discard")) {
      // DISCARD ALL: reset every piece of session state (GUCs, prepared
      // statements) — the reset statement transaction poolers run when a
      // backend is handed to a different client session.
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("all"));
      Statement discard;
      discard.kind = Statement::Kind::kDiscard;
      return discard;
    }
    if (CurIsKeyword("begin") || CurIsKeyword("commit") ||
        CurIsKeyword("rollback")) {
      return ParseTxn();
    }
    return Error("unrecognized statement start: '" + Cur().text + "'");
  }

  Result<SelectPtr> ParseSelect() {
    // Allow a parenthesized select.
    if (AcceptOp("(")) {
      CITUSX_ASSIGN_OR_RETURN(SelectPtr inner, ParseSelect());
      CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("select"));
    auto sel = std::make_shared<SelectStmt>();
    if (AcceptKeyword("distinct")) sel->distinct = true;
    // Target list.
    for (;;) {
      SelectItem item;
      if (CurIs(TokenType::kOperator, "*")) {
        Advance();
        item.expr = MakeStar();
      } else {
        CITUSX_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("as")) {
          CITUSX_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
        } else if (Cur().type == TokenType::kIdentifier) {
          item.alias = Cur().text;
          Advance();
        }
      }
      sel->targets.push_back(std::move(item));
      if (!AcceptOp(",")) break;
    }
    if (AcceptKeyword("from")) {
      for (;;) {
        CITUSX_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRef());
        sel->from.push_back(std::move(ref));
        if (!AcceptOp(",")) break;
      }
    }
    if (AcceptKeyword("where")) {
      CITUSX_ASSIGN_OR_RETURN(sel->where, ParseExpr());
    }
    if (AcceptKeyword("group")) {
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("by"));
      for (;;) {
        CITUSX_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
        sel->group_by.push_back(std::move(g));
        if (!AcceptOp(",")) break;
      }
    }
    if (AcceptKeyword("having")) {
      CITUSX_ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }
    if (AcceptKeyword("order")) {
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("by"));
      for (;;) {
        OrderByItem item;
        CITUSX_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("desc")) {
          item.desc = true;
        } else {
          AcceptKeyword("asc");
        }
        // NULLS FIRST/LAST accepted and ignored (we always sort NULLS LAST).
        if (AcceptKeyword("nulls")) {
          if (!AcceptKeyword("first")) AcceptKeyword("last");
        }
        sel->order_by.push_back(std::move(item));
        if (!AcceptOp(",")) break;
      }
    }
    if (AcceptKeyword("limit")) {
      CITUSX_ASSIGN_OR_RETURN(sel->limit, ParseExpr());
    }
    if (AcceptKeyword("offset")) {
      CITUSX_ASSIGN_OR_RETURN(sel->offset, ParseExpr());
    }
    if (AcceptKeyword("for")) {
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("update"));
      sel->for_update = true;
    }
    return sel;
  }

  Result<TableRefPtr> ParseTableRef() {
    CITUSX_ASSIGN_OR_RETURN(TableRefPtr left, ParseTableRefPrimary());
    for (;;) {
      JoinType jt;
      if (CurIsKeyword("join")) {
        Advance();
        jt = JoinType::kInner;
      } else if (CurIsKeyword("inner")) {
        Advance();
        CITUSX_RETURN_IF_ERROR(ExpectKeyword("join"));
        jt = JoinType::kInner;
      } else if (CurIsKeyword("left")) {
        Advance();
        AcceptKeyword("outer");
        CITUSX_RETURN_IF_ERROR(ExpectKeyword("join"));
        jt = JoinType::kLeft;
      } else if (CurIsKeyword("cross")) {
        Advance();
        CITUSX_RETURN_IF_ERROR(ExpectKeyword("join"));
        CITUSX_ASSIGN_OR_RETURN(TableRefPtr right, ParseTableRefPrimary());
        auto join = std::make_shared<TableRef>();
        join->kind = TableRef::Kind::kJoin;
        join->join_type = JoinType::kInner;
        join->left = std::move(left);
        join->right = std::move(right);
        join->on = MakeConst(Datum::Bool(true));
        left = std::move(join);
        continue;
      } else {
        break;
      }
      CITUSX_ASSIGN_OR_RETURN(TableRefPtr right, ParseTableRefPrimary());
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("on"));
      CITUSX_ASSIGN_OR_RETURN(ExprPtr on, ParseExpr());
      auto join = std::make_shared<TableRef>();
      join->kind = TableRef::Kind::kJoin;
      join->join_type = jt;
      join->left = std::move(left);
      join->right = std::move(right);
      join->on = std::move(on);
      left = std::move(join);
    }
    return left;
  }

  Result<TableRefPtr> ParseTableRefPrimary() {
    auto ref = std::make_shared<TableRef>();
    if (AcceptOp("(")) {
      ref->kind = TableRef::Kind::kSubquery;
      CITUSX_ASSIGN_OR_RETURN(ref->subquery, ParseSelect());
      CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
      AcceptKeyword("as");
      CITUSX_ASSIGN_OR_RETURN(ref->alias, ExpectIdentifier());
      return ref;
    }
    ref->kind = TableRef::Kind::kTable;
    CITUSX_ASSIGN_OR_RETURN(ref->name, ExpectIdentifier());
    if (AcceptKeyword("as")) {
      CITUSX_ASSIGN_OR_RETURN(ref->alias, ExpectIdentifier());
    } else if (Cur().type == TokenType::kIdentifier) {
      ref->alias = Cur().text;
      Advance();
    }
    return ref;
  }

  Result<Statement> ParseInsert() {
    Statement stmt;
    stmt.kind = Statement::Kind::kInsert;
    stmt.insert = std::make_shared<InsertStmt>();
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("into"));
    CITUSX_ASSIGN_OR_RETURN(stmt.insert->table, ExpectIdentifier());
    if (CurIs(TokenType::kOperator, "(") &&
        !(Peek().type == TokenType::kKeyword && Peek().text == "select")) {
      Advance();
      for (;;) {
        CITUSX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.insert->columns.push_back(std::move(col));
        if (!AcceptOp(",")) break;
      }
      CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
    }
    if (AcceptKeyword("values")) {
      for (;;) {
        CITUSX_RETURN_IF_ERROR(ExpectOp("("));
        std::vector<ExprPtr> row;
        for (;;) {
          CITUSX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
          if (!AcceptOp(",")) break;
        }
        CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
        stmt.insert->values.push_back(std::move(row));
        if (!AcceptOp(",")) break;
      }
    } else if (CurIsKeyword("select") || CurIs(TokenType::kOperator, "(")) {
      CITUSX_ASSIGN_OR_RETURN(stmt.insert->select, ParseSelect());
    } else {
      return Error("expected VALUES or SELECT in INSERT");
    }
    if (AcceptKeyword("on")) {
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("conflict"));
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("do"));
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("nothing"));
      stmt.insert->on_conflict_do_nothing = true;
    }
    return stmt;
  }

  Result<Statement> ParseUpdate() {
    Statement stmt;
    stmt.kind = Statement::Kind::kUpdate;
    stmt.update = std::make_shared<UpdateStmt>();
    CITUSX_ASSIGN_OR_RETURN(stmt.update->table, ExpectIdentifier());
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("set"));
    for (;;) {
      CITUSX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      CITUSX_RETURN_IF_ERROR(ExpectOp("="));
      CITUSX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.update->sets.emplace_back(std::move(col), std::move(e));
      if (!AcceptOp(",")) break;
    }
    if (AcceptKeyword("where")) {
      CITUSX_ASSIGN_OR_RETURN(stmt.update->where, ParseExpr());
    }
    return stmt;
  }

  Result<Statement> ParseDelete() {
    Statement stmt;
    stmt.kind = Statement::Kind::kDelete;
    stmt.del = std::make_shared<DeleteStmt>();
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("from"));
    CITUSX_ASSIGN_OR_RETURN(stmt.del->table, ExpectIdentifier());
    if (AcceptKeyword("where")) {
      CITUSX_ASSIGN_OR_RETURN(stmt.del->where, ParseExpr());
    }
    return stmt;
  }

  Result<Statement> ParseCreate() {
    bool unique = AcceptKeyword("unique");
    if (AcceptKeyword("table")) {
      if (unique) return Error("UNIQUE TABLE is not valid");
      return ParseCreateTable();
    }
    if (AcceptKeyword("index")) return ParseCreateIndex(unique);
    return Error("expected TABLE or INDEX after CREATE");
  }

  Result<Statement> ParseCreateTable() {
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateTable;
    stmt.create_table = std::make_shared<CreateTableStmt>();
    auto& ct = *stmt.create_table;
    if (AcceptKeyword("if")) {
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("not"));
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("exists"));
      ct.if_not_exists = true;
    }
    CITUSX_ASSIGN_OR_RETURN(ct.table, ExpectIdentifier());
    CITUSX_RETURN_IF_ERROR(ExpectOp("("));
    for (;;) {
      if (AcceptKeyword("primary")) {
        CITUSX_RETURN_IF_ERROR(ExpectKeyword("key"));
        CITUSX_RETURN_IF_ERROR(ExpectOp("("));
        for (;;) {
          CITUSX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          ct.primary_key.push_back(std::move(col));
          if (!AcceptOp(",")) break;
        }
        CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
      } else {
        ColumnDef col;
        CITUSX_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
        CITUSX_ASSIGN_OR_RETURN(col.type, ParseTypeName());
        // Column constraints, any order.
        for (;;) {
          if (AcceptKeyword("not")) {
            CITUSX_RETURN_IF_ERROR(ExpectKeyword("null"));
            col.not_null = true;
          } else if (AcceptKeyword("null")) {
            // nullable (default)
          } else if (AcceptKeyword("primary")) {
            CITUSX_RETURN_IF_ERROR(ExpectKeyword("key"));
            col.primary_key = true;
            col.not_null = true;
          } else if (AcceptKeyword("default")) {
            // Store raw expression text for later evaluation.
            size_t start = Cur().offset;
            CITUSX_RETURN_IF_ERROR(ParseExpr().status());
            size_t end = Cur().offset;
            col.default_expr = raw_ ? raw_->substr(start, end - start) : "";
          } else if (AcceptKeyword("references")) {
            // FK target: parsed and recorded as informational only.
            CITUSX_RETURN_IF_ERROR(ExpectIdentifier().status());
            if (AcceptOp("(")) {
              CITUSX_RETURN_IF_ERROR(ExpectIdentifier().status());
              CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
            }
          } else if (AcceptKeyword("unique")) {
            // informational
          } else {
            break;
          }
        }
        if (col.primary_key) ct.primary_key.push_back(col.name);
        ct.schema.columns.push_back(std::move(col));
      }
      if (!AcceptOp(",")) break;
    }
    CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
    if (AcceptKeyword("using")) {
      CITUSX_ASSIGN_OR_RETURN(ct.access_method, ExpectIdentifier());
      if (ct.access_method != "heap" && ct.access_method != "columnar") {
        return Error("unknown access method: " + ct.access_method);
      }
    }
    return stmt;
  }

  Result<Statement> ParseCreateIndex(bool unique) {
    Statement stmt;
    stmt.kind = Statement::Kind::kCreateIndex;
    stmt.create_index = std::make_shared<CreateIndexStmt>();
    auto& ci = *stmt.create_index;
    ci.unique = unique;
    if (AcceptKeyword("if")) {
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("not"));
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("exists"));
      ci.if_not_exists = true;
    }
    CITUSX_ASSIGN_OR_RETURN(ci.index, ExpectIdentifier());
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("on"));
    CITUSX_ASSIGN_OR_RETURN(ci.table, ExpectIdentifier());
    if (AcceptKeyword("using")) {
      CITUSX_ASSIGN_OR_RETURN(std::string method, ExpectIdentifier());
      if (method == "btree") {
        ci.method = IndexMethod::kBtree;
      } else if (method == "gin" || method == "gin_trgm") {
        ci.method = IndexMethod::kGinTrgm;
      } else {
        return Error("unknown index method: " + method);
      }
    }
    CITUSX_RETURN_IF_ERROR(ExpectOp("("));
    if (CurIs(TokenType::kOperator, "(") || ci.method == IndexMethod::kGinTrgm) {
      // Expression index: ((expr) [gin_trgm_ops]) or a plain expr for GIN.
      CITUSX_ASSIGN_OR_RETURN(ci.expression, ParseExpr());
      // Optional opclass name (e.g. gin_trgm_ops).
      if (Cur().type == TokenType::kIdentifier) Advance();
    } else {
      for (;;) {
        CITUSX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        ci.columns.push_back(std::move(col));
        if (!AcceptOp(",")) break;
      }
    }
    CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
    return stmt;
  }

  Result<Statement> ParseDrop() {
    Statement stmt;
    stmt.kind = Statement::Kind::kDropTable;
    stmt.drop_table = std::make_shared<DropTableStmt>();
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("table"));
    if (AcceptKeyword("if")) {
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("exists"));
      stmt.drop_table->if_exists = true;
    }
    CITUSX_ASSIGN_OR_RETURN(stmt.drop_table->table, ExpectIdentifier());
    return stmt;
  }

  Result<Statement> ParseTruncate() {
    Statement stmt;
    stmt.kind = Statement::Kind::kTruncate;
    stmt.truncate = std::make_shared<TruncateStmt>();
    AcceptKeyword("table");
    for (;;) {
      CITUSX_ASSIGN_OR_RETURN(std::string t, ExpectIdentifier());
      stmt.truncate->tables.push_back(std::move(t));
      if (!AcceptOp(",")) break;
    }
    return stmt;
  }

  Result<Statement> ParseCopy() {
    Statement stmt;
    stmt.kind = Statement::Kind::kCopy;
    stmt.copy = std::make_shared<CopyStmt>();
    CITUSX_ASSIGN_OR_RETURN(stmt.copy->table, ExpectIdentifier());
    if (AcceptOp("(")) {
      for (;;) {
        CITUSX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt.copy->columns.push_back(std::move(col));
        if (!AcceptOp(",")) break;
      }
      CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
    }
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("from"));
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("stdin"));
    return stmt;
  }

  Result<Statement> ParseCall() {
    Statement stmt;
    stmt.kind = Statement::Kind::kCall;
    stmt.call = std::make_shared<CallStmt>();
    CITUSX_ASSIGN_OR_RETURN(stmt.call->procedure, ExpectIdentifier());
    CITUSX_RETURN_IF_ERROR(ExpectOp("("));
    if (!CurIs(TokenType::kOperator, ")")) {
      for (;;) {
        CITUSX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.call->args.push_back(std::move(e));
        if (!AcceptOp(",")) break;
      }
    }
    CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
    return stmt;
  }

  Result<Statement> ParseSet() {
    Statement stmt;
    stmt.kind = Statement::Kind::kSet;
    stmt.set = std::make_shared<SetStmt>();
    AcceptKeyword("local");
    // Setting names may be dotted: citus.distributed_txid.
    CITUSX_ASSIGN_OR_RETURN(stmt.set->name, ExpectIdentifier());
    while (AcceptOp(".")) {
      CITUSX_ASSIGN_OR_RETURN(std::string part, ExpectIdentifier());
      stmt.set->name += "." + part;
    }
    if (!AcceptOp("=")) {
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("to"));
    }
    if (Cur().type == TokenType::kString ||
        Cur().type == TokenType::kIdentifier ||
        Cur().type == TokenType::kKeyword) {
      stmt.set->value = Cur().text;
      Advance();
    } else if (Cur().type == TokenType::kInteger ||
               Cur().type == TokenType::kFloat) {
      stmt.set->value = Cur().text;
      Advance();
    } else {
      return Error("expected value in SET");
    }
    return stmt;
  }

  Result<Statement> ParseTxn() {
    Statement stmt;
    stmt.kind = Statement::Kind::kTxn;
    stmt.txn = std::make_shared<TxnStmt>();
    if (AcceptKeyword("begin")) {
      AcceptKeyword("transaction");
      AcceptKeyword("work");
      stmt.txn->op = TxnOp::kBegin;
      return stmt;
    }
    if (AcceptKeyword("commit")) {
      if (AcceptKeyword("prepared")) {
        stmt.txn->op = TxnOp::kCommitPrepared;
        CITUSX_ASSIGN_OR_RETURN(stmt.txn->gid, ExpectString());
        return stmt;
      }
      AcceptKeyword("transaction");
      AcceptKeyword("work");
      stmt.txn->op = TxnOp::kCommit;
      return stmt;
    }
    if (AcceptKeyword("rollback")) {
      if (AcceptKeyword("prepared")) {
        stmt.txn->op = TxnOp::kRollbackPrepared;
        CITUSX_ASSIGN_OR_RETURN(stmt.txn->gid, ExpectString());
        return stmt;
      }
      AcceptKeyword("transaction");
      AcceptKeyword("work");
      stmt.txn->op = TxnOp::kRollback;
      return stmt;
    }
    if (AcceptKeyword("prepare")) {
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("transaction"));
      stmt.txn->op = TxnOp::kPrepare;
      CITUSX_ASSIGN_OR_RETURN(stmt.txn->gid, ExpectString());
      return stmt;
    }
    return Error("bad transaction statement");
  }

  // PREPARE name [(type, ...)] AS <select|insert|update|delete>.
  // The leading PREPARE keyword has already been consumed.
  Result<Statement> ParsePrepare() {
    Statement stmt;
    stmt.kind = Statement::Kind::kPrepare;
    stmt.prepare = std::make_shared<PrepareStmt>();
    CITUSX_ASSIGN_OR_RETURN(stmt.prepare->name, ExpectIdentifier());
    if (AcceptOp("(")) {
      for (;;) {
        CITUSX_ASSIGN_OR_RETURN(TypeId t, ParseTypeName());
        stmt.prepare->param_types.push_back(t);
        if (!AcceptOp(",")) break;
      }
      CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
    }
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("as"));
    CITUSX_ASSIGN_OR_RETURN(Statement body, ParseStatementInner());
    if (body.kind != Statement::Kind::kSelect &&
        body.kind != Statement::Kind::kInsert &&
        body.kind != Statement::Kind::kUpdate &&
        body.kind != Statement::Kind::kDelete) {
      return Status::NotSupported("PREPARE supports SELECT/DML only");
    }
    stmt.prepare->body = std::make_shared<Statement>(std::move(body));
    return stmt;
  }

  // EXECUTE name [(arg, ...)]. The EXECUTE keyword has been consumed.
  Result<Statement> ParseExecute() {
    Statement stmt;
    stmt.kind = Statement::Kind::kExecute;
    stmt.execute = std::make_shared<ExecuteStmt>();
    CITUSX_ASSIGN_OR_RETURN(stmt.execute->name, ExpectIdentifier());
    if (AcceptOp("(")) {
      if (!CurIs(TokenType::kOperator, ")")) {
        for (;;) {
          CITUSX_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          stmt.execute->args.push_back(std::move(arg));
          if (!AcceptOp(",")) break;
        }
      }
      CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
    }
    return stmt;
  }

  // DEALLOCATE [PREPARE] name | DEALLOCATE ALL.
  Result<Statement> ParseDeallocate() {
    Statement stmt;
    stmt.kind = Statement::Kind::kDeallocate;
    stmt.deallocate = std::make_shared<DeallocateStmt>();
    AcceptKeyword("prepare");
    if (AcceptKeyword("all")) return stmt;  // name stays empty
    CITUSX_ASSIGN_OR_RETURN(stmt.deallocate->name, ExpectIdentifier());
    return stmt;
  }

  Result<TypeId> ParseTypeName() {
    // Type names may be keywords (date, timestamp) or identifiers, possibly
    // multi-word (double precision, timestamp with time zone), possibly with
    // (n) length suffixes which we ignore.
    std::string name;
    if (Cur().type == TokenType::kIdentifier ||
        Cur().type == TokenType::kKeyword) {
      name = Cur().text;
      Advance();
    } else {
      return Status::InvalidArgument("expected type name");
    }
    if (name == "double" && CurIs(TokenType::kIdentifier, "precision")) {
      Advance();
      name = "double precision";
    }
    if (name == "character" && CurIs(TokenType::kIdentifier, "varying")) {
      Advance();
      name = "character varying";
    }
    if (name == "timestamp") {
      if (AcceptKeyword("with") || CurIs(TokenType::kIdentifier, "without")) {
        if (CurIs(TokenType::kIdentifier, "without")) Advance();
        // "time zone"
        if (CurIs(TokenType::kIdentifier, "time")) Advance();
        if (CurIs(TokenType::kIdentifier, "zone")) Advance();
      }
    }
    if (AcceptOp("(")) {
      while (!CurIs(TokenType::kOperator, ")") &&
             Cur().type != TokenType::kEof) {
        Advance();
      }
      CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
    }
    return TypeFromName(name);
  }

  // ---- expressions (precedence climbing) ----

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    CITUSX_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (AcceptKeyword("or")) {
      CITUSX_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    CITUSX_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (AcceptKeyword("and")) {
      CITUSX_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      CITUSX_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return MakeUnary(UnOp::kNot, std::move(child));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    CITUSX_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    for (;;) {
      BinOp op;
      if (AcceptOp("=")) {
        op = BinOp::kEq;
      } else if (AcceptOp("<>") || AcceptOp("!=")) {
        op = BinOp::kNe;
      } else if (AcceptOp("<=")) {
        op = BinOp::kLe;
      } else if (AcceptOp(">=")) {
        op = BinOp::kGe;
      } else if (AcceptOp("<")) {
        op = BinOp::kLt;
      } else if (AcceptOp(">")) {
        op = BinOp::kGt;
      } else if (CurIsKeyword("like")) {
        Advance();
        op = BinOp::kLike;
      } else if (CurIsKeyword("ilike")) {
        Advance();
        op = BinOp::kILike;
      } else if (CurIsKeyword("not") &&
                 (Peek().text == "like" || Peek().text == "ilike" ||
                  Peek().text == "in" || Peek().text == "between")) {
        Advance();
        if (AcceptKeyword("like")) {
          CITUSX_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
          left = MakeUnary(UnOp::kNot, MakeBinary(BinOp::kLike, std::move(left),
                                                  std::move(right)));
          continue;
        }
        if (AcceptKeyword("ilike")) {
          CITUSX_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
          left = MakeUnary(UnOp::kNot, MakeBinary(BinOp::kILike,
                                                  std::move(left),
                                                  std::move(right)));
          continue;
        }
        if (AcceptKeyword("in")) {
          CITUSX_ASSIGN_OR_RETURN(ExprPtr in, ParseInList(std::move(left)));
          left = MakeUnary(UnOp::kNot, std::move(in));
          continue;
        }
        // NOT BETWEEN
        CITUSX_RETURN_IF_ERROR(ExpectKeyword("between"));
        CITUSX_ASSIGN_OR_RETURN(ExprPtr between, ParseBetween(std::move(left)));
        left = MakeUnary(UnOp::kNot, std::move(between));
        continue;
      } else if (CurIsKeyword("in")) {
        Advance();
        CITUSX_ASSIGN_OR_RETURN(left, ParseInList(std::move(left)));
        continue;
      } else if (CurIsKeyword("between")) {
        Advance();
        CITUSX_ASSIGN_OR_RETURN(left, ParseBetween(std::move(left)));
        continue;
      } else if (CurIsKeyword("is")) {
        Advance();
        bool is_not = AcceptKeyword("not");
        CITUSX_RETURN_IF_ERROR(ExpectKeyword("null"));
        auto e = std::make_shared<Expr>();
        e->kind = ExprKind::kIsNull;
        e->is_not_null = is_not;
        e->args = {std::move(left)};
        left = std::move(e);
        continue;
      } else {
        break;
      }
      CITUSX_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseInList(ExprPtr needle) {
    CITUSX_RETURN_IF_ERROR(ExpectOp("("));
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kIn;
    e->args.push_back(std::move(needle));
    for (;;) {
      CITUSX_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
      e->args.push_back(std::move(item));
      if (!AcceptOp(",")) break;
    }
    CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParseBetween(ExprPtr subject) {
    CITUSX_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("and"));
    CITUSX_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    ExprPtr lo_cmp = MakeBinary(BinOp::kGe, subject->Clone(), std::move(lo));
    ExprPtr hi_cmp = MakeBinary(BinOp::kLe, std::move(subject), std::move(hi));
    return MakeBinary(BinOp::kAnd, std::move(lo_cmp), std::move(hi_cmp));
  }

  Result<ExprPtr> ParseAdditive() {
    CITUSX_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    for (;;) {
      BinOp op;
      if (AcceptOp("+")) {
        op = BinOp::kAdd;
      } else if (AcceptOp("-")) {
        op = BinOp::kSub;
      } else if (AcceptOp("||")) {
        op = BinOp::kConcat;
      } else {
        break;
      }
      // date +/- INTERVAL 'n' unit
      if (CurIsKeyword("interval") && (op == BinOp::kAdd || op == BinOp::kSub)) {
        Advance();
        CITUSX_ASSIGN_OR_RETURN(ExprPtr iv, ParseIntervalTail(op == BinOp::kSub));
        // iv is a func add_days/add_months with a placeholder first arg.
        iv->args[0] = std::move(left);
        left = std::move(iv);
        continue;
      }
      CITUSX_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  // Parses the "'n' unit" part after INTERVAL; returns add_days/add_months
  // func node with args[0] left as a placeholder.
  Result<ExprPtr> ParseIntervalTail(bool negate) {
    CITUSX_ASSIGN_OR_RETURN(std::string amount, ExpectString());
    int64_t n = std::strtoll(amount.c_str(), nullptr, 10);
    if (negate) n = -n;
    std::string unit;
    if (Cur().type == TokenType::kIdentifier) {
      unit = Cur().text;
      Advance();
    } else {
      // Support "interval '90 days'" form.
      auto parts = SplitString(amount, ' ');
      if (parts.size() == 2) unit = ToLower(parts[1]);
    }
    std::string func;
    if (unit == "day" || unit == "days") {
      func = "add_days";
    } else if (unit == "month" || unit == "months") {
      func = "add_months";
    } else if (unit == "year" || unit == "years") {
      func = "add_months";
      n *= 12;
    } else {
      return Status::NotSupported("unsupported interval unit: " + unit);
    }
    return MakeFunc(func, {nullptr, MakeConst(Datum::Int8(n))});
  }

  Result<ExprPtr> ParseMultiplicative() {
    CITUSX_ASSIGN_OR_RETURN(ExprPtr left, ParseUnaryExpr());
    for (;;) {
      BinOp op;
      if (AcceptOp("*")) {
        op = BinOp::kMul;
      } else if (AcceptOp("/")) {
        op = BinOp::kDiv;
      } else if (AcceptOp("%")) {
        op = BinOp::kMod;
      } else {
        break;
      }
      CITUSX_ASSIGN_OR_RETURN(ExprPtr right, ParseUnaryExpr());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnaryExpr() {
    if (AcceptOp("-")) {
      CITUSX_ASSIGN_OR_RETURN(ExprPtr child, ParseUnaryExpr());
      if (child->kind == ExprKind::kConst) {
        // Fold negative literals.
        const Datum& v = child->value;
        if (v.type() == TypeId::kInt8 || v.type() == TypeId::kInt4) {
          return MakeConst(Datum::Int8(-v.int_value()));
        }
        if (v.type() == TypeId::kFloat8) {
          return MakeConst(Datum::Float8(-v.float_value()));
        }
      }
      return MakeUnary(UnOp::kNeg, std::move(child));
    }
    AcceptOp("+");
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    CITUSX_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    for (;;) {
      if (AcceptOp("::")) {
        CITUSX_ASSIGN_OR_RETURN(TypeId t, ParseTypeName());
        e = MakeCast(std::move(e), t);
        continue;
      }
      if (AcceptOp("->")) {
        CITUSX_ASSIGN_OR_RETURN(ExprPtr key, ParsePrimary());
        e = MakeBinary(BinOp::kJsonGet, std::move(e), std::move(key));
        continue;
      }
      if (AcceptOp("->>")) {
        CITUSX_ASSIGN_OR_RETURN(ExprPtr key, ParsePrimary());
        e = MakeBinary(BinOp::kJsonGetText, std::move(e), std::move(key));
        continue;
      }
      break;
    }
    return e;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Cur();
    switch (t.type) {
      case TokenType::kInteger: {
        Advance();
        return MakeConst(Datum::Int8(t.int_value));
      }
      case TokenType::kFloat: {
        Advance();
        return MakeConst(Datum::Float8(t.float_value));
      }
      case TokenType::kString: {
        Advance();
        return MakeConst(Datum::Text(t.text));
      }
      case TokenType::kParam: {
        Advance();
        return MakeParam(static_cast<int>(t.int_value) - 1);
      }
      case TokenType::kOperator: {
        if (t.text == "(") {
          Advance();
          // Scalar subquery is unsupported; a parenthesized SELECT here is a
          // planner-level feature we reject with a clear message.
          if (CurIsKeyword("select")) {
            return Status::NotSupported("scalar subqueries are not supported");
          }
          CITUSX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
          return e;
        }
        if (t.text == "*") {
          Advance();
          return MakeStar();
        }
        break;
      }
      case TokenType::kKeyword: {
        if (t.text == "null") {
          Advance();
          return MakeConst(Datum::Null());
        }
        if (t.text == "true") {
          Advance();
          return MakeConst(Datum::Bool(true));
        }
        if (t.text == "false") {
          Advance();
          return MakeConst(Datum::Bool(false));
        }
        if (t.text == "date") {
          // DATE 'YYYY-MM-DD' literal.
          if (Peek().type == TokenType::kString) {
            Advance();
            CITUSX_ASSIGN_OR_RETURN(std::string s, ExpectString());
            CITUSX_ASSIGN_OR_RETURN(int64_t days, ParseDate(s));
            return MakeConst(Datum::Date(days));
          }
        }
        if (t.text == "timestamp") {
          if (Peek().type == TokenType::kString) {
            Advance();
            CITUSX_ASSIGN_OR_RETURN(std::string s, ExpectString());
            CITUSX_ASSIGN_OR_RETURN(int64_t us, ParseTimestamp(s));
            return MakeConst(Datum::Timestamp(us));
          }
        }
        if (t.text == "case") return ParseCase();
        if (t.text == "cast") {
          Advance();
          CITUSX_RETURN_IF_ERROR(ExpectOp("("));
          CITUSX_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
          CITUSX_RETURN_IF_ERROR(ExpectKeyword("as"));
          CITUSX_ASSIGN_OR_RETURN(TypeId type, ParseTypeName());
          CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
          return MakeCast(std::move(child), type);
        }
        if (t.text == "extract") {
          Advance();
          CITUSX_RETURN_IF_ERROR(ExpectOp("("));
          CITUSX_ASSIGN_OR_RETURN(std::string field, ExpectIdentifier());
          CITUSX_RETURN_IF_ERROR(ExpectKeyword("from"));
          CITUSX_ASSIGN_OR_RETURN(ExprPtr src, ParseExpr());
          CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
          return MakeFunc("extract_" + ToLower(field), {std::move(src)});
        }
        if (t.text == "count") {
          // count is a keyword so that COUNT(*) parses cleanly.
          Advance();
          CITUSX_RETURN_IF_ERROR(ExpectOp("("));
          bool distinct = AcceptKeyword("distinct");
          if (AcceptOp("*")) {
            CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
            return MakeAgg("count", {}, false, /*star=*/true);
          }
          CITUSX_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
          return MakeAgg("count", {std::move(arg)}, distinct);
        }
        if (t.text == "exists") {
          return Status::NotSupported("EXISTS subqueries are not supported");
        }
        if (t.text == "interval") {
          return Status::NotSupported(
              "standalone INTERVAL is only supported in date +/- INTERVAL");
        }
        break;
      }
      case TokenType::kIdentifier: {
        std::string name = t.text;
        Advance();
        if (CurIs(TokenType::kOperator, "(")) {
          // Function or aggregate call.
          Advance();
          bool distinct = AcceptKeyword("distinct");
          std::vector<ExprPtr> args;
          if (!CurIs(TokenType::kOperator, ")")) {
            for (;;) {
              // Named-argument syntax f(x := 1) used by Citus UDFs.
              if (Cur().type == TokenType::kIdentifier &&
                  Peek().type == TokenType::kOperator && Peek().text == ":" &&
                  Peek(2).type == TokenType::kOperator && Peek(2).text == "=") {
                // Keep the argument name as a text const marker arg pair.
                std::string arg_name = Cur().text;
                Advance();
                Advance();
                Advance();
                CITUSX_ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
                args.push_back(MakeConst(Datum::Text("__named__" + arg_name)));
                args.push_back(std::move(val));
              } else {
                CITUSX_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
                args.push_back(std::move(arg));
              }
              if (!AcceptOp(",")) break;
            }
          }
          CITUSX_RETURN_IF_ERROR(ExpectOp(")"));
          if (IsAggregateName(name)) {
            return MakeAgg(name, std::move(args), distinct);
          }
          return MakeFunc(name, std::move(args));
        }
        if (AcceptOp(".")) {
          if (CurIs(TokenType::kOperator, "*")) {
            Advance();
            auto star = MakeStar();
            star->table = name;
            return star;
          }
          CITUSX_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          return MakeColumnRef(name, col);
        }
        return MakeColumnRef("", name);
      }
      default:
        break;
    }
    return Error("unexpected token '" + t.text + "' in expression");
  }

  Result<ExprPtr> ParseCase() {
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("case"));
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kCase;
    // Simple CASE (CASE expr WHEN v ...) is rewritten to searched CASE.
    ExprPtr subject;
    if (!CurIsKeyword("when")) {
      CITUSX_ASSIGN_OR_RETURN(subject, ParseExpr());
    }
    while (AcceptKeyword("when")) {
      CITUSX_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      if (subject) {
        cond = MakeBinary(BinOp::kEq, subject->Clone(), std::move(cond));
      }
      CITUSX_RETURN_IF_ERROR(ExpectKeyword("then"));
      CITUSX_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      e->args.push_back(std::move(cond));
      e->args.push_back(std::move(then));
    }
    if (AcceptKeyword("else")) {
      CITUSX_ASSIGN_OR_RETURN(ExprPtr els, ParseExpr());
      e->args.push_back(std::move(els));
      e->case_has_else = true;
    }
    CITUSX_RETURN_IF_ERROR(ExpectKeyword("end"));
    return ExprPtr(std::move(e));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const std::string* raw_ = nullptr;

 public:
  void set_raw(const std::string* raw) { raw_ = raw; }
};

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  CITUSX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(std::move(tokens));
  p.set_raw(&sql);
  return p.ParseStatement();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  CITUSX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens));
  return p.ParseSingleExpression();
}

}  // namespace citusx::sql
