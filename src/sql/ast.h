// Abstract syntax tree for the SQL dialect (a PostgreSQL subset).
//
// The tree is produced by the parser, consumed by the local planner and by
// the Citus distributed planner, and can be rendered back to SQL text by the
// deparser (with shard-name substitution) for execution on worker nodes.
#ifndef CITUSX_SQL_AST_H_
#define CITUSX_SQL_AST_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sql/datum.h"
#include "sql/types.h"

namespace citusx::sql {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind {
  kConst,      // literal value
  kColumnRef,  // table.column or column
  kParam,      // $n
  kStar,       // * (only in COUNT(*) and SELECT *)
  kBinary,
  kUnary,
  kFunc,       // scalar function call
  kAgg,        // aggregate call
  kCase,       // CASE WHEN ... THEN ... [ELSE ...] END
  kCast,       // expr::type or CAST(expr AS type)
  kIn,         // expr IN (v1, v2, ...)
  kIsNull,     // expr IS [NOT] NULL
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kLike, kNotLike, kILike,
  kConcat,        // ||
  kJsonGet,       // -> (field or element, returns jsonb)
  kJsonGetText,   // ->> (returns text)
};

enum class UnOp { kNot, kNeg };

/// One AST expression node (PostgreSQL-style tagged node).
struct Expr {
  ExprKind kind;

  // kConst
  Datum value;

  // kColumnRef
  std::string table;   // qualifier, may be empty
  std::string column;
  int slot = -1;       // resolved input-row index (set by the binder)

  // kParam
  int param_index = 0;  // 0-based ($1 -> 0)

  // kBinary / kUnary
  BinOp bin_op = BinOp::kEq;
  UnOp un_op = UnOp::kNot;

  // kFunc / kAgg
  std::string func_name;    // lowercased
  bool agg_distinct = false;
  bool agg_star = false;    // count(*)

  // kCast
  TypeId cast_type = TypeId::kNull;

  // kCase: args = [when1, then1, when2, then2, ..., else?]
  bool case_has_else = false;

  // kIsNull
  bool is_not_null = false;  // IS NOT NULL

  // children: kBinary -> [lhs, rhs]; kUnary/kCast -> [child];
  // kIn -> [needle, item1, ...]; kFunc/kAgg -> arguments.
  std::vector<ExprPtr> args;

  ExprPtr Clone() const;
};

// ---- Convenience constructors ----

ExprPtr MakeConst(Datum d);
ExprPtr MakeColumnRef(std::string table, std::string column);
ExprPtr MakeParam(int index);
ExprPtr MakeBinary(BinOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeUnary(UnOp op, ExprPtr child);
ExprPtr MakeFunc(std::string name, std::vector<ExprPtr> args);
ExprPtr MakeAgg(std::string name, std::vector<ExprPtr> args,
                bool distinct = false, bool star = false);
ExprPtr MakeCast(ExprPtr child, TypeId type);
ExprPtr MakeStar();

/// Visit every node in an expression tree (pre-order).
void WalkExpr(const ExprPtr& e, const std::function<void(const Expr&)>& fn);

/// Mutable pre-order walk.
void WalkExprMut(ExprPtr& e, const std::function<void(Expr&)>& fn);

/// True if any node in the tree satisfies `pred`.
bool ExprContains(const ExprPtr& e, const std::function<bool(const Expr&)>& pred);

/// True if the tree contains an aggregate call.
bool ContainsAggregate(const ExprPtr& e);

// ---- FROM clause ----

struct SelectStmt;
using SelectPtr = std::shared_ptr<SelectStmt>;

enum class JoinType { kInner, kLeft };

struct TableRef;
using TableRefPtr = std::shared_ptr<TableRef>;

struct TableRef {
  enum class Kind { kTable, kSubquery, kJoin };
  Kind kind = Kind::kTable;

  // kTable
  std::string name;
  std::string alias;  // also used by kSubquery

  // kSubquery
  SelectPtr subquery;

  // kJoin
  JoinType join_type = JoinType::kInner;
  TableRefPtr left;
  TableRefPtr right;
  ExprPtr on;

  TableRefPtr Clone() const;
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // output column name; may be empty (derived)
};

struct OrderByItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> targets;
  std::vector<TableRefPtr> from;  // comma-separated items (implicit cross join)
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderByItem> order_by;
  ExprPtr limit;
  ExprPtr offset;
  bool for_update = false;

  SelectPtr Clone() const;
};

// ---- DML / DDL / utility statements ----

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;          // empty = all, in schema order
  std::vector<std::vector<ExprPtr>> values;  // VALUES rows
  SelectPtr select;                          // INSERT .. SELECT
  bool on_conflict_do_nothing = false;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> sets;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct CreateTableStmt {
  std::string table;
  Schema schema;
  std::vector<std::string> primary_key;  // composite PK column names
  bool if_not_exists = false;
  std::string access_method;  // "" = heap, "columnar" = columnar storage
};

enum class IndexMethod { kBtree, kGinTrgm };

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;  // btree key columns
  ExprPtr expression;                // expression index (gin_trgm over text)
  IndexMethod method = IndexMethod::kBtree;
  bool unique = false;
  bool if_not_exists = false;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct TruncateStmt {
  std::vector<std::string> tables;
};

struct CopyStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = all
};

enum class TxnOp {
  kBegin,
  kCommit,
  kRollback,
  kPrepare,          // PREPARE TRANSACTION 'gid'
  kCommitPrepared,   // COMMIT PREPARED 'gid'
  kRollbackPrepared  // ROLLBACK PREPARED 'gid'
};

struct TxnStmt {
  TxnOp op;
  std::string gid;  // for prepared-transaction ops
};

struct SetStmt {
  std::string name;
  std::string value;
};

/// CALL proc(args) — stored procedure invocation (§3.8 delegation).
struct CallStmt {
  std::string procedure;
  std::vector<ExprPtr> args;
};

struct Statement;

/// PREPARE name [(type, ...)] AS <select|insert|update|delete>.
struct PrepareStmt {
  std::string name;
  std::vector<TypeId> param_types;  // declared types; may be empty
  std::shared_ptr<Statement> body;
};

/// EXECUTE name [(arg, ...)].
struct ExecuteStmt {
  std::string name;
  std::vector<ExprPtr> args;
};

/// DEALLOCATE name | DEALLOCATE ALL.
struct DeallocateStmt {
  std::string name;  // empty = ALL
};

/// A parsed SQL statement.
struct Statement {
  enum class Kind {
    kSelect,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kCreateIndex,
    kDropTable,
    kTruncate,
    kCopy,
    kTxn,
    kSet,
    kCall,
    kPrepare,     // PREPARE name AS <stmt>
    kExecute,     // EXECUTE name(args)
    kDeallocate,  // DEALLOCATE name
    kDiscard,     // DISCARD ALL — reset session state (pooler reset query)
  };
  Kind kind;

  /// EXPLAIN <statement>: plan and describe instead of executing.
  bool is_explain = false;
  /// EXPLAIN ANALYZE <statement>: execute too, reporting actual timings.
  bool is_analyze = false;

  SelectPtr select;
  std::shared_ptr<InsertStmt> insert;
  std::shared_ptr<UpdateStmt> update;
  std::shared_ptr<DeleteStmt> del;
  std::shared_ptr<CreateTableStmt> create_table;
  std::shared_ptr<CreateIndexStmt> create_index;
  std::shared_ptr<DropTableStmt> drop_table;
  std::shared_ptr<TruncateStmt> truncate;
  std::shared_ptr<CopyStmt> copy;
  std::shared_ptr<TxnStmt> txn;
  std::shared_ptr<SetStmt> set;
  std::shared_ptr<CallStmt> call;
  std::shared_ptr<PrepareStmt> prepare;
  std::shared_ptr<ExecuteStmt> execute;
  std::shared_ptr<DeallocateStmt> deallocate;

  /// True for statements that modify data or schema.
  bool IsWrite() const {
    return kind == Kind::kInsert || kind == Kind::kUpdate ||
           kind == Kind::kDelete || kind == Kind::kCreateTable ||
           kind == Kind::kCreateIndex || kind == Kind::kDropTable ||
           kind == Kind::kTruncate || kind == Kind::kCopy;
  }
};

}  // namespace citusx::sql

#endif  // CITUSX_SQL_AST_H_
