// Deparser: renders an AST back to SQL text.
//
// This is how the Citus layer talks to worker nodes: a distributed plan's
// tasks are per-shard SQL strings produced by deparsing the original query
// with logical table names rewritten to shard names (e.g. orders ->
// orders_102008), exactly as described in §3.5 of the paper.
#ifndef CITUSX_SQL_DEPARSER_H_
#define CITUSX_SQL_DEPARSER_H_

#include <map>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace citusx::sql {

struct DeparseOptions {
  /// Logical-name -> physical-name rewrites applied to every table reference.
  const std::map<std::string, std::string>* table_map = nullptr;
  /// If set, $n parameters are substituted with these values as literals.
  const std::vector<Datum>* params = nullptr;
  /// Render every constant (and parameter) as '?', producing the normalized
  /// statement shape used as the citus_stat_statements key.
  bool normalize = false;
  /// Render $n parameters as "\x02n\x02" sentinel markers. Combined with a
  /// table_map that maps to "\x01", this produces the plan-cache SQL template
  /// that parameter values and the pruned shard name are spliced into on a
  /// cache hit without re-deparsing. Checked before `params`/`normalize`.
  bool param_markers = false;
};

std::string DeparseExpr(const Expr& e, const DeparseOptions& opts = {});
std::string DeparseSelect(const SelectStmt& s, const DeparseOptions& opts = {});
std::string DeparseStatement(const Statement& stmt,
                             const DeparseOptions& opts = {});

}  // namespace citusx::sql

#endif  // CITUSX_SQL_DEPARSER_H_
