#include "sql/ast.h"

namespace citusx::sql {

ExprPtr Expr::Clone() const {
  auto e = std::make_shared<Expr>(*this);
  for (auto& a : e->args) a = a->Clone();
  return e;
}

ExprPtr MakeConst(Datum d) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->value = std::move(d);
  return e;
}

ExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeParam(int index) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kParam;
  e->param_index = index;
  return e;
}

ExprPtr MakeBinary(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->args = {std::move(l), std::move(r)};
  return e;
}

ExprPtr MakeUnary(UnOp op, ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->args = {std::move(child)};
  return e;
}

ExprPtr MakeFunc(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunc;
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr MakeAgg(std::string name, std::vector<ExprPtr> args, bool distinct,
                bool star) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAgg;
  e->func_name = std::move(name);
  e->args = std::move(args);
  e->agg_distinct = distinct;
  e->agg_star = star;
  return e;
}

ExprPtr MakeCast(ExprPtr child, TypeId type) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCast;
  e->cast_type = type;
  e->args = {std::move(child)};
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

void WalkExpr(const ExprPtr& e, const std::function<void(const Expr&)>& fn) {
  if (e == nullptr) return;
  fn(*e);
  for (const auto& a : e->args) WalkExpr(a, fn);
}

void WalkExprMut(ExprPtr& e, const std::function<void(Expr&)>& fn) {
  if (e == nullptr) return;
  fn(*e);
  for (auto& a : e->args) WalkExprMut(a, fn);
}

bool ExprContains(const ExprPtr& e,
                  const std::function<bool(const Expr&)>& pred) {
  if (e == nullptr) return false;
  if (pred(*e)) return true;
  for (const auto& a : e->args) {
    if (ExprContains(a, pred)) return true;
  }
  return false;
}

bool ContainsAggregate(const ExprPtr& e) {
  return ExprContains(e, [](const Expr& x) { return x.kind == ExprKind::kAgg; });
}

TableRefPtr TableRef::Clone() const {
  auto t = std::make_shared<TableRef>(*this);
  if (subquery) t->subquery = subquery->Clone();
  if (left) t->left = left->Clone();
  if (right) t->right = right->Clone();
  if (on) t->on = on->Clone();
  return t;
}

SelectPtr SelectStmt::Clone() const {
  auto s = std::make_shared<SelectStmt>(*this);
  for (auto& t : s->targets) {
    if (t.expr) t.expr = t.expr->Clone();
  }
  for (auto& f : s->from) f = f->Clone();
  if (s->where) s->where = s->where->Clone();
  for (auto& g : s->group_by) g = g->Clone();
  if (s->having) s->having = s->having->Clone();
  for (auto& o : s->order_by) o.expr = o.expr->Clone();
  if (s->limit) s->limit = s->limit->Clone();
  if (s->offset) s->offset = s->offset->Clone();
  return s;
}

}  // namespace citusx::sql
