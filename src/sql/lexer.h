// SQL lexer.
#ifndef CITUSX_SQL_LEXER_H_
#define CITUSX_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace citusx::sql {

enum class TokenType {
  kEof,
  kIdentifier,   // unquoted (lowercased) or "quoted"
  kKeyword,      // recognized SQL keyword, lowercased in text
  kInteger,
  kFloat,
  kString,       // 'literal' with '' unescaped
  kParam,        // $n
  kOperator,     // punctuation / multi-char operators
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;   // normalized: identifiers/keywords lowercased
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;  // byte offset in input, for error messages
};

/// Tokenize a SQL string. Keywords are recognized from a fixed list and
/// lowercased; identifiers are lowercased unless double-quoted.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// True if `word` (lowercase) is a reserved SQL keyword.
bool IsKeyword(const std::string& word);

}  // namespace citusx::sql

#endif  // CITUSX_SQL_LEXER_H_
