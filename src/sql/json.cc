#include "sql/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/str.h"

namespace citusx::sql {

JsonPtr Json::MakeArray(std::vector<JsonPtr> items) {
  auto j = std::make_shared<Json>();
  j->kind_ = Kind::kArray;
  j->array_ = std::move(items);
  return j;
}

JsonPtr Json::MakeObject(std::vector<std::pair<std::string, JsonPtr>> kv) {
  auto j = std::make_shared<Json>();
  j->kind_ = Kind::kObject;
  j->object_ = std::move(kv);
  return j;
}

JsonPtr Json::GetField(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return nullptr;
}

JsonPtr Json::GetElement(int64_t index) const {
  if (kind_ != Kind::kArray) return nullptr;
  if (index < 0 || index >= static_cast<int64_t>(array_.size())) return nullptr;
  return array_[static_cast<size_t>(index)];
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void Serialize(const Json& j, std::string* out) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      *out += "null";
      break;
    case Json::Kind::kBool:
      *out += j.bool_value() ? "true" : "false";
      break;
    case Json::Kind::kNumber: {
      double n = j.number_value();
      if (n == std::floor(n) && std::abs(n) < 1e15) {
        *out += StrFormat("%lld", static_cast<long long>(n));
      } else {
        *out += StrFormat("%.17g", n);
      }
      break;
    }
    case Json::Kind::kString:
      AppendEscaped(j.string_value(), out);
      break;
    case Json::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& item : j.array_items()) {
        if (!first) out->push_back(',');
        first = false;
        Serialize(*item, out);
      }
      out->push_back(']');
      break;
    }
    case Json::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : j.object_items()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(k, out);
        out->push_back(':');
        Serialize(*v, out);
      }
      out->push_back('}');
      break;
    }
  }
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Result<JsonPtr> Parse() {
    SkipWs();
    CITUSX_ASSIGN_OR_RETURN(JsonPtr v, ParseValue());
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument("trailing characters in JSON");
    }
    return v;
  }

 private:
  Result<JsonPtr> ParseValue() {
    if (pos_ >= s_.size()) return Status::InvalidArgument("unexpected end of JSON");
    char c = s_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        CITUSX_ASSIGN_OR_RETURN(std::string str, ParseString());
        return Json::MakeString(std::move(str));
      }
      case 't':
        if (s_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return Json::MakeBool(true);
        }
        break;
      case 'f':
        if (s_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return Json::MakeBool(false);
        }
        break;
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return Json::MakeNull();
        }
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    }
    return Status::InvalidArgument(StrFormat("bad JSON at offset %zu", pos_));
  }

  Result<JsonPtr> ParseObject() {
    pos_++;  // '{'
    std::vector<std::pair<std::string, JsonPtr>> kv;
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      pos_++;
      return Json::MakeObject(std::move(kv));
    }
    for (;;) {
      SkipWs();
      CITUSX_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return Status::InvalidArgument("expected ':' in JSON object");
      }
      pos_++;
      SkipWs();
      CITUSX_ASSIGN_OR_RETURN(JsonPtr v, ParseValue());
      kv.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        pos_++;
        return Json::MakeObject(std::move(kv));
      }
      return Status::InvalidArgument("expected ',' or '}' in JSON object");
    }
  }

  Result<JsonPtr> ParseArray() {
    pos_++;  // '['
    std::vector<JsonPtr> items;
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      pos_++;
      return Json::MakeArray(std::move(items));
    }
    for (;;) {
      SkipWs();
      CITUSX_ASSIGN_OR_RETURN(JsonPtr v, ParseValue());
      items.push_back(std::move(v));
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        pos_++;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        pos_++;
        return Json::MakeArray(std::move(items));
      }
      return Status::InvalidArgument("expected ',' or ']' in JSON array");
    }
  }

  Result<std::string> ParseString() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return Status::InvalidArgument("expected string in JSON");
    }
    pos_++;
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        switch (e) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'u': {
            // Keep it simple: decode BMP escapes to '?' placeholders unless
            // ASCII.
            if (pos_ + 4 <= s_.size()) {
              int code = 0;
              for (int i = 0; i < 4; i++) {
                char h = s_[pos_ + static_cast<size_t>(i)];
                code = code * 16 +
                       (h >= '0' && h <= '9'   ? h - '0'
                        : h >= 'a' && h <= 'f' ? h - 'a' + 10
                        : h >= 'A' && h <= 'F' ? h - 'A' + 10
                                               : 0);
              }
              pos_ += 4;
              if (code < 128) {
                out.push_back(static_cast<char>(code));
              } else {
                out.push_back('?');
              }
            }
            break;
          }
          default:
            out.push_back(e);
        }
      } else {
        out.push_back(c);
      }
    }
    return Status::InvalidArgument("unterminated JSON string");
  }

  Result<JsonPtr> ParseNumber() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') pos_++;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      pos_++;
    }
    double v = 0;
    try {
      v = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return Status::InvalidArgument("bad JSON number");
    }
    return Json::MakeNumber(v);
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      pos_++;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::ToString() const {
  std::string out;
  Serialize(*this, &out);
  return out;
}

int64_t Json::SerializedSize() const {
  switch (kind_) {
    case Kind::kNull:
    case Kind::kBool:
      return 5;
    case Kind::kNumber:
      return 8;
    case Kind::kString:
      return static_cast<int64_t>(string_.size()) + 2;
    case Kind::kArray: {
      int64_t n = 2;
      for (const auto& i : array_) n += i->SerializedSize() + 1;
      return n;
    }
    case Kind::kObject: {
      int64_t n = 2;
      for (const auto& [k, v] : object_) {
        n += static_cast<int64_t>(k.size()) + 4 + v->SerializedSize();
      }
      return n;
    }
  }
  return 0;
}

Result<JsonPtr> Json::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

std::vector<JsonPtr> Json::PathQuery(const JsonPtr& root,
                                     const std::string& path) {
  std::vector<JsonPtr> current;
  if (root == nullptr) return current;
  current.push_back(root);
  size_t pos = 0;
  if (pos < path.size() && path[pos] == '$') pos++;
  while (pos < path.size()) {
    std::vector<JsonPtr> next;
    if (path[pos] == '.') {
      pos++;
      size_t start = pos;
      while (pos < path.size() && path[pos] != '.' && path[pos] != '[') pos++;
      std::string field = path.substr(start, pos - start);
      for (const auto& j : current) {
        JsonPtr f = j->GetField(field);
        if (f != nullptr) next.push_back(f);
      }
    } else if (path[pos] == '[') {
      pos++;
      if (pos < path.size() && path[pos] == '*') {
        pos++;
        for (const auto& j : current) {
          if (j->kind() == Kind::kArray) {
            for (const auto& item : j->array_items()) next.push_back(item);
          }
        }
      } else {
        size_t start = pos;
        while (pos < path.size() && path[pos] != ']') pos++;
        int64_t idx = 0;
        try {
          idx = std::stoll(path.substr(start, pos - start));
        } catch (...) {
          return {};
        }
        for (const auto& j : current) {
          JsonPtr e = j->GetElement(idx);
          if (e != nullptr) next.push_back(e);
        }
      }
      if (pos < path.size() && path[pos] == ']') pos++;
    } else {
      return {};  // malformed path
    }
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

}  // namespace citusx::sql
