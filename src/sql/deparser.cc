#include "sql/deparser.h"

#include "common/str.h"

namespace citusx::sql {

namespace {

std::string MapTable(const std::string& name, const DeparseOptions& opts) {
  if (opts.table_map != nullptr) {
    auto it = opts.table_map->find(name);
    if (it != opts.table_map->end()) return it->second;
  }
  return name;
}

const char* BinOpText(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "%";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
    case BinOp::kLike:
      return "LIKE";
    case BinOp::kNotLike:
      return "NOT LIKE";
    case BinOp::kILike:
      return "ILIKE";
    case BinOp::kConcat:
      return "||";
    case BinOp::kJsonGet:
      return "->";
    case BinOp::kJsonGetText:
      return "->>";
  }
  return "?";
}

std::string DeparseTableRef(const TableRef& ref, const DeparseOptions& opts) {
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      std::string out = MapTable(ref.name, opts);
      if (!ref.alias.empty() && ref.alias != ref.name) {
        out += " AS " + ref.alias;
      } else if (opts.table_map != nullptr && ref.alias.empty() &&
                 out != ref.name) {
        // Keep the logical name visible as an alias so that qualified column
        // references (orders.o_orderkey) still resolve on the worker.
        out += " AS " + ref.name;
      }
      return out;
    }
    case TableRef::Kind::kSubquery:
      return "(" + DeparseSelect(*ref.subquery, opts) + ") AS " + ref.alias;
    case TableRef::Kind::kJoin: {
      std::string out = DeparseTableRef(*ref.left, opts);
      out += ref.join_type == JoinType::kLeft ? " LEFT JOIN " : " JOIN ";
      out += DeparseTableRef(*ref.right, opts);
      out += " ON " + DeparseExpr(*ref.on, opts);
      return out;
    }
  }
  return "";
}

}  // namespace

std::string DeparseExpr(const Expr& e, const DeparseOptions& opts) {
  switch (e.kind) {
    case ExprKind::kConst:
      if (opts.normalize) return "?";
      return e.value.ToSqlLiteral();
    case ExprKind::kColumnRef:
      if (!e.table.empty()) return e.table + "." + e.column;
      return e.column;
    case ExprKind::kParam: {
      if (opts.param_markers) return StrFormat("\x02%d\x02", e.param_index);
      if (opts.normalize) return "?";
      if (opts.params != nullptr &&
          e.param_index < static_cast<int>(opts.params->size())) {
        return (*opts.params)[static_cast<size_t>(e.param_index)]
            .ToSqlLiteral();
      }
      return StrFormat("$%d", e.param_index + 1);
    }
    case ExprKind::kStar:
      return e.table.empty() ? "*" : e.table + ".*";
    case ExprKind::kBinary:
      return "(" + DeparseExpr(*e.args[0], opts) + " " + BinOpText(e.bin_op) +
             " " + DeparseExpr(*e.args[1], opts) + ")";
    case ExprKind::kUnary:
      if (e.un_op == UnOp::kNot) {
        return "(NOT " + DeparseExpr(*e.args[0], opts) + ")";
      }
      return "(-" + DeparseExpr(*e.args[0], opts) + ")";
    case ExprKind::kFunc: {
      // extract_year(x) round-trips as a plain function call; the parser's
      // function path accepts it, so no need to reconstruct EXTRACT syntax.
      std::string out = e.func_name + "(";
      for (size_t i = 0; i < e.args.size(); i++) {
        if (i > 0) out += ", ";
        out += e.args[i] ? DeparseExpr(*e.args[i], opts) : "NULL";
      }
      return out + ")";
    }
    case ExprKind::kAgg: {
      std::string out = e.func_name + "(";
      if (e.agg_distinct) out += "DISTINCT ";
      if (e.agg_star) {
        out += "*";
      } else {
        for (size_t i = 0; i < e.args.size(); i++) {
          if (i > 0) out += ", ";
          out += DeparseExpr(*e.args[i], opts);
        }
      }
      return out + ")";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t n = e.args.size();
      size_t pairs = e.case_has_else ? (n - 1) / 2 : n / 2;
      for (size_t i = 0; i < pairs; i++) {
        out += " WHEN " + DeparseExpr(*e.args[2 * i], opts);
        out += " THEN " + DeparseExpr(*e.args[2 * i + 1], opts);
      }
      if (e.case_has_else) out += " ELSE " + DeparseExpr(*e.args[n - 1], opts);
      return out + " END";
    }
    case ExprKind::kCast: {
      std::string type_name = TypeName(e.cast_type);
      return "CAST(" + DeparseExpr(*e.args[0], opts) + " AS " + type_name +
             ")";
    }
    case ExprKind::kIn: {
      std::string out = DeparseExpr(*e.args[0], opts) + " IN (";
      for (size_t i = 1; i < e.args.size(); i++) {
        if (i > 1) out += ", ";
        out += DeparseExpr(*e.args[i], opts);
      }
      return "(" + out + "))";
    }
    case ExprKind::kIsNull:
      return "(" + DeparseExpr(*e.args[0], opts) +
             (e.is_not_null ? " IS NOT NULL)" : " IS NULL)");
  }
  return "";
}

std::string DeparseSelect(const SelectStmt& s, const DeparseOptions& opts) {
  std::string out = "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < s.targets.size(); i++) {
    if (i > 0) out += ", ";
    out += DeparseExpr(*s.targets[i].expr, opts);
    if (!s.targets[i].alias.empty()) out += " AS " + s.targets[i].alias;
  }
  if (!s.from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < s.from.size(); i++) {
      if (i > 0) out += ", ";
      out += DeparseTableRef(*s.from[i], opts);
    }
  }
  if (s.where) out += " WHERE " + DeparseExpr(*s.where, opts);
  if (!s.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < s.group_by.size(); i++) {
      if (i > 0) out += ", ";
      out += DeparseExpr(*s.group_by[i], opts);
    }
  }
  if (s.having) out += " HAVING " + DeparseExpr(*s.having, opts);
  if (!s.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); i++) {
      if (i > 0) out += ", ";
      out += DeparseExpr(*s.order_by[i].expr, opts);
      if (s.order_by[i].desc) out += " DESC";
    }
  }
  if (s.limit) out += " LIMIT " + DeparseExpr(*s.limit, opts);
  if (s.offset) out += " OFFSET " + DeparseExpr(*s.offset, opts);
  if (s.for_update) out += " FOR UPDATE";
  return out;
}

std::string DeparseStatement(const Statement& stmt,
                             const DeparseOptions& opts) {
  if (stmt.is_explain) {
    Statement inner = stmt;
    inner.is_explain = false;
    inner.is_analyze = false;
    return std::string("EXPLAIN ") + (stmt.is_analyze ? "ANALYZE " : "") +
           DeparseStatement(inner, opts);
  }
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return DeparseSelect(*stmt.select, opts);
    case Statement::Kind::kInsert: {
      const auto& ins = *stmt.insert;
      std::string out = "INSERT INTO " + MapTable(ins.table, opts);
      if (!ins.columns.empty()) {
        out += " (" + JoinStrings(ins.columns, ", ") + ")";
      }
      if (ins.select) {
        out += " " + DeparseSelect(*ins.select, opts);
      } else {
        out += " VALUES ";
        for (size_t r = 0; r < ins.values.size(); r++) {
          if (r > 0) out += ", ";
          out += "(";
          for (size_t i = 0; i < ins.values[r].size(); i++) {
            if (i > 0) out += ", ";
            out += DeparseExpr(*ins.values[r][i], opts);
          }
          out += ")";
        }
      }
      if (ins.on_conflict_do_nothing) out += " ON CONFLICT DO NOTHING";
      return out;
    }
    case Statement::Kind::kUpdate: {
      const auto& up = *stmt.update;
      std::string out = "UPDATE " + MapTable(up.table, opts) + " SET ";
      for (size_t i = 0; i < up.sets.size(); i++) {
        if (i > 0) out += ", ";
        out += up.sets[i].first + " = " + DeparseExpr(*up.sets[i].second, opts);
      }
      if (up.where) out += " WHERE " + DeparseExpr(*up.where, opts);
      return out;
    }
    case Statement::Kind::kDelete: {
      const auto& del = *stmt.del;
      std::string out = "DELETE FROM " + MapTable(del.table, opts);
      if (del.where) out += " WHERE " + DeparseExpr(*del.where, opts);
      return out;
    }
    case Statement::Kind::kCreateTable: {
      const auto& ct = *stmt.create_table;
      std::string out = "CREATE TABLE ";
      if (ct.if_not_exists) out += "IF NOT EXISTS ";
      out += MapTable(ct.table, opts) + " (";
      for (size_t i = 0; i < ct.schema.columns.size(); i++) {
        const auto& c = ct.schema.columns[i];
        if (i > 0) out += ", ";
        out += c.name + " " + TypeName(c.type);
        if (c.not_null && !c.primary_key) out += " NOT NULL";
      }
      if (!ct.primary_key.empty()) {
        out += ", PRIMARY KEY (" + JoinStrings(ct.primary_key, ", ") + ")";
      }
      out += ")";
      if (!ct.access_method.empty() && ct.access_method != "heap") {
        out += " USING " + ct.access_method;
      }
      return out;
    }
    case Statement::Kind::kCreateIndex: {
      const auto& ci = *stmt.create_index;
      std::string out = "CREATE ";
      if (ci.unique) out += "UNIQUE ";
      out += "INDEX ";
      if (ci.if_not_exists) out += "IF NOT EXISTS ";
      // Index names must be rewritten per shard too (same map).
      out += MapTable(ci.index, opts) + " ON " + MapTable(ci.table, opts);
      if (ci.method == IndexMethod::kGinTrgm) out += " USING gin_trgm";
      out += " (";
      if (ci.expression) {
        out += DeparseExpr(*ci.expression, opts);
      } else {
        out += JoinStrings(ci.columns, ", ");
      }
      return out + ")";
    }
    case Statement::Kind::kDropTable: {
      std::string out = "DROP TABLE ";
      if (stmt.drop_table->if_exists) out += "IF EXISTS ";
      return out + MapTable(stmt.drop_table->table, opts);
    }
    case Statement::Kind::kTruncate: {
      std::vector<std::string> names;
      for (const auto& t : stmt.truncate->tables) {
        names.push_back(MapTable(t, opts));
      }
      return "TRUNCATE " + JoinStrings(names, ", ");
    }
    case Statement::Kind::kCopy: {
      std::string out = "COPY " + MapTable(stmt.copy->table, opts);
      if (!stmt.copy->columns.empty()) {
        out += " (" + JoinStrings(stmt.copy->columns, ", ") + ")";
      }
      return out + " FROM STDIN";
    }
    case Statement::Kind::kTxn: {
      switch (stmt.txn->op) {
        case TxnOp::kBegin:
          return "BEGIN";
        case TxnOp::kCommit:
          return "COMMIT";
        case TxnOp::kRollback:
          return "ROLLBACK";
        case TxnOp::kPrepare:
          return "PREPARE TRANSACTION " + QuoteSqlLiteral(stmt.txn->gid);
        case TxnOp::kCommitPrepared:
          return "COMMIT PREPARED " + QuoteSqlLiteral(stmt.txn->gid);
        case TxnOp::kRollbackPrepared:
          return "ROLLBACK PREPARED " + QuoteSqlLiteral(stmt.txn->gid);
      }
      return "";
    }
    case Statement::Kind::kSet:
      return "SET " + stmt.set->name + " = " +
             QuoteSqlLiteral(stmt.set->value);
    case Statement::Kind::kCall: {
      std::string out = "CALL " + stmt.call->procedure + "(";
      for (size_t i = 0; i < stmt.call->args.size(); i++) {
        if (i > 0) out += ", ";
        out += DeparseExpr(*stmt.call->args[i], opts);
      }
      return out + ")";
    }
    case Statement::Kind::kPrepare: {
      const auto& p = *stmt.prepare;
      std::string out = "PREPARE " + p.name;
      if (!p.param_types.empty()) {
        out += " (";
        for (size_t i = 0; i < p.param_types.size(); i++) {
          if (i > 0) out += ", ";
          out += TypeName(p.param_types[i]);
        }
        out += ")";
      }
      return out + " AS " + DeparseStatement(*p.body, opts);
    }
    case Statement::Kind::kExecute: {
      std::string out = "EXECUTE " + stmt.execute->name;
      if (!stmt.execute->args.empty()) {
        out += " (";
        for (size_t i = 0; i < stmt.execute->args.size(); i++) {
          if (i > 0) out += ", ";
          out += DeparseExpr(*stmt.execute->args[i], opts);
        }
        out += ")";
      }
      return out;
    }
    case Statement::Kind::kDeallocate:
      return stmt.deallocate->name.empty()
                 ? "DEALLOCATE ALL"
                 : "DEALLOCATE " + stmt.deallocate->name;
    case Statement::Kind::kDiscard:
      return "DISCARD ALL";
  }
  return "";
}

}  // namespace citusx::sql
