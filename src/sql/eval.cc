#include "sql/eval.h"

#include <cmath>

#include "common/hash.h"
#include "common/str.h"

namespace citusx::sql {

namespace {

Result<Datum> EvalNumeric(BinOp op, const Datum& l, const Datum& r) {
  // Date/timestamp arithmetic.
  if (l.type() == TypeId::kDate && IsIntegral(r.type())) {
    if (op == BinOp::kAdd) return Datum::Date(l.int_value() + r.int_value());
    if (op == BinOp::kSub) return Datum::Date(l.int_value() - r.int_value());
  }
  if (l.type() == TypeId::kDate && r.type() == TypeId::kDate &&
      op == BinOp::kSub) {
    return Datum::Int8(l.int_value() - r.int_value());
  }
  if (!IsNumeric(l.type()) || !IsNumeric(r.type())) {
    return Status::InvalidArgument(
        StrFormat("cannot apply arithmetic to %s and %s", TypeName(l.type()),
                  TypeName(r.type())));
  }
  if (l.type() == TypeId::kFloat8 || r.type() == TypeId::kFloat8 ||
      (op == BinOp::kDiv && false)) {
    double a = l.AsDouble(), b = r.AsDouble();
    switch (op) {
      case BinOp::kAdd:
        return Datum::Float8(a + b);
      case BinOp::kSub:
        return Datum::Float8(a - b);
      case BinOp::kMul:
        return Datum::Float8(a * b);
      case BinOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Datum::Float8(a / b);
      case BinOp::kMod:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Datum::Float8(std::fmod(a, b));
      default:
        break;
    }
  }
  int64_t a = l.AsInt64(), b = r.AsInt64();
  switch (op) {
    case BinOp::kAdd:
      return Datum::Int8(a + b);
    case BinOp::kSub:
      return Datum::Int8(a - b);
    case BinOp::kMul:
      return Datum::Int8(a * b);
    case BinOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Datum::Int8(a / b);
    case BinOp::kMod:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Datum::Int8(a % b);
    default:
      break;
  }
  return Status::Internal("bad numeric op");
}

Result<Datum> EvalJsonGet(const Datum& l, const Datum& r, bool as_text) {
  if (l.type() != TypeId::kJsonb) {
    return Status::InvalidArgument("-> requires jsonb left operand");
  }
  const JsonPtr& j = l.json_value();
  if (j == nullptr) return Datum::Null();
  JsonPtr out;
  if (r.type() == TypeId::kText) {
    out = j->GetField(r.text_value());
  } else if (IsIntegral(r.type())) {
    out = j->GetElement(r.int_value());
  } else {
    return Status::InvalidArgument("-> requires text or int key");
  }
  if (out == nullptr || out->is_null()) return Datum::Null();
  if (!as_text) return Datum::Jsonb(out);
  if (out->kind() == Json::Kind::kString) return Datum::Text(out->string_value());
  return Datum::Text(out->ToString());
}

Result<Datum> CallFunction(const std::string& name,
                           const std::vector<Datum>& args,
                           const EvalContext& ctx) {
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(
          StrFormat("%s expects %zu arguments", name.c_str(), n));
    }
    return Status::OK();
  };
  if (name == "lower") {
    CITUSX_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Datum::Null();
    return Datum::Text(ToLower(args[0].ToText()));
  }
  if (name == "upper") {
    CITUSX_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Datum::Null();
    return Datum::Text(ToUpper(args[0].ToText()));
  }
  if (name == "length" || name == "char_length") {
    CITUSX_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Datum::Null();
    return Datum::Int8(static_cast<int64_t>(args[0].ToText().size()));
  }
  if (name == "abs") {
    CITUSX_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Datum::Null();
    if (args[0].type() == TypeId::kFloat8) {
      return Datum::Float8(std::abs(args[0].float_value()));
    }
    return Datum::Int8(std::abs(args[0].int_value()));
  }
  if (name == "floor" || name == "ceil" || name == "round" || name == "sqrt") {
    CITUSX_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Datum::Null();
    double v = args[0].AsDouble();
    if (name == "floor") return Datum::Float8(std::floor(v));
    if (name == "ceil") return Datum::Float8(std::ceil(v));
    if (name == "round") return Datum::Float8(std::round(v));
    return Datum::Float8(std::sqrt(v));
  }
  if (name == "power") {
    CITUSX_RETURN_IF_ERROR(need(2));
    return Datum::Float8(std::pow(args[0].AsDouble(), args[1].AsDouble()));
  }
  if (name == "coalesce") {
    for (const auto& a : args) {
      if (!a.is_null()) return a;
    }
    return Datum::Null();
  }
  if (name == "greatest" || name == "least") {
    Datum best;
    for (const auto& a : args) {
      if (a.is_null()) continue;
      if (best.is_null()) {
        best = a;
        continue;
      }
      int c = Datum::Compare(a, best);
      if ((name == "greatest" && c > 0) || (name == "least" && c < 0)) best = a;
    }
    return best;
  }
  if (name == "md5") {
    CITUSX_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Datum::Null();
    // Not cryptographic: a 128-bit-looking hex digest from two 64-bit mixes.
    std::string in = args[0].ToText();
    uint64_t h1 = Mix64(static_cast<uint64_t>(HashBytes(in)) * 0x9e3779b9ULL);
    uint64_t h2 = Mix64(h1 ^ 0xabcdef0123456789ULL);
    return Datum::Text(StrFormat("%016llx%016llx",
                                 static_cast<unsigned long long>(h1),
                                 static_cast<unsigned long long>(h2)));
  }
  if (name == "random") {
    CITUSX_RETURN_IF_ERROR(need(0));
    if (ctx.rng == nullptr) return Datum::Float8(0.5);
    return Datum::Float8(ctx.rng->NextDouble());
  }
  if (name == "substring" || name == "substr") {
    if (args.size() < 2 || args.size() > 3) {
      return Status::InvalidArgument("substring expects 2 or 3 arguments");
    }
    if (args[0].is_null()) return Datum::Null();
    std::string s = args[0].ToText();
    int64_t start = args[1].AsInt64() - 1;  // SQL is 1-based
    if (start < 0) start = 0;
    if (start >= static_cast<int64_t>(s.size())) return Datum::Text("");
    size_t len = args.size() == 3
                     ? static_cast<size_t>(std::max<int64_t>(0, args[2].AsInt64()))
                     : std::string::npos;
    return Datum::Text(s.substr(static_cast<size_t>(start), len));
  }
  if (name == "strpos" || name == "position") {
    CITUSX_RETURN_IF_ERROR(need(2));
    std::string s = args[0].ToText();
    size_t p = s.find(args[1].ToText());
    return Datum::Int8(p == std::string::npos ? 0
                                              : static_cast<int64_t>(p) + 1);
  }
  if (name == "concat") {
    std::string out;
    for (const auto& a : args) {
      if (!a.is_null()) out += a.ToText();
    }
    return Datum::Text(out);
  }
  if (name == "add_days") {
    CITUSX_RETURN_IF_ERROR(need(2));
    if (args[0].is_null()) return Datum::Null();
    if (args[0].type() == TypeId::kTimestamp) {
      return Datum::Timestamp(args[0].int_value() +
                              args[1].AsInt64() * 86400000000LL);
    }
    return Datum::Date(args[0].AsInt64() + args[1].AsInt64());
  }
  if (name == "add_months") {
    CITUSX_RETURN_IF_ERROR(need(2));
    if (args[0].is_null()) return Datum::Null();
    CITUSX_ASSIGN_OR_RETURN(Datum d, args[0].CastTo(TypeId::kDate));
    int y, m, day;
    DaysToCivil(d.int_value(), &y, &m, &day);
    int64_t months = (y * 12 + (m - 1)) + args[1].AsInt64();
    y = static_cast<int>(months / 12);
    m = static_cast<int>(months % 12) + 1;
    static const int kDim[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
    int max_day = kDim[m - 1];
    if (m == 2 && ((y % 4 == 0 && y % 100 != 0) || y % 400 == 0)) max_day = 29;
    if (day > max_day) day = max_day;
    return Datum::Date(CivilToDays(y, m, day));
  }
  if (name == "extract_year" || name == "extract_month" ||
      name == "extract_day") {
    CITUSX_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Datum::Null();
    CITUSX_ASSIGN_OR_RETURN(Datum d, args[0].CastTo(TypeId::kDate));
    int y, m, day;
    DaysToCivil(d.int_value(), &y, &m, &day);
    if (name == "extract_year") return Datum::Int8(y);
    if (name == "extract_month") return Datum::Int8(m);
    return Datum::Int8(day);
  }
  if (name == "date_trunc") {
    CITUSX_RETURN_IF_ERROR(need(2));
    if (args[1].is_null()) return Datum::Null();
    std::string unit = ToLower(args[0].ToText());
    CITUSX_ASSIGN_OR_RETURN(Datum d, args[1].CastTo(TypeId::kDate));
    int y, m, day;
    DaysToCivil(d.int_value(), &y, &m, &day);
    if (unit == "year") return Datum::Date(CivilToDays(y, 1, 1));
    if (unit == "month") return Datum::Date(CivilToDays(y, m, 1));
    if (unit == "day") return d;
    return Status::NotSupported("date_trunc unit: " + unit);
  }
  if (name == "jsonb_array_length") {
    CITUSX_RETURN_IF_ERROR(need(1));
    if (args[0].is_null() || args[0].type() != TypeId::kJsonb) {
      return Datum::Null();
    }
    const JsonPtr& j = args[0].json_value();
    if (j == nullptr || j->kind() != Json::Kind::kArray) return Datum::Null();
    return Datum::Int8(j->array_size());
  }
  if (name == "jsonb_path_query_array") {
    CITUSX_RETURN_IF_ERROR(need(2));
    if (args[0].is_null()) return Datum::Null();
    if (args[0].type() != TypeId::kJsonb) {
      return Status::InvalidArgument("jsonb_path_query_array requires jsonb");
    }
    auto matches = Json::PathQuery(args[0].json_value(), args[1].ToText());
    return Datum::Jsonb(Json::MakeArray(std::move(matches)));
  }
  if (name == "jsonb_typeof") {
    CITUSX_RETURN_IF_ERROR(need(1));
    if (args[0].is_null() || args[0].json_value() == nullptr) {
      return Datum::Null();
    }
    switch (args[0].json_value()->kind()) {
      case Json::Kind::kNull:
        return Datum::Text("null");
      case Json::Kind::kBool:
        return Datum::Text("boolean");
      case Json::Kind::kNumber:
        return Datum::Text("number");
      case Json::Kind::kString:
        return Datum::Text("string");
      case Json::Kind::kArray:
        return Datum::Text("array");
      case Json::Kind::kObject:
        return Datum::Text("object");
    }
  }
  return Status::NotFound("unknown function: " + name);
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern,
               bool case_insensitive) {
  const std::string t = case_insensitive ? ToLower(text) : text;
  const std::string p = case_insensitive ? ToLower(pattern) : pattern;
  // Iterative wildcard matching with backtracking over the last '%'.
  size_t ti = 0, pi = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (ti < t.size()) {
    if (pi < p.size() && (p[pi] == '_' || p[pi] == t[ti])) {
      ti++;
      pi++;
    } else if (pi < p.size() && p[pi] == '%') {
      star_p = pi++;
      star_t = ti;
    } else if (star_p != std::string::npos) {
      pi = star_p + 1;
      ti = ++star_t;
    } else {
      return false;
    }
  }
  while (pi < p.size() && p[pi] == '%') pi++;
  return pi == p.size();
}

Result<Datum> Eval(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.value;
    case ExprKind::kColumnRef:
    case ExprKind::kAgg: {
      // Aggregates are materialized into slots by the executor; a bound agg
      // node reads its result exactly like a column reference.
      if (e.slot < 0 || ctx.row == nullptr ||
          e.slot >= static_cast<int>(ctx.row->size())) {
        if (e.kind == ExprKind::kAgg) {
          return Status::Internal("unbound aggregate in evaluation");
        }
        return Status::Internal("unbound column reference: " + e.column);
      }
      return (*ctx.row)[static_cast<size_t>(e.slot)];
    }
    case ExprKind::kParam: {
      if (ctx.params == nullptr ||
          e.param_index >= static_cast<int>(ctx.params->size())) {
        return Status::InvalidArgument(
            StrFormat("missing parameter $%d", e.param_index + 1));
      }
      return (*ctx.params)[static_cast<size_t>(e.param_index)];
    }
    case ExprKind::kStar:
      return Status::Internal("* cannot be evaluated");
    case ExprKind::kBinary: {
      // AND/OR need three-valued logic with short-circuit.
      if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
        CITUSX_ASSIGN_OR_RETURN(Datum l, Eval(*e.args[0], ctx));
        bool is_and = e.bin_op == BinOp::kAnd;
        if (!l.is_null()) {
          bool lv = l.bool_value();
          if (is_and && !lv) return Datum::Bool(false);
          if (!is_and && lv) return Datum::Bool(true);
        }
        CITUSX_ASSIGN_OR_RETURN(Datum r, Eval(*e.args[1], ctx));
        if (!r.is_null()) {
          bool rv = r.bool_value();
          if (is_and && !rv) return Datum::Bool(false);
          if (!is_and && rv) return Datum::Bool(true);
        }
        if (l.is_null() || r.is_null()) return Datum::Null();
        return Datum::Bool(is_and);
      }
      CITUSX_ASSIGN_OR_RETURN(Datum l, Eval(*e.args[0], ctx));
      CITUSX_ASSIGN_OR_RETURN(Datum r, Eval(*e.args[1], ctx));
      switch (e.bin_op) {
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe: {
          if (l.is_null() || r.is_null()) return Datum::Null();
          int c = Datum::Compare(l, r);
          switch (e.bin_op) {
            case BinOp::kEq:
              return Datum::Bool(c == 0);
            case BinOp::kNe:
              return Datum::Bool(c != 0);
            case BinOp::kLt:
              return Datum::Bool(c < 0);
            case BinOp::kLe:
              return Datum::Bool(c <= 0);
            case BinOp::kGt:
              return Datum::Bool(c > 0);
            default:
              return Datum::Bool(c >= 0);
          }
        }
        case BinOp::kLike:
        case BinOp::kILike: {
          if (l.is_null() || r.is_null()) return Datum::Null();
          return Datum::Bool(LikeMatch(l.ToText(), r.ToText(),
                                       e.bin_op == BinOp::kILike));
        }
        case BinOp::kNotLike: {
          if (l.is_null() || r.is_null()) return Datum::Null();
          return Datum::Bool(!LikeMatch(l.ToText(), r.ToText(), false));
        }
        case BinOp::kConcat: {
          if (l.is_null() || r.is_null()) return Datum::Null();
          return Datum::Text(l.ToText() + r.ToText());
        }
        case BinOp::kJsonGet:
        case BinOp::kJsonGetText: {
          if (l.is_null() || r.is_null()) return Datum::Null();
          return EvalJsonGet(l, r, e.bin_op == BinOp::kJsonGetText);
        }
        default: {
          if (l.is_null() || r.is_null()) return Datum::Null();
          return EvalNumeric(e.bin_op, l, r);
        }
      }
    }
    case ExprKind::kUnary: {
      CITUSX_ASSIGN_OR_RETURN(Datum v, Eval(*e.args[0], ctx));
      if (v.is_null()) return Datum::Null();
      if (e.un_op == UnOp::kNot) return Datum::Bool(!v.bool_value());
      if (v.type() == TypeId::kFloat8) return Datum::Float8(-v.float_value());
      return Datum::Int8(-v.int_value());
    }
    case ExprKind::kFunc: {
      std::vector<Datum> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        CITUSX_ASSIGN_OR_RETURN(Datum v, Eval(*a, ctx));
        args.push_back(std::move(v));
      }
      return CallFunction(e.func_name, args, ctx);
    }
    case ExprKind::kCase: {
      size_t n = e.args.size();
      size_t pairs = e.case_has_else ? (n - 1) / 2 : n / 2;
      for (size_t i = 0; i < pairs; i++) {
        CITUSX_ASSIGN_OR_RETURN(Datum cond, Eval(*e.args[2 * i], ctx));
        if (!cond.is_null() && cond.bool_value()) {
          return Eval(*e.args[2 * i + 1], ctx);
        }
      }
      if (e.case_has_else) return Eval(*e.args[n - 1], ctx);
      return Datum::Null();
    }
    case ExprKind::kCast: {
      CITUSX_ASSIGN_OR_RETURN(Datum v, Eval(*e.args[0], ctx));
      return v.CastTo(e.cast_type);
    }
    case ExprKind::kIn: {
      CITUSX_ASSIGN_OR_RETURN(Datum needle, Eval(*e.args[0], ctx));
      if (needle.is_null()) return Datum::Null();
      bool saw_null = false;
      for (size_t i = 1; i < e.args.size(); i++) {
        CITUSX_ASSIGN_OR_RETURN(Datum item, Eval(*e.args[i], ctx));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (Datum::Compare(needle, item) == 0) return Datum::Bool(true);
      }
      return saw_null ? Datum::Null() : Datum::Bool(false);
    }
    case ExprKind::kIsNull: {
      CITUSX_ASSIGN_OR_RETURN(Datum v, Eval(*e.args[0], ctx));
      return Datum::Bool(e.is_not_null ? !v.is_null() : v.is_null());
    }
  }
  return Status::Internal("bad expression kind");
}

Result<bool> EvalPredicate(const Expr& e, const EvalContext& ctx) {
  CITUSX_ASSIGN_OR_RETURN(Datum v, Eval(e, ctx));
  return !v.is_null() && v.bool_value();
}

TypeId InferType(const Expr& e, const std::vector<TypeId>& input_types) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.value.type();
    case ExprKind::kColumnRef:
      if (e.slot >= 0 && e.slot < static_cast<int>(input_types.size())) {
        return input_types[static_cast<size_t>(e.slot)];
      }
      return TypeId::kNull;
    case ExprKind::kCast:
      return e.cast_type;
    case ExprKind::kAgg: {
      if (e.func_name == "count") return TypeId::kInt8;
      if (e.func_name == "avg") return TypeId::kFloat8;
      if (e.args.empty()) return TypeId::kNull;
      TypeId t = InferType(*e.args[0], input_types);
      if (e.func_name == "sum" && t == TypeId::kInt4) return TypeId::kInt8;
      return t;
    }
    case ExprKind::kBinary:
      switch (e.bin_op) {
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe:
        case BinOp::kAnd:
        case BinOp::kOr:
        case BinOp::kLike:
        case BinOp::kNotLike:
        case BinOp::kILike:
          return TypeId::kBool;
        case BinOp::kConcat:
        case BinOp::kJsonGetText:
          return TypeId::kText;
        case BinOp::kJsonGet:
          return TypeId::kJsonb;
        default: {
          TypeId l = InferType(*e.args[0], input_types);
          TypeId r = InferType(*e.args[1], input_types);
          if (l == TypeId::kDate || l == TypeId::kTimestamp) return l;
          if (l == TypeId::kFloat8 || r == TypeId::kFloat8) {
            return TypeId::kFloat8;
          }
          return TypeId::kInt8;
        }
      }
    case ExprKind::kUnary:
      if (e.un_op == UnOp::kNot) return TypeId::kBool;
      return InferType(*e.args[0], input_types);
    case ExprKind::kIn:
    case ExprKind::kIsNull:
      return TypeId::kBool;
    case ExprKind::kFunc: {
      const std::string& f = e.func_name;
      if (f == "lower" || f == "upper" || f == "md5" || f == "substring" ||
          f == "substr" || f == "concat") {
        return TypeId::kText;
      }
      if (f == "length" || f == "char_length" || f == "strpos" ||
          f == "extract_year" || f == "extract_month" || f == "extract_day" ||
          f == "jsonb_array_length") {
        return TypeId::kInt8;
      }
      if (f == "random" || f == "floor" || f == "ceil" || f == "round" ||
          f == "sqrt" || f == "power") {
        return TypeId::kFloat8;
      }
      if (f == "add_days" || f == "add_months" || f == "date_trunc") {
        return TypeId::kDate;
      }
      if (f == "jsonb_path_query_array") return TypeId::kJsonb;
      if (f == "coalesce" || f == "greatest" || f == "least") {
        for (const auto& a : e.args) {
          TypeId t = InferType(*a, input_types);
          if (t != TypeId::kNull) return t;
        }
      }
      return TypeId::kNull;
    }
    default:
      return TypeId::kNull;
  }
}

}  // namespace citusx::sql
