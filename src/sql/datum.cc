#include "sql/datum.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "common/str.h"

namespace citusx::sql {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "unknown";
    case TypeId::kBool:
      return "boolean";
    case TypeId::kInt4:
      return "integer";
    case TypeId::kInt8:
      return "bigint";
    case TypeId::kFloat8:
      return "double precision";
    case TypeId::kText:
      return "text";
    case TypeId::kDate:
      return "date";
    case TypeId::kTimestamp:
      return "timestamp";
    case TypeId::kJsonb:
      return "jsonb";
  }
  return "unknown";
}

Result<TypeId> TypeFromName(const std::string& raw) {
  std::string name = ToLower(raw);
  if (name == "bool" || name == "boolean") return TypeId::kBool;
  if (name == "int" || name == "integer" || name == "int4" ||
      name == "smallint" || name == "int2" || name == "serial") {
    return TypeId::kInt4;
  }
  if (name == "bigint" || name == "int8" || name == "bigserial") {
    return TypeId::kInt8;
  }
  if (name == "float8" || name == "double precision" || name == "double" ||
      name == "real" || name == "float" || name == "numeric" ||
      name == "decimal") {
    return TypeId::kFloat8;
  }
  if (name == "text" || name == "varchar" || name == "char" ||
      name == "character varying" || name == "character" || name == "uuid") {
    return TypeId::kText;
  }
  if (name == "date") return TypeId::kDate;
  if (name == "timestamp" || name == "timestamptz" ||
      name == "timestamp with time zone" ||
      name == "timestamp without time zone") {
    return TypeId::kTimestamp;
  }
  if (name == "jsonb" || name == "json") return TypeId::kJsonb;
  return Status::InvalidArgument("unknown type name: " + raw);
}

int TypeWidth(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return 1;
    case TypeId::kBool:
      return 1;
    case TypeId::kInt4:
      return 4;
    case TypeId::kInt8:
    case TypeId::kFloat8:
    case TypeId::kDate:
    case TypeId::kTimestamp:
      return 8;
    case TypeId::kText:
      return 24;  // average assumption; Datum::PhysicalSize is exact
    case TypeId::kJsonb:
      return 256;
  }
  return 8;
}

int Schema::RowWidth() const {
  int w = 24;  // tuple header
  for (const auto& c : columns) w += TypeWidth(c.type);
  return w;
}

int Datum::Compare(const Datum& a, const Datum& b) {
  // NULLs sort after everything (PostgreSQL default NULLS LAST for ASC).
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return 1;
  if (b.is_null()) return -1;
  if (IsNumeric(a.type_) && IsNumeric(b.type_)) {
    if (a.type_ == TypeId::kFloat8 || b.type_ == TypeId::kFloat8) {
      double x = a.AsDouble(), y = b.AsDouble();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    return a.i_ < b.i_ ? -1 : (a.i_ > b.i_ ? 1 : 0);
  }
  if (a.type_ != b.type_) {
    // Date vs timestamp coercion.
    if (a.type_ == TypeId::kDate && b.type_ == TypeId::kTimestamp) {
      int64_t am = a.i_ * 86400000000LL;
      return am < b.i_ ? -1 : (am > b.i_ ? 1 : 0);
    }
    if (a.type_ == TypeId::kTimestamp && b.type_ == TypeId::kDate) {
      int64_t bm = b.i_ * 86400000000LL;
      return a.i_ < bm ? -1 : (a.i_ > bm ? 1 : 0);
    }
    return static_cast<int>(a.type_) < static_cast<int>(b.type_) ? -1 : 1;
  }
  switch (a.type_) {
    case TypeId::kBool:
    case TypeId::kDate:
    case TypeId::kTimestamp:
      return a.i_ < b.i_ ? -1 : (a.i_ > b.i_ ? 1 : 0);
    case TypeId::kText: {
      int c = a.s_.compare(b.s_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeId::kJsonb: {
      std::string x = a.j_ ? a.j_->ToString() : "null";
      std::string y = b.j_ ? b.j_->ToString() : "null";
      int c = x.compare(y);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

int32_t Datum::PartitionHash() const {
  switch (type_) {
    case TypeId::kNull:
      return 0;
    case TypeId::kText:
      return HashBytes(s_);
    case TypeId::kJsonb:
      return HashBytes(j_ ? j_->ToString() : "null");
    case TypeId::kFloat8:
      return HashInt64(static_cast<int64_t>(d_ * 1e6));
    default:
      return HashInt64(i_);
  }
}

std::string Datum::GroupKey() const {
  switch (type_) {
    case TypeId::kNull:
      return "\x00N";
    case TypeId::kText:
      return "T" + s_;
    case TypeId::kJsonb:
      return "J" + (j_ ? j_->ToString() : "null");
    case TypeId::kFloat8: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "F%.17g", d_);
      return buf;
    }
    default: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "I%lld", static_cast<long long>(i_));
      return buf;
    }
  }
}

std::string Datum::ToText() const {
  switch (type_) {
    case TypeId::kNull:
      return "";
    case TypeId::kBool:
      return i_ ? "true" : "false";
    case TypeId::kInt4:
    case TypeId::kInt8:
      return StrFormat("%lld", static_cast<long long>(i_));
    case TypeId::kFloat8: {
      if (d_ == std::floor(d_) && std::abs(d_) < 1e15) {
        return StrFormat("%lld", static_cast<long long>(d_));
      }
      return StrFormat("%g", d_);
    }
    case TypeId::kText:
      return s_;
    case TypeId::kDate:
      return FormatDate(i_);
    case TypeId::kTimestamp:
      return FormatTimestamp(i_);
    case TypeId::kJsonb:
      return j_ ? j_->ToString() : "null";
  }
  return "";
}

std::string Datum::ToSqlLiteral() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return i_ ? "TRUE" : "FALSE";
    case TypeId::kInt4:
    case TypeId::kInt8:
      return StrFormat("%lld", static_cast<long long>(i_));
    case TypeId::kFloat8:
      return StrFormat("%.17g", d_);
    case TypeId::kText:
      return QuoteSqlLiteral(s_);
    case TypeId::kDate:
      return QuoteSqlLiteral(FormatDate(i_)) + "::date";
    case TypeId::kTimestamp:
      return QuoteSqlLiteral(FormatTimestamp(i_)) + "::timestamp";
    case TypeId::kJsonb:
      return QuoteSqlLiteral(j_ ? j_->ToString() : "null") + "::jsonb";
  }
  return "NULL";
}

Result<Datum> Datum::FromText(TypeId type, const std::string& text) {
  switch (type) {
    case TypeId::kNull:
      return Datum::Null();
    case TypeId::kBool: {
      std::string t = ToLower(text);
      if (t == "t" || t == "true" || t == "1" || t == "yes" || t == "on") {
        return Datum::Bool(true);
      }
      if (t == "f" || t == "false" || t == "0" || t == "no" || t == "off") {
        return Datum::Bool(false);
      }
      return Status::InvalidArgument("bad boolean: " + text);
    }
    case TypeId::kInt4:
    case TypeId::kInt8: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || errno != 0) {
        return Status::InvalidArgument("bad integer: " + text);
      }
      return type == TypeId::kInt4 ? Datum::Int4(static_cast<int32_t>(v))
                                   : Datum::Int8(v);
    }
    case TypeId::kFloat8: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str()) {
        return Status::InvalidArgument("bad float: " + text);
      }
      return Datum::Float8(v);
    }
    case TypeId::kText:
      return Datum::Text(text);
    case TypeId::kDate: {
      CITUSX_ASSIGN_OR_RETURN(int64_t days, ParseDate(text));
      return Datum::Date(days);
    }
    case TypeId::kTimestamp: {
      CITUSX_ASSIGN_OR_RETURN(int64_t us, ParseTimestamp(text));
      return Datum::Timestamp(us);
    }
    case TypeId::kJsonb: {
      CITUSX_ASSIGN_OR_RETURN(JsonPtr j, Json::Parse(text));
      return Datum::Jsonb(std::move(j));
    }
  }
  return Status::InvalidArgument("bad type");
}

Result<Datum> Datum::CastTo(TypeId target) const {
  if (is_null()) return Datum::Null();
  if (type_ == target) return *this;
  switch (target) {
    case TypeId::kInt4:
      if (IsNumeric(type_)) return Datum::Int4(static_cast<int32_t>(AsInt64()));
      if (type_ == TypeId::kText) return FromText(target, s_);
      if (type_ == TypeId::kBool) return Datum::Int4(i_ != 0 ? 1 : 0);
      break;
    case TypeId::kInt8:
      if (IsNumeric(type_)) return Datum::Int8(AsInt64());
      if (type_ == TypeId::kText) return FromText(target, s_);
      break;
    case TypeId::kFloat8:
      if (IsNumeric(type_)) return Datum::Float8(AsDouble());
      if (type_ == TypeId::kText) return FromText(target, s_);
      break;
    case TypeId::kText:
      return Datum::Text(ToText());
    case TypeId::kDate:
      if (type_ == TypeId::kText) return FromText(target, s_);
      if (type_ == TypeId::kTimestamp) {
        int64_t days = i_ / 86400000000LL;
        if (i_ < 0 && i_ % 86400000000LL != 0) days--;
        return Datum::Date(days);
      }
      break;
    case TypeId::kTimestamp:
      if (type_ == TypeId::kText) return FromText(target, s_);
      if (type_ == TypeId::kDate) return Datum::Timestamp(i_ * 86400000000LL);
      break;
    case TypeId::kJsonb:
      if (type_ == TypeId::kText) return FromText(target, s_);
      break;
    case TypeId::kBool:
      if (type_ == TypeId::kText) return FromText(target, s_);
      if (IsNumeric(type_)) return Datum::Bool(AsInt64() != 0);
      break;
    default:
      break;
  }
  return Status::InvalidArgument(StrFormat("cannot cast %s to %s",
                                           TypeName(type_), TypeName(target)));
}

int64_t Datum::PhysicalSize() const {
  switch (type_) {
    case TypeId::kNull:
      return 1;
    case TypeId::kBool:
      return 1;
    case TypeId::kInt4:
      return 4;
    case TypeId::kText:
      return static_cast<int64_t>(s_.size()) + 4;
    case TypeId::kJsonb:
      return j_ ? j_->SerializedSize() : 4;
    default:
      return 8;
  }
}

// ---- date/time (Howard Hinnant's civil-from-days algorithms) ----

namespace {
constexpr int64_t kPgEpochDaysFromCivil = 10957;  // 2000-01-01 - 1970-01-01
}  // namespace

int64_t CivilToDays(int y, int m, int d) {
  y -= m <= 2;
  int64_t era = (y >= 0 ? y : y - 399) / 400;
  int64_t yoe = y - era * 400;
  int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  int64_t unix_days = era * 146097 + doe - 719468;
  return unix_days - kPgEpochDaysFromCivil;
}

void DaysToCivil(int64_t days, int* year, int* month, int* day) {
  int64_t z = days + kPgEpochDaysFromCivil + 719468;
  int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  int64_t doe = z - era * 146097;
  int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t y = yoe + era * 400;
  int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  int64_t mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = static_cast<int>(y + (*month <= 2));
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  return StrFormat("%04d-%02d-%02d", y, m, d);
}

std::string FormatTimestamp(int64_t micros) {
  int64_t days = micros / 86400000000LL;
  int64_t rem = micros % 86400000000LL;
  if (rem < 0) {
    days--;
    rem += 86400000000LL;
  }
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  int64_t secs = rem / 1000000;
  int64_t us = rem % 1000000;
  if (us == 0) {
    return StrFormat("%04d-%02d-%02d %02lld:%02lld:%02lld", y, m, d,
                     static_cast<long long>(secs / 3600),
                     static_cast<long long>((secs / 60) % 60),
                     static_cast<long long>(secs % 60));
  }
  return StrFormat("%04d-%02d-%02d %02lld:%02lld:%02lld.%06lld", y, m, d,
                   static_cast<long long>(secs / 3600),
                   static_cast<long long>((secs / 60) % 60),
                   static_cast<long long>(secs % 60),
                   static_cast<long long>(us));
}

Result<int64_t> ParseDate(const std::string& s) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 || m > 12 ||
      d < 1 || d > 31) {
    return Status::InvalidArgument("bad date: " + s);
  }
  return CivilToDays(y, m, d);
}

Result<int64_t> ParseTimestamp(const std::string& s) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0;
  double sec = 0;
  int n = std::sscanf(s.c_str(), "%d-%d-%d%*1[ T]%d:%d:%lf", &y, &mo, &d, &h,
                      &mi, &sec);
  if (n < 3 || mo < 1 || mo > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("bad timestamp: " + s);
  }
  int64_t days = CivilToDays(y, mo, d);
  int64_t us = days * 86400000000LL + (h * 3600LL + mi * 60LL) * 1000000LL +
               static_cast<int64_t>(sec * 1e6);
  return us;
}

}  // namespace citusx::sql
