#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/str.h"

namespace citusx::sql {

namespace {

const std::unordered_set<std::string>& KeywordSet() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "select", "from",   "where",    "group",   "by",       "having",
      "order",  "limit",  "offset",   "as",      "and",      "or",
      "not",    "in",     "is",       "null",    "true",     "false",
      "insert", "into",   "values",   "update",  "set",      "delete",
      "create", "table",  "index",    "unique",  "drop",     "truncate",
      "copy",   "begin",  "commit",   "rollback", "prepare", "prepared",
      "transaction",      "join",     "inner",   "left",     "outer",
      "on",     "using",  "distinct", "case",    "when",     "then",
      "else",   "end",    "cast",     "like",    "ilike",    "between",
      "asc",    "desc",   "primary",  "references", "default",
      "exists", "if",     "call",     "interval", "date",    "timestamp",
      "extract", "for",   "conflict", "do",
      "count",  "with",   "union",    "all",      "to",
      "nulls",  "cross",
  };
  return *kSet;
}

}  // namespace

bool IsKeyword(const std::string& word) {
  return KeywordSet().count(word) > 0;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') i++;
      continue;
    }
    // /* block comments */
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(sql[i] == '*' && sql[i + 1] == '/')) i++;
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        i++;
      }
      tok.text = ToLower(sql.substr(start, i - start));
      tok.type = IsKeyword(tok.text) ? TokenType::kKeyword
                                     : TokenType::kIdentifier;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      // Quoted identifier: case preserved.
      size_t start = ++i;
      while (i < n && sql[i] != '"') i++;
      if (i >= n) return Status::InvalidArgument("unterminated quoted identifier");
      tok.text = sql.substr(start, i - start);
      tok.type = TokenType::kIdentifier;
      i++;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      i++;
      std::string s;
      for (;;) {
        if (i >= n) return Status::InvalidArgument("unterminated string literal");
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            s.push_back('\'');
            i += 2;
            continue;
          }
          i++;
          break;
        }
        s.push_back(sql[i++]);
      }
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) i++;
      if (i < n && sql[i] == '.') {
        is_float = true;
        i++;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) i++;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        i++;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) i++;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) i++;
      }
      std::string num = sql.substr(start, i - start);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tok.text = std::move(num);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '$') {
      size_t start = ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) i++;
      if (i == start) return Status::InvalidArgument("bad parameter marker");
      tok.type = TokenType::kParam;
      tok.int_value = std::strtoll(sql.substr(start, i - start).c_str(),
                                   nullptr, 10);
      tok.text = "$" + sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto match = [&](const char* op) {
      size_t len = std::char_traits<char>::length(op);
      return sql.compare(i, len, op) == 0;
    };
    static const char* kMultiOps[] = {"->>", "<=", ">=", "<>", "!=",
                                      "||",  "::", "->"};
    bool matched = false;
    for (const char* op : kMultiOps) {
      if (match(op)) {
        tok.type = TokenType::kOperator;
        tok.text = op;
        i += std::char_traits<char>::length(op);
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingleOps = "+-*/%=<>(),.;:";
    if (kSingleOps.find(c) != std::string::npos) {
      tok.type = TokenType::kOperator;
      tok.text = std::string(1, c);
      i++;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::InvalidArgument(
        StrFormat("unexpected character '%c' at offset %zu", c, i));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.offset = n;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace citusx::sql
