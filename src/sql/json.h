// A minimal JSON value type backing the JSONB SQL type, with the operators
// used by the paper's real-time analytics workload (->, ->>,
// jsonb_array_length, jsonb_path_query_array).
#ifndef CITUSX_SQL_JSON_H_
#define CITUSX_SQL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace citusx::sql {

/// Immutable-after-construction JSON value tree.
class Json;
using JsonPtr = std::shared_ptr<const Json>;

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  explicit Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Json(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonPtr MakeNull() { return std::make_shared<Json>(); }
  static JsonPtr MakeBool(bool b) { return std::make_shared<Json>(b); }
  static JsonPtr MakeNumber(double n) { return std::make_shared<Json>(n); }
  static JsonPtr MakeString(std::string s) {
    return std::make_shared<Json>(std::move(s));
  }
  static JsonPtr MakeArray(std::vector<JsonPtr> items);
  static JsonPtr MakeObject(std::vector<std::pair<std::string, JsonPtr>> kv);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonPtr>& array_items() const { return array_; }

  /// Object field lookup; returns null pointer if absent.
  JsonPtr GetField(const std::string& key) const;
  /// Array element; returns null pointer if out of range.
  JsonPtr GetElement(int64_t index) const;

  int64_t array_size() const { return static_cast<int64_t>(array_.size()); }
  const std::vector<std::pair<std::string, JsonPtr>>& object_items() const {
    return object_;
  }

  /// Compact serialization (keys in insertion order).
  std::string ToString() const;

  /// Approximate serialized size in bytes (for block accounting).
  int64_t SerializedSize() const;

  /// Parse JSON text.
  static Result<JsonPtr> Parse(const std::string& text);

  /// Evaluate a JSONPath subset: $.a.b[*].c / $.a[0].b. Returns all matches.
  /// Supports: field access, [n] index, [*] wildcard over arrays.
  static std::vector<JsonPtr> PathQuery(const JsonPtr& root,
                                        const std::string& path);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonPtr> array_;
  std::vector<std::pair<std::string, JsonPtr>> object_;
};

}  // namespace citusx::sql

#endif  // CITUSX_SQL_JSON_H_
