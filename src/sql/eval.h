// Runtime expression evaluation.
#ifndef CITUSX_SQL_EVAL_H_
#define CITUSX_SQL_EVAL_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sql/ast.h"
#include "sql/datum.h"

namespace citusx::sql {

/// Everything an expression may reference at runtime. Column references and
/// aggregate results must have been bound to slots in `row` by the planner.
struct EvalContext {
  const Row* row = nullptr;             // current input tuple
  const std::vector<Datum>* params = nullptr;  // $n values
  Rng* rng = nullptr;                   // for random()
};

/// Evaluate a bound expression. kColumnRef/kAgg nodes must have slot >= 0.
Result<Datum> Eval(const Expr& e, const EvalContext& ctx);

/// Evaluate to a boolean for filtering: NULL and false both reject.
Result<bool> EvalPredicate(const Expr& e, const EvalContext& ctx);

/// SQL LIKE/ILIKE matching with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern,
               bool case_insensitive);

/// Infer the static result type of a bound expression given input types.
/// Best-effort; returns kNull when unknown.
TypeId InferType(const Expr& e, const std::vector<TypeId>& input_types);

}  // namespace citusx::sql

#endif  // CITUSX_SQL_EVAL_H_
