// Recursive-descent SQL parser producing the AST in sql/ast.h.
#ifndef CITUSX_SQL_PARSER_H_
#define CITUSX_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace citusx::sql {

/// Parse a single SQL statement (a trailing ';' is allowed).
Result<Statement> Parse(const std::string& sql);

/// Parse a standalone expression (used by tests and DEFAULT clauses).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace citusx::sql

#endif  // CITUSX_SQL_PARSER_H_
