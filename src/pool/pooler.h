// Transaction-pooling front tier (pgbouncer-style), multiplexing many
// lightweight client sessions over a small, bounded set of physical
// connections to one backend node.
//
// PostgreSQL's process-per-connection model makes connections the scarcest
// resource in a cluster (§3.2.1): every open connection is a server-side
// backend process. A transaction pooler sits in front of a node and hands a
// physical connection to a client session only for the duration of one
// transaction (or one implicit-transaction statement); at the transaction
// boundary the session detaches and the connection is reusable by any other
// session. Millions of mostly-idle client sessions then need only as many
// backends as there are *concurrent transactions*.
//
// Session state under multiplexing: classic transaction pooling famously
// breaks PREPARE and SET because the next statement may land on a different
// backend. This pooler carries that state across backends with the same
// stamping idiom the Citus executor uses for per-connection metadata
// versions: each physical connection remembers which session's state (and
// which version of it) it last applied; on attach, a mismatch triggers a
// state replay — DISCARD ALL to neutralize the previous tenant, then the
// session's SETs and PREPAREs — batched with the client's statement into a
// single round trip. A session that re-attaches to the backend it last used
// replays nothing.
//
// Admission control: attach waits are FIFO and deadline-bounded. A session
// that cannot get a backend before `attach_timeout` fails with a retryable
// ResourceExhausted — never a hang — including while the backend node is
// refusing new connections.
#ifndef CITUSX_POOL_POOLER_H_
#define CITUSX_POOL_POOLER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/cluster.h"
#include "obs/metrics.h"

namespace citusx::pool {

class PooledSession;

/// Pooling mode: when a session gives its physical connection back.
enum class PoolMode {
  /// Detach at every transaction boundary (default). Maximum multiplexing;
  /// PREPARE/SET survive via state replay.
  kTransaction,
  /// Pin the connection from first use until the session closes (pgbouncer
  /// "session pooling"). No replay cost, no multiplexing while idle.
  kSession,
};

struct PoolerOptions {
  /// Physical connections to the backend node (the bounded budget).
  int pool_size = 20;
  PoolMode mode = PoolMode::kTransaction;
  /// Max virtual time a session waits to attach before failing with a
  /// retryable ResourceExhausted. 0 = wait forever.
  sim::Time attach_timeout = 0;
  /// While attach is blocked (pool saturated or the node refusing
  /// connections), how often to re-probe / re-check the deadline.
  sim::Time retry_interval = 5 * sim::kMillisecond;
  /// Per-statement deadline applied to the physical connections (0 = none).
  sim::Time statement_timeout = 0;
};

/// Pools physical connections to one backend node and hands out
/// PooledSession handles. Create one per (pooler host, backend node) pair;
/// all methods must be called from simulated processes except the
/// constructor and destructor.
class TransactionPooler {
 public:
  /// `client` is the node the pooler runs on (nullptr = external driver
  /// machine). Gauges and counters register on the *backend* node's metric
  /// registry under "pool.*", so per-node pool state is observable wherever
  /// the node's other metrics are.
  TransactionPooler(sim::Simulation* sim, net::NodeDirectory* directory,
                    engine::Node* client, std::string server,
                    PoolerOptions options);
  ~TransactionPooler();

  TransactionPooler(const TransactionPooler&) = delete;
  TransactionPooler& operator=(const TransactionPooler&) = delete;

  /// Create a client session. Cheap: no connection is touched until the
  /// session's first statement.
  std::unique_ptr<PooledSession> OpenSession();

  const std::string& server() const { return server_; }
  const PoolerOptions& options() const { return options_; }

  /// Physical connections currently open (in use + idle).
  int physical_connections() const { return static_cast<int>(live_.size()); }
  int idle_connections() const { return static_cast<int>(free_.size()); }
  int queued_waiters() const { return static_cast<int>(waiters_.size()); }

 private:
  friend class PooledSession;

  /// One pooled physical connection with its applied-state stamp.
  struct PhysicalConn {
    std::unique_ptr<net::Connection> conn;
    /// Pooled session whose state this backend currently holds (0 = fresh
    /// backend, nothing to discard) and the version of that state applied.
    /// The attach path replays state only on mismatch — the same
    /// stamp-compare-replay idiom as WorkerConnection::stamped_version.
    uint64_t applied_session = 0;
    uint64_t applied_state_version = 0;
    /// applied_session value for a backend whose state is unknown (a replay
    /// batch failed partway through): matches no session id, so the next
    /// attach always leads with DISCARD ALL. Marking such a backend 0
    /// ("fresh") instead would let leftover SETs and prepared statements
    /// leak to the next tenant.
    static constexpr uint64_t kDirtyBackend = ~0ull;
  };

  /// FIFO, deadline-bounded acquisition. Opens new connections up to
  /// pool_size; waits (retrying opens) otherwise. Fails with retryable
  /// ResourceExhausted once `attach_timeout` elapses.
  Result<PhysicalConn*> Acquire();
  /// Return a healthy connection to the free list, waking the next waiter.
  void Release(PhysicalConn* pc);
  /// Close and forget a connection (broken, or carrying an aborted
  /// transaction of unknown state).
  void Drop(PhysicalConn* pc);
  /// Erase a connection from live_ (closing it); no gauge adjustments.
  void Forget(PhysicalConn* pc);

  sim::Simulation* sim_;
  net::NodeDirectory* directory_;
  engine::Node* client_;
  std::string server_;
  PoolerOptions options_;
  uint64_t next_session_id_ = 1;

  std::vector<std::unique_ptr<PhysicalConn>> live_;
  std::deque<PhysicalConn*> free_;
  std::deque<sim::Process*> waiters_;  // FIFO attach queue
  int opening_ = 0;                    // connects in flight (reserve slots)
  /// Set false by the destructor; the waiter-wake ticker checks it before
  /// touching the pooler.
  std::shared_ptr<bool> alive_;
  bool ticker_running_ = false;
  void EnsureTicker();

  // Backend-node metric handles ("pool.*"), resolved at construction.
  obs::Counter* poolers_metric_ = nullptr;     // pool.poolers
  obs::Gauge* sessions_gauge_ = nullptr;       // pool.client_sessions
  obs::Gauge* in_use_gauge_ = nullptr;         // pool.in_use
  obs::Gauge* idle_gauge_ = nullptr;           // pool.idle
  obs::Gauge* waiters_gauge_ = nullptr;        // pool.waiters
  obs::Counter* attaches_metric_ = nullptr;    // pool.attaches
  obs::Counter* detaches_metric_ = nullptr;    // pool.detaches
  obs::Counter* replays_metric_ = nullptr;     // pool.state_replays
  obs::Counter* timeouts_metric_ = nullptr;    // pool.attach_timeouts
  obs::Histogram* wait_hist_ = nullptr;        // pool.attach_wait
};

/// A client session multiplexed over the pooler's physical connections.
/// Mirrors the net::Connection surface (Query / CopyIn) so drivers can use
/// either interchangeably. Single simulated process at a time, like a
/// client socket.
class PooledSession {
 public:
  ~PooledSession();

  PooledSession(const PooledSession&) = delete;
  PooledSession& operator=(const PooledSession&) = delete;

  /// Run one statement. Transaction control (BEGIN/COMMIT/ROLLBACK) pins
  /// and releases the physical connection; SET / PREPARE / DEALLOCATE /
  /// DISCARD additionally update the session's replayable state.
  Result<engine::QueryResult> Query(const std::string& sql);

  /// COPY rows through the session's connection (attaches like Query).
  Result<engine::QueryResult> CopyIn(
      const std::string& table, const std::vector<std::string>& columns,
      std::vector<std::vector<std::string>> rows);

  /// End the session. A connection pinned mid-transaction is closed (the
  /// server aborts the orphaned transaction), matching a client disconnect.
  void Close();

  uint64_t id() const { return id_; }
  bool in_txn() const { return in_txn_; }
  /// Number of replayable state entries (SET vars + prepared statements).
  int state_entries() const {
    return static_cast<int>(vars_.size() + prepares_.size());
  }

 private:
  friend class TransactionPooler;
  using PhysicalConn = TransactionPooler::PhysicalConn;
  PooledSession(TransactionPooler* pooler, uint64_t id)
      : pooler_(pooler), id_(id) {}

  /// Attach to a physical connection and run `sql` plus any state-replay
  /// prefix in one round trip.
  Result<engine::QueryResult> RunAttached(const std::string& sql);
  /// Statements re-establishing this session's state on a backend that last
  /// served someone else (DISCARD ALL + SETs + PREPAREs), or empty when the
  /// backend's stamp already matches.
  std::vector<std::string> ReplayPrefix(const PhysicalConn& pc) const;
  void MarkApplied(PhysicalConn* pc) {
    pc->applied_session = id_;
    pc->applied_state_version = state_version_;
  }
  void Detach();

  TransactionPooler* pooler_;
  uint64_t id_ = 0;
  bool closed_ = false;
  bool in_txn_ = false;
  PhysicalConn* attached_ = nullptr;

  /// Replayable session state, bumped through state_version_ whenever it
  /// changes so connection stamps can skip no-op replays.
  uint64_t state_version_ = 0;
  std::map<std::string, std::string> vars_;
  /// Prepared statements in creation order (replay must re-create them in
  /// order): name -> original PREPARE statement text.
  std::vector<std::pair<std::string, std::string>> prepares_;
};

}  // namespace citusx::pool

#endif  // CITUSX_POOL_POOLER_H_
