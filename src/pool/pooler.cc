#include "pool/pooler.h"

#include <cctype>

#include "sql/parser.h"

namespace citusx::pool {

namespace {

/// Lowercased word starting at *pos (letters/digits/underscores); advances
/// *pos past it. Statement classification only needs the first couple of
/// words — full parses are reserved for the statements whose fields the
/// pooler must track (SET, PREPARE, DEALLOCATE).
std::string NextWord(const std::string& sql, size_t* pos) {
  while (*pos < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[*pos]))) {
    ++*pos;
  }
  size_t start = *pos;
  while (*pos < sql.size()) {
    char c = sql[*pos];
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') break;
    ++*pos;
  }
  std::string word = sql.substr(start, *pos - start);
  for (char& c : word) c = std::tolower(static_cast<unsigned char>(c));
  return word;
}

/// How the pooler must treat a statement (everything else passes through).
enum class StmtClass {
  kPlain,      // forward; detach afterwards unless in a transaction
  kBegin,      // pin a connection until the transaction ends
  kTxnEnd,     // COMMIT / ROLLBACK / PREPARE TRANSACTION: unpin afterwards
  kSet,        // track session variable
  kPrepare,    // track prepared statement
  kDeallocate, // untrack prepared statement(s)
  kDiscard,    // drop all tracked state
};

StmtClass Classify(const std::string& sql) {
  size_t pos = 0;
  std::string first = NextWord(sql, &pos);
  if (first == "begin" || first == "start") return StmtClass::kBegin;
  if (first == "commit" || first == "rollback" || first == "end" ||
      first == "abort") {
    // COMMIT/ROLLBACK PREPARED finish someone else's 2PC transaction; they
    // do not end this session's transaction block.
    if (NextWord(sql, &pos) == "prepared") return StmtClass::kPlain;
    return StmtClass::kTxnEnd;
  }
  if (first == "set") return StmtClass::kSet;
  if (first == "prepare") {
    if (NextWord(sql, &pos) == "transaction") return StmtClass::kTxnEnd;
    return StmtClass::kPrepare;
  }
  if (first == "deallocate") return StmtClass::kDeallocate;
  if (first == "discard") return StmtClass::kDiscard;
  return StmtClass::kPlain;
}

}  // namespace

TransactionPooler::TransactionPooler(sim::Simulation* sim,
                                     net::NodeDirectory* directory,
                                     engine::Node* client, std::string server,
                                     PoolerOptions options)
    : sim_(sim),
      directory_(directory),
      client_(client),
      server_(std::move(server)),
      options_(options),
      alive_(std::make_shared<bool>(true)) {
  engine::Node* node = directory_->Find(server_);
  obs::Metrics& m = node->metrics();
  poolers_metric_ = m.counter("pool.poolers");
  sessions_gauge_ = m.gauge("pool.client_sessions");
  in_use_gauge_ = m.gauge("pool.in_use");
  idle_gauge_ = m.gauge("pool.idle");
  waiters_gauge_ = m.gauge("pool.waiters");
  attaches_metric_ = m.counter("pool.attaches");
  detaches_metric_ = m.counter("pool.detaches");
  replays_metric_ = m.counter("pool.state_replays");
  timeouts_metric_ = m.counter("pool.attach_timeouts");
  wait_hist_ = m.histogram("pool.attach_wait");
  poolers_metric_->Inc();
}

TransactionPooler::~TransactionPooler() {
  *alive_ = false;
  in_use_gauge_->Add(-static_cast<int64_t>(live_.size() - free_.size()));
  idle_gauge_->Add(-static_cast<int64_t>(free_.size()));
}

std::unique_ptr<PooledSession> TransactionPooler::OpenSession() {
  sessions_gauge_->Add(1);
  return std::unique_ptr<PooledSession>(
      new PooledSession(this, next_session_id_++));
}

void TransactionPooler::EnsureTicker() {
  if (ticker_running_) return;
  ticker_running_ = true;
  std::shared_ptr<bool> alive = alive_;
  sim_->Spawn(
      "pool-ticker:" + server_,
      [this, alive] {
        // While sessions are queued, periodically wake the front waiter so
        // it re-probes the backend (its last open attempt may have been
        // refused) and re-checks its deadline. Waiters behind it are woken
        // by Release/Drop or when they reach the front; their deadlines are
        // checked every time they wake. Exits when the queue drains.
        for (;;) {
          if (!sim_->WaitFor(options_.retry_interval)) return;
          if (!*alive) return;
          if (waiters_.empty()) break;
          sim_->Wake(waiters_.front());
        }
        ticker_running_ = false;
      },
      /*daemon=*/true);
}

Result<TransactionPooler::PhysicalConn*> TransactionPooler::Acquire() {
  sim::Time start = sim_->now();
  sim::Time deadline =
      options_.attach_timeout > 0 ? start + options_.attach_timeout : 0;
  sim::Process* self = sim::Simulation::Current();
  bool queued = false;
  Status last_open_error;

  auto unqueue = [&] {
    if (!queued) return;
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == self) {
        waiters_.erase(it);
        break;
      }
    }
    waiters_gauge_->Add(-1);
    queued = false;
  };
  auto granted = [&](PhysicalConn* pc) {
    unqueue();
    in_use_gauge_->Add(1);
    attaches_metric_->Inc();
    wait_hist_->Record(sim_->now() - start);
    if (!waiters_.empty() && !free_.empty()) sim_->Wake(waiters_.front());
    return pc;
  };

  for (;;) {
    // FIFO fairness: newcomers go behind queued waiters; only the front
    // waiter (or a newcomer with an empty queue) may take a connection.
    if (waiters_.empty() || (queued && waiters_.front() == self)) {
      // Reuse an idle connection, dropping any that went stale while idle
      // (server restart breaks every established connection).
      while (!free_.empty()) {
        PhysicalConn* pc = free_.front();
        free_.pop_front();
        idle_gauge_->Add(-1);
        if (!pc->conn->usable()) {
          Forget(pc);
          continue;
        }
        return granted(pc);
      }
      if (static_cast<int>(live_.size()) + opening_ < options_.pool_size) {
        // Below budget: open a fresh connection. The slot is reserved while
        // the connect is in flight (Connect yields for the handshake RTT).
        opening_++;
        Result<std::unique_ptr<net::Connection>> conn =
            directory_->Connect(client_, server_);
        opening_--;
        if (conn.ok()) {
          auto pc = std::make_unique<PhysicalConn>();
          pc->conn = std::move(conn).value();
          if (options_.statement_timeout > 0) {
            pc->conn->SetStatementTimeout(options_.statement_timeout);
          }
          PhysicalConn* raw = pc.get();
          live_.push_back(std::move(pc));
          return granted(raw);
        }
        if (conn.status().error_class() == ErrorClass::kFatal) {
          unqueue();
          return conn.status();
        }
        // Transient refusal (node down, gate full, injected refusal): hold
        // the session in the queue and re-probe on the next tick rather
        // than hot-looping on a refusing backend.
        last_open_error = conn.status();
      }
    }
    if (deadline != 0 && sim_->now() >= deadline) {
      unqueue();
      timeouts_metric_->Inc();
      std::string detail = last_open_error.ok()
                               ? "all " + std::to_string(options_.pool_size) +
                                     " pooled connections busy"
                               : last_open_error.message();
      return Status::ResourceExhausted("pool attach to " + server_ +
                                       " timed out: " + detail);
    }
    if (!queued) {
      waiters_.push_back(self);
      waiters_gauge_->Add(1);
      queued = true;
    }
    EnsureTicker();
    if (!sim_->Block()) {
      unqueue();
      return Status::Cancelled("simulation shutting down");
    }
  }
}

void TransactionPooler::Release(PhysicalConn* pc) {
  in_use_gauge_->Add(-1);
  detaches_metric_->Inc();
  free_.push_back(pc);
  idle_gauge_->Add(1);
  if (!waiters_.empty()) sim_->Wake(waiters_.front());
}

void TransactionPooler::Drop(PhysicalConn* pc) {
  in_use_gauge_->Add(-1);
  detaches_metric_->Inc();
  Forget(pc);
  // The budget slot freed up; the front waiter can open a replacement.
  if (!waiters_.empty()) sim_->Wake(waiters_.front());
}

void TransactionPooler::Forget(PhysicalConn* pc) {
  for (auto it = live_.begin(); it != live_.end(); ++it) {
    if (it->get() == pc) {
      live_.erase(it);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// PooledSession
// ---------------------------------------------------------------------------

PooledSession::~PooledSession() { Close(); }

void PooledSession::Close() {
  if (closed_) return;
  closed_ = true;
  pooler_->sessions_gauge_->Add(-1);
  if (attached_ == nullptr) return;
  if (in_txn_ || !attached_->conn->usable()) {
    // Client gone mid-transaction: close the server connection so the
    // backend aborts the orphaned transaction (what pgbouncer does).
    pooler_->Drop(attached_);
  } else {
    pooler_->Release(attached_);
  }
  attached_ = nullptr;
}

std::vector<std::string> PooledSession::ReplayPrefix(
    const PhysicalConn& pc) const {
  if (pc.applied_session == id_ && pc.applied_state_version == state_version_) {
    return {};
  }
  std::vector<std::string> prefix;
  // A fresh backend has no previous tenant to neutralize.
  if (pc.applied_session != 0) prefix.push_back("DISCARD ALL");
  for (const auto& [name, value] : vars_) {
    prefix.push_back("SET " + name + " = '" + value + "'");
  }
  for (const auto& [name, prepare_sql] : prepares_) {
    prefix.push_back(prepare_sql);
  }
  return prefix;
}

Result<engine::QueryResult> PooledSession::RunAttached(const std::string& sql) {
  if (attached_ == nullptr) {
    CITUSX_ASSIGN_OR_RETURN(attached_, pooler_->Acquire());
  }
  PhysicalConn* pc = attached_;
  std::vector<std::string> prefix = ReplayPrefix(*pc);
  bool replayed = !prefix.empty();
  Result<engine::QueryResult> r = [&]() -> Result<engine::QueryResult> {
    if (!replayed) return pc->conn->Query(sql);
    pooler_->replays_metric_->Inc();
    prefix.push_back(sql);
    return pc->conn->QueryBatch(std::move(prefix));
  }();
  if (r.ok()) {
    MarkApplied(pc);
  } else if (!pc->conn->usable()) {
    // Transport failure: the backend is gone, and with it any transaction
    // it held. The session stays logically in_txn_ until the client ends
    // the block, like a libpq client that lost its socket.
    pooler_->Drop(pc);
    attached_ = nullptr;
  } else if (replayed) {
    // QueryBatch stops at the first error, so we cannot tell how much of
    // the replay prefix was applied; mark the backend dirty so the next
    // attach discards and replays from scratch.
    pc->applied_session = PhysicalConn::kDirtyBackend;
  }
  return r;
}

void PooledSession::Detach() {
  if (attached_ == nullptr) return;
  if (attached_->conn->usable()) {
    pooler_->Release(attached_);
  } else {
    pooler_->Drop(attached_);
  }
  attached_ = nullptr;
}

Result<engine::QueryResult> PooledSession::Query(const std::string& sql) {
  if (closed_) return Status::ConnectionLost("pooled session is closed");
  const bool transaction_mode =
      pooler_->options_.mode == PoolMode::kTransaction;
  StmtClass cls = Classify(sql);

  // A session whose pinned connection died mid-transaction: everything
  // fails until the client ends the block, which resolves to a rollback.
  if (in_txn_ && attached_ == nullptr) {
    if (cls == StmtClass::kTxnEnd) {
      in_txn_ = false;
      return Status::ConnectionLost(
          "server connection lost; transaction rolled back");
    }
    return Status::ConnectionLost("server connection to " + pooler_->server_ +
                                  " was lost inside a transaction block");
  }

  switch (cls) {
    case StmtClass::kBegin: {
      Result<engine::QueryResult> r = RunAttached(sql);
      if (r.ok()) in_txn_ = true;
      else if (!in_txn_ && transaction_mode) Detach();
      return r;
    }
    case StmtClass::kTxnEnd: {
      Result<engine::QueryResult> r = RunAttached(sql);
      in_txn_ = false;
      if (transaction_mode) Detach();
      return r;
    }
    case StmtClass::kSet: {
      Result<sql::Statement> parsed = sql::Parse(sql);
      if (!parsed.ok() || parsed.value().kind != sql::Statement::Kind::kSet) {
        break;  // malformed / SET TRANSACTION-style: pass through untracked
      }
      const sql::SetStmt& set = *parsed.value().set;
      if (!in_txn_) {
        // Not in a transaction: record the variable and answer locally —
        // no round trip, no attach. The value reaches whichever backend
        // the session lands on next via the replay prefix.
        // (A session-mode pinned connection's stamp is now stale; the next
        // statement replays onto it.)
        vars_[set.name] = set.value;
        state_version_++;
        engine::QueryResult r;
        r.command_tag = "SET";
        return r;
      }
      // Inside a transaction the backend must see the SET immediately
      // (subsequent statements in the block read it server-side).
      Result<engine::QueryResult> r = RunAttached(sql);
      if (r.ok()) {
        vars_[set.name] = set.value;
        state_version_++;
        if (attached_ != nullptr) MarkApplied(attached_);
      }
      return r;
    }
    case StmtClass::kPrepare: {
      Result<sql::Statement> parsed = sql::Parse(sql);
      if (!parsed.ok() ||
          parsed.value().kind != sql::Statement::Kind::kPrepare) {
        break;  // let the backend produce the authoritative error
      }
      const std::string& name = parsed.value().prepare->name;
      Result<engine::QueryResult> r = RunAttached(sql);
      if (r.ok()) {
        bool known = false;
        for (const auto& [n, s] : prepares_) known |= (n == name);
        // Re-PREPARE of an identical statement is a backend no-op; only a
        // new name extends the replay prefix.
        if (!known) {
          prepares_.emplace_back(name, sql);
          state_version_++;
          if (attached_ != nullptr) MarkApplied(attached_);
        }
      }
      if (transaction_mode && !in_txn_) Detach();
      return r;
    }
    case StmtClass::kDeallocate: {
      Result<sql::Statement> parsed = sql::Parse(sql);
      if (!parsed.ok() ||
          parsed.value().kind != sql::Statement::Kind::kDeallocate) {
        break;
      }
      const std::string& name = parsed.value().deallocate->name;
      Result<engine::QueryResult> r = RunAttached(sql);
      if (r.ok()) {
        if (name.empty()) {
          prepares_.clear();
        } else {
          for (auto it = prepares_.begin(); it != prepares_.end(); ++it) {
            if (it->first == name) {
              prepares_.erase(it);
              break;
            }
          }
        }
        state_version_++;
        if (attached_ != nullptr) MarkApplied(attached_);
      }
      if (transaction_mode && !in_txn_) Detach();
      return r;
    }
    case StmtClass::kDiscard: {
      Result<engine::QueryResult> r = RunAttached(sql);
      if (r.ok()) {
        vars_.clear();
        prepares_.clear();
        state_version_++;
        if (attached_ != nullptr) MarkApplied(attached_);
      }
      if (transaction_mode && !in_txn_) Detach();
      return r;
    }
    case StmtClass::kPlain:
      break;
  }

  Result<engine::QueryResult> r = RunAttached(sql);
  if (transaction_mode && !in_txn_) Detach();
  return r;
}

Result<engine::QueryResult> PooledSession::CopyIn(
    const std::string& table, const std::vector<std::string>& columns,
    std::vector<std::vector<std::string>> rows) {
  if (closed_) return Status::ConnectionLost("pooled session is closed");
  if (in_txn_ && attached_ == nullptr) {
    return Status::ConnectionLost("server connection to " + pooler_->server_ +
                                  " was lost inside a transaction block");
  }
  if (attached_ == nullptr) {
    CITUSX_ASSIGN_OR_RETURN(attached_, pooler_->Acquire());
  }
  // COPY is its own wire message, so any state replay goes first as a
  // separate round trip.
  std::vector<std::string> prefix = ReplayPrefix(*attached_);
  if (!prefix.empty()) {
    pooler_->replays_metric_->Inc();
    Result<engine::QueryResult> replayed =
        attached_->conn->QueryBatch(std::move(prefix));
    if (!replayed.ok()) {
      PhysicalConn* pc = attached_;
      if (!pc->conn->usable()) {
        pooler_->Drop(pc);
        attached_ = nullptr;
      } else {
        pc->applied_session = PhysicalConn::kDirtyBackend;
        if (pooler_->options_.mode == PoolMode::kTransaction && !in_txn_) {
          Detach();
        }
      }
      return replayed.status();
    }
    MarkApplied(attached_);
  }
  Result<engine::QueryResult> r =
      attached_->conn->CopyIn(table, columns, std::move(rows));
  if (!r.ok() && !attached_->conn->usable()) {
    pooler_->Drop(attached_);
    attached_ = nullptr;
  }
  if (pooler_->options_.mode == PoolMode::kTransaction && !in_txn_) Detach();
  return r;
}

}  // namespace citusx::pool
