// Simulated network connections carrying SQL text between nodes, with RTT,
// bandwidth, connection-establishment cost, and per-node connection limits.
//
// Each open connection is backed by a dedicated server-side session process
// on the target node (PostgreSQL's process-per-connection model), which is
// what makes connection scaling a real phenomenon in the simulation (§3.2.1).
//
// Failure semantics (chaos testing): a connection becomes *broken* — and
// every later use returns ConnectionLost — when the server crashes (even if
// it restarts: the backend process died with it), when a statement deadline
// expires (the reply is still in flight, like libpq after a desync), or when
// the fault injector drops the round trip. Callers recover by opening a
// fresh connection, optionally through OpenWithRetry's capped backoff.
#ifndef CITUSX_NET_CONNECTION_H_
#define CITUSX_NET_CONNECTION_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/node.h"
#include "engine/session.h"
#include "sim/channel.h"

namespace citusx::net {

/// Per-node connection bookkeeping (max_connections enforcement).
class ConnectionGate {
 public:
  ConnectionGate(sim::Simulation* sim, int max_connections)
      : slots_(sim, max_connections) {}

  bool TryAdmit() {
    if (slots_.TryAcquire()) return true;
    rejected_++;
    return false;
  }
  void Release() { slots_.Release(); }
  int64_t in_use() const { return slots_.capacity() - slots_.available(); }
  int64_t capacity() const { return slots_.capacity(); }
  /// Connection attempts turned away because every slot was taken.
  int64_t rejected() const { return rejected_; }

 private:
  sim::Semaphore slots_;
  int64_t rejected_ = 0;
};

/// Outcome of one statement inside a pipelined round trip: its own status
/// (SQL-level success or failure) and, on success, its result.
struct StatementOutcome {
  Status status;
  engine::QueryResult result;
};

/// A client handle to a SQL connection. Create with Connection::Open; all
/// methods must be called from a simulated process. Not thread-safe across
/// simulated processes (one in-flight request at a time, like libpq).
class Connection {
 public:
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Establish a connection to `server`. Charges connection-establishment
  /// cost and a round trip; fails with ResourceExhausted when the server is
  /// out of connection slots, Unavailable when it is down or refusing.
  /// `client` may be null (external driver machine with free CPU).
  static Result<std::unique_ptr<Connection>> Open(sim::Simulation* sim,
                                                  engine::Node* client,
                                                  engine::Node* server,
                                                  ConnectionGate* gate);

  /// Open with capped exponential backoff across transient failures
  /// (node down, pool exhausted, injected refusal). Fatal errors and
  /// cancellation return immediately.
  static Result<std::unique_ptr<Connection>> OpenWithRetry(
      sim::Simulation* sim, engine::Node* client, engine::Node* server,
      ConnectionGate* gate, int max_attempts = 5,
      sim::Time initial_backoff = 10 * sim::kMillisecond,
      sim::Time max_backoff = 200 * sim::kMillisecond);

  /// Run one SQL statement and wait for the result.
  Result<engine::QueryResult> Query(const std::string& sql);
  Result<engine::QueryResult> Query(const std::string& sql,
                                    const std::vector<sql::Datum>& params);

  /// Run several statements in one round trip (libpq-style simple-protocol
  /// batching); returns the last statement's result, or the first error.
  Result<engine::QueryResult> QueryBatch(std::vector<std::string> statements);

  /// Run several *independent* statements in one round trip — pipeline mode
  /// with a sync point after each statement. Every statement runs in its own
  /// implicit transaction and reports its own outcome; a SQL error in one
  /// does not skip the rest (unlike QueryBatch, which stops at the first
  /// error). The call-level Status covers the transport only: when it fails
  /// (backend died, reply dropped, deadline) the fate of every statement in
  /// the batch is unknown and the connection is broken.
  Result<std::vector<StatementOutcome>> QueryPipeline(
      std::vector<std::string> statements);

  /// COPY rows into a table over this connection.
  Result<engine::QueryResult> CopyIn(
      const std::string& table, const std::vector<std::string>& columns,
      std::vector<std::vector<std::string>> rows);

  void Close();

  engine::Node* server() const { return server_; }
  bool closed() const { return closed_; }

  /// Per-statement deadline (0 = none). When a round trip exceeds it, the
  /// statement fails with Timeout and the connection becomes broken.
  void SetStatementTimeout(sim::Time deadline) {
    statement_timeout_ = deadline;
  }
  sim::Time statement_timeout() const { return statement_timeout_; }

  /// True once the connection can no longer carry requests (server crash,
  /// statement timeout, injected drop). Broken connections must be replaced.
  bool broken() const { return broken_; }

  /// True when a request sent now could still succeed.
  bool usable() const {
    return !closed_ && !broken_ && !server_->is_down() &&
           server_->restart_epoch() == server_epoch_;
  }

  /// Trace context ("trace_id:span_id") attached to every subsequent request
  /// so the server-side session can parent its spans under the caller's.
  /// Pass an empty string to stop propagating.
  void SetTraceContext(std::string ctx) { trace_context_ = std::move(ctx); }

 private:
  struct Request {
    enum class Kind { kQuery, kCopy, kPipeline };
    Kind kind = Kind::kQuery;
    uint64_t seq = 0;  // matches responses (incl. timeout timers) to requests
    std::string sql;
    /// kQuery: when non-empty, run all, return last (QueryBatch).
    /// kPipeline: run all independently, one outcome each (QueryPipeline).
    std::vector<std::string> batch;
    std::vector<sql::Datum> params;
    std::string copy_table;
    std::vector<std::string> copy_columns;
    std::vector<std::vector<std::string>> copy_rows;
    std::string trace_context;  // empty = not traced
  };
  struct Response {
    uint64_t seq = 0;
    bool timer = false;  // deadline sentinel, not a server reply
    /// Status describes a transport failure (backend died), not a SQL error;
    /// only these break the connection.
    bool transport = false;
    Status status;
    engine::QueryResult result;
    std::vector<StatementOutcome> outcomes;  // kPipeline replies only
  };

  Connection(sim::Simulation* sim, engine::Node* client, engine::Node* server,
             ConnectionGate* gate);

  Result<engine::QueryResult> RoundTrip(Request req);
  Result<Response> RoundTripRaw(Request req);
  sim::Time HalfRtt() const;

  sim::Simulation* sim_;
  engine::Node* client_;
  engine::Node* server_;
  ConnectionGate* gate_;
  // Shared with the server-side backend process, which may outlive this
  // client handle briefly after Close().
  std::shared_ptr<sim::Channel<Request>> requests_;
  std::shared_ptr<sim::Channel<Response>> responses_;
  bool closed_ = false;
  bool broken_ = false;
  uint64_t next_seq_ = 0;
  sim::Time statement_timeout_ = 0;
  uint64_t server_epoch_ = 0;  // server restart epoch at establishment
  std::string trace_context_;
  // Server-node metric handles, resolved once at open.
  obs::Counter* round_trips_metric_ = nullptr;
  obs::Counter* bytes_out_metric_ = nullptr;
  obs::Counter* bytes_in_metric_ = nullptr;
  obs::Counter* timeouts_metric_ = nullptr;
  obs::Counter* drops_metric_ = nullptr;
};

/// Estimated wire size of a query result (for bandwidth charging).
int64_t ResultWireBytes(const engine::QueryResult& result);

}  // namespace citusx::net

#endif  // CITUSX_NET_CONNECTION_H_
