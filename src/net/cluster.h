// Cluster assembly: node directory (name -> Node), connection gates, and a
// helper that builds the paper's benchmark topologies (PostgreSQL,
// Citus 0+1, Citus 4+1, Citus 8+1).
#ifndef CITUSX_NET_CLUSTER_H_
#define CITUSX_NET_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/connection.h"

namespace citusx::net {

/// Resolves node names to live nodes (the DNS / connection-string layer).
class NodeDirectory {
 public:
  explicit NodeDirectory(sim::Simulation* sim) : sim_(sim) {}

  void Register(engine::Node* node) {
    nodes_[node->name()] = node;
    gates_.emplace(node->name(),
                   std::make_unique<ConnectionGate>(
                       sim_, node->cost().max_connections));
  }

  engine::Node* Find(const std::string& name) const {
    auto it = nodes_.find(name);
    return it == nodes_.end() ? nullptr : it->second;
  }

  ConnectionGate* GateFor(const std::string& name) const {
    auto it = gates_.find(name);
    return it == gates_.end() ? nullptr : it->second.get();
  }

  /// Open a connection from `client` (nullable) to the node called `name`.
  Result<std::unique_ptr<Connection>> Connect(engine::Node* client,
                                              const std::string& name) {
    engine::Node* server = Find(name);
    if (server == nullptr) {
      return Status::NotFound("unknown node: " + name);
    }
    return Connection::Open(sim_, client, server, GateFor(name));
  }

  /// Like Connect, but retries transient failures with capped backoff
  /// (see Connection::OpenWithRetry).
  Result<std::unique_ptr<Connection>> ConnectWithRetry(
      engine::Node* client, const std::string& name, int max_attempts = 5) {
    engine::Node* server = Find(name);
    if (server == nullptr) {
      return Status::NotFound("unknown node: " + name);
    }
    return Connection::OpenWithRetry(sim_, client, server, GateFor(name),
                                     max_attempts);
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    for (const auto& [n, node] : nodes_) out.push_back(n);
    return out;
  }

 private:
  sim::Simulation* sim_;
  std::map<std::string, engine::Node*> nodes_;
  std::map<std::string, std::unique_ptr<ConnectionGate>> gates_;
};

/// Owns a set of nodes forming one deployment.
class Cluster {
 public:
  /// Build `1 + num_workers` nodes named "coordinator", "worker1", ... .
  /// With num_workers == 0 the coordinator doubles as the only worker
  /// (the paper's "Citus 0+1" configuration).
  Cluster(sim::Simulation* sim, const sim::CostModel& cost, int num_workers);

  engine::Node* coordinator() { return nodes_.front().get(); }
  std::vector<engine::Node*> workers();
  engine::Node* node(size_t i) { return nodes_[i].get(); }
  size_t num_nodes() const { return nodes_.size(); }
  NodeDirectory& directory() { return directory_; }
  sim::Simulation* sim() { return sim_; }

  /// Cluster-wide trace collector; every node's tracer() points here.
  obs::TraceCollector& tracer() { return tracer_; }

 private:
  sim::Simulation* sim_;
  obs::TraceCollector tracer_;
  NodeDirectory directory_;
  std::vector<std::unique_ptr<engine::Node>> nodes_;
  int num_workers_;
};

}  // namespace citusx::net

#endif  // CITUSX_NET_CLUSTER_H_
