#include "net/connection.h"

namespace citusx::net {

int64_t ResultWireBytes(const engine::QueryResult& result) {
  int64_t bytes = 64;
  for (const auto& row : result.rows) {
    bytes += 8;
    for (const auto& d : row) bytes += d.PhysicalSize();
  }
  return bytes;
}

Connection::Connection(sim::Simulation* sim, engine::Node* client,
                       engine::Node* server, ConnectionGate* gate)
    : sim_(sim),
      client_(client),
      server_(server),
      gate_(gate),
      requests_(std::make_shared<sim::Channel<Request>>(sim)),
      responses_(std::make_shared<sim::Channel<Response>>(sim)) {
  round_trips_metric_ = server->metrics().counter("net.round_trips");
  bytes_out_metric_ = server->metrics().counter("net.bytes_received");
  bytes_in_metric_ = server->metrics().counter("net.bytes_sent");
}

sim::Time Connection::HalfRtt() const {
  // Loopback connections (coordinator acting as worker) are much faster.
  if (client_ == server_) return 25 * sim::kMicrosecond;
  return server_->cost().net_rtt / 2;
}

Result<std::unique_ptr<Connection>> Connection::Open(sim::Simulation* sim,
                                                     engine::Node* client,
                                                     engine::Node* server,
                                                     ConnectionGate* gate) {
  if (server->is_down()) {
    return Status::Unavailable("could not connect: " + server->name() +
                               " is down");
  }
  if (gate != nullptr && !gate->TryAdmit()) {
    return Status::ResourceExhausted(
        "FATAL: sorry, too many clients already (" + server->name() + ")");
  }
  auto conn = std::unique_ptr<Connection>(
      new Connection(sim, client, server, gate));
  server->metrics().counter("net.connections_opened")->Inc();
  // Establishment: RTT handshakes + backend process fork on the server.
  if (!sim->WaitFor(server->cost().connect_cost +
                    (client == server ? 50 * sim::kMicrosecond
                                      : server->cost().net_rtt))) {
    return Status::Cancelled("simulation stopping");
  }
  if (!server->cpu().Consume(500 * sim::kMicrosecond)) {
    return Status::Cancelled("simulation stopping");
  }
  // The backend process serving this connection. It shares ownership of the
  // channels: the client handle may be destroyed while the backend is still
  // draining (PostgreSQL backends also outlive the socket briefly).
  auto requests = conn->requests_;
  auto responses = conn->responses_;
  sim->Spawn(
      server->name() + ":backend",
      [requests, responses, server] {
        auto session = server->OpenSession();
        for (;;) {
          auto req = requests->Receive();
          if (!req.has_value()) break;  // connection closed
          Response resp;
          if (server->is_down()) {
            resp.status = Status::Unavailable(server->name() + " is down");
          } else if (!req->batch.empty()) {
            session->SetVar("citusx.trace_ctx", req->trace_context);
            for (const auto& sql : req->batch) {
              Result<engine::QueryResult> r = session->Execute(sql);
              if (!r.ok()) {
                resp.status = r.status();
                break;
              }
              resp.result = std::move(r).value();
            }
          } else {
            session->SetVar("citusx.trace_ctx", req->trace_context);
            Result<engine::QueryResult> r =
                req->kind == Request::Kind::kQuery
                    ? session->Execute(req->sql, req->params)
                    : session->CopyIn(req->copy_table, req->copy_columns,
                                      req->copy_rows);
            if (r.ok()) {
              resp.result = std::move(r).value();
            } else {
              resp.status = r.status();
            }
          }
          responses->Send(std::move(resp));
        }
      },
      /*daemon=*/true);
  return conn;
}

Result<engine::QueryResult> Connection::RoundTrip(Request req) {
  if (closed_) return Status::Internal("connection is closed");
  if (server_->is_down()) {
    return Status::Unavailable(server_->name() + " is down");
  }
  req.trace_context = trace_context_;
  // Outbound latency plus bandwidth for COPY payloads.
  int64_t out_bytes = static_cast<int64_t>(req.sql.size());
  for (const auto& row : req.copy_rows) {
    for (const auto& f : row) out_bytes += static_cast<int64_t>(f.size()) + 1;
  }
  round_trips_metric_->Inc();
  bytes_out_metric_->Inc(out_bytes);
  sim::Time bw = out_bytes * sim::kSecond / server_->cost().net_bytes_per_second;
  if (!sim_->WaitFor(HalfRtt() + bw)) {
    return Status::Cancelled("simulation stopping");
  }
  requests_->Send(std::move(req));
  auto resp = responses_->Receive();
  if (!resp.has_value()) return Status::Cancelled("connection torn down");
  // Inbound latency plus result bandwidth plus client-side deserialization.
  int64_t in_bytes = ResultWireBytes(resp->result);
  bytes_in_metric_->Inc(in_bytes);
  sim::Time in_bw = in_bytes * sim::kSecond /
                    server_->cost().net_bytes_per_second;
  if (!sim_->WaitFor(HalfRtt() + in_bw)) {
    return Status::Cancelled("simulation stopping");
  }
  if (client_ != nullptr) {
    if (!client_->cpu().Consume(resp->result.NumRows() *
                                client_->cost().cpu_per_row_net)) {
      return Status::Cancelled("simulation stopping");
    }
  }
  if (!resp->status.ok()) return resp->status;
  return std::move(resp->result);
}

Result<engine::QueryResult> Connection::QueryBatch(
    std::vector<std::string> statements) {
  Request req;
  req.kind = Request::Kind::kQuery;
  for (const auto& s : statements) req.sql += s + "; ";
  req.batch = std::move(statements);
  return RoundTrip(std::move(req));
}

Result<engine::QueryResult> Connection::Query(const std::string& sql) {
  Request req;
  req.kind = Request::Kind::kQuery;
  req.sql = sql;
  return RoundTrip(std::move(req));
}

Result<engine::QueryResult> Connection::Query(
    const std::string& sql, const std::vector<sql::Datum>& params) {
  Request req;
  req.kind = Request::Kind::kQuery;
  req.sql = sql;
  req.params = params;
  return RoundTrip(std::move(req));
}

Result<engine::QueryResult> Connection::CopyIn(
    const std::string& table, const std::vector<std::string>& columns,
    std::vector<std::vector<std::string>> rows) {
  Request req;
  req.kind = Request::Kind::kCopy;
  req.copy_table = table;
  req.copy_columns = columns;
  req.copy_rows = std::move(rows);
  return RoundTrip(std::move(req));
}

void Connection::Close() {
  if (closed_) return;
  closed_ = true;
  requests_->Close();
  if (gate_ != nullptr) gate_->Release();
}

Connection::~Connection() { Close(); }

}  // namespace citusx::net
