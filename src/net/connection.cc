#include "net/connection.h"

#include <algorithm>

#include "sim/fault.h"

namespace citusx::net {

int64_t ResultWireBytes(const engine::QueryResult& result) {
  int64_t bytes = 64;
  for (const auto& row : result.rows) {
    bytes += 8;
    for (const auto& d : row) bytes += d.PhysicalSize();
  }
  return bytes;
}

Connection::Connection(sim::Simulation* sim, engine::Node* client,
                       engine::Node* server, ConnectionGate* gate)
    : sim_(sim),
      client_(client),
      server_(server),
      gate_(gate),
      requests_(std::make_shared<sim::Channel<Request>>(sim)),
      responses_(std::make_shared<sim::Channel<Response>>(sim)) {
  round_trips_metric_ = server->metrics().counter("net.round_trips");
  bytes_out_metric_ = server->metrics().counter("net.bytes_received");
  bytes_in_metric_ = server->metrics().counter("net.bytes_sent");
  timeouts_metric_ = server->metrics().counter("net.statement_timeouts");
  drops_metric_ = server->metrics().counter("net.connection_drops");
}

sim::Time Connection::HalfRtt() const {
  // Loopback connections (coordinator acting as worker) are much faster.
  if (client_ == server_) return 25 * sim::kMicrosecond;
  return server_->cost().net_rtt / 2;
}

Result<std::unique_ptr<Connection>> Connection::Open(sim::Simulation* sim,
                                                     engine::Node* client,
                                                     engine::Node* server,
                                                     ConnectionGate* gate) {
  if (server->is_down()) {
    return Status::Unavailable("could not connect: " + server->name() +
                               " is down");
  }
  if (sim->has_fault_injector() && sim->faults().armed() &&
      sim->faults().IsRefusingConnections(server->name())) {
    return Status::Unavailable("could not connect: " + server->name() +
                               " refused the connection");
  }
  if (gate != nullptr && !gate->TryAdmit()) {
    server->metrics().counter("net.admission_rejected")->Inc();
    return Status::ResourceExhausted(
        "FATAL: sorry, too many clients already (" + server->name() + ")");
  }
  auto conn = std::unique_ptr<Connection>(
      new Connection(sim, client, server, gate));
  conn->server_epoch_ = server->restart_epoch();
  server->metrics().counter("net.connections_opened")->Inc();
  // Establishment: RTT handshakes + backend process fork on the server.
  if (!sim->WaitFor(server->cost().connect_cost +
                    (client == server ? 50 * sim::kMicrosecond
                                      : server->cost().net_rtt))) {
    return Status::Cancelled("simulation stopping");
  }
  if (!server->cpu().Consume(500 * sim::kMicrosecond)) {
    return Status::Cancelled("simulation stopping");
  }
  // The server may have crashed during the handshake.
  if (server->is_down() || server->restart_epoch() != conn->server_epoch_) {
    return Status::Unavailable("could not connect: " + server->name() +
                               " went down during the handshake");
  }
  // The backend process serving this connection. It shares ownership of the
  // channels: the client handle may be destroyed while the backend is still
  // draining (PostgreSQL backends also outlive the socket briefly).
  auto requests = conn->requests_;
  auto responses = conn->responses_;
  uint64_t epoch = conn->server_epoch_;
  sim->Spawn(
      server->name() + ":backend",
      [requests, responses, server, epoch] {
        auto session = server->OpenSession();
        for (;;) {
          auto req = requests->Receive();
          if (!req.has_value()) break;  // connection closed
          Response resp;
          resp.seq = req->seq;
          if (server->is_down()) {
            resp.status = Status::Unavailable(server->name() + " is down");
            resp.transport = true;
          } else if (server->restart_epoch() != epoch) {
            // The backend process died in the crash; any straggling request
            // finds the socket reset.
            resp.status = Status::ConnectionLost(
                "server closed the connection unexpectedly (" +
                server->name() + " restarted)");
            resp.transport = true;
          } else if (req->kind == Request::Kind::kPipeline) {
            // Pipeline mode: each statement is its own implicit transaction
            // with its own outcome; a SQL error does not skip the rest. A
            // crash mid-pipeline is caught by the epoch check below, which
            // discards the partial outcomes (the reply never hits the wire).
            session->SetVar("citusx.trace_ctx", req->trace_context);
            resp.outcomes.reserve(req->batch.size());
            for (const auto& sql : req->batch) {
              StatementOutcome out;
              Result<engine::QueryResult> r = session->Execute(sql);
              if (r.ok()) {
                out.result = std::move(r).value();
              } else {
                out.status = r.status();
              }
              resp.outcomes.push_back(std::move(out));
            }
          } else if (!req->batch.empty()) {
            session->SetVar("citusx.trace_ctx", req->trace_context);
            for (const auto& sql : req->batch) {
              Result<engine::QueryResult> r = session->Execute(sql);
              if (!r.ok()) {
                resp.status = r.status();
                break;
              }
              resp.result = std::move(r).value();
            }
          } else {
            session->SetVar("citusx.trace_ctx", req->trace_context);
            Result<engine::QueryResult> r =
                req->kind == Request::Kind::kQuery
                    ? session->Execute(req->sql, req->params)
                    : session->CopyIn(req->copy_table, req->copy_columns,
                                      req->copy_rows);
            if (r.ok()) {
              resp.result = std::move(r).value();
            } else {
              resp.status = r.status();
            }
          }
          if (server->is_down() || server->restart_epoch() != epoch) {
            // The server crashed while the statement was executing. The
            // backend process died with it, so whatever the half-run
            // statement produced never reaches the wire — the client
            // observes a reset socket, not a confused SQL-level error
            // (e.g. PREPARE finding its transaction crash-aborted).
            resp = Response{};
            resp.seq = req->seq;
            resp.status = Status::ConnectionLost(
                "server closed the connection unexpectedly (" +
                server->name() + " crashed mid-statement)");
            resp.transport = true;
          }
          responses->Send(std::move(resp));
        }
      },
      /*daemon=*/true);
  return conn;
}

Result<std::unique_ptr<Connection>> Connection::OpenWithRetry(
    sim::Simulation* sim, engine::Node* client, engine::Node* server,
    ConnectionGate* gate, int max_attempts, sim::Time initial_backoff,
    sim::Time max_backoff) {
  Status last = Status::Unavailable("no connection attempts made");
  sim::Time backoff = initial_backoff;
  for (int attempt = 1; attempt <= max_attempts; attempt++) {
    auto conn = Open(sim, client, server, gate);
    if (conn.ok()) return conn;
    last = conn.status();
    if (last.error_class() == ErrorClass::kFatal) return last;
    if (attempt == max_attempts) break;
    if (!sim->WaitFor(backoff)) return Status::Cancelled("simulation stopping");
    backoff = std::min(backoff * 2, max_backoff);
  }
  return last;
}

Result<engine::QueryResult> Connection::RoundTrip(Request req) {
  CITUSX_ASSIGN_OR_RETURN(Response resp, RoundTripRaw(std::move(req)));
  if (!resp.status.ok()) return resp.status;
  return std::move(resp.result);
}

Result<Connection::Response> Connection::RoundTripRaw(Request req) {
  if (closed_) return Status::Internal("connection is closed");
  if (broken_) {
    return Status::ConnectionLost("connection to " + server_->name() +
                                  " is broken");
  }
  if (server_->is_down()) {
    broken_ = true;
    return Status::Unavailable(server_->name() + " is down");
  }
  if (server_->restart_epoch() != server_epoch_) {
    // The server crashed and came back; this handle's backend died with it.
    broken_ = true;
    return Status::ConnectionLost(
        "server closed the connection unexpectedly (" + server_->name() +
        " restarted)");
  }
  sim::Time extra_delay = 0;
  if (sim_->has_fault_injector() && sim_->faults().armed()) {
    sim::FaultInjector& faults = sim_->faults();
    if (faults.ShouldDropRoundTrip(server_->name())) {
      broken_ = true;
      drops_metric_->Inc();
      return Status::ConnectionLost("connection to " + server_->name() +
                                    " reset by peer");
    }
    extra_delay = faults.ExtraDelay(server_->name());
  }
  req.trace_context = trace_context_;
  req.seq = ++next_seq_;
  uint64_t seq = req.seq;
  if (statement_timeout_ > 0) {
    // Deadline sentinel: a daemon that races the full round trip (outbound
    // latency included, so delay spikes count against the deadline).
    // Responses carry the request sequence, so a stale sentinel (reply won)
    // or a late reply (sentinel won) is discarded by the match below.
    auto responses = responses_;
    sim::Simulation* sim = sim_;
    sim::Time deadline = statement_timeout_;
    sim_->Spawn(
        "net:stmt_timeout",
        [responses, sim, deadline, seq] {
          if (!sim->WaitFor(deadline)) return;
          Response r;
          r.seq = seq;
          r.timer = true;
          responses->Send(std::move(r));
        },
        /*daemon=*/true);
  }
  // Outbound latency plus bandwidth for COPY payloads.
  int64_t out_bytes = static_cast<int64_t>(req.sql.size());
  for (const auto& row : req.copy_rows) {
    for (const auto& f : row) out_bytes += static_cast<int64_t>(f.size()) + 1;
  }
  round_trips_metric_->Inc();
  bytes_out_metric_->Inc(out_bytes);
  sim::Time bw = out_bytes * sim::kSecond / server_->cost().net_bytes_per_second;
  if (!sim_->WaitFor(HalfRtt() + bw + extra_delay)) {
    return Status::Cancelled("simulation stopping");
  }
  requests_->Send(std::move(req));
  std::optional<Response> resp;
  for (;;) {
    resp = responses_->Receive();
    if (!resp.has_value()) return Status::Cancelled("connection torn down");
    if (resp->seq != seq) continue;  // stale sentinel or abandoned reply
    if (resp->timer) {
      // Deadline exceeded. The real reply is still in flight, so the
      // connection cannot be reused (libpq semantics after a cancel/desync).
      broken_ = true;
      timeouts_metric_->Inc();
      return Status::Timeout(
          "canceling statement due to statement timeout (" + server_->name() +
          ")");
    }
    break;
  }
  // Inbound latency plus result bandwidth plus client-side deserialization.
  int64_t in_bytes = ResultWireBytes(resp->result);
  int64_t in_rows = resp->result.NumRows();
  for (const auto& out : resp->outcomes) {
    in_bytes += ResultWireBytes(out.result);
    in_rows += out.result.NumRows();
  }
  bytes_in_metric_->Inc(in_bytes);
  sim::Time in_bw = in_bytes * sim::kSecond /
                    server_->cost().net_bytes_per_second;
  if (!sim_->WaitFor(HalfRtt() + in_bw)) {
    return Status::Cancelled("simulation stopping");
  }
  if (client_ != nullptr) {
    if (!client_->cpu().Consume(in_rows * client_->cost().cpu_per_row_net)) {
      return Status::Cancelled("simulation stopping");
    }
  }
  // Transport failures (the backend died with the server) break the
  // connection; SQL-level errors — including an Unavailable raised by a
  // distributed executor running *on* the server — leave it usable. Both
  // are reported through the returned Response's status.
  if (!resp->status.ok() && resp->transport) broken_ = true;
  return std::move(*resp);
}

Result<engine::QueryResult> Connection::QueryBatch(
    std::vector<std::string> statements) {
  Request req;
  req.kind = Request::Kind::kQuery;
  for (const auto& s : statements) req.sql += s + "; ";
  req.batch = std::move(statements);
  return RoundTrip(std::move(req));
}

Result<std::vector<StatementOutcome>> Connection::QueryPipeline(
    std::vector<std::string> statements) {
  Request req;
  req.kind = Request::Kind::kPipeline;
  for (const auto& s : statements) req.sql += s + "; ";
  req.batch = std::move(statements);
  CITUSX_ASSIGN_OR_RETURN(Response resp, RoundTripRaw(std::move(req)));
  if (!resp.status.ok()) return resp.status;  // transport-level failure
  return std::move(resp.outcomes);
}

Result<engine::QueryResult> Connection::Query(const std::string& sql) {
  Request req;
  req.kind = Request::Kind::kQuery;
  req.sql = sql;
  return RoundTrip(std::move(req));
}

Result<engine::QueryResult> Connection::Query(
    const std::string& sql, const std::vector<sql::Datum>& params) {
  Request req;
  req.kind = Request::Kind::kQuery;
  req.sql = sql;
  req.params = params;
  return RoundTrip(std::move(req));
}

Result<engine::QueryResult> Connection::CopyIn(
    const std::string& table, const std::vector<std::string>& columns,
    std::vector<std::vector<std::string>> rows) {
  Request req;
  req.kind = Request::Kind::kCopy;
  req.copy_table = table;
  req.copy_columns = columns;
  req.copy_rows = std::move(rows);
  return RoundTrip(std::move(req));
}

void Connection::Close() {
  if (closed_) return;
  closed_ = true;
  requests_->Close();
  if (gate_ != nullptr) gate_->Release();
}

Connection::~Connection() { Close(); }

}  // namespace citusx::net
