#include "net/cluster.h"

#include "common/str.h"
#include "sim/fault.h"

namespace citusx::net {

Cluster::Cluster(sim::Simulation* sim, const sim::CostModel& cost,
                 int num_workers)
    : sim_(sim), directory_(sim), num_workers_(num_workers) {
  nodes_.push_back(std::make_unique<engine::Node>(sim, "coordinator", cost));
  for (int i = 1; i <= num_workers; i++) {
    nodes_.push_back(std::make_unique<engine::Node>(
        sim, StrFormat("worker%d", i), cost));
  }
  for (auto& n : nodes_) {
    n->set_tracer(&tracer_);
    directory_.Register(n.get());
    // Make every node a crash/restart target for the fault injector, so
    // tests and the chaos bench can schedule failures by node name.
    engine::Node* node = n.get();
    sim->faults().RegisterTarget(
        node->name(),
        sim::FaultInjector::Target{[node] { node->Crash(); },
                                   [node] { node->Restart(); }});
  }
}

std::vector<engine::Node*> Cluster::workers() {
  std::vector<engine::Node*> out;
  if (num_workers_ == 0) {
    out.push_back(nodes_.front().get());  // coordinator acts as worker
    return out;
  }
  for (size_t i = 1; i < nodes_.size(); i++) out.push_back(nodes_[i].get());
  return out;
}

}  // namespace citusx::net
