#include "exec/vectorized.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/str.h"
#include "exec/batch.h"
#include "sim/channel.h"
#include "storage/columnar.h"

namespace citusx::exec {

namespace {

using engine::ExecContext;
using engine::ExecNode;
using engine::QueryResult;
using sql::ExprPtr;

// ---------------------------------------------------------------------------
// Plan IR: a volcano tree is translated into an ordered list of pipelines.
// Streaming operators (filter/project/hash-probe) live inside a pipeline;
// pipeline breakers (hash build, aggregate, and the sequential tail ops
// sort/limit/distinct/strip) terminate one and feed the next through a
// materialized intermediate.

struct VecSource {
  enum class Kind { kColumnar, kHeap, kTemp, kMaterialized };
  Kind kind = Kind::kMaterialized;
  engine::TableInfo* table = nullptr;  // kColumnar / kHeap
  ExprPtr filter;                      // scan filter; may be null
  std::vector<int> projection;         // kColumnar: referenced columns
  const engine::TempRelation* temp = nullptr;  // kTemp
  int inter = -1;                      // kMaterialized: intermediate slot
  size_t width = 0;
};

struct VecOp {
  enum class Kind { kFilter, kProject, kHashProbe };
  Kind kind = Kind::kFilter;
  ExprPtr predicate;            // kFilter
  std::vector<ExprPtr> exprs;   // kProject
  // kHashProbe:
  int build = -1;               // hash-table slot
  std::vector<ExprPtr> keys;    // probe keys over the left layout
  ExprPtr residual;
  sql::JoinType join_type = sql::JoinType::kInner;
  size_t build_width = 0;
  size_t out_width = 0;
};

struct VecSink {
  enum class Kind { kCollect, kHashBuild, kAggregate };
  Kind kind = Kind::kCollect;
  int target = -1;              // intermediate slot or hash-table slot
  std::vector<ExprPtr> keys;    // kHashBuild
  std::vector<ExprPtr> group_exprs;  // kAggregate
  std::vector<engine::AggSpec> aggs;
};

/// Sequential op applied to a collected intermediate once its pipeline
/// completes (these are inherently order-sensitive, so they run on the
/// coordinating process).
struct PostOp {
  enum class Kind { kSort, kLimit, kDistinct, kStrip };
  Kind kind = Kind::kSort;
  std::vector<int> sort_slots;
  std::vector<bool> desc;
  int64_t limit = -1;
  int64_t offset = 0;
  int keep = 0;
};

struct Pipeline {
  VecSource source;
  std::vector<VecOp> ops;
  VecSink sink;
  std::vector<PostOp> posts;  // kCollect sinks only
  std::string desc;
};

struct VecPlan {
  std::vector<Pipeline> pipelines;
  int num_inters = 0;
  int num_hash_tables = 0;
  int final_inter = -1;  // slot holding the final row set
};

// ---------------------------------------------------------------------------
// Builder: recognizes the volcano node shapes the vectorized engine covers;
// anything else (index scans, row locking, nested loops, OneRow) declines.

class Builder {
 public:
  explicit Builder(VecPlan* plan) : plan_(plan) {}

  /// Translate the subtree at `n` into an open pipeline (no sink yet).
  /// Returns false when the shape is unsupported.
  bool Build(const ExecNode* n, Pipeline* out) {
    if (auto* scan = dynamic_cast<const engine::SeqScanNode*>(n)) {
      if (scan->lock_rows || scan->emit_rowid) return false;
      out->source.kind = scan->table->is_columnar() ? VecSource::Kind::kColumnar
                                                    : VecSource::Kind::kHeap;
      out->source.table = scan->table;
      out->source.filter = scan->filter;
      out->source.projection = scan->projection;
      out->source.width = n->output_types.size();
      out->desc = "scan " + scan->table->name;
      return true;
    }
    if (auto* temp = dynamic_cast<const engine::TempScanNode*>(n)) {
      out->source.kind = VecSource::Kind::kTemp;
      out->source.temp = temp->relation;
      out->source.filter = temp->filter;
      out->source.width = n->output_types.size();
      out->desc = "scan intermediate";
      return true;
    }
    if (auto* filter = dynamic_cast<const engine::FilterNode*>(n)) {
      if (!Build(filter->input.get(), out)) return false;
      VecOp op;
      op.kind = VecOp::Kind::kFilter;
      op.predicate = filter->predicate;
      op.out_width = n->output_types.size();
      out->ops.push_back(std::move(op));
      out->desc += " -> filter";
      return true;
    }
    if (auto* proj = dynamic_cast<const engine::ProjectNode*>(n)) {
      if (!Build(proj->input.get(), out)) return false;
      VecOp op;
      op.kind = VecOp::Kind::kProject;
      op.exprs = proj->exprs;
      op.out_width = proj->exprs.size();
      out->ops.push_back(std::move(op));
      out->desc += " -> project";
      return true;
    }
    if (auto* join = dynamic_cast<const engine::HashJoinNode*>(n)) {
      if (join->join_type != sql::JoinType::kInner &&
          join->join_type != sql::JoinType::kLeft) {
        return false;
      }
      // Build side becomes its own pipeline ending in a hash-build sink.
      Pipeline build;
      if (!Build(join->right.get(), &build)) return false;
      int slot = plan_->num_hash_tables++;
      build.sink.kind = VecSink::Kind::kHashBuild;
      build.sink.target = slot;
      build.sink.keys = join->right_keys;
      build.desc += " -> hash build";
      plan_->pipelines.push_back(std::move(build));
      // Probe continues the current pipeline.
      if (!Build(join->left.get(), out)) return false;
      VecOp op;
      op.kind = VecOp::Kind::kHashProbe;
      op.build = slot;
      op.keys = join->left_keys;
      op.residual = join->residual;
      op.join_type = join->join_type;
      op.build_width = join->right->output_types.size();
      op.out_width = n->output_types.size();
      out->ops.push_back(std::move(op));
      out->desc += " -> hash probe";
      return true;
    }
    if (auto* agg = dynamic_cast<const engine::AggNode*>(n)) {
      Pipeline p;
      if (!Build(agg->input.get(), &p)) return false;
      int slot = plan_->num_inters++;
      p.sink.kind = VecSink::Kind::kAggregate;
      p.sink.target = slot;
      p.sink.group_exprs = agg->group_exprs;
      p.sink.aggs = agg->aggs;
      p.desc += " -> partial agg";
      plan_->pipelines.push_back(std::move(p));
      MaterializedSource(slot, n->output_types.size(), out);
      return true;
    }
    if (auto* sort = dynamic_cast<const engine::SortNode*>(n)) {
      PostOp post;
      post.kind = PostOp::Kind::kSort;
      post.sort_slots = sort->sort_slots;
      post.desc = sort->desc;
      return SequentialTail(sort->input.get(), std::move(post), "sort",
                            n->output_types.size(), out);
    }
    if (auto* limit = dynamic_cast<const engine::LimitNode*>(n)) {
      PostOp post;
      post.kind = PostOp::Kind::kLimit;
      post.limit = limit->limit;
      post.offset = limit->offset;
      return SequentialTail(limit->input.get(), std::move(post), "limit",
                            n->output_types.size(), out);
    }
    if (auto* distinct = dynamic_cast<const engine::DistinctNode*>(n)) {
      PostOp post;
      post.kind = PostOp::Kind::kDistinct;
      return SequentialTail(distinct->input.get(), std::move(post), "distinct",
                            n->output_types.size(), out);
    }
    if (auto* strip = dynamic_cast<const engine::StripColumnsNode*>(n)) {
      PostOp post;
      post.kind = PostOp::Kind::kStrip;
      post.keep = strip->keep;
      return SequentialTail(strip->input.get(), std::move(post), "strip",
                            n->output_types.size(), out);
    }
    // Transparent wrappers (plan owner nodes).
    if (const ExecNode* child = n->explain_child(); child != nullptr) {
      return Build(child, out);
    }
    return false;
  }

 private:
  void MaterializedSource(int slot, size_t width, Pipeline* out) {
    out->source.kind = VecSource::Kind::kMaterialized;
    out->source.inter = slot;
    out->source.width = width;
    out->desc = "scan intermediate";
  }

  /// Sort/limit/distinct/strip: collect the input pipeline into an
  /// intermediate and append a sequential post op. Consecutive tail ops
  /// chain onto the same pipeline instead of re-materializing.
  bool SequentialTail(const ExecNode* input, PostOp post, const char* name,
                      size_t width, Pipeline* out) {
    Pipeline p;
    if (!Build(input, &p)) return false;
    if (p.source.kind == VecSource::Kind::kMaterialized && p.ops.empty() &&
        !plan_->pipelines.empty() &&
        plan_->pipelines.back().sink.kind == VecSink::Kind::kCollect &&
        plan_->pipelines.back().sink.target == p.source.inter) {
      // The input already ends in a collected intermediate: chain.
      plan_->pipelines.back().posts.push_back(std::move(post));
      plan_->pipelines.back().desc += StrFormat(" -> %s", name);
      MaterializedSource(p.source.inter, width, out);
      return true;
    }
    int slot = plan_->num_inters++;
    p.sink.kind = VecSink::Kind::kCollect;
    p.sink.target = slot;
    p.posts.push_back(std::move(post));
    p.desc += StrFormat(" -> %s", name);
    plan_->pipelines.push_back(std::move(p));
    MaterializedSource(slot, width, out);
    return true;
  }

  VecPlan* plan_;
};

// ---------------------------------------------------------------------------
// Aggregation state, mirroring the volcano executor's semantics exactly
// (sum/avg track int and float sums, aggregates skip NULLs, min/max via
// Datum::Compare). Partial states merge across morsel workers; DISTINCT
// arguments are collected as value sets and folded only at merge time so
// duplicates seen by different workers cannot double-count.

struct AggState {
  int64_t count = 0;
  double sum_f = 0;
  int64_t sum_i = 0;
  bool sum_is_float = false;
  bool any = false;
  sql::Datum min_max;
  std::map<std::string, sql::Datum> distinct_vals;  // key -> value
};

void AggTransition(const engine::AggSpec& spec, const sql::Datum& v,
                   AggState* st) {
  if (spec.func == "count") {
    st->count++;
    return;
  }
  st->any = true;
  if (spec.func == "sum" || spec.func == "avg") {
    st->count++;
    if (v.type() == sql::TypeId::kFloat8) {
      st->sum_is_float = true;
      st->sum_f += v.float_value();
    } else {
      st->sum_i += v.AsInt64();
      st->sum_f += static_cast<double>(v.AsInt64());
    }
    return;
  }
  if (spec.func == "min") {
    if (st->min_max.is_null() || sql::Datum::Compare(v, st->min_max) < 0) {
      st->min_max = v;
    }
    return;
  }
  if (spec.func == "max") {
    if (st->min_max.is_null() || sql::Datum::Compare(v, st->min_max) > 0) {
      st->min_max = v;
    }
    return;
  }
}

void MergeAggState(const engine::AggSpec& spec, const AggState& in,
                   AggState* out) {
  if (spec.distinct) {
    for (const auto& [k, v] : in.distinct_vals) {
      out->distinct_vals.emplace(k, v);
    }
    return;
  }
  out->count += in.count;
  out->sum_i += in.sum_i;
  out->sum_f += in.sum_f;
  out->sum_is_float |= in.sum_is_float;
  out->any |= in.any;
  if (!in.min_max.is_null()) {
    if (out->min_max.is_null() ||
        (spec.func == "min" &&
         sql::Datum::Compare(in.min_max, out->min_max) < 0) ||
        (spec.func == "max" &&
         sql::Datum::Compare(in.min_max, out->min_max) > 0)) {
      out->min_max = in.min_max;
    }
  }
}

sql::Datum AggFinal(const engine::AggSpec& spec, const AggState& st) {
  if (spec.func == "count") return sql::Datum::Int8(st.count);
  if (spec.func == "sum") {
    if (!st.any) return sql::Datum::Null();
    return st.sum_is_float ? sql::Datum::Float8(st.sum_f)
                           : sql::Datum::Int8(st.sum_i);
  }
  if (spec.func == "avg") {
    if (st.count == 0) return sql::Datum::Null();
    return sql::Datum::Float8(st.sum_f / static_cast<double>(st.count));
  }
  return st.min_max;  // min/max; NULL when no input
}

struct AggGroup {
  sql::Row keys;
  std::vector<AggState> states;
};
using AggGroups = std::map<std::string, AggGroup>;

using HashTable = std::unordered_map<std::string, std::vector<sql::Row>>;

// ---------------------------------------------------------------------------
// Runtime state shared by the coordinating process and the morsel workers.
// Heap-allocated and co-owned by every worker so cancellation at simulation
// shutdown cannot dangle (the adaptive-executor idiom).

struct MorselTask {
  int64_t begin = 0;   // heap/temp/materialized: row range
  int64_t end = 0;
  int64_t stripe = -1;  // columnar: read-unit index
};

struct PipelineRun {
  const VecPlan* plan = nullptr;
  const Pipeline* pipe = nullptr;
  std::vector<std::vector<sql::Row>>* inters = nullptr;
  std::vector<HashTable>* hash_tables = nullptr;

  std::vector<MorselTask> morsels;
  size_t next_morsel = 0;
  int64_t pruned_stripes = 0;

  // Per-worker partial sinks, merged in worker order by the coordinator.
  std::vector<std::vector<sql::Row>> local_rows;
  std::vector<HashTable> local_tables;
  std::vector<AggGroups> local_groups;
  std::vector<int64_t> local_source_rows;

  bool abort = false;
  Status error;  // first error wins

  obs::TraceCollector* tracer = nullptr;
  obs::TraceId trace = 0;
  obs::SpanId span = 0;  // pipeline span

  std::unique_ptr<sim::Channel<int>> done;

  void Fail(Status s) {
    if (error.ok()) error = std::move(s);
    abort = true;
  }
};

Result<std::string> RowKeyOf(ExecContext& ctx,
                             const std::vector<ExprPtr>& keys,
                             const sql::Row& row) {
  std::string out;
  auto ec = ctx.EvalCtx(&row);
  for (const auto& k : keys) {
    CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*k, ec));
    if (v.is_null()) return std::string();  // NULL keys never join
    out += v.GroupKey();
    out.push_back('\x1f');
  }
  return out;
}

// ---- min/max stripe pruning ------------------------------------------------

/// True when the scan filter provably rejects every row of a stripe, using
/// per-column min/max. Handles top-level AND of {col op const} and
/// {col BETWEEN a AND b}-shaped conjuncts; anything else is conservatively
/// kept.
bool StripePrunable(const sql::ExprPtr& filter,
                    const std::vector<storage::ColumnStats>& stats) {
  if (filter == nullptr) return false;
  std::vector<ExprPtr> conjuncts;
  engine::SplitConjuncts(filter, &conjuncts);
  for (const auto& c : conjuncts) {
    if (c->kind != sql::ExprKind::kBinary) continue;
    sql::BinOp op = c->bin_op;
    if (op != sql::BinOp::kEq && op != sql::BinOp::kLt &&
        op != sql::BinOp::kLe && op != sql::BinOp::kGt &&
        op != sql::BinOp::kGe) {
      continue;
    }
    const ExprPtr& lhs = c->args[0];
    const ExprPtr& rhs = c->args[1];
    const sql::Expr* col = nullptr;
    const sql::Expr* lit = nullptr;
    bool flipped = false;
    if (lhs->kind == sql::ExprKind::kColumnRef &&
        rhs->kind == sql::ExprKind::kConst) {
      col = lhs.get();
      lit = rhs.get();
    } else if (rhs->kind == sql::ExprKind::kColumnRef &&
               lhs->kind == sql::ExprKind::kConst) {
      col = rhs.get();
      lit = lhs.get();
      flipped = true;
    } else {
      continue;
    }
    // Bound scan filters reference the full table row, so the resolved slot
    // is the physical column index.
    int idx = col->slot;
    if (idx < 0 || static_cast<size_t>(idx) >= stats.size()) continue;
    const storage::ColumnStats& st = stats[static_cast<size_t>(idx)];
    if (!st.has_values) continue;  // all-NULL column never matches anyway,
                                   // but comparisons with NULL are not
                                   // prunable knowledge; keep conservative
    const sql::Datum& v = lit->value;
    if (v.is_null()) continue;
    // Normalize to col OP v.
    sql::BinOp norm = op;
    if (flipped) {
      switch (op) {
        case sql::BinOp::kLt: norm = sql::BinOp::kGt; break;
        case sql::BinOp::kLe: norm = sql::BinOp::kGe; break;
        case sql::BinOp::kGt: norm = sql::BinOp::kLt; break;
        case sql::BinOp::kGe: norm = sql::BinOp::kLe; break;
        default: break;
      }
    }
    int cmp_min = sql::Datum::Compare(st.min, v);
    int cmp_max = sql::Datum::Compare(st.max, v);
    bool impossible = false;
    switch (norm) {
      case sql::BinOp::kEq: impossible = cmp_min > 0 || cmp_max < 0; break;
      case sql::BinOp::kLt: impossible = cmp_min >= 0; break;
      case sql::BinOp::kLe: impossible = cmp_min > 0; break;
      case sql::BinOp::kGt: impossible = cmp_max <= 0; break;
      case sql::BinOp::kGe: impossible = cmp_max < 0; break;
      default: break;
    }
    if (impossible) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Morsel execution.

/// Read one morsel of the pipeline's source into a DataChunk. Returns false
/// in `*ok` on cancellation (no data touched afterwards).
Status ReadMorsel(ExecContext& ctx, PipelineRun& run, const MorselTask& m,
                  DataChunk* chunk, bool* cancelled) {
  *cancelled = false;
  const VecSource& src = run.pipe->source;
  switch (src.kind) {
    case VecSource::Kind::kColumnar: {
      storage::StripeView view;
      if (!src.table->columnar->ReadStripe(m.stripe, src.projection, &view)) {
        *cancelled = true;
        return Status::OK();
      }
      if (!ctx.ChargeCpu(view.rows * ctx.cost->vec_per_row_scan).ok()) {
        *cancelled = true;
        return Status::OK();
      }
      chunk->rows = view.rows;
      chunk->columns.clear();
      for (const auto* col : view.columns) {
        chunk->columns.push_back(ColumnRef::Borrowed(col));
      }
      return Status::OK();
    }
    case VecSource::Kind::kHeap: {
      if (!ctx.ChargeCpu((m.end - m.begin) * ctx.cost->vec_per_row_scan)
               .ok()) {
        *cancelled = true;
        return Status::OK();
      }
      size_t width = static_cast<size_t>(src.table->schema().num_columns());
      std::vector<std::vector<sql::Datum>> cols(width);
      for (int64_t rid = m.begin; rid < m.end; rid++) {
        if (!src.table->heap->TouchRow(static_cast<storage::RowId>(rid),
                                       /*dirty=*/false)) {
          *cancelled = true;
          return Status::OK();
        }
        const storage::TupleVersion* v = src.table->heap->VisibleVersion(
            static_cast<storage::RowId>(rid), ctx.snapshot, *ctx.txns);
        if (v == nullptr) continue;
        for (size_t c = 0; c < width; c++) cols[c].push_back(v->row[c]);
      }
      chunk->rows = cols.empty() ? 0 : static_cast<int64_t>(cols[0].size());
      chunk->columns.clear();
      for (auto& c : cols) chunk->columns.push_back(ColumnRef::Owned(std::move(c)));
      return Status::OK();
    }
    case VecSource::Kind::kTemp:
    case VecSource::Kind::kMaterialized: {
      const std::vector<sql::Row>* rows =
          src.kind == VecSource::Kind::kTemp
              ? &src.temp->rows
              : &(*run.inters)[static_cast<size_t>(src.inter)];
      if (!ctx.ChargeCpu((m.end - m.begin) * ctx.cost->vec_per_row_scan)
               .ok()) {
        *cancelled = true;
        return Status::OK();
      }
      size_t width = src.width;
      std::vector<std::vector<sql::Datum>> cols(width);
      for (int64_t r = m.begin; r < m.end; r++) {
        const sql::Row& row = (*rows)[static_cast<size_t>(r)];
        for (size_t c = 0; c < width && c < row.size(); c++) {
          cols[c].push_back(row[c]);
        }
      }
      chunk->rows = m.end - m.begin;
      chunk->columns.clear();
      for (auto& c : cols) chunk->columns.push_back(ColumnRef::Owned(std::move(c)));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable source kind");
}

/// Apply a filter expression to `chunk`, narrowing its selection vector.
Status FilterChunk(ExecContext& ctx, const ExprPtr& pred, DataChunk* chunk,
                   bool* cancelled) {
  *cancelled = false;
  int64_t n = chunk->Count();
  if (n == 0 || pred == nullptr) return Status::OK();
  if (!ctx.ChargeCpu(n * ctx.cost->vec_per_expr_eval).ok()) {
    *cancelled = true;
    return Status::OK();
  }
  std::vector<int64_t> sel;
  sel.reserve(static_cast<size_t>(n));
  sql::Row scratch;
  for (int64_t i = 0; i < n; i++) {
    chunk->GatherRow(i, &scratch);
    auto ec = ctx.EvalCtx(&scratch);
    CITUSX_ASSIGN_OR_RETURN(bool keep, sql::EvalPredicate(*pred, ec));
    if (keep) sel.push_back(chunk->At(i));
  }
  chunk->filtered = true;
  chunk->sel = std::move(sel);
  return Status::OK();
}

/// Evaluate projection expressions into fresh owned columns.
Status ProjectChunk(ExecContext& ctx, const std::vector<ExprPtr>& exprs,
                    DataChunk* chunk, bool* cancelled) {
  *cancelled = false;
  int64_t n = chunk->Count();
  if (!ctx.ChargeCpu(n * static_cast<int64_t>(exprs.size()) *
                     ctx.cost->vec_per_expr_eval)
           .ok()) {
    *cancelled = true;
    return Status::OK();
  }
  std::vector<std::vector<sql::Datum>> cols(exprs.size());
  for (auto& c : cols) c.reserve(static_cast<size_t>(n));
  sql::Row scratch;
  for (int64_t i = 0; i < n; i++) {
    chunk->GatherRow(i, &scratch);
    auto ec = ctx.EvalCtx(&scratch);
    for (size_t e = 0; e < exprs.size(); e++) {
      CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*exprs[e], ec));
      cols[e].push_back(std::move(v));
    }
  }
  DataChunk out;
  out.rows = n;
  for (auto& c : cols) out.columns.push_back(ColumnRef::Owned(std::move(c)));
  *chunk = std::move(out);
  return Status::OK();
}

/// Probe a built hash table; emits combined rows into fresh owned columns.
Status ProbeChunk(ExecContext& ctx, const VecOp& op, const HashTable& table,
                  DataChunk* chunk, bool* cancelled) {
  *cancelled = false;
  int64_t n = chunk->Count();
  if (!ctx.ChargeCpu(n * ctx.cost->vec_per_row_hash).ok()) {
    *cancelled = true;
    return Status::OK();
  }
  size_t left_width = chunk->columns.size();
  size_t out_width = left_width + op.build_width;
  std::vector<std::vector<sql::Datum>> cols(out_width);
  sql::Row scratch;
  auto emit = [&](const sql::Row& left, const sql::Row* right) {
    for (size_t c = 0; c < left_width; c++) cols[c].push_back(left[c]);
    for (size_t c = 0; c < op.build_width; c++) {
      cols[left_width + c].push_back(right == nullptr ? sql::Datum::Null()
                                                      : (*right)[c]);
    }
  };
  for (int64_t i = 0; i < n; i++) {
    chunk->GatherRow(i, &scratch);
    CITUSX_ASSIGN_OR_RETURN(std::string key, RowKeyOf(ctx, op.keys, scratch));
    bool matched = false;
    if (!key.empty()) {
      auto it = table.find(key);
      if (it != table.end()) {
        for (const sql::Row& rrow : it->second) {
          if (op.residual != nullptr) {
            sql::Row combined = scratch;
            combined.insert(combined.end(), rrow.begin(), rrow.end());
            auto ec = ctx.EvalCtx(&combined);
            CITUSX_ASSIGN_OR_RETURN(bool keep,
                                    sql::EvalPredicate(*op.residual, ec));
            if (!keep) continue;
          }
          matched = true;
          emit(scratch, &rrow);
        }
      }
    }
    if (!matched && op.join_type == sql::JoinType::kLeft) {
      emit(scratch, nullptr);
    }
  }
  DataChunk out;
  out.rows = cols.empty() ? 0 : static_cast<int64_t>(cols[0].size());
  for (auto& c : cols) out.columns.push_back(ColumnRef::Owned(std::move(c)));
  *chunk = std::move(out);
  return Status::OK();
}

/// Feed a finished chunk into the worker-local sink.
Status SinkChunk(ExecContext& ctx, PipelineRun& run, int worker,
                 DataChunk& chunk, bool* cancelled) {
  *cancelled = false;
  int64_t n = chunk.Count();
  const VecSink& sink = run.pipe->sink;
  switch (sink.kind) {
    case VecSink::Kind::kCollect: {
      auto& rows = run.local_rows[static_cast<size_t>(worker)];
      sql::Row scratch;
      for (int64_t i = 0; i < n; i++) {
        chunk.GatherRow(i, &scratch);
        rows.push_back(scratch);
      }
      return Status::OK();
    }
    case VecSink::Kind::kHashBuild: {
      if (!ctx.ChargeCpu(n * ctx.cost->vec_per_row_hash).ok()) {
        *cancelled = true;
        return Status::OK();
      }
      auto& table = run.local_tables[static_cast<size_t>(worker)];
      sql::Row scratch;
      for (int64_t i = 0; i < n; i++) {
        chunk.GatherRow(i, &scratch);
        CITUSX_ASSIGN_OR_RETURN(std::string key,
                                RowKeyOf(ctx, sink.keys, scratch));
        if (!key.empty()) table[key].push_back(scratch);
      }
      return Status::OK();
    }
    case VecSink::Kind::kAggregate: {
      if (!ctx.ChargeCpu(n * ctx.cost->vec_per_row_hash).ok()) {
        *cancelled = true;
        return Status::OK();
      }
      auto& groups = run.local_groups[static_cast<size_t>(worker)];
      sql::Row scratch;
      for (int64_t i = 0; i < n; i++) {
        chunk.GatherRow(i, &scratch);
        auto ec = ctx.EvalCtx(&scratch);
        std::string key;
        sql::Row key_vals;
        for (const auto& g : sink.group_exprs) {
          CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*g, ec));
          key += v.GroupKey();
          key.push_back('\x1f');
          key_vals.push_back(std::move(v));
        }
        auto [it, added] = groups.try_emplace(key);
        if (added) {
          it->second.keys = std::move(key_vals);
          it->second.states.resize(sink.aggs.size());
        }
        for (size_t a = 0; a < sink.aggs.size(); a++) {
          const engine::AggSpec& spec = sink.aggs[a];
          sql::Datum v;
          if (spec.arg != nullptr) {
            CITUSX_ASSIGN_OR_RETURN(v, sql::Eval(*spec.arg, ec));
            if (v.is_null()) continue;  // aggregates skip NULLs
          }
          AggState& st = it->second.states[a];
          if (spec.distinct && spec.arg != nullptr) {
            // Collect values only; folded at merge so workers cannot
            // double-count a value seen in several morsels.
            st.distinct_vals.emplace(v.GroupKey(), v);
            continue;
          }
          AggTransition(spec, v, &st);
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable sink kind");
}

/// One worker process: claim morsels until none remain, running the
/// pipeline's operator chain over each. Every exit path sends exactly one
/// completion message, so the coordinator can never hang — a mid-query
/// crash or cancellation surfaces as an error status instead.
void MorselWorker(std::shared_ptr<PipelineRun> run, int worker,
                  ExecContext ctx) {
  Status status = Status::OK();
  bool cancelled = false;
  while (!cancelled && status.ok()) {
    if (run->abort || ctx.sim->stopping()) break;
    if (run->next_morsel >= run->morsels.size()) break;
    const MorselTask m = run->morsels[run->next_morsel++];
    obs::SpanId mspan = 0;
    if (run->tracer != nullptr) {
      mspan = run->tracer->StartSpan(run->trace, run->span, "morsel", "",
                                     ctx.sim->now());
    }
    if (!ctx.ChargeCpu(ctx.cost->vec_morsel_overhead).ok()) {
      cancelled = true;
      break;
    }
    DataChunk chunk;
    status = ReadMorsel(ctx, *run, m, &chunk, &cancelled);
    if (!status.ok() || cancelled) break;
    run->local_source_rows[static_cast<size_t>(worker)] += chunk.rows;
    if (run->pipe->source.filter != nullptr) {
      status = FilterChunk(ctx, run->pipe->source.filter, &chunk, &cancelled);
      if (!status.ok() || cancelled) break;
    }
    for (const VecOp& op : run->pipe->ops) {
      switch (op.kind) {
        case VecOp::Kind::kFilter:
          status = FilterChunk(ctx, op.predicate, &chunk, &cancelled);
          break;
        case VecOp::Kind::kProject:
          status = ProjectChunk(ctx, op.exprs, &chunk, &cancelled);
          break;
        case VecOp::Kind::kHashProbe:
          status = ProbeChunk(
              ctx, op, (*run->hash_tables)[static_cast<size_t>(op.build)],
              &chunk, &cancelled);
          break;
      }
      if (!status.ok() || cancelled) break;
    }
    if (!status.ok() || cancelled) break;
    status = SinkChunk(ctx, *run, worker, chunk, &cancelled);
    if (run->tracer != nullptr) {
      run->tracer->SetRows(mspan, chunk.Count());
      run->tracer->EndSpan(mspan, ctx.sim->now());
    }
  }
  if (cancelled) {
    run->Fail(Status::Cancelled("simulation stopping"));
  } else if (!status.ok()) {
    run->Fail(std::move(status));
  }
  CITUSX_IGNORE_STATUS(ctx.FlushCpu(), "worker exit; cancellation handled");
  run->done->Send(worker);
}

// ---- sequential post ops ---------------------------------------------------

Status ApplyPost(ExecContext& ctx, const PostOp& post,
                 std::vector<sql::Row>* rows) {
  switch (post.kind) {
    case PostOp::Kind::kSort: {
      CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(
          static_cast<int64_t>(rows->size()) * ctx.cost->vec_per_row_sort));
      std::stable_sort(rows->begin(), rows->end(),
                       [&post](const sql::Row& a, const sql::Row& b) {
                         for (size_t i = 0; i < post.sort_slots.size(); i++) {
                           size_t s =
                               static_cast<size_t>(post.sort_slots[i]);
                           int c = sql::Datum::Compare(a[s], b[s]);
                           if (c != 0) return post.desc[i] ? c > 0 : c < 0;
                         }
                         return false;
                       });
      return Status::OK();
    }
    case PostOp::Kind::kLimit: {
      int64_t begin = std::min<int64_t>(post.offset,
                                        static_cast<int64_t>(rows->size()));
      int64_t end = post.limit < 0
                        ? static_cast<int64_t>(rows->size())
                        : std::min<int64_t>(begin + post.limit,
                                            static_cast<int64_t>(rows->size()));
      std::vector<sql::Row> out(rows->begin() + begin, rows->begin() + end);
      *rows = std::move(out);
      return Status::OK();
    }
    case PostOp::Kind::kDistinct: {
      CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(
          static_cast<int64_t>(rows->size()) * ctx.cost->vec_per_row_hash));
      std::set<std::string> seen;
      std::vector<sql::Row> out;
      for (auto& row : *rows) {
        std::string key;
        for (const auto& d : row) {
          key += d.GroupKey();
          key.push_back('\x1f');
        }
        if (seen.insert(key).second) out.push_back(std::move(row));
      }
      *rows = std::move(out);
      return Status::OK();
    }
    case PostOp::Kind::kStrip: {
      for (auto& row : *rows) row.resize(static_cast<size_t>(post.keep));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable post op");
}

// ---------------------------------------------------------------------------
// Pipeline driver.

Status RunPipeline(engine::Node* node, ExecContext& ctx, const VecPlan& plan,
                   const Pipeline& pipe,
                   std::vector<std::vector<sql::Row>>* inters,
                   std::vector<HashTable>* hash_tables) {
  CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->vec_pipeline_startup));

  auto run = std::make_shared<PipelineRun>();
  run->plan = &plan;
  run->pipe = &pipe;
  run->inters = inters;
  run->hash_tables = hash_tables;
  run->done = std::make_unique<sim::Channel<int>>(ctx.sim);
  run->tracer = ctx.tracer;
  run->trace = ctx.trace;

  // Split the source into morsels.
  switch (pipe.source.kind) {
    case VecSource::Kind::kColumnar: {
      storage::ColumnarTable* col = pipe.source.table->columnar.get();
      int64_t units = col->num_read_units();
      for (int64_t s = 0; s < units; s++) {
        if (!col->StripeVisible(s, ctx.snapshot, *ctx.txns)) continue;
        const std::vector<storage::ColumnStats>* stats = col->StripeStats(s);
        if (stats != nullptr && StripePrunable(pipe.source.filter, *stats)) {
          run->pruned_stripes++;
          continue;
        }
        MorselTask m;
        m.stripe = s;
        run->morsels.push_back(m);
      }
      break;
    }
    case VecSource::Kind::kHeap: {
      int64_t n =
          static_cast<int64_t>(pipe.source.table->heap->num_rows());
      for (int64_t b = 0; b < n; b += ctx.cost->vec_morsel_rows) {
        MorselTask m;
        m.begin = b;
        m.end = std::min(n, b + ctx.cost->vec_morsel_rows);
        run->morsels.push_back(m);
      }
      break;
    }
    case VecSource::Kind::kTemp:
    case VecSource::Kind::kMaterialized: {
      int64_t n = static_cast<int64_t>(
          pipe.source.kind == VecSource::Kind::kTemp
              ? pipe.source.temp->rows.size()
              : (*inters)[static_cast<size_t>(pipe.source.inter)].size());
      for (int64_t b = 0; b < n; b += ctx.cost->vec_morsel_rows) {
        MorselTask m;
        m.begin = b;
        m.end = std::min(n, b + ctx.cost->vec_morsel_rows);
        run->morsels.push_back(m);
      }
      break;
    }
  }

  int workers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(std::max(1, ctx.cost->cores_per_node)),
      std::max<size_t>(1, run->morsels.size())));
  run->local_rows.resize(static_cast<size_t>(workers));
  run->local_tables.resize(static_cast<size_t>(workers));
  run->local_groups.resize(static_cast<size_t>(workers));
  run->local_source_rows.assign(static_cast<size_t>(workers), 0);

  if (ctx.tracer != nullptr) {
    run->span = ctx.tracer->StartSpan(
        ctx.trace, ctx.parent_span, "pipeline",
        node != nullptr ? node->name() : std::string(), ctx.sim->now());
    ctx.tracer->SetAttr(run->span, "ops", pipe.desc);
    ctx.tracer->SetAttr(run->span, "morsels",
                        std::to_string(run->morsels.size()));
    ctx.tracer->SetAttr(run->span, "workers", std::to_string(workers));
    if (run->pruned_stripes > 0) {
      ctx.tracer->SetAttr(run->span, "pruned_stripes",
                          std::to_string(run->pruned_stripes));
    }
  }

  // Parallel morsel phase. The accumulated statement cost is flushed first
  // so it lands on the coordinating process, not a worker.
  CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
  if (workers == 1) {
    MorselWorker(run, 0, ctx);
    if (!run->done->Receive().has_value()) {
      run->abort = true;
      return Status::Cancelled("simulation stopping");
    }
  } else {
    for (int w = 0; w < workers; w++) {
      ExecContext wctx = ctx;
      wctx.pending_cpu_ = 0;
      ctx.sim->Spawn(StrFormat("morsel-worker-%d", w),
                     [run, w, wctx]() mutable { MorselWorker(run, w, wctx); },
                     /*daemon=*/true);
    }
    for (int w = 0; w < workers; w++) {
      if (!run->done->Receive().has_value()) {
        // This coordinating process was cancelled; workers co-own the run
        // state and drain on their own.
        run->abort = true;
        return Status::Cancelled("simulation stopping");
      }
    }
  }
  if (!run->error.ok()) {
    if (ctx.tracer != nullptr) ctx.tracer->EndSpan(run->span, ctx.sim->now());
    return run->error;
  }

  // Merge worker-local sinks in worker order (deterministic).
  int64_t out_rows = 0;
  switch (pipe.sink.kind) {
    case VecSink::Kind::kCollect: {
      auto& out = (*inters)[static_cast<size_t>(pipe.sink.target)];
      for (auto& local : run->local_rows) {
        for (auto& row : local) out.push_back(std::move(row));
      }
      for (const PostOp& post : pipe.posts) {
        CITUSX_RETURN_IF_ERROR(ApplyPost(ctx, post, &out));
      }
      out_rows = static_cast<int64_t>(out.size());
      break;
    }
    case VecSink::Kind::kHashBuild: {
      auto& table = (*hash_tables)[static_cast<size_t>(pipe.sink.target)];
      for (auto& local : run->local_tables) {
        for (auto& [key, rows] : local) {
          auto& dst = table[key];
          for (auto& row : rows) dst.push_back(std::move(row));
        }
        local.clear();
      }
      for (const auto& [key, rows] : table) {
        out_rows += static_cast<int64_t>(rows.size());
      }
      break;
    }
    case VecSink::Kind::kAggregate: {
      AggGroups merged;
      for (auto& local : run->local_groups) {
        for (auto& [key, group] : local) {
          auto [it, added] = merged.try_emplace(key);
          if (added) {
            it->second.keys = std::move(group.keys);
            it->second.states.resize(pipe.sink.aggs.size());
          }
          for (size_t a = 0; a < pipe.sink.aggs.size(); a++) {
            MergeAggState(pipe.sink.aggs[a], group.states[a],
                          &it->second.states[a]);
          }
        }
      }
      if (merged.empty() && pipe.sink.group_exprs.empty()) {
        // Aggregate over empty input: one row of "empty" aggregates.
        AggGroup g;
        g.states.resize(pipe.sink.aggs.size());
        merged.emplace("", std::move(g));
      }
      auto& out = (*inters)[static_cast<size_t>(pipe.sink.target)];
      for (auto& [key, g] : merged) {
        sql::Row row = std::move(g.keys);
        for (size_t a = 0; a < pipe.sink.aggs.size(); a++) {
          AggState& st = g.states[a];
          // Fold collected DISTINCT values now that duplicates are merged.
          if (pipe.sink.aggs[a].distinct) {
            for (const auto& [dk, dv] : st.distinct_vals) {
              AggTransition(pipe.sink.aggs[a], dv, &st);
            }
          }
          row.push_back(AggFinal(pipe.sink.aggs[a], st));
        }
        out.push_back(std::move(row));
      }
      out_rows = static_cast<int64_t>(out.size());
      break;
    }
  }
  if (ctx.tracer != nullptr) {
    ctx.tracer->SetRows(run->span, out_rows);
    ctx.tracer->EndSpan(run->span, ctx.sim->now());
  }
  return Status::OK();
}

Result<std::optional<QueryResult>> RunVectorized(engine::Node* node,
                                                 ExecNode& plan,
                                                 ExecContext& ctx) {
  VecPlan vplan;
  Builder builder(&vplan);
  Pipeline root;
  if (!builder.Build(&plan, &root)) {
    return std::optional<QueryResult>();  // unsupported: volcano fallback
  }
  if (root.source.kind == VecSource::Kind::kMaterialized && root.ops.empty()) {
    // The tree ended in a breaker; its intermediate is the result.
    vplan.final_inter = root.source.inter;
  } else {
    vplan.final_inter = vplan.num_inters++;
    root.sink.kind = VecSink::Kind::kCollect;
    root.sink.target = vplan.final_inter;
    vplan.pipelines.push_back(std::move(root));
  }

  std::vector<std::vector<sql::Row>> inters(
      static_cast<size_t>(vplan.num_inters));
  std::vector<HashTable> hash_tables(
      static_cast<size_t>(vplan.num_hash_tables));
  for (const Pipeline& pipe : vplan.pipelines) {
    CITUSX_RETURN_IF_ERROR(
        RunPipeline(node, ctx, vplan, pipe, &inters, &hash_tables));
  }

  QueryResult out;
  out.column_names = plan.output_names;
  out.column_types = plan.output_types;
  out.rows = std::move(inters[static_cast<size_t>(vplan.final_inter)]);
  out.command_tag = "SELECT";
  CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
  return std::optional<QueryResult>(std::move(out));
}

}  // namespace

Result<std::optional<QueryResult>> ExecuteVectorized(engine::ExecNode& plan,
                                                     engine::ExecContext& ctx) {
  return RunVectorized(nullptr, plan, ctx);
}

void InstallVectorizedExecutor(engine::Node* node) {
  node->set_batch_executor(
      [node](engine::ExecNode& plan,
             engine::ExecContext& ctx) -> Result<std::optional<QueryResult>> {
        return RunVectorized(node, plan, ctx);
      });
}

}  // namespace citusx::exec
