// Column-batch representation for the vectorized executor (DuckDB
// DataChunk-style): a fixed-width set of column vectors plus a selection
// vector produced by filters. Columns either borrow storage (zero-copy views
// into columnar stripes) or own it (operator outputs).
#ifndef CITUSX_EXEC_BATCH_H_
#define CITUSX_EXEC_BATCH_H_

#include <memory>
#include <utility>
#include <vector>

#include "engine/hooks.h"

namespace citusx::exec {

/// One column of a batch: a borrowed pointer into backing storage plus the
/// optional owned vector backing it. `data == nullptr` marks a column the
/// scan projection skipped (reads as NULL).
struct ColumnRef {
  const std::vector<sql::Datum>* data = nullptr;
  std::shared_ptr<std::vector<sql::Datum>> owned;

  static ColumnRef Borrowed(const std::vector<sql::Datum>* d) {
    ColumnRef c;
    c.data = d;
    return c;
  }
  static ColumnRef Owned(std::vector<sql::Datum> d) {
    ColumnRef c;
    c.owned = std::make_shared<std::vector<sql::Datum>>(std::move(d));
    c.data = c.owned.get();
    return c;
  }
};

/// A batch: `rows` logical rows over `columns`, restricted to the indexes in
/// `sel` when `filtered` is set (selection vectors avoid copying survivors
/// after a filter).
struct DataChunk {
  int64_t rows = 0;
  std::vector<ColumnRef> columns;
  bool filtered = false;
  std::vector<int64_t> sel;

  int64_t Count() const {
    return filtered ? static_cast<int64_t>(sel.size()) : rows;
  }
  /// Physical row index of logical position `i`.
  int64_t At(int64_t i) const {
    return filtered ? sel[static_cast<size_t>(i)] : i;
  }
  /// Datum at (logical position i, column c); skipped columns read as NULL.
  const sql::Datum& Value(int64_t i, size_t c,
                          const sql::Datum& null_datum) const {
    const auto* col = columns[c].data;
    if (col == nullptr) return null_datum;
    return (*col)[static_cast<size_t>(At(i))];
  }

  /// Materialize logical row `i` into `out` (resized to the column count).
  void GatherRow(int64_t i, sql::Row* out) const {
    out->resize(columns.size());
    int64_t r = At(i);
    for (size_t c = 0; c < columns.size(); c++) {
      const auto* col = columns[c].data;
      (*out)[c] =
          col == nullptr ? sql::Datum::Null() : (*col)[static_cast<size_t>(r)];
    }
  }
};

}  // namespace citusx::exec

#endif  // CITUSX_EXEC_BATCH_H_
