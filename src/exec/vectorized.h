// The vectorized, morsel-driven OLAP executor (paper §5: columnar storage +
// parallel analytical execution; DuckDB-style pipelines, HyPer-style morsel
// scheduling, cluster-wide partial aggregation per "Fast OLAP Query
// Execution in Main Memory on Large Data in a Cluster").
//
// A planned volcano tree is translated into source→sink pipelines:
// scans/filters/projections/hash-probes stream batches, while hash builds,
// aggregations, sorts, and DISTINCT break pipelines and materialize. Each
// pipeline's source is split into morsels (columnar: one per stripe, with
// min/max pruning; heap/temp: fixed row ranges) executed by a pool of
// simulated worker processes sharing the node's cores, which is what turns
// multi-core parallelism into real simulated-time speedup.
//
// Unsupported plan shapes (index scans, row locking, nested-loop joins)
// decline translation and fall back to the volcano path, which doubles as
// the differential-testing oracle behind citus.use_vectorized_executor.
#ifndef CITUSX_EXEC_VECTORIZED_H_
#define CITUSX_EXEC_VECTORIZED_H_

#include "engine/hooks.h"

namespace citusx::exec {

/// The BatchExecutor entry point: translate `plan` and run it vectorized.
/// Returns nullopt when the plan shape is not covered (caller falls back to
/// the volcano executor).
Result<std::optional<engine::QueryResult>> ExecuteVectorized(
    engine::ExecNode& plan, engine::ExecContext& ctx);

/// Install the vectorized executor on `node` (idempotent). Called by the
/// Citus extension when citus.use_vectorized_executor is configured on, and
/// directly by engine-level tests.
void InstallVectorizedExecutor(engine::Node* node);

}  // namespace citusx::exec

#endif  // CITUSX_EXEC_VECTORIZED_H_
