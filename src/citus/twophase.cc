// Distributed transactions (paper §3.7): single-node delegation, two-phase
// commit with commit records, 2PC recovery, and distributed deadlock
// detection.
#include <algorithm>

#include "citus/extension.h"
#include "citus/planner.h"
#include "sim/channel.h"

namespace citusx::citus {

namespace {

// Run `fn(wc)` for every connection concurrently (one simulated process
// each) and return the first failure. Used for the parallel phases of 2PC.
Status ForAllParallel(sim::Simulation* sim,
                      const std::vector<WorkerConnection*>& conns,
                      const std::function<Status(WorkerConnection*)>& fn) {
  if (conns.empty()) return Status::OK();
  if (conns.size() == 1) return fn(conns[0]);
  struct Shared {
    sim::Channel<Status> done;
    explicit Shared(sim::Simulation* s) : done(s) {}
  };
  auto shared = std::make_shared<Shared>(sim);
  for (WorkerConnection* wc : conns) {
    sim->Spawn(
        "citus:2pc", [shared, wc, fn] { shared->done.Send(fn(wc)); },
        /*daemon=*/true);
  }
  Status first;
  for (size_t i = 0; i < conns.size(); i++) {
    auto st = shared->done.Receive();
    if (!st.has_value()) return Status::Cancelled("simulation stopping");
    if (!st->ok() && first.ok()) first = *st;
  }
  return first;
}

// Insert a commit record (gid) into pg_dist_transaction within the
// session's *current* local transaction, so it becomes durable/visible
// atomically with the local commit (§3.7.2).
Status WriteCommitRecord(CitusExtension* ext, engine::Session& session,
                         const std::string& gid) {
  engine::TableInfo* table =
      ext->node()->catalog().Find(CitusExtension::kCommitRecordsTable);
  if (table == nullptr) {
    return Status::Internal("pg_dist_transaction is missing");
  }
  engine::ExecContext ctx = session.MakeExecContext(nullptr);
  return engine::InsertRowWithIndexes(ctx, table, {sql::Datum::Text(gid)},
                                      false, nullptr);
}

// Remove a finalized commit record (best effort, own small transaction
// context; runs post-commit or from the recovery daemon).
void DeleteCommitRecord(CitusExtension* ext, engine::Session& session,
                        const std::string& gid) {
  CITUSX_IGNORE_STATUS(
      session.Execute("DELETE FROM pg_dist_transaction WHERE gid = " +
                      QuoteSqlLiteral(gid)),
      "commit-record cleanup is best-effort; recovery skips finished gids");
}

}  // namespace

Status CitusExtension::PreCommit(engine::Session& session) {
  if (session.extension_state == nullptr) return Status::OK();
  CitusSessionState& state = SessionState(session);
  std::vector<WorkerConnection*> open;
  for (auto& [worker, conns] : state.pool) {
    for (auto& wc : conns) {
      if (wc->txn_open) open.push_back(wc.get());
    }
  }
  if (open.empty()) return Status::OK();
  // MX (§3.10): a worker-originated distributed transaction must not enter
  // the commit protocol through a metadata copy that went stale mid-flight
  // (e.g. this node restarted or observed a newer version) — the retryable
  // rejection aborts the transaction so the client replays it against
  // freshly synced placements.
  if (!IsMetadataAuthority() && !MxReady()) {
    return MxStaleRejection(
        "node " + node_->name() +
        " lost its synced metadata before distributed commit");
  }

  std::vector<WorkerConnection*> writers, readers;
  for (WorkerConnection* wc : open) {
    (wc->did_write ? writers : readers).push_back(wc);
  }
  // Read-only participants just commit (they hold no pending writes).
  Status reader_status =
      ForAllParallel(node_->sim(), readers, [](WorkerConnection* wc) {
        auto r = wc->conn->Query("COMMIT");
        wc->txn_open = false;
        wc->groups.clear();
        return r.status();
      });
  if (!reader_status.ok()) return reader_status;
  if (writers.empty()) {
    single_node_commits++;
    metric_1pc_commits->Inc();
    return Status::OK();
  }
  if (writers.size() == 1) {
    // Single-node transaction: delegate commit responsibility (§3.7.1).
    WorkerConnection* wc = writers[0];
    auto r = wc->conn->Query("COMMIT");
    wc->txn_open = false;
    wc->did_write = false;
    wc->groups.clear();
    single_node_commits++;
    metric_1pc_commits->Inc();
    if (!r.ok()) return r.status();
    return Status::OK();
  }
  // Two-phase commit across all writers (§3.7.2); prepares go out in
  // parallel over the open connections. The coordinator's local commit
  // record is the 2PC decision record (recovery commits/aborts prepared
  // worker txns based on it), so its flush cannot be skipped even when the
  // local transaction wrote nothing itself.
  if (twophase_fault_hook) {
    // A failure here models the coordinator dying before any PREPARE went
    // out: no worker holds a prepared transaction, everything aborts.
    CITUSX_RETURN_IF_ERROR(twophase_fault_hook(TwoPhasePoint::kBeforePrepare));
  }
  session.MarkTxnWrite();
  std::map<WorkerConnection*, std::string> gids;
  int seq = 0;
  for (WorkerConnection* wc : writers) {
    gids[wc] = MakeGid(state.dist_txn_id, seq++);
  }
  Status failure = ForAllParallel(
      node_->sim(), writers, [this, &gids](WorkerConnection* wc) {
        const std::string& gid = gids[wc];
        auto r = wc->conn->Query("PREPARE TRANSACTION " +
                                 QuoteSqlLiteral(gid));
        if (!r.ok()) return r.status();
        two_phase_prepares++;
        metric_prepares->Inc();
        wc->prepared_gid = gid;
        wc->txn_open = false;
        return Status::OK();
      });
  if (!failure.ok()) {
    // Abort everything prepared or still open; the local txn then aborts.
    for (WorkerConnection* wc : writers) {
      if (!wc->prepared_gid.empty()) {
        CITUSX_IGNORE_STATUS(
            wc->conn->Query("ROLLBACK PREPARED " +
                            QuoteSqlLiteral(wc->prepared_gid)),
            "abort path; the recovery daemon retries unreachable workers");
        wc->prepared_gid.clear();
      } else if (wc->txn_open) {
        CITUSX_IGNORE_STATUS(
            wc->conn->Query("ROLLBACK"),
            "abort path; a dropped connection aborts the remote txn anyway");
        wc->txn_open = false;
      }
      wc->did_write = false;
      wc->groups.clear();
    }
    return failure;
  }
  if (twophase_fault_hook) {
    Status s = twophase_fault_hook(TwoPhasePoint::kAfterPrepare);
    if (!s.ok()) {
      // The coordinator died between PREPARE and the commit record: its
      // session memory of the prepared gids is gone, so the abort path
      // cannot roll them back. The workers keep the prepared transactions
      // until the recovery daemon — finding no commit record — aborts them.
      for (WorkerConnection* wc : writers) {
        wc->prepared_gid.clear();
        wc->did_write = false;
        wc->groups.clear();
      }
      return s;
    }
  }
  // Commit records become durable with the local commit that follows.
  for (WorkerConnection* wc : writers) {
    CITUSX_RETURN_IF_ERROR(WriteCommitRecord(this, session, wc->prepared_gid));
  }
  if (twophase_fault_hook) {
    // A failure here lands between the record insert and the local commit:
    // the records roll back with the local transaction, so recovery aborts
    // the prepared transactions — same outcome as kAfterPrepare. The
    // crash-after-durable-record case is modelled by
    // suppress_post_commit_2pc_once instead (see PostCommit).
    Status s = twophase_fault_hook(TwoPhasePoint::kAfterCommitRecord);
    if (!s.ok()) {
      for (WorkerConnection* wc : writers) {
        wc->prepared_gid.clear();
        wc->did_write = false;
        wc->groups.clear();
      }
      return s;
    }
  }
  two_phase_commits++;
  metric_2pc_commits->Inc();
  return Status::OK();
}

void CitusExtension::PostCommit(engine::Session& session) {
  if (session.extension_state == nullptr) return;
  CitusSessionState& state = SessionState(session);
  std::vector<WorkerConnection*> prepared;
  for (auto& [worker, conns] : state.pool) {
    for (auto& wc : conns) {
      if (!wc->prepared_gid.empty()) prepared.push_back(wc.get());
    }
  }
  if (suppress_post_commit_2pc_once && !prepared.empty()) {
    // Models the coordinator crashing right after its local commit made the
    // records durable: COMMIT PREPARED never goes out and the session's
    // memory of the gids is lost. The recovery daemon finds the records and
    // finishes the commit — the transaction was acknowledged and must win.
    suppress_post_commit_2pc_once = false;
    for (WorkerConnection* wc : prepared) wc->prepared_gid.clear();
    prepared.clear();
  }
  // Best effort, in parallel: failures are repaired by 2PC recovery.
  // Finalized commit records are garbage-collected lazily by the
  // maintenance daemon, keeping the commit path short (as in real Citus).
  CITUSX_IGNORE_STATUS(
      ForAllParallel(node_->sim(), prepared,
                     [](WorkerConnection* wc) {
                       CITUSX_IGNORE_STATUS(
                           wc->conn->Query("COMMIT PREPARED " +
                                           QuoteSqlLiteral(wc->prepared_gid)),
                           "commit already decided; the recovery daemon "
                           "replays COMMIT PREPARED from the commit record");
                       wc->prepared_gid.clear();
                       return Status::OK();
                     }),
      "per-worker failures handled above; the fan-out itself cannot fail");
  for (auto& [worker, conns] : state.pool) {
    for (auto& wc : conns) {
      wc->txn_open = false;
      wc->did_write = false;
      wc->groups.clear();
    }
  }
  MarkDistTxnEnded(state.dist_txn_id);
  state.dist_txn_id.clear();
  // Clear the deadlock-detection tag: the next local transaction on this
  // session must not re-register under the ended distributed id.
  session.SetVar("citus.distributed_txid", "");
}

void CitusExtension::PostAbort(engine::Session& session) {
  if (session.extension_state == nullptr) return;
  CitusSessionState& state = SessionState(session);
  for (auto& [worker, conns] : state.pool) {
    for (auto& wc : conns) {
      if (!wc->prepared_gid.empty()) {
        CITUSX_IGNORE_STATUS(
            wc->conn->Query("ROLLBACK PREPARED " +
                            QuoteSqlLiteral(wc->prepared_gid)),
            "abort path; the recovery daemon retries unreachable workers");
        wc->prepared_gid.clear();
      } else if (wc->txn_open) {
        CITUSX_IGNORE_STATUS(
            wc->conn->Query("ROLLBACK"),
            "abort path; a dropped connection aborts the remote txn anyway");
      }
      wc->txn_open = false;
      wc->did_write = false;
      wc->groups.clear();
    }
  }
  MarkDistTxnEnded(state.dist_txn_id);
  state.dist_txn_id.clear();
  // Clear the deadlock-detection tag: the next local transaction on this
  // session must not re-register under the ended distributed id.
  session.SetVar("citus.distributed_txid", "");
}

Result<int> CitusExtension::RecoverTwoPhaseCommits(engine::Session& session) {
  // Read the durable commit records.
  CITUSX_ASSIGN_OR_RETURN(engine::QueryResult records,
                          session.Execute("SELECT gid FROM pg_dist_transaction"));
  std::set<std::string> committed;
  for (const auto& row : records.rows) committed.insert(row[0].text_value());

  int finalized = 0;
  std::string my_prefix = "citusx_" + node_->name() + "_";
  for (const std::string& worker : metadata_->workers) {
    engine::Node* wnode = directory_->Find(worker);
    if (wnode == nullptr || wnode->is_down()) continue;
    // List prepared transactions on the worker. We query the node's
    // transaction manager (the real extension reads pg_prepared_xacts).
    std::vector<std::string> gids = wnode->txns().PreparedGids();
    for (const std::string& gid : gids) {
      if (gid.compare(0, my_prefix.size(), my_prefix) != 0) {
        continue;  // initiated by a different coordinator
      }
      // Skip transactions still in flight on this node (their 2PC is
      // between PREPARE and the local commit).
      std::string dist_id = gid.substr(7);  // strip "citusx_"
      size_t seq_pos = dist_id.find_last_of('_');
      if (seq_pos != std::string::npos) dist_id = dist_id.substr(0, seq_pos);
      if (IsDistTxnActive(dist_id)) continue;
      CITUSX_ASSIGN_OR_RETURN(WorkerConnection * wc,
                              GetConnection(session, worker, {0, -1}));
      if (committed.count(gid) > 0) {
        // The coordinator committed: the prepared transaction must commit.
        auto r = wc->conn->Query("COMMIT PREPARED " + QuoteSqlLiteral(gid));
        if (r.ok()) {
          DeleteCommitRecord(this, session, gid);
          finalized++;
          recovered_txns++;
          metric_recovered->Inc();
        }
      } else {
        // No commit record for an ended transaction: it must abort.
        auto r = wc->conn->Query("ROLLBACK PREPARED " + QuoteSqlLiteral(gid));
        if (r.ok()) {
          finalized++;
          recovered_txns++;
          metric_recovered->Inc();
        }
      }
    }
  }
  // Garbage-collect commit records whose transactions completed: no worker
  // holds the prepared transaction any more and the origin txn has ended.
  std::set<std::string> still_prepared;
  for (const std::string& worker : metadata_->workers) {
    engine::Node* wnode = directory_->Find(worker);
    if (wnode == nullptr || wnode->is_down()) continue;
    for (const auto& gid : wnode->txns().PreparedGids()) {
      still_prepared.insert(gid);
    }
  }
  for (const std::string& gid : committed) {
    if (still_prepared.count(gid) > 0) continue;
    std::string dist_id = gid.size() > 7 ? gid.substr(7) : gid;
    size_t seq_pos = dist_id.find_last_of('_');
    if (seq_pos != std::string::npos) dist_id = dist_id.substr(0, seq_pos);
    if (IsDistTxnActive(dist_id)) continue;
    DeleteCommitRecord(this, session, gid);
  }
  return finalized;
}

bool CitusExtension::DetectDistributedDeadlocks() {
  // Gather wait edges from every node and merge processes participating in
  // the same distributed transaction (§3.7.3).
  struct DistEdge {
    std::string waiter;
    std::string holder;
  };
  std::vector<DistEdge> edges;
  std::vector<std::string> nodes = metadata_->workers;
  nodes.push_back(node_->name());
  for (const auto& name : nodes) {
    engine::Node* n = directory_->Find(name);
    if (n == nullptr || n->is_down()) continue;
    for (const auto& e : n->DistributedWaitEdges()) {
      // Purely local waits are handled by the local detector; merge by
      // distributed txn id where present, otherwise synthesize a node-local
      // identity so cross-txn chains through local txns still connect.
      std::string waiter = e.waiter_dist_id.empty()
                               ? StrFormat("local_%s_%llu", name.c_str(),
                                           static_cast<unsigned long long>(
                                               e.waiter_local))
                               : e.waiter_dist_id;
      std::string holder = e.holder_dist_id.empty()
                               ? StrFormat("local_%s_%llu", name.c_str(),
                                           static_cast<unsigned long long>(
                                               e.holder_local))
                               : e.holder_dist_id;
      edges.push_back(DistEdge{waiter, holder});
    }
  }
  if (edges.empty()) return false;
  std::map<std::string, std::vector<std::string>> graph;
  for (const auto& e : edges) graph[e.waiter].push_back(e.holder);
  // DFS cycle detection; victim = youngest distributed txn in the cycle
  // (largest sequence number suffix in "<node>_<n>").
  auto age_key = [](const std::string& id) -> int64_t {
    size_t pos = id.find_last_of('_');
    if (pos == std::string::npos) return 0;
    return std::strtoll(id.c_str() + pos + 1, nullptr, 10);
  };
  std::map<std::string, int> color;
  std::vector<std::string> stack;
  std::string victim;
  std::function<bool(const std::string&)> dfs =
      [&](const std::string& t) -> bool {
    color[t] = 1;
    stack.push_back(t);
    for (const auto& next : graph[t]) {
      if (color[next] == 1) {
        bool in_cycle = false;
        for (const auto& s : stack) {
          if (s == next) in_cycle = true;
          if (in_cycle && !s.empty() && s.rfind("local_", 0) != 0) {
            if (victim.empty() || age_key(s) > age_key(victim)) victim = s;
          }
        }
        return true;
      }
      if (color[next] == 0 && dfs(next)) return true;
    }
    stack.pop_back();
    color[t] = 2;
    return false;
  };
  for (const auto& [t, succ] : graph) {
    if (color[t] == 0) {
      stack.clear();
      if (dfs(t)) break;
    }
  }
  if (victim.empty()) return false;
  // Cancel the victim's waiting backend wherever it waits.
  for (const auto& name : nodes) {
    engine::Node* n = directory_->Find(name);
    if (n == nullptr || n->is_down()) continue;
    if (n->CancelDistributedTxn(victim)) {
      deadlocks_detected++;
      return true;
    }
  }
  return false;
}

}  // namespace citusx::citus
