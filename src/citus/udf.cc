// Citus UDFs (§3.3): create_distributed_table, create_reference_table,
// co-location, procedure delegation registration, rebalancing entry points,
// and the consistent restore point.
#include <cstdlib>

#include "citus/metadata_sync.h"
#include "citus/planner.h"
#include "citus/rebalancer.h"
#include "sql/deparser.h"

namespace citusx::citus {

namespace {

// Named-argument extraction: the parser encodes f(x := v) as a marker pair
// ("__named__x", v). Returns positional args + named map.
void SplitNamedArgs(const std::vector<sql::Datum>& args,
                    std::vector<sql::Datum>* positional,
                    std::map<std::string, sql::Datum>* named) {
  for (size_t i = 0; i < args.size(); i++) {
    const auto& a = args[i];
    if (a.type() == sql::TypeId::kText &&
        a.text_value().rfind("__named__", 0) == 0 && i + 1 < args.size()) {
      (*named)[a.text_value().substr(9)] = args[i + 1];
      i++;
    } else {
      positional->push_back(a);
    }
  }
}

// Propagate the (empty) shell table definition to all workers, so that any
// node can plan statements against the logical table (metadata syncing /
// every-node-a-coordinator mode, §3.2.1).
Status PropagateShellTable(CitusExtension* ext, engine::Session& session,
                           const std::string& table_name) {
  engine::TableInfo* shell = ext->node()->catalog().Find(table_name);
  if (shell == nullptr) return Status::NotFound("shell table missing");
  sql::Statement create;
  create.kind = sql::Statement::Kind::kCreateTable;
  create.create_table = std::make_shared<sql::CreateTableStmt>();
  create.create_table->table = table_name;
  create.create_table->schema = shell->schema();
  create.create_table->primary_key = shell->primary_key;
  create.create_table->if_not_exists = true;
  std::string ddl = sql::DeparseStatement(create);
  AdaptiveExecutor executor(ext);
  std::vector<Task> tasks;
  int index = 0;
  for (const auto& worker : ext->metadata().workers) {
    if (worker == ext->node()->name()) continue;
    Task t;
    t.index = index++;
    t.worker = worker;
    t.sql = ddl;
    t.is_write = true;
    tasks.push_back(std::move(t));
    // Record on the worker that this relation is a distributed-table shell,
    // so a worker with stale (or no) synced metadata refuses statements
    // against it instead of answering from the empty local relation.
    Task reg;
    reg.index = index++;
    reg.worker = worker;
    reg.sql = "SELECT citus_internal_register_shell('" + table_name + "')";
    reg.is_write = true;
    tasks.push_back(std::move(reg));
  }
  CITUSX_RETURN_IF_ERROR(
      executor.Execute(session, std::move(tasks)).status());
  return Status::OK();
}

// Create all shard placements for a new distributed table and stream any
// existing local rows into them.
Status CreateShards(CitusExtension* ext, engine::Session& session,
                    CitusTable* table) {
  AdaptiveExecutor executor(ext);
  std::vector<Task> tasks;
  int index = 0;
  for (size_t i = 0; i < table->shards.size(); i++) {
    CITUSX_ASSIGN_OR_RETURN(
        std::vector<std::string> ddl,
        ShardCreationDdl(ext->node(), *table, table->shards[i].shard_id));
    for (const auto& sql_text : ddl) {
      Task t;
      t.index = index++;
      t.worker = table->shards[i].placement;
      t.sql = sql_text;
      t.is_write = true;
      tasks.push_back(std::move(t));
    }
  }
  CITUSX_RETURN_IF_ERROR(
      executor.Execute(session, std::move(tasks)).status());
  return Status::OK();
}

// Move any pre-existing rows of the shell table into the shards, then empty
// the shell (the data now lives on the workers).
Status MigrateExistingRows(CitusExtension* ext, engine::Session& session,
                           CitusTable* table) {
  engine::TableInfo* shell = ext->node()->catalog().Find(table->name);
  if (shell == nullptr || shell->heap == nullptr) return Status::OK();
  if (shell->heap->num_rows() == 0) return Status::OK();
  engine::ExecContext ctx = session.MakeExecContext(nullptr);
  std::vector<std::vector<std::string>> rows;
  for (storage::RowId rid = 0; rid < shell->heap->num_rows(); rid++) {
    const storage::TupleVersion* v =
        shell->heap->VisibleVersion(rid, ctx.snapshot, ctx.txns[0]);
    if (v == nullptr) continue;
    std::vector<std::string> fields;
    for (const auto& d : v->row) {
      fields.push_back(d.is_null() ? "\\N" : d.ToText());
    }
    rows.push_back(std::move(fields));
  }
  sql::CopyStmt copy;
  copy.table = table->name;
  CITUSX_RETURN_IF_ERROR(
      ProcessDistributedCopy(ext, session, copy, rows).status());
  shell->heap->Truncate();
  for (auto& idx : shell->indexes) {
    if (idx->btree) idx->btree->Truncate();
    if (idx->gin) idx->gin->Truncate();
  }
  return Status::OK();
}

}  // namespace

void CitusExtension::RegisterUdfs() {
  auto& udfs = node_->hooks().udfs;
  CitusExtension* ext = this;

  udfs["create_distributed_table"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& raw_args) -> Result<sql::Datum> {
    std::vector<sql::Datum> args;
    std::map<std::string, sql::Datum> named;
    SplitNamedArgs(raw_args, &args, &named);
    if (args.size() < 2) {
      return Status::InvalidArgument(
          "create_distributed_table(table, distribution_column)");
    }
    std::string name = args[0].ToText();
    std::string dist_column = args[1].ToText();
    if (!ext->config().is_coordinator) {
      return Status::InvalidArgument(
          "operation is not allowed on a worker node");
    }
    if (ext->metadata().Find(name) != nullptr) {
      return Status::AlreadyExists("table is already distributed: " + name);
    }
    engine::TableInfo* shell = ext->node()->catalog().Find(name);
    if (shell == nullptr) {
      return Status::NotFound("relation \"" + name + "\" does not exist");
    }
    int dist_idx = shell->schema().FindColumn(dist_column);
    if (dist_idx < 0) {
      return Status::InvalidArgument("column \"" + dist_column +
                                     "\" does not exist");
    }
    if (ext->metadata().workers.empty()) {
      return Status::InvalidArgument("no worker nodes are registered");
    }
    CitusTable table;
    table.name = name;
    table.dist_column = dist_column;
    table.dist_col_index = dist_idx;
    table.dist_col_type =
        shell->schema().columns[static_cast<size_t>(dist_idx)].type;
    table.columnar_shards =
        session.GetVar("citusx.shard_access_method") == "columnar";

    int shard_count = ext->metadata().default_shard_count;
    const CitusTable* colocate_with = nullptr;
    auto cw = named.find("colocate_with");
    if (cw != named.end() && cw->second.ToText() != "none" &&
        cw->second.ToText() != "default") {
      colocate_with = ext->metadata().Find(cw->second.ToText());
      if (colocate_with == nullptr) {
        return Status::NotFound("colocate_with table does not exist: " +
                                cw->second.ToText());
      }
      if (colocate_with->dist_col_type != table.dist_col_type) {
        return Status::InvalidArgument(
            "cannot colocate tables with different distribution column "
            "types");
      }
    } else if (cw == named.end()) {
      // Implicit co-location by distribution column type (§3.3.2).
      int existing = ext->metadata().FindCompatibleColocation(
          table.dist_col_type, shard_count);
      if (existing != 0) {
        for (const auto& [n, t] : ext->metadata().tables()) {
          if (!t.is_reference && t.colocation_id == existing) {
            colocate_with = &t;
            break;
          }
        }
      }
    }
    if (colocate_with != nullptr) {
      table.colocation_id = colocate_with->colocation_id;
      for (const auto& s : colocate_with->shards) {
        ShardInterval si;
        si.shard_id = ext->metadata().NextShardId();
        si.min_hash = s.min_hash;
        si.max_hash = s.max_hash;
        si.placement = s.placement;
        table.shards.push_back(si);
      }
    } else {
      table.colocation_id = ext->metadata().NextColocationId();
      auto intervals = MakeHashIntervals(shard_count);
      const auto& workers = ext->metadata().workers;
      for (size_t i = 0; i < intervals.size(); i++) {
        ShardInterval si;
        si.shard_id = ext->metadata().NextShardId();
        si.min_hash = intervals[i].first;
        si.max_hash = intervals[i].second;
        si.placement = workers[i % workers.size()];  // round robin (§3.3.1)
        table.shards.push_back(si);
      }
    }
    CitusTable* stored = ext->metadata().Add(std::move(table));
    ext->metadata().BumpClusterVersion();
    ext->metadata().TouchTable(stored);
    CITUSX_RETURN_IF_ERROR(PropagateShellTable(ext, session, stored->name));
    CITUSX_RETURN_IF_ERROR(CreateShards(ext, session, stored));
    CITUSX_RETURN_IF_ERROR(MigrateExistingRows(ext, session, stored));
    ext->MaybeSyncMetadata();
    return sql::Datum::Null();
  };

  udfs["create_reference_table"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.size() != 1) {
      return Status::InvalidArgument("create_reference_table(table)");
    }
    std::string name = args[0].ToText();
    if (!ext->config().is_coordinator) {
      return Status::InvalidArgument(
          "operation is not allowed on a worker node");
    }
    if (ext->metadata().Find(name) != nullptr) {
      return Status::AlreadyExists("table is already distributed: " + name);
    }
    engine::TableInfo* shell = ext->node()->catalog().Find(name);
    if (shell == nullptr) {
      return Status::NotFound("relation \"" + name + "\" does not exist");
    }
    CitusTable table;
    table.name = name;
    table.is_reference = true;
    ShardInterval si;
    si.shard_id = ext->metadata().NextShardId();
    si.min_hash = INT32_MIN;
    si.max_hash = INT32_MAX;
    table.shards.push_back(si);
    // Replicated to all nodes, including the coordinator (§3.3.3).
    table.replica_nodes = ext->metadata().workers;
    bool coord_listed = false;
    for (const auto& w : table.replica_nodes) {
      coord_listed |= w == ext->node()->name();
    }
    if (!coord_listed) table.replica_nodes.push_back(ext->node()->name());
    CitusTable* stored = ext->metadata().Add(std::move(table));
    ext->metadata().BumpClusterVersion();
    ext->metadata().TouchTable(stored);
    CITUSX_RETURN_IF_ERROR(PropagateShellTable(ext, session, stored->name));
    // Create the replica shard on every node.
    AdaptiveExecutor executor(ext);
    std::vector<Task> tasks;
    int index = 0;
    for (const auto& node_name : stored->replica_nodes) {
      CITUSX_ASSIGN_OR_RETURN(
          std::vector<std::string> ddl,
          ShardCreationDdl(ext->node(), *stored, stored->shards[0].shard_id));
      for (const auto& sql_text : ddl) {
        Task t;
        t.index = index++;
        t.worker = node_name;
        t.sql = sql_text;
        t.is_write = true;
        tasks.push_back(std::move(t));
      }
    }
    CITUSX_RETURN_IF_ERROR(
        executor.Execute(session, std::move(tasks)).status());
    CITUSX_RETURN_IF_ERROR(MigrateExistingRows(ext, session, stored));
    ext->MaybeSyncMetadata();
    return sql::Datum::Null();
  };

  udfs["create_distributed_procedure"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.size() != 3) {
      return Status::InvalidArgument(
          "create_distributed_procedure(name, dist_arg_index, table)");
    }
    if (!ext->config().is_coordinator) {
      return Status::InvalidArgument(
          "operation is not allowed on a worker node");
    }
    DistributedProcedure proc;
    proc.name = args[0].ToText();
    proc.dist_arg_index = static_cast<int>(args[1].AsInt64());
    proc.colocated_table = args[2].ToText();
    if (ext->metadata().Find(proc.colocated_table) == nullptr) {
      return Status::NotFound("table does not exist: " + proc.colocated_table);
    }
    ext->metadata().procedures[proc.name] = proc;
    ext->metadata().BumpClusterVersion();
    ext->metadata().TouchProcedures();
    ext->MaybeSyncMetadata();
    return sql::Datum::Null();
  };

  udfs["rebalance_table_shards"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    RebalanceStrategy strategy = RebalanceStrategy::kByShardCount;
    if (!args.empty() && args[0].ToText() == "by_disk_size") {
      strategy = RebalanceStrategy::kByDiskSize;
    }
    Rebalancer rebalancer(ext);
    CITUSX_ASSIGN_OR_RETURN(int moves, rebalancer.Rebalance(session, strategy));
    return sql::Datum::Int8(moves);
  };

  udfs["citus_move_shard_placement"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.size() != 3) {
      return Status::InvalidArgument(
          "citus_move_shard_placement(shard_id, source, target)");
    }
    Rebalancer rebalancer(ext);
    CITUSX_RETURN_IF_ERROR(rebalancer.MoveShard(
        session, static_cast<uint64_t>(args[0].AsInt64()), args[1].ToText(),
        args[2].ToText()));
    return sql::Datum::Null();
  };

  udfs["citus_add_node"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.empty()) return Status::InvalidArgument("citus_add_node(name)");
    std::string name = args[0].ToText();
    if (!ext->config().is_coordinator) {
      return Status::InvalidArgument(
          "operation is not allowed on a worker node");
    }
    if (ext->directory().Find(name) == nullptr) {
      return Status::NotFound("unknown node: " + name);
    }
    for (const auto& w : ext->metadata().workers) {
      if (w == name) {
        return Status::AlreadyExists("node is already registered: " + name);
      }
    }
    ext->metadata().workers.push_back(name);
    ext->metadata().BumpClusterVersion();
    ext->metadata().TouchWorkers();
    // Sync schema to the new node: shells for every Citus table, plus a
    // replica of every reference table. Shards move only when the user
    // rebalances (§3.4).
    AdaptiveExecutor executor(ext);
    for (auto& [tname, table] : ext->metadata().mutable_tables()) {
      CITUSX_RETURN_IF_ERROR(PropagateShellTable(ext, session, tname));
      if (table.is_reference) {
        CITUSX_ASSIGN_OR_RETURN(
            std::vector<std::string> ddl,
            ShardCreationDdl(ext->node(), table, table.shards[0].shard_id));
        std::vector<Task> tasks;
        int index = 0;
        for (const auto& sql_text : ddl) {
          Task t;
          t.index = index++;
          t.worker = name;
          t.sql = sql_text;
          t.is_write = true;
          tasks.push_back(std::move(t));
        }
        CITUSX_RETURN_IF_ERROR(
            executor.Execute(session, std::move(tasks)).status());
        // Backfill the replica from the coordinator's replica shard.
        std::string shard = table.ShardName(table.shards[0].shard_id);
        engine::TableInfo* local = ext->node()->catalog().Find(shard);
        if (local != nullptr && local->heap != nullptr &&
            local->heap->num_rows() > 0) {
          engine::ExecContext ctx = session.MakeExecContext(nullptr);
          std::vector<std::vector<std::string>> rows;
          for (storage::RowId rid = 0; rid < local->heap->num_rows(); rid++) {
            const storage::TupleVersion* v =
                local->heap->VisibleVersion(rid, ctx.snapshot, *ctx.txns);
            if (v == nullptr) continue;
            std::vector<std::string> fields;
            for (const auto& datum : v->row) {
              fields.push_back(datum.is_null() ? "\\N" : datum.ToText());
            }
            rows.push_back(std::move(fields));
          }
          CITUSX_ASSIGN_OR_RETURN(WorkerConnection * wc,
                                  ext->GetConnection(session, name, {0, -1}));
          CITUSX_RETURN_IF_ERROR(
              wc->conn->CopyIn(shard, {}, std::move(rows)).status());
        }
        table.replica_nodes.push_back(name);
        ext->metadata().TouchTable(&table);
      }
    }
    // Push full metadata to every node (including the new one) so any of
    // them can start coordinating immediately.
    ext->MaybeSyncMetadata();
    return sql::Datum::Null();
  };

  udfs["citus_remove_node"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.empty()) return Status::InvalidArgument("citus_remove_node(name)");
    std::string name = args[0].ToText();
    if (!ext->config().is_coordinator) {
      return Status::InvalidArgument(
          "operation is not allowed on a worker node");
    }
    auto& workers = ext->metadata().workers;
    bool registered = false;
    for (const auto& w : workers) registered |= w == name;
    if (!registered) {
      return Status::NotFound("node is not registered: " + name);
    }
    // Refuse while the node still holds shard placements; the user must
    // drain it first (rebalance / citus_move_shard_placement).
    for (const auto& [tname, table] : ext->metadata().tables()) {
      if (table.is_reference) continue;
      for (const auto& shard : table.shards) {
        if (shard.placement == name) {
          return Status::InvalidArgument(
              "cannot remove node " + name + ": it still holds placements of " +
              tname + " (drain it with rebalance_table_shards first)");
        }
      }
    }
    // Drop reference-table replicas living on the node, then forget it.
    // The version bump precedes the per-table touches below so incremental
    // sync ships the shrunken replica lists.
    ext->metadata().BumpClusterVersion();
    ext->metadata().TouchWorkers();
    AdaptiveExecutor executor(ext);
    for (auto& [tname, table] : ext->metadata().mutable_tables()) {
      if (!table.is_reference) continue;
      auto& replicas = table.replica_nodes;
      bool had_replica = false;
      for (auto it = replicas.begin(); it != replicas.end();) {
        if (*it == name) {
          had_replica = true;
          it = replicas.erase(it);
        } else {
          ++it;
        }
      }
      if (had_replica) {
        Task t;
        t.worker = name;
        t.sql = "DROP TABLE IF EXISTS " +
                table.ShardName(table.shards[0].shard_id);
        t.is_write = true;
        std::vector<Task> tasks;
        tasks.push_back(std::move(t));
        CITUSX_RETURN_IF_ERROR(
            executor.Execute(session, std::move(tasks)).status());
        ext->metadata().TouchTable(&table);
      }
    }
    for (auto it = workers.begin(); it != workers.end();) {
      if (*it == name) {
        it = workers.erase(it);
      } else {
        ++it;
      }
    }
    ext->ForgetSyncState(name);
    ext->MaybeSyncMetadata();
    return sql::Datum::Null();
  };

  // ---- metadata syncing (§3.10, Citus MX) ----

  udfs["start_metadata_sync_to_node"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.empty()) {
      return Status::InvalidArgument("start_metadata_sync_to_node(name)");
    }
    if (!ext->config().is_coordinator) {
      return Status::InvalidArgument(
          "operation is not allowed on a worker node");
    }
    CITUSX_RETURN_IF_ERROR(
        ext->SyncMetadataToNode(args[0].ToText(), /*force=*/true));
    return sql::Datum::Null();
  };

  udfs["citus_sync_metadata"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (!ext->config().is_coordinator) {
      return Status::InvalidArgument(
          "operation is not allowed on a worker node");
    }
    CITUSX_ASSIGN_OR_RETURN(int synced,
                            ext->SyncMetadataToWorkers(/*force=*/true));
    return sql::Datum::Int8(synced);
  };

  // Internal protocol UDFs, invoked by the authority's syncer on the
  // receiving node (see metadata_sync.h for the three-phase protocol).
  udfs["citus_internal_metadata_sync_begin"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    // Mark the copy unsynced for the apply window and report the version
    // last applied, so the authority ships an incremental payload.
    return sql::Datum::Int8(
        static_cast<int64_t>(ext->metadata().BeginSync()));
  };

  udfs["citus_internal_metadata_apply"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.empty()) {
      return Status::InvalidArgument(
          "citus_internal_metadata_apply(payload)");
    }
    CITUSX_RETURN_IF_ERROR(ApplyMetadataPayload(ext, args[0].ToText()));
    return sql::Datum::Null();
  };

  udfs["citus_internal_metadata_apply_delta"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.empty()) {
      return Status::InvalidArgument(
          "citus_internal_metadata_apply_delta(payload)");
    }
    // Validates the base version, applies, and publishes atomically; a
    // mismatch is a SQL error and the authority falls back to a full sync.
    CITUSX_RETURN_IF_ERROR(ApplyMetadataDelta(ext, args[0].ToText()));
    return sql::Datum::Null();
  };

  udfs["citus_internal_metadata_sync_finish"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.empty()) {
      return Status::InvalidArgument(
          "citus_internal_metadata_sync_finish(version)");
    }
    uint64_t version =
        std::strtoull(args[0].ToText().c_str(), nullptr, 10);
    ext->metadata().FinishSync(version);
    return sql::Datum::Null();
  };

  udfs["citus_internal_register_shell"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.empty()) {
      return Status::InvalidArgument("citus_internal_register_shell(table)");
    }
    ext->RegisterShellTable(args[0].ToText());
    return sql::Datum::Null();
  };

  udfs["citus_stat_statements_reset"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    ext->ResetStatStatements();
    return sql::Datum::Null();
  };

  udfs["citus_create_restore_point"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    // Block writes to the commit-records table while establishing the
    // restore point (§3.9): in-flight 2PCs finish, new ones wait.
    engine::TableInfo* records =
        ext->node()->catalog().Find(CitusExtension::kCommitRecordsTable);
    if (records == nullptr) return Status::Internal("no commit records table");
    CITUSX_RETURN_IF_ERROR(session.EnsureTxn());
    CITUSX_RETURN_IF_ERROR(ext->node()->locks().Acquire(
        engine::LockTag{records->oid, engine::LockTag::kTableRid},
        session.current_txn(), engine::LockMode::kExclusive));
    // The restore point is a WAL record on every node; charge a round of
    // WAL flushes.
    if (!ext->node()->sim()->WaitFor(ext->node()->cost().wal_flush)) {
      return Status::Cancelled("simulation stopping");
    }
    return sql::Datum::Text(args.empty() ? "restore_point"
                                         : args[0].ToText());
  };

  udfs["citus_table_size"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.empty()) return Status::InvalidArgument("citus_table_size(table)");
    CITUSX_ASSIGN_OR_RETURN(CitusTable * t,
                            ext->metadata().Get(args[0].ToText()));
    return sql::Datum::Int8(t->approx_bytes);
  };

  udfs["citus_shard_count"] =
      [ext](engine::Session& session,
            const std::vector<sql::Datum>& args) -> Result<sql::Datum> {
    if (args.empty()) return Status::InvalidArgument("citus_shard_count(table)");
    CITUSX_ASSIGN_OR_RETURN(CitusTable * t,
                            ext->metadata().Get(args[0].ToText()));
    return sql::Datum::Int8(static_cast<int64_t>(t->shards.size()));
  };
}

std::vector<std::pair<int32_t, int32_t>> MakeHashIntervals(int count) {
  std::vector<std::pair<int32_t, int32_t>> out;
  uint64_t span = (1ULL << 32) / static_cast<uint64_t>(count);
  int64_t lo = INT32_MIN;
  for (int i = 0; i < count; i++) {
    int64_t hi = i == count - 1
                     ? INT32_MAX
                     : lo + static_cast<int64_t>(span) - 1;
    out.emplace_back(static_cast<int32_t>(lo), static_cast<int32_t>(hi));
    lo = hi + 1;
  }
  return out;
}

}  // namespace citusx::citus
