// Shard rebalancer (paper §3.4): moves co-located shard groups between
// workers to even out shard count or data size, with minimal write downtime
// (snapshot copy + brief write-blocked catch-up, modelling logical
// replication based moves).
#ifndef CITUSX_CITUS_REBALANCER_H_
#define CITUSX_CITUS_REBALANCER_H_

#include <functional>
#include <string>

#include "citus/extension.h"

namespace citusx::citus {

enum class RebalanceStrategy {
  kByShardCount,  // default: even number of shards per worker
  kByDiskSize,    // even bytes per worker
};

/// A custom policy: cost of a shard group, capacity of a worker, and a
/// constraint telling whether a group may be placed on a worker (§3.4).
struct RebalancePolicy {
  std::function<double(int shard_group)> cost;
  std::function<double(const std::string& worker)> capacity;
  std::function<bool(int shard_group, const std::string& worker)> constraint;
};

class Rebalancer {
 public:
  explicit Rebalancer(CitusExtension* ext) : ext_(ext) {}

  /// Rebalance all co-location groups. Returns the number of shard-group
  /// moves performed.
  Result<int> Rebalance(engine::Session& session, RebalanceStrategy strategy);
  Result<int> RebalanceWithPolicy(engine::Session& session,
                                  const RebalancePolicy& policy);

  /// Move one shard (and all shards co-located with it) to `target`.
  Status MoveShard(engine::Session& session, uint64_t shard_id,
                   const std::string& source, const std::string& target);

  /// Write-blocked time of the last move (the paper's "minimal write
  /// downtime" window).
  sim::Time last_move_blocked_time = 0;

 private:
  // Move the shard at `shard_index` of every table in `colocation_id`.
  Status MoveShardGroup(engine::Session& session, int colocation_id,
                        int shard_index, const std::string& target);

  CitusExtension* ext_;
};

}  // namespace citusx::citus

#endif  // CITUSX_CITUS_REBALANCER_H_
