// Metadata syncing (§3.10, Citus MX): the authority-side sync driver and
// the JSON payload (de)serialization. See metadata_sync.h for the protocol
// and udf.cc for the worker-side internal UDFs.
#include "citus/metadata_sync.h"

#include <cstdlib>
#include <utility>
#include <vector>

#include "citus/extension.h"
#include "sql/json.h"

namespace citusx::citus {

namespace {

sql::JsonPtr Num(double v) { return sql::Json::MakeNumber(v); }
sql::JsonPtr Str(std::string s) { return sql::Json::MakeString(std::move(s)); }

sql::JsonPtr SerializeTable(const CitusTable& t) {
  std::vector<sql::JsonPtr> shards;
  shards.reserve(t.shards.size());
  for (const ShardInterval& s : t.shards) {
    shards.push_back(sql::Json::MakeObject({
        {"id", Num(static_cast<double>(s.shard_id))},
        {"min", Num(s.min_hash)},
        {"max", Num(s.max_hash)},
        {"placement", Str(s.placement)},
    }));
  }
  std::vector<sql::JsonPtr> replicas;
  replicas.reserve(t.replica_nodes.size());
  for (const std::string& r : t.replica_nodes) replicas.push_back(Str(r));
  std::vector<sql::JsonPtr> ddl;
  ddl.reserve(t.post_ddl.size());
  for (const std::string& d : t.post_ddl) ddl.push_back(Str(d));
  return sql::Json::MakeObject({
      {"name", Str(t.name)},
      {"is_reference", sql::Json::MakeBool(t.is_reference)},
      {"dist_column", Str(t.dist_column)},
      {"dist_col_index", Num(t.dist_col_index)},
      {"dist_col_type", Num(static_cast<double>(t.dist_col_type))},
      {"colocation_id", Num(t.colocation_id)},
      {"columnar_shards", sql::Json::MakeBool(t.columnar_shards)},
      {"approx_rows", Num(static_cast<double>(t.approx_rows))},
      {"approx_bytes", Num(static_cast<double>(t.approx_bytes))},
      {"modified_version", Num(static_cast<double>(t.modified_version))},
      {"shards", sql::Json::MakeArray(std::move(shards))},
      {"replica_nodes", sql::Json::MakeArray(std::move(replicas))},
      {"post_ddl", sql::Json::MakeArray(std::move(ddl))},
  });
}

Result<CitusTable> DeserializeTable(const sql::JsonPtr& j) {
  auto field = [&](const char* key) -> Result<sql::JsonPtr> {
    sql::JsonPtr v = j->GetField(key);
    if (v == nullptr) {
      return Status::InvalidArgument(
          StrFormat("metadata payload table missing field '%s'", key));
    }
    return v;
  };
  CitusTable t;
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr name, field("name"));
  t.name = name->string_value();
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr is_ref, field("is_reference"));
  t.is_reference = is_ref->bool_value();
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr dist_col, field("dist_column"));
  t.dist_column = dist_col->string_value();
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr idx, field("dist_col_index"));
  t.dist_col_index = static_cast<int>(idx->number_value());
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr type, field("dist_col_type"));
  t.dist_col_type = static_cast<sql::TypeId>(
      static_cast<int>(type->number_value()));
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr coloc, field("colocation_id"));
  t.colocation_id = static_cast<int>(coloc->number_value());
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr columnar, field("columnar_shards"));
  t.columnar_shards = columnar->bool_value();
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr rows, field("approx_rows"));
  t.approx_rows = static_cast<int64_t>(rows->number_value());
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr bytes, field("approx_bytes"));
  t.approx_bytes = static_cast<int64_t>(bytes->number_value());
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr modv, field("modified_version"));
  t.modified_version = static_cast<uint64_t>(modv->number_value());
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr shards, field("shards"));
  for (const sql::JsonPtr& s : shards->array_items()) {
    ShardInterval si;
    sql::JsonPtr id = s->GetField("id");
    sql::JsonPtr min = s->GetField("min");
    sql::JsonPtr max = s->GetField("max");
    sql::JsonPtr placement = s->GetField("placement");
    if (!id || !min || !max || !placement) {
      return Status::InvalidArgument("metadata payload shard malformed");
    }
    si.shard_id = static_cast<uint64_t>(id->number_value());
    si.min_hash = static_cast<int32_t>(min->number_value());
    si.max_hash = static_cast<int32_t>(max->number_value());
    si.placement = placement->string_value();
    t.shards.push_back(std::move(si));
  }
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr replicas, field("replica_nodes"));
  for (const sql::JsonPtr& r : replicas->array_items()) {
    t.replica_nodes.push_back(r->string_value());
  }
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr ddl, field("post_ddl"));
  for (const sql::JsonPtr& d : ddl->array_items()) {
    t.post_ddl.push_back(d->string_value());
  }
  return t;
}

}  // namespace

std::string SerializeMetadataPayload(const CitusMetadata& md,
                                     uint64_t peer_version) {
  std::vector<sql::JsonPtr> workers;
  workers.reserve(md.workers.size());
  for (const std::string& w : md.workers) workers.push_back(Str(w));
  std::vector<sql::JsonPtr> names;
  std::vector<sql::JsonPtr> tables;
  for (const auto& [name, t] : md.tables()) {
    names.push_back(Str(name));
    // Incremental: ship only tables the peer has not seen. A table touched
    // at version V is stamped modified_version = V, and a peer that applied
    // V already holds it.
    if (t.modified_version > peer_version) {
      tables.push_back(SerializeTable(t));
    }
  }
  std::vector<sql::JsonPtr> procedures;
  for (const auto& [name, p] : md.procedures) {
    procedures.push_back(sql::Json::MakeObject({
        {"name", Str(p.name)},
        {"dist_arg_index", Num(p.dist_arg_index)},
        {"colocated_table", Str(p.colocated_table)},
    }));
  }
  sql::JsonPtr payload = sql::Json::MakeObject({
      {"version", Num(static_cast<double>(md.cluster_version()))},
      {"default_shard_count", Num(md.default_shard_count)},
      {"workers", sql::Json::MakeArray(std::move(workers))},
      {"table_names", sql::Json::MakeArray(std::move(names))},
      {"tables", sql::Json::MakeArray(std::move(tables))},
      {"procedures", sql::Json::MakeArray(std::move(procedures))},
  });
  return payload->ToString();
}

std::string SerializeMetadataDelta(const CitusMetadata& md,
                                   uint64_t from_version) {
  std::vector<sql::JsonPtr> tables;
  for (const auto& [name, t] : md.tables()) {
    if (t.modified_version > from_version) {
      tables.push_back(SerializeTable(t));
    }
  }
  std::vector<sql::JsonPtr> dropped;
  for (const std::string& name : md.DroppedSince(from_version)) {
    dropped.push_back(Str(name));
  }
  std::vector<std::pair<std::string, sql::JsonPtr>> fields = {
      {"from", Num(static_cast<double>(from_version))},
      {"to", Num(static_cast<double>(md.cluster_version()))},
      {"default_shard_count", Num(md.default_shard_count)},
      {"tables", sql::Json::MakeArray(std::move(tables))},
      {"dropped", sql::Json::MakeArray(std::move(dropped))},
  };
  // Workers and procedures ride along only when they actually changed —
  // the worker list alone is O(cluster size), which is exactly the factor
  // delta sync exists to avoid shipping N times per change.
  if (md.workers_modified_version() > from_version) {
    std::vector<sql::JsonPtr> workers;
    workers.reserve(md.workers.size());
    for (const std::string& w : md.workers) workers.push_back(Str(w));
    fields.emplace_back("workers", sql::Json::MakeArray(std::move(workers)));
  }
  if (md.procedures_modified_version() > from_version) {
    std::vector<sql::JsonPtr> procedures;
    for (const auto& [name, p] : md.procedures) {
      procedures.push_back(sql::Json::MakeObject({
          {"name", Str(p.name)},
          {"dist_arg_index", Num(p.dist_arg_index)},
          {"colocated_table", Str(p.colocated_table)},
      }));
    }
    fields.emplace_back("procedures",
                        sql::Json::MakeArray(std::move(procedures)));
  }
  return sql::Json::MakeObject(std::move(fields))->ToString();
}

Status ApplyMetadataDelta(CitusExtension* ext, const std::string& json) {
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr payload, sql::Json::Parse(json));
  sql::JsonPtr from = payload->GetField("from");
  sql::JsonPtr to = payload->GetField("to");
  sql::JsonPtr tables = payload->GetField("tables");
  sql::JsonPtr dropped = payload->GetField("dropped");
  sql::JsonPtr shard_count = payload->GetField("default_shard_count");
  if (!from || !to || !tables || !dropped || !shard_count) {
    return Status::InvalidArgument("metadata delta missing sections");
  }
  CitusMetadata& md = ext->metadata();
  const uint64_t base = static_cast<uint64_t>(from->number_value());
  const uint64_t target = static_cast<uint64_t>(to->number_value());
  // The delta only composes on top of the exact base it was computed
  // against; anything else (missed round, restart wiped the copy, a full
  // sync in flight) must go through the full protocol.
  if (!md.mx_synced() || md.cluster_version() != base) {
    return Status::InvalidArgument(StrFormat(
        "metadata delta base mismatch: local copy at %llu (synced=%d), "
        "delta from %llu",
        static_cast<unsigned long long>(md.cluster_version()),
        md.mx_synced() ? 1 : 0, static_cast<unsigned long long>(base)));
  }
  // Everything below is pure in-memory application — no yields — so the
  // validate-apply-publish sequence is atomic under the simulation's
  // cooperative scheduling; no unsynced window is needed.
  md.default_shard_count = static_cast<int>(shard_count->number_value());
  for (const sql::JsonPtr& t : tables->array_items()) {
    CITUSX_ASSIGN_OR_RETURN(CitusTable table, DeserializeTable(t));
    ext->RegisterShellTable(table.name);
    md.ApplySyncedTable(std::move(table));
  }
  for (const sql::JsonPtr& d : dropped->array_items()) {
    md.Remove(d->string_value());
    ext->UnregisterShellTable(d->string_value());
  }
  if (sql::JsonPtr workers = payload->GetField("workers")) {
    md.workers.clear();
    for (const sql::JsonPtr& w : workers->array_items()) {
      md.workers.push_back(w->string_value());
    }
  }
  if (sql::JsonPtr procedures = payload->GetField("procedures")) {
    md.procedures.clear();
    for (const sql::JsonPtr& p : procedures->array_items()) {
      sql::JsonPtr name = p->GetField("name");
      sql::JsonPtr arg = p->GetField("dist_arg_index");
      sql::JsonPtr table = p->GetField("colocated_table");
      if (!name || !arg || !table) {
        return Status::InvalidArgument("metadata delta procedure malformed");
      }
      DistributedProcedure proc;
      proc.name = name->string_value();
      proc.dist_arg_index = static_cast<int>(arg->number_value());
      proc.colocated_table = table->string_value();
      md.procedures[proc.name] = std::move(proc);
    }
  }
  md.FinishSync(target);
  if (ext->metric_mx_sync_applied != nullptr) {
    ext->metric_mx_sync_applied->Inc();
  }
  return Status::OK();
}

Status ApplyMetadataPayload(CitusExtension* ext, const std::string& json) {
  CITUSX_ASSIGN_OR_RETURN(sql::JsonPtr payload, sql::Json::Parse(json));
  sql::JsonPtr workers = payload->GetField("workers");
  sql::JsonPtr names = payload->GetField("table_names");
  sql::JsonPtr tables = payload->GetField("tables");
  sql::JsonPtr procedures = payload->GetField("procedures");
  sql::JsonPtr shard_count = payload->GetField("default_shard_count");
  if (!workers || !names || !tables || !procedures || !shard_count) {
    return Status::InvalidArgument("metadata payload missing sections");
  }
  CitusMetadata& md = ext->metadata();
  md.default_shard_count = static_cast<int>(shard_count->number_value());
  md.workers.clear();
  for (const sql::JsonPtr& w : workers->array_items()) {
    md.workers.push_back(w->string_value());
  }
  for (const sql::JsonPtr& t : tables->array_items()) {
    CITUSX_ASSIGN_OR_RETURN(CitusTable table, DeserializeTable(t));
    ext->RegisterShellTable(table.name);
    md.ApplySyncedTable(std::move(table));
  }
  std::set<std::string> keep;
  for (const sql::JsonPtr& n : names->array_items()) {
    keep.insert(n->string_value());
    // Every distributed table has a local shell on this node; record that
    // so a later stale window refuses to answer from the empty shell.
    ext->RegisterShellTable(n->string_value());
  }
  md.ReconcileTables(keep);
  ext->ReconcileShellTables(keep);
  md.procedures.clear();
  for (const sql::JsonPtr& p : procedures->array_items()) {
    sql::JsonPtr name = p->GetField("name");
    sql::JsonPtr arg = p->GetField("dist_arg_index");
    sql::JsonPtr table = p->GetField("colocated_table");
    if (!name || !arg || !table) {
      return Status::InvalidArgument("metadata payload procedure malformed");
    }
    DistributedProcedure proc;
    proc.name = name->string_value();
    proc.dist_arg_index = static_cast<int>(arg->number_value());
    proc.colocated_table = table->string_value();
    md.procedures[proc.name] = std::move(proc);
  }
  if (ext->metric_mx_sync_applied != nullptr) {
    ext->metric_mx_sync_applied->Inc();
  }
  return Status::OK();
}

Status CitusExtension::SyncMetadataToNode(const std::string& target,
                                          bool force) {
  if (!IsMetadataAuthority()) {
    return Status::NotSupported(
        "metadata sync must originate on the coordinator");
  }
  if (target == node_->name()) return Status::OK();
  engine::Node* target_node = directory_->Find(target);
  if (target_node == nullptr) {
    return Status::NotFound("unknown node: " + target);
  }
  const uint64_t version = metadata_->cluster_version();
  NodeSyncState& state = sync_states_[target];
  // Already current: nothing to ship. Without this, a sweep triggered by
  // one lagging peer (the maintenance daemon syncs all workers whenever
  // any is pending) would re-send the full catalog to every current peer —
  // O(catalog x cluster) of pointless traffic at 128 nodes. The explicit
  // repair UDFs force a re-ship regardless.
  if (!force && state.synced && state.version == version &&
      target_node->restart_epoch() == state.target_epoch) {
    return Status::OK();
  }
  state.attempts++;
  metric_mx_sync_rounds->Inc();
  auto fire_hook = [&](MetadataSyncPoint point) -> Status {
    if (metadata_sync_fault_hook) return metadata_sync_fault_hook(target, point);
    return Status::OK();
  };
  // Delta fast path: the peer is known-synced at an earlier version, has
  // not restarted since, and the drop log still reaches back to its base —
  // ship only what changed, in one round trip. Any failure (most commonly
  // a base mismatch after the peer missed a round) falls through to the
  // authoritative three-round-trip protocol below.
  if (config_.enable_delta_metadata_sync && state.synced &&
      state.version > 0 && state.version < version &&
      target_node->restart_epoch() == state.target_epoch &&
      metadata_->DropLogCovers(state.version)) {
    Status delta = [&]() -> Status {
      CITUSX_RETURN_IF_ERROR(fire_hook(MetadataSyncPoint::kBeforeBegin));
      CITUSX_ASSIGN_OR_RETURN(std::unique_ptr<net::Connection> conn,
                              directory_->Connect(node_, target));
      const std::string payload =
          SerializeMetadataDelta(*metadata_, state.version);
      metric_mx_sync_bytes->Inc(static_cast<int64_t>(payload.size()));
      state.bytes_sent += static_cast<int64_t>(payload.size());
      CITUSX_RETURN_IF_ERROR(
          conn->Query("SELECT citus_internal_metadata_apply_delta(" +
                      QuoteSqlLiteral(payload) + ")")
              .status());
      state.round_trips++;
      CITUSX_RETURN_IF_ERROR(fire_hook(MetadataSyncPoint::kAfterApply));
      return Status::OK();
    }();
    if (delta.ok()) {
      state.version = version;
      state.target_epoch = target_node->restart_epoch();
      state.synced = true;
      state.last_sync_time = node_->sim()->now();
      state.syncs++;
      state.delta_syncs++;
      metric_mx_delta_syncs->Inc();
      return Status::OK();
    }
  }
  auto run = [&]() -> Status {
    CITUSX_RETURN_IF_ERROR(fire_hook(MetadataSyncPoint::kBeforeBegin));
    CITUSX_ASSIGN_OR_RETURN(std::unique_ptr<net::Connection> conn,
                            directory_->Connect(node_, target));
    const std::string ver = std::to_string(version);
    CITUSX_ASSIGN_OR_RETURN(
        engine::QueryResult begin,
        conn->Query("SELECT citus_internal_metadata_sync_begin('" + ver +
                    "')"));
    state.round_trips++;
    uint64_t peer_version = 0;
    if (!begin.rows.empty() && !begin.rows[0].empty()) {
      peer_version = static_cast<uint64_t>(begin.rows[0][0].AsInt64());
    }
    CITUSX_RETURN_IF_ERROR(fire_hook(MetadataSyncPoint::kAfterBegin));
    const std::string payload =
        SerializeMetadataPayload(*metadata_, peer_version);
    metric_mx_sync_bytes->Inc(static_cast<int64_t>(payload.size()));
    state.bytes_sent += static_cast<int64_t>(payload.size());
    CITUSX_RETURN_IF_ERROR(
        conn->Query("SELECT citus_internal_metadata_apply(" +
                    QuoteSqlLiteral(payload) + ")")
            .status());
    state.round_trips++;
    CITUSX_RETURN_IF_ERROR(fire_hook(MetadataSyncPoint::kAfterApply));
    CITUSX_RETURN_IF_ERROR(
        conn->Query("SELECT citus_internal_metadata_sync_finish('" + ver +
                    "')")
            .status());
    state.round_trips++;
    return Status::OK();
  };
  Status status = run();
  if (!status.ok()) {
    // The target's copy may be half-applied: it stays marked unsynced (the
    // begin round trip cleared its synced flag) and refuses MX routing
    // until a later round completes. Never a wrong answer.
    state.synced = false;
    metric_mx_sync_failures->Inc();
    return status;
  }
  state.version = version;
  state.target_epoch = target_node->restart_epoch();
  state.synced = true;
  state.last_sync_time = node_->sim()->now();
  state.syncs++;
  return Status::OK();
}

Result<int> CitusExtension::SyncMetadataToWorkers(bool force) {
  if (!IsMetadataAuthority()) {
    return Status::NotSupported(
        "metadata sync must originate on the coordinator");
  }
  // One sweep at a time: each per-node sync yields (connect + round trips),
  // so on a large cluster the eager post-DDL sweep and the maintenance
  // daemon's repair pass can interleave and sync the same lagging peer
  // twice. Serialize rather than skip — a DDL that returned must mean its
  // peers are synced — then run our own pass anyway: peers the previous
  // sweep already brought current hit the early-out and cost nothing.
  while (sync_sweep_active_) {
    if (!node_->sim()->WaitFor(sim::kMillisecond)) return 0;  // shutdown
  }
  sync_sweep_active_ = true;
  int synced = 0;
  Status first_error = Status::OK();
  for (const std::string& worker : metadata_->workers) {
    if (worker == node_->name()) continue;
    Status status = SyncMetadataToNode(worker, force);
    if (status.ok()) {
      synced++;
    } else if (first_error.ok()) {
      first_error = status;
    }
  }
  sync_sweep_active_ = false;
  // Partial success is success: reachable nodes are current, unreachable
  // ones are marked unsynced and the maintenance daemon retries them. Only
  // a round that synced nobody while someone failed reports the error.
  if (synced == 0 && !first_error.ok() && !metadata_->workers.empty()) {
    return first_error;
  }
  return synced;
}

void CitusExtension::MaybeSyncMetadata() {
  if (!IsMetadataAuthority() || !config_.enable_metadata_sync) return;
  CITUSX_IGNORE_STATUS(
      SyncMetadataToWorkers().status(),
      "auto-sync after a metadata change is best-effort; nodes that "
      "missed it are unsynced and the maintenance daemon retries them");
}

bool CitusExtension::AnyMetadataSyncPending() const {
  if (!IsMetadataAuthority()) return false;
  const uint64_t version = metadata_->cluster_version();
  for (const std::string& worker : metadata_->workers) {
    if (worker == node_->name()) continue;
    auto it = sync_states_.find(worker);
    if (it == sync_states_.end()) return true;
    const NodeSyncState& state = it->second;
    if (!state.synced || state.version != version) return true;
    engine::Node* target = directory_->Find(worker);
    if (target != nullptr && target->restart_epoch() != state.target_epoch) {
      // The node restarted since we synced it: its in-memory synced marker
      // was cleared on restart, so it refuses MX routing until re-synced.
      return true;
    }
  }
  return false;
}

Status CitusExtension::StampPeerMetadataVersion(WorkerConnection* wc) {
  const uint64_t version = metadata_->cluster_version();
  if (wc->stamped_version == version) return Status::OK();
  CITUSX_RETURN_IF_ERROR(
      wc->conn
          ->Query("SET citus.metadata_peer_version = '" +
                  std::to_string(version) + "'")
          .status());
  wc->stamped_version = version;
  return Status::OK();
}

Status CitusExtension::CheckPeerMetadataVersion(engine::Session& session) {
  const std::string& var = session.GetVar("citus.metadata_peer_version");
  if (var.empty()) return Status::OK();
  CitusSessionState& state = SessionState(session);
  if (state.peer_version_str != var) {
    state.peer_version_str = var;
    state.peer_version = std::strtoull(var.c_str(), nullptr, 10);
  }
  metadata_->NoteObservedVersion(state.peer_version);
  if (state.peer_version < metadata_->cluster_version()) {
    // The sending peer routed this statement with catalogs older than ours
    // — its shard placements may be wrong (e.g. a shard we moved away).
    // Reject retryably; the peer re-plans once it has been re-synced.
    return MxStaleRejection(StrFormat(
        "peer version %llu behind %s version %llu",
        static_cast<unsigned long long>(state.peer_version),
        node_->name().c_str(),
        static_cast<unsigned long long>(metadata_->cluster_version())));
  }
  return Status::OK();
}

Status CitusExtension::MxStaleRejection(const std::string& detail) {
  metric_mx_rejections->Inc();
  return Status::Aborted(StrFormat(
      "%s: %s; retry after metadata sync", kStaleMetadataError,
      detail.c_str()));
}

}  // namespace citusx::citus
