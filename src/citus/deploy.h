// Deployment helper: builds a Citus cluster (coordinator + workers,
// per-node metadata copies with the coordinator as authority, extensions
// installed, background workers started) — the unit benches, tests, and
// examples operate on. metadata() returns the authority (coordinator) copy.
#ifndef CITUSX_CITUS_DEPLOY_H_
#define CITUSX_CITUS_DEPLOY_H_

#include <memory>
#include <string>
#include <vector>

#include "citus/extension.h"
#include "net/cluster.h"

namespace citusx::citus {

struct DeploymentOptions {
  /// 0 = the coordinator doubles as the only worker ("Citus 0+1").
  int num_workers = 0;
  /// Extra nodes created (extension installed) but not registered as
  /// workers; add them later with SELECT citus_add_node('workerN').
  int spare_workers = 0;
  sim::CostModel cost;
  CitusConfig citus;
  bool start_background_workers = true;
  /// Skip installing the extension entirely ("plain PostgreSQL" baseline).
  bool install_citus = true;
};

class Deployment {
 public:
  Deployment(sim::Simulation* sim, const DeploymentOptions& options);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  net::Cluster& cluster() { return *cluster_; }
  engine::Node* coordinator() { return cluster_->coordinator(); }
  std::vector<engine::Node*> workers() { return cluster_->workers(); }
  CitusMetadata& metadata() { return *metadata_; }
  CitusExtension* extension(engine::Node* node) { return GetExtension(node); }
  sim::Simulation* sim() { return sim_; }

  /// Open a client connection (driver-side, no client node) to `name`.
  Result<std::unique_ptr<net::Connection>> Connect(
      const std::string& name = "coordinator") {
    return cluster_->directory().Connect(nullptr, name);
  }

 private:
  sim::Simulation* sim_;
  std::unique_ptr<net::Cluster> cluster_;
  std::shared_ptr<CitusMetadata> metadata_;
  std::vector<CitusExtension*> extensions_;
};

/// Remove the node->extension registration (called by ~Deployment).
void UninstallExtension(engine::Node* node);

}  // namespace citusx::citus

#endif  // CITUSX_CITUS_DEPLOY_H_
