// Distributed plan cache: per-session caching of single-shard CRUD plans
// (the PREPARE/EXECUTE hot path of §3.5's fast-path planner).
//
// Statements are normalized by lifting constants into parameters; the
// normalized deparse is the cache key. A cached entry skips table analysis
// and planning on later executions: the shard is re-pruned with a binary
// search over the hash ranges, parameter values are spliced into a deparsed
// SQL template, and — when the parameter list is dense — the shard query is
// sent as a worker-side prepared statement (PREPARE once per connection,
// then EXECUTE), so the worker also skips re-parse and re-plan.
//
// Entries snapshot the metadata generation (metadata.h) and are discarded
// when it moves: DDL, create_distributed_table, shard moves/rebalances, and
// node add/remove all bump it.
#ifndef CITUSX_CITUS_PLANCACHE_H_
#define CITUSX_CITUS_PLANCACHE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "citus/extension.h"
#include "sql/ast.h"

namespace citusx::citus {

struct TableAnalysis;  // planner.h

/// One cached distributed plan for a normalized single-shard CRUD shape.
struct CachedDistPlan {
  std::string key;          // normalized statement shape (cache map key)
  uint64_t generation = 0;  // metadata generation at build time
  int64_t plan_id = 0;      // globally unique; names worker prepared stmts
  std::string table;        // the distributed table
  sql::TypeId dist_col_type = sql::TypeId::kNull;
  int colocation_id = 0;
  int dist_param = -1;  // bound-param index carrying the dist-column value
  bool is_write = false;
  sql::Statement::Kind kind = sql::Statement::Kind::kSelect;
  int base_params = 0;  // $n params of the original statement
  int num_params = 0;   // base_params + lifted constants

  /// Deparsed SQL template: chunks.size() == slots.size() + 1. Rendering
  /// interleaves chunks with slot values: slot -1 is the pruned shard name,
  /// slot >= 0 the bound parameter at that index (as a literal or $n).
  bool has_template = false;
  std::vector<std::string> chunks;
  std::vector<int> slots;

  /// Worker-side prepared statements are usable (parameter indices form a
  /// dense 0..num_params-1 range, so EXECUTE can bind them positionally).
  bool use_prepared = false;
  /// PREPARE statement per shard index, built lazily on first touch.
  std::map<int, std::string> prepare_sql_by_shard;

  /// The normalized statement, for the rare fallback when the template
  /// could not be built (sentinel bytes occurring in a literal).
  std::shared_ptr<const sql::Statement> normalized;

  std::string PrepareName(int shard_index) const;
};

/// Attached to engine::PreparedStatement::generic_plan: the shared cache
/// entry plus the constants lifted from this statement's body (the entry may
/// be shared with shapes whose constants differ).
struct PreparedPlanRef {
  std::shared_ptr<CachedDistPlan> plan;
  std::vector<sql::Datum> lifted;
};

/// Try to execute `stmt` through the session's distributed plan cache.
/// Returns nullopt when the statement shape is not cacheable (the caller
/// falls through to the regular planner tiers); otherwise executes it —
/// building and caching the plan on a miss, re-binding on a hit — and
/// returns the result. Maintains the citus.plancache.{hit,miss,invalidation}
/// counters and the fast-path tier counters.
Result<std::optional<engine::QueryResult>> TryPlanCacheExecution(
    CitusExtension* ext, engine::Session& session, const sql::Statement& stmt,
    const std::vector<sql::Datum>& params, const TableAnalysis& analysis);

/// True when a generation-valid cache entry exists for `stmt`'s normalized
/// shape in this session (used to tag EXPLAIN output with "(cached)").
bool PlanCacheContains(CitusExtension* ext, engine::Session& session,
                       const sql::Statement& stmt,
                       const std::vector<sql::Datum>& params,
                       const TableAnalysis& analysis);

}  // namespace citusx::citus

#endif  // CITUSX_CITUS_PLANCACHE_H_
