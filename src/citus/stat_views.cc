// Observability views (obs subsystem SQL surface): citus_stat_statements
// and citus_stat_activity. Both are materialized on demand as in-memory
// relations and fed through the local planner, so arbitrary WHERE / ORDER
// BY / aggregation works against them.
#include <set>

#include "citus/plancache.h"
#include "citus/planner.h"
#include "engine/hooks.h"
#include "sim/fault.h"

namespace citusx::citus {

namespace {

constexpr const char* kStatStatements = "citus_stat_statements";
constexpr const char* kStatActivity = "citus_stat_activity";
constexpr const char* kStatPlanCache = "citus_stat_plan_cache";
constexpr const char* kStatFailures = "citus_stat_failures";
constexpr const char* kStatMetadataSync = "citus_stat_metadata_sync";
constexpr const char* kStatPools = "citus_stat_pools";

void CollectNames(const sql::TableRef& ref, std::set<std::string>* out) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kTable:
      out->insert(ref.name);
      return;
    case sql::TableRef::Kind::kSubquery:
      for (const auto& f : ref.subquery->from) CollectNames(*f, out);
      return;
    case sql::TableRef::Kind::kJoin:
      CollectNames(*ref.left, out);
      CollectNames(*ref.right, out);
      return;
  }
}

engine::TempRelation BuildStatStatements(CitusExtension* ext) {
  engine::TempRelation rel;
  rel.column_names = {"query",         "tier",        "calls",
                      "total_time_ms", "p95_time_ms", "shards_hit"};
  rel.column_types = {sql::TypeId::kText,   sql::TypeId::kText,
                      sql::TypeId::kInt8,   sql::TypeId::kFloat8,
                      sql::TypeId::kFloat8, sql::TypeId::kInt8};
  for (const auto& [query, e] : ext->stat_statements()) {
    rel.rows.push_back(
        {sql::Datum::Text(query), sql::Datum::Text(e.tier),
         sql::Datum::Int8(e.calls),
         sql::Datum::Float8(static_cast<double>(e.time.sum()) / 1e6),
         sql::Datum::Float8(static_cast<double>(e.time.Percentile(95)) / 1e6),
         sql::Datum::Int8(e.shards_hit)});
  }
  return rel;
}

// Transaction-pool telemetry for one node, read from the generic "pool.*"
// metric names every pooler registers on its server node (src/pool). Going
// through the metrics snapshot rather than pool headers keeps this layer
// below src/pool in the dependency DAG and skips nodes that never had a
// pool without creating metrics as a side effect.
struct PoolSample {
  bool present = false;
  int64_t poolers = 0, sessions = 0, in_use = 0, idle = 0, waiters = 0;
  int64_t attaches = 0, detaches = 0, replays = 0, timeouts = 0;
  double wait_p99_ms = 0;
};

PoolSample SamplePool(engine::Node* node) {
  PoolSample s;
  for (const obs::MetricSample& m : node->metrics().Snapshot()) {
    if (m.name.rfind("pool.", 0) != 0) continue;
    s.present = true;
    if (m.name == "pool.poolers") s.poolers = m.value;
    else if (m.name == "pool.client_sessions") s.sessions = m.value;
    else if (m.name == "pool.in_use") s.in_use = m.value;
    else if (m.name == "pool.idle") s.idle = m.value;
    else if (m.name == "pool.waiters") s.waiters = m.value;
    else if (m.name == "pool.attaches") s.attaches = m.value;
    else if (m.name == "pool.detaches") s.detaches = m.value;
    else if (m.name == "pool.state_replays") s.replays = m.value;
    else if (m.name == "pool.attach_timeouts") s.timeouts = m.value;
    else if (m.name == "pool.attach_wait")
      s.wait_p99_ms = static_cast<double>(m.p99) / 1e6;
  }
  return s;
}

// One row per node fronted by a transaction pooler: connection accounting
// (in-use / idle / queued waiters), attach churn, session-state replays,
// deadline timeouts, and the p99 attach wait.
engine::TempRelation BuildStatPools(CitusExtension* ext) {
  engine::TempRelation rel;
  rel.column_names = {"node_name", "poolers",         "client_sessions",
                      "in_use",    "idle",            "waiters",
                      "attaches",  "detaches",        "state_replays",
                      "attach_timeouts",              "wait_p99_ms"};
  rel.column_types = {sql::TypeId::kText, sql::TypeId::kInt8,
                      sql::TypeId::kInt8, sql::TypeId::kInt8,
                      sql::TypeId::kInt8, sql::TypeId::kInt8,
                      sql::TypeId::kInt8, sql::TypeId::kInt8,
                      sql::TypeId::kInt8, sql::TypeId::kInt8,
                      sql::TypeId::kFloat8};
  for (const std::string& name : ext->directory().names()) {
    engine::Node* node = ext->directory().Find(name);
    if (node == nullptr || node->is_down()) continue;
    PoolSample s = SamplePool(node);
    if (!s.present) continue;
    rel.rows.push_back(
        {sql::Datum::Text(name), sql::Datum::Int8(s.poolers),
         sql::Datum::Int8(s.sessions), sql::Datum::Int8(s.in_use),
         sql::Datum::Int8(s.idle), sql::Datum::Int8(s.waiters),
         sql::Datum::Int8(s.attaches), sql::Datum::Int8(s.detaches),
         sql::Datum::Int8(s.replays), sql::Datum::Int8(s.timeouts),
         sql::Datum::Float8(s.wait_p99_ms)});
  }
  return rel;
}

engine::TempRelation BuildStatActivity(CitusExtension* ext) {
  engine::TempRelation rel;
  rel.column_names = {"node_name", "local_xid", "dist_txn_id", "state"};
  rel.column_types = {sql::TypeId::kText, sql::TypeId::kInt8,
                      sql::TypeId::kText, sql::TypeId::kText};
  for (const std::string& name : ext->directory().names()) {
    engine::Node* node = ext->directory().Find(name);
    if (node == nullptr || node->is_down()) continue;
    for (const auto& [xid, dist] : node->RegisteredTxns()) {
      rel.rows.push_back(
          {sql::Datum::Text(name), sql::Datum::Int8(static_cast<int64_t>(xid)),
           sql::Datum::Text(dist),
           sql::Datum::Text(node->locks().IsWaiting(xid) ? "waiting"
                                                         : "active")});
    }
  }
  // Pooled client sessions surface here too: one aggregate row per node
  // fronted by a transaction pooler, so multiplexed sessions that hold no
  // server transaction (and hence registered no xid above) stay visible.
  for (const std::string& name : ext->directory().names()) {
    engine::Node* node = ext->directory().Find(name);
    if (node == nullptr || node->is_down()) continue;
    PoolSample s = SamplePool(node);
    if (!s.present || s.sessions == 0) continue;
    rel.rows.push_back(
        {sql::Datum::Text(name), sql::Datum::Null(),
         sql::Datum::Text("pooled:" + std::to_string(s.sessions) +
                          " sessions"),
         sql::Datum::Text(s.waiters > 0 ? "pool-waiting" : "pooled")});
  }
  return rel;
}

// One row per cached plan in this session, plus node-wide counters.
engine::TempRelation BuildStatPlanCache(CitusExtension* ext,
                                        engine::Session& session) {
  engine::TempRelation rel;
  rel.column_names = {"query",      "generation", "hits",
                      "misses",     "invalidations"};
  rel.column_types = {sql::TypeId::kText, sql::TypeId::kInt8,
                      sql::TypeId::kInt8, sql::TypeId::kInt8,
                      sql::TypeId::kInt8};
  int64_t hits = ext->metric_plancache_hit->value();
  int64_t misses = ext->metric_plancache_miss->value();
  int64_t invalidations = ext->metric_plancache_invalidation->value();
  for (const auto& [key, plan] : ext->SessionState(session).plan_cache) {
    rel.rows.push_back(
        {sql::Datum::Text(key),
         sql::Datum::Int8(static_cast<int64_t>(plan->generation)),
         sql::Datum::Int8(hits), sql::Datum::Int8(misses),
         sql::Datum::Int8(invalidations)});
  }
  if (rel.rows.empty()) {
    // Keep the node-wide counters visible even with an empty session cache.
    rel.rows.push_back({sql::Datum::Text(""), sql::Datum::Null(),
                        sql::Datum::Int8(hits), sql::Datum::Int8(misses),
                        sql::Datum::Int8(invalidations)});
  }
  return rel;
}

// One row per node: injected fault count plus the failure-path counters
// that accumulated on that node's metric registry (chaos observability).
engine::TempRelation BuildStatFailures(CitusExtension* ext) {
  engine::TempRelation rel;
  rel.column_names = {"node_name",          "faults_injected",
                      "connection_drops",   "statement_timeouts",
                      "admission_rejected", "task_retries",
                      "failovers",          "pruned_connections",
                      "partial_failures",   "recovered_txns",
                      "stale_metadata_rejections"};
  rel.column_types = {sql::TypeId::kText, sql::TypeId::kInt8,
                      sql::TypeId::kInt8, sql::TypeId::kInt8,
                      sql::TypeId::kInt8, sql::TypeId::kInt8,
                      sql::TypeId::kInt8, sql::TypeId::kInt8,
                      sql::TypeId::kInt8, sql::TypeId::kInt8,
                      sql::TypeId::kInt8};
  sim::Simulation* sim = ext->node()->sim();
  for (const std::string& name : ext->directory().names()) {
    engine::Node* node = ext->directory().Find(name);
    if (node == nullptr) continue;
    int64_t injected = sim->has_fault_injector()
                           ? sim->faults().injected_on(name)
                           : 0;
    obs::Metrics& m = node->metrics();
    rel.rows.push_back(
        {sql::Datum::Text(name), sql::Datum::Int8(injected),
         sql::Datum::Int8(m.counter("net.connection_drops")->value()),
         sql::Datum::Int8(m.counter("net.statement_timeouts")->value()),
         sql::Datum::Int8(m.counter("net.admission_rejected")->value()),
         sql::Datum::Int8(m.counter("citus.failures.retries")->value()),
         sql::Datum::Int8(m.counter("citus.failures.failovers")->value()),
         sql::Datum::Int8(
             m.counter("citus.failures.pruned_connections")->value()),
         sql::Datum::Int8(
             m.counter("citus.failures.partial_failures")->value()),
         sql::Datum::Int8(m.counter("citus.2pc.recovered")->value()),
         sql::Datum::Int8(m.counter("citus.mx.stale_rejections")->value())});
  }
  return rel;
}

// MX metadata sync state. On the authority: one row per known worker with
// the sync bookkeeping (version shipped, epoch, round-trips). On a replica:
// a single self row describing the local copy, so `SELECT * FROM
// citus_stat_metadata_sync` is meaningful wherever it runs.
engine::TempRelation BuildStatMetadataSync(CitusExtension* ext) {
  engine::TempRelation rel;
  rel.column_names = {"node_name",  "is_authority", "synced",
                      "version",    "last_sync_time_ms",
                      "round_trips", "syncs", "attempts",
                      "delta_syncs", "bytes_sent"};
  rel.column_types = {sql::TypeId::kText,   sql::TypeId::kInt8,
                      sql::TypeId::kInt8,   sql::TypeId::kInt8,
                      sql::TypeId::kFloat8, sql::TypeId::kInt8,
                      sql::TypeId::kInt8,   sql::TypeId::kInt8,
                      sql::TypeId::kInt8,   sql::TypeId::kInt8};
  const CitusMetadata& md = ext->metadata();
  if (ext->IsMetadataAuthority()) {
    rel.rows.push_back({sql::Datum::Text(ext->node()->name()),
                        sql::Datum::Int8(1), sql::Datum::Int8(1),
                        sql::Datum::Int8(static_cast<int64_t>(
                            md.cluster_version())),
                        sql::Datum::Null(), sql::Datum::Int8(0),
                        sql::Datum::Int8(0), sql::Datum::Int8(0),
                        sql::Datum::Int8(0), sql::Datum::Int8(0)});
    for (const auto& [name, state] : ext->sync_states()) {
      rel.rows.push_back(
          {sql::Datum::Text(name), sql::Datum::Int8(0),
           sql::Datum::Int8(state.synced ? 1 : 0),
           sql::Datum::Int8(static_cast<int64_t>(state.version)),
           sql::Datum::Float8(static_cast<double>(state.last_sync_time) / 1e6),
           sql::Datum::Int8(state.round_trips), sql::Datum::Int8(state.syncs),
           sql::Datum::Int8(state.attempts),
           sql::Datum::Int8(state.delta_syncs),
           sql::Datum::Int8(state.bytes_sent)});
    }
  } else {
    rel.rows.push_back(
        {sql::Datum::Text(ext->node()->name()), sql::Datum::Int8(0),
         sql::Datum::Int8(md.mx_synced() ? 1 : 0),
         sql::Datum::Int8(static_cast<int64_t>(md.cluster_version())),
         sql::Datum::Null(), sql::Datum::Int8(0), sql::Datum::Int8(0),
         sql::Datum::Int8(0), sql::Datum::Int8(0), sql::Datum::Int8(0)});
  }
  return rel;
}

}  // namespace

Result<std::optional<engine::QueryResult>> MaybeExecuteStatView(
    CitusExtension* ext, engine::Session& session, const sql::Statement& stmt,
    const std::vector<sql::Datum>& params) {
  if (stmt.kind != sql::Statement::Kind::kSelect || stmt.is_explain ||
      stmt.select == nullptr) {
    return std::optional<engine::QueryResult>();
  }
  std::set<std::string> names;
  for (const auto& f : stmt.select->from) CollectNames(*f, &names);
  bool wants_statements = names.count(kStatStatements) > 0;
  bool wants_activity = names.count(kStatActivity) > 0;
  bool wants_plan_cache = names.count(kStatPlanCache) > 0;
  bool wants_failures = names.count(kStatFailures) > 0;
  bool wants_metadata_sync = names.count(kStatMetadataSync) > 0;
  bool wants_pools = names.count(kStatPools) > 0;
  if (!wants_statements && !wants_activity && !wants_plan_cache &&
      !wants_failures && !wants_metadata_sync && !wants_pools) {
    return std::optional<engine::QueryResult>();
  }
  engine::TempRelation statements;
  engine::TempRelation activity;
  engine::TempRelation plan_cache;
  engine::TempRelation failures;
  engine::TempRelation metadata_sync;
  std::map<std::string, const engine::TempRelation*> temps;
  if (wants_statements) {
    statements = BuildStatStatements(ext);
    temps[kStatStatements] = &statements;
  }
  if (wants_activity) {
    activity = BuildStatActivity(ext);
    temps[kStatActivity] = &activity;
  }
  if (wants_plan_cache) {
    plan_cache = BuildStatPlanCache(ext, session);
    temps[kStatPlanCache] = &plan_cache;
  }
  if (wants_failures) {
    failures = BuildStatFailures(ext);
    temps[kStatFailures] = &failures;
  }
  if (wants_metadata_sync) {
    metadata_sync = BuildStatMetadataSync(ext);
    temps[kStatMetadataSync] = &metadata_sync;
  }
  engine::TempRelation pools;
  if (wants_pools) {
    pools = BuildStatPools(ext);
    temps[kStatPools] = &pools;
  }
  CITUSX_ASSIGN_OR_RETURN(
      engine::QueryResult r,
      engine::RunLocalSelect(session, *stmt.select, params, &temps));
  return std::optional<engine::QueryResult>(std::move(r));
}

}  // namespace citusx::citus
