// The Citus extension: installed on a node through the engine's extension
// hook API (paper §3.1), it adds distributed tables, the four-tier
// distributed planner, the adaptive executor, 2PC transactions, distributed
// deadlock detection, the shard rebalancer, and scaled COPY / INSERT..SELECT
// / DDL.
#ifndef CITUSX_CITUS_EXTENSION_H_
#define CITUSX_CITUS_EXTENSION_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "citus/metadata.h"
#include "common/ordered_mutex.h"
#include "engine/hooks.h"
#include "net/cluster.h"
#include "obs/metrics.h"
#include "sim/histogram.h"

namespace citusx::citus {

class CitusExtension;

struct CachedDistPlan;

/// One cached worker connection with its transaction bookkeeping.
struct WorkerConnection {
  std::unique_ptr<net::Connection> conn;
  std::string worker;
  bool txn_open = false;     // worker-side BEGIN sent
  bool did_write = false;    // writes in the current transaction
  std::string prepared_gid;  // set between PREPARE and COMMIT PREPARED
  /// (colocation_id, shard_index) groups touched in the current transaction;
  /// subsequent accesses to the same group must reuse this connection.
  std::set<std::pair<int, int>> groups;
  /// Names of worker-side prepared statements already created on this
  /// connection (the plan cache PREPAREs each shard query once per
  /// connection, then re-EXECUTEs it).
  std::set<std::string> prepared_stmts;
  /// Metadata cluster version last stamped onto this connection via
  /// SET citus.metadata_peer_version (0 = never stamped). The receiving
  /// node uses the stamp to refuse work routed by a staler peer.
  uint64_t stamped_version = 0;
  /// Whether SET citus.use_vectorized_executor = 'off' is in effect on the
  /// worker session behind this connection (workers default on; the
  /// coordinator propagates its own session setting at task dispatch).
  bool vectorized_off_stamped = false;
};

/// Per-session extension state, hung off Session::extension_state.
struct CitusSessionState {
  /// Cached connections per worker (kept across transactions).
  std::map<std::string, std::vector<std::unique_ptr<WorkerConnection>>> pool;
  /// Distributed transaction id for the open transaction (assigned lazily).
  std::string dist_txn_id;
  CitusExtension* extension = nullptr;
  /// Distributed plan cache, keyed by normalized statement shape
  /// (plancache.cc). Entries are dropped when the metadata generation moves.
  std::map<std::string, std::shared_ptr<CachedDistPlan>> plan_cache;
  /// Cached parse of the citus.metadata_peer_version session variable
  /// (set once per inter-node connection; re-parsed only when it changes).
  std::string peer_version_str;
  uint64_t peer_version = 0;

  ~CitusSessionState();
};

/// Aggregated execution stats for one normalized statement
/// (the backing store of the citus_stat_statements view).
struct StatStatementEntry {
  std::string tier;        // planner tier of the most recent call
  int64_t calls = 0;
  int64_t shards_hit = 0;  // cumulative tasks sent to shards
  sim::Histogram time;     // per-call virtual time (ns)
};

struct CitusConfig {
  bool is_coordinator = false;
  int shard_count = 32;
  /// Upper bound on this node's total outgoing connections per worker
  /// (the shared connection limit of §3.6.1).
  int max_shared_pool_size = 300;
  /// Slow-start: new-connection allowance increase interval.
  sim::Time slow_start_interval = 10 * sim::kMillisecond;
  /// Disable slow start entirely (ablation).
  bool enable_slow_start = true;
  /// Shared-connection task pipelining: batch read-only multi-shard tasks
  /// bound for the same worker into pipelined round trips on a small fixed
  /// set of connections, instead of ramping one connection per task through
  /// slow start (ablation: abl_scale --no-pipelining).
  bool enable_task_pipelining = true;
  /// Connections per worker the pipelined path fans out over (a backend
  /// executes its pipeline serially, so width = per-worker CPU parallelism).
  int pipeline_width = 4;
  /// Max tasks batched into one pipelined round trip.
  int pipeline_batch_size = 16;
  /// Per-session distributed plan cache + worker-side prepared statements
  /// (ablation: abl_plancache --no-plan-cache).
  bool enable_plan_cache = true;
  /// Register the vectorized morsel-driven executor (src/exec) on the node.
  /// Sessions can still opt out per-session with
  /// SET citus.use_vectorized_executor = off, which the coordinator also
  /// propagates to its worker connections (ablation: abl_olap).
  bool use_vectorized_executor = true;
  /// Maintenance daemon intervals.
  sim::Time deadlock_poll_interval = 2 * sim::kSecond;
  sim::Time recovery_poll_interval = 30 * sim::kSecond;
  /// Task retry policy (chaos hardening): transient failures retry with
  /// capped exponential backoff on a fresh connection where safe.
  int task_retry_attempts = 3;
  sim::Time task_retry_backoff = 2 * sim::kMillisecond;
  sim::Time task_retry_max_backoff = 50 * sim::kMillisecond;
  /// Per-statement deadline on worker connections (0 = none). A round trip
  /// exceeding it fails with Timeout and the connection is replaced.
  sim::Time statement_timeout = 0;
  /// Metadata syncing (§3.10, Citus MX): the coordinator pushes its
  /// catalogs to every worker after each metadata change, and the
  /// maintenance daemon re-syncs nodes that missed a round (crash, restart,
  /// new node). Disable to model a classic coordinator-only cluster; the
  /// manual sync UDFs (citus_sync_metadata, start_metadata_sync_to_node)
  /// still work.
  bool enable_metadata_sync = true;
  /// Delta fast path for metadata sync: peers already synced at an earlier
  /// version receive a one-round-trip diff (changed tables, dropped names,
  /// workers/procedures only when touched) instead of the full
  /// three-round-trip payload. Any delta failure falls back to the full
  /// protocol. Disable to measure full-sync cost (abl_scale --no-delta).
  bool enable_delta_metadata_sync = true;
};

/// Metadata-sync round-trip boundaries where the fault hook fires
/// (crash-during-sync testing). The arguments are the target node name and
/// the boundary just crossed.
enum class MetadataSyncPoint {
  kBeforeBegin,  // before the sync_begin round trip
  kAfterBegin,   // peer marked unsynced, payload not yet shipped
  kAfterApply,   // payload applied, finish (publish) not yet sent
};

/// Per-node metadata-sync bookkeeping on the authority (backing store of
/// the citus_stat_metadata_sync view).
struct NodeSyncState {
  uint64_t version = 0;       // cluster version last synced successfully
  uint64_t target_epoch = 0;  // target's restart_epoch at that sync
  bool synced = false;
  sim::Time last_sync_time = 0;
  int64_t round_trips = 0;  // cumulative sync round trips (incl. failures)
  int64_t syncs = 0;        // successful sync rounds
  int64_t attempts = 0;     // rounds attempted
  int64_t delta_syncs = 0;  // successful rounds served by the delta path
  int64_t bytes_sent = 0;   // cumulative payload bytes shipped to this node
};

/// Error-message prefix for stale-metadata rejections. They are issued as
/// StatusCode::kAborted (SQLSTATE 40001, RetryableTransient) so drivers and
/// the executor treat them as retryable — a re-sync heals the node.
inline constexpr const char* kStaleMetadataError = "stale distributed metadata";

inline bool IsStaleMetadataStatus(const Status& status) {
  return status.code() == StatusCode::kAborted &&
         status.message().rfind(kStaleMetadataError, 0) == 0;
}

/// 2PC phase boundaries where the fault hook fires (crash testing §3.7).
enum class TwoPhasePoint {
  kBeforePrepare,      // before any PREPARE TRANSACTION is sent
  kAfterPrepare,       // workers prepared, commit record not yet written
  kAfterCommitRecord,  // commit record durable, COMMIT PREPARED not yet sent
};

class CitusExtension {
 public:
  /// Install the extension on `node`. `metadata` is this node's own copy of
  /// the catalogs: the coordinator's copy is the cluster authority, worker
  /// copies are replicas filled in by metadata sync (§3.10); `directory`
  /// resolves worker names. Registers hooks, UDFs, and the maintenance
  /// background worker.
  static CitusExtension* Install(engine::Node* node,
                                 net::NodeDirectory* directory,
                                 std::shared_ptr<CitusMetadata> metadata,
                                 const CitusConfig& config);

  engine::Node* node() { return node_; }
  CitusMetadata& metadata() { return *metadata_; }
  net::NodeDirectory& directory() { return *directory_; }
  const CitusConfig& config() const { return config_; }
  /// Benches flip feature flags (delta sync, pipelining) between phases of
  /// one deployment to measure ablations without a redeploy.
  CitusConfig& mutable_config() { return config_; }

  /// Session state accessor (created lazily).
  CitusSessionState& SessionState(engine::Session& session);

  /// Connection with affinity: if `group` (colocation, shard index) was
  /// already accessed in this transaction, returns that connection;
  /// otherwise returns the least-loaded cached connection, or opens one.
  /// `allow_new` gates connection establishment (slow start).
  Result<WorkerConnection*> GetConnection(engine::Session& session,
                                          const std::string& worker,
                                          std::pair<int, int> group,
                                          bool prefer_idle_only = false);

  /// Open an additional connection to `worker` for parallel execution,
  /// respecting the shared pool limit. Returns nullptr (not an error) when
  /// the limit is reached.
  Result<WorkerConnection*> TryOpenExtraConnection(engine::Session& session,
                                                   const std::string& worker);

  /// Ensure a worker-side transaction block is open on `wc` and the
  /// distributed transaction id is assigned/propagated.
  Status EnsureWorkerTxn(engine::Session& session, WorkerConnection* wc);

  /// Total outgoing connections to `worker` from this node.
  int outgoing_connections(const std::string& worker) const {
    std::lock_guard<OrderedMutex> guard(pool_mu_);
    auto it = outgoing_.find(worker);
    return it == outgoing_.end() ? 0 : it->second;
  }

  // ---- failure hardening ----

  /// Close and remove a broken pooled connection (it is destroyed; the pool
  /// re-grows through slow start). Must not be called on connections
  /// carrying transaction state.
  void PruneConnection(engine::Session& session, WorkerConnection* wc);

  /// Record that `worker` was observed down. Bumps the metadata generation
  /// (invalidating distributed plan caches that route to it) the first time.
  void NoteWorkerUnavailable(const std::string& worker);
  /// Clears the down marker after a successful reconnect.
  void NoteWorkerAvailable(const std::string& worker);
  bool IsWorkerMarkedDown(const std::string& worker) const {
    std::lock_guard<OrderedMutex> guard(pool_mu_);
    return down_workers_.count(worker) > 0;
  }

  /// Remember shard tables to drop on `worker` once it is reachable again
  /// (failed rebalance copies); the maintenance daemon retries them.
  void AddDeferredCleanup(const std::string& worker,
                          std::vector<std::string> tables);
  /// Attempt all pending deferred cleanups; returns how many tables were
  /// dropped.
  int RunDeferredCleanup(engine::Session& session);
  int pending_cleanup_count() const {
    std::lock_guard<OrderedMutex> guard(pool_mu_);
    int n = 0;
    for (const auto& [w, tables] : pending_cleanup_) {
      n += static_cast<int>(tables.size());
    }
    return n;
  }

  // ---- metadata syncing / MX mode (metadata_sync.cc) ----

  /// True on the node that owns the authoritative metadata copy (the
  /// coordinator). Only the authority mutates cluster-visible metadata.
  bool IsMetadataAuthority() const { return config_.is_coordinator; }

  /// True when this node may coordinate distributed queries: the authority
  /// always, a worker only with a fully applied sync at a version no older
  /// than any version it has observed on the wire.
  bool MxReady() const {
    if (config_.is_coordinator) return true;
    return metadata_->mx_synced() &&
           metadata_->cluster_version() >= metadata_->known_cluster_version();
  }

  /// Push the authority's catalogs to one node / all registered workers
  /// over a dedicated connection (delta fast path: one round trip; full
  /// protocol: begin, incremental apply, finish). Peers already at the
  /// current version are skipped unless `force` is set — the explicit
  /// repair UDFs (citus_sync_metadata, start_metadata_sync_to_node) force
  /// a re-ship, internal sweeps don't. SyncMetadataToWorkers returns the
  /// number of nodes synced; per-node failures mark the node unsynced and
  /// are not fatal.
  Status SyncMetadataToNode(const std::string& target, bool force = false);
  Result<int> SyncMetadataToWorkers(bool force = false);
  /// Best-effort auto-sync after an authoritative metadata change; failures
  /// are left for the maintenance daemon to retry.
  void MaybeSyncMetadata();
  /// True when some registered worker needs a (re-)sync: never synced,
  /// behind the current version, restarted since its last sync, or its last
  /// round failed.
  bool AnyMetadataSyncPending() const;

  /// Stamp `wc` with this node's metadata version (one SET round trip,
  /// skipped when already stamped at the current version). Called before
  /// task dispatch so every inter-node statement carries the sender's
  /// version.
  Status StampPeerMetadataVersion(WorkerConnection* wc);
  /// Receiver side: reject statements from a peer whose stamped version is
  /// older than this node's copy (stale routing may target moved shards).
  /// Also feeds the peer's version into the known-version watermark.
  Status CheckPeerMetadataVersion(engine::Session& session);

  /// Build a stale-metadata rejection (kAborted + kStaleMetadataError
  /// prefix, see above) and count it in citus.mx.stale_rejections.
  Status MxStaleRejection(const std::string& detail);

  /// Shell-table registry: worker-side record that a relation is the empty
  /// local shell of a distributed table. A worker whose metadata copy is
  /// stale (or empty) must refuse statements touching registered shells
  /// rather than run them locally and return wrong (empty) answers.
  void RegisterShellTable(const std::string& name) {
    shell_tables_.insert(name);
  }
  void UnregisterShellTable(const std::string& name) {
    shell_tables_.erase(name);
  }
  bool IsShellTable(const std::string& name) const {
    return shell_tables_.count(name) > 0;
  }
  /// Drop registrations for tables the authority no longer has (sync
  /// reconciliation after a DROP TABLE).
  void ReconcileShellTables(const std::set<std::string>& keep) {
    for (auto it = shell_tables_.begin(); it != shell_tables_.end();) {
      if (keep.count(*it) == 0) {
        it = shell_tables_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Authority-side per-node sync bookkeeping (citus_stat_metadata_sync).
  const std::map<std::string, NodeSyncState>& sync_states() const {
    return sync_states_;
  }
  void ForgetSyncState(const std::string& target) {
    sync_states_.erase(target);
  }

  /// Test/chaos hook fired at metadata-sync boundaries; a non-OK return
  /// aborts the sync round at that point, leaving the target unsynced.
  std::function<Status(const std::string&, MetadataSyncPoint)>
      metadata_sync_fault_hook;

  /// Test/chaos hook fired at 2PC phase boundaries; a non-OK return models
  /// the coordinator failing at that point (the commit path surfaces the
  /// error without finishing the protocol).
  std::function<Status(TwoPhasePoint)> twophase_fault_hook;
  /// When set, the next PostCommit skips COMMIT PREPARED and forgets the
  /// prepared gids (models the coordinator crashing right after its local
  /// commit; the recovery daemon must finish the commit from the records).
  bool suppress_post_commit_2pc_once = false;

  // ---- wired into session hooks (twophase.cc) ----
  Status PreCommit(engine::Session& session);
  void PostCommit(engine::Session& session);
  void PostAbort(engine::Session& session);

  /// One round of 2PC recovery (also run by the maintenance daemon):
  /// compares worker prepared transactions against local commit records.
  /// Returns number of transactions finalized.
  Result<int> RecoverTwoPhaseCommits(engine::Session& session);

  /// One round of distributed deadlock detection. Returns true if a victim
  /// was cancelled.
  bool DetectDistributedDeadlocks();

  /// Statistics.
  int64_t two_phase_commits = 0;
  int64_t two_phase_prepares = 0;  // PREPARE TRANSACTION sent (2 per 2-node 2PC)
  int64_t single_node_commits = 0;
  int64_t deadlocks_detected = 0;
  int64_t recovered_txns = 0;

  /// Metric handles on this node's registry, resolved once at install.
  obs::Counter* metric_tasks = nullptr;          // citus.executor.tasks
  obs::Counter* metric_pool_growth = nullptr;    // citus.executor.pool_growth
  obs::Counter* metric_pipeline_batches = nullptr;  // citus.executor.pipeline_batches
  obs::Counter* metric_pipelined_tasks = nullptr;   // citus.executor.pipelined_tasks
  obs::Counter* metric_prepares = nullptr;       // citus.2pc.prepares
  obs::Counter* metric_2pc_commits = nullptr;    // citus.2pc.commits
  obs::Counter* metric_1pc_commits = nullptr;    // citus.2pc.single_node_commits
  obs::Counter* metric_fast_path = nullptr;      // citus.planner.fast_path
  obs::Counter* metric_router = nullptr;         // citus.planner.router
  obs::Counter* metric_pushdown = nullptr;       // citus.planner.pushdown
  obs::Counter* metric_join_order = nullptr;     // citus.planner.join_order
  obs::Counter* metric_plancache_hit = nullptr;  // citus.plancache.hit
  obs::Counter* metric_plancache_miss = nullptr;          // citus.plancache.miss
  obs::Counter* metric_plancache_invalidation = nullptr;  // citus.plancache.invalidation
  // Failure-path counters (citus_stat_failures view).
  obs::Counter* metric_task_retries = nullptr;      // citus.failures.retries
  obs::Counter* metric_failovers = nullptr;         // citus.failures.failovers
  obs::Counter* metric_pruned = nullptr;            // citus.failures.pruned_connections
  obs::Counter* metric_partial_failures = nullptr;  // citus.failures.partial_failures
  obs::Counter* metric_node_down = nullptr;         // citus.failures.node_down_invalidations
  obs::Counter* metric_recovered = nullptr;         // citus.2pc.recovered
  // MX metadata-sync counters (citus_stat_metadata_sync / _failures views).
  obs::Counter* metric_mx_rejections = nullptr;     // citus.mx.stale_rejections
  obs::Counter* metric_mx_sync_rounds = nullptr;    // citus.mx.sync_rounds
  obs::Counter* metric_mx_sync_failures = nullptr;  // citus.mx.sync_failures
  obs::Counter* metric_mx_sync_applied = nullptr;   // citus.mx.sync_applied
  obs::Counter* metric_mx_delta_syncs = nullptr;    // citus.mx.delta_syncs
  obs::Counter* metric_mx_sync_bytes = nullptr;     // citus.mx.sync_bytes

  // ---- citus_stat_statements backing store ----
  void RecordStatement(const std::string& normalized, const std::string& tier,
                       sim::Time elapsed, int64_t shards) {
    StatStatementEntry& e = stat_statements_[normalized];
    e.tier = tier;
    e.calls++;
    e.shards_hit += shards;
    e.time.Record(elapsed);
  }
  const std::map<std::string, StatStatementEntry>& stat_statements() const {
    return stat_statements_;
  }
  void ResetStatStatements() { stat_statements_.clear(); }

  /// The engine table holding commit records ("pg_dist_transaction").
  static constexpr const char* kCommitRecordsTable = "pg_dist_transaction";

  /// Generate a distributed transaction id / 2PC gid.
  std::string NextDistTxnId();
  std::string MakeGid(const std::string& dist_txn_id, int seq);

  /// Release per-session connection accounting when a session dies.
  void OnConnectionClosed(const std::string& worker);

 private:
  friend struct CitusSessionState;
  CitusExtension(engine::Node* node, net::NodeDirectory* directory,
                 std::shared_ptr<CitusMetadata> metadata, CitusConfig config);

  void RegisterHooks();
  void RegisterUdfs();  // udf.cc
  void StartMaintenanceDaemon();

  engine::Node* node_;
  net::NodeDirectory* directory_;
  std::shared_ptr<CitusMetadata> metadata_;
  CitusConfig config_;
  /// Guards the shared connection counters, down-worker markers, and the
  /// deferred-cleanup queue — the node-wide pool state shared by every
  /// session. Never held across a connection open or round trip (both
  /// yield); callers re-check under the lock after any wait.
  mutable OrderedMutex pool_mu_{LockRank::kConnectionPool};
  std::map<std::string, int> outgoing_;  // shared connection counters
  uint64_t dist_txn_counter_ = 0;
  /// Distributed transactions this node initiated that are still in flight;
  /// 2PC recovery must not touch their prepared transactions.
  std::set<std::string> active_dist_txns_;
  std::map<std::string, StatStatementEntry> stat_statements_;
  /// Workers observed down (cleared on successful reconnect).
  std::set<std::string> down_workers_;
  /// Worker -> shard tables awaiting cleanup (dropped by the daemon).
  std::map<std::string, std::vector<std::string>> pending_cleanup_;
  /// Relations registered as distributed-table shells on this node.
  /// Single-writer per node (DDL propagation / sync apply), read at plan
  /// time; cooperative scheduling makes the unlocked map safe, matching
  /// stat_statements_ above.
  std::set<std::string> shell_tables_;
  /// Authority-side sync bookkeeping, keyed by target node name.
  std::map<std::string, NodeSyncState> sync_states_;
  /// True while a SyncMetadataToWorkers sweep is in flight on this node;
  /// concurrent sweeps (eager post-DDL vs maintenance daemon) would sync
  /// the same lagging peers twice, so later callers no-op.
  bool sync_sweep_active_ = false;

 public:
  void MarkDistTxnActive(const std::string& id) {
    active_dist_txns_.insert(id);
  }
  void MarkDistTxnEnded(const std::string& id) { active_dist_txns_.erase(id); }
  bool IsDistTxnActive(const std::string& id) const {
    return active_dist_txns_.count(id) > 0;
  }
};

/// Extension lookup for a node (set at Install).
CitusExtension* GetExtension(engine::Node* node);

}  // namespace citusx::citus

#endif  // CITUSX_CITUS_EXTENSION_H_
