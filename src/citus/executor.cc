#include "citus/executor.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/str.h"
#include "obs/trace.h"
#include "sim/channel.h"

namespace citusx::citus {

namespace {

// Shared between the coordinating process, runners, and the ticker; heap
// allocated so cancellation-order at simulation shutdown cannot dangle.
struct RunState {
  engine::Session* session = nullptr;
  CitusExtension* ext = nullptr;
  sim::Simulation* sim = nullptr;
  bool need_txn_block = false;
  std::vector<engine::QueryResult> owned_results;
  std::vector<engine::QueryResult>* results = nullptr;
  Status first_error;
  /// Per-task outcome, for partial-failure reporting on multi-shard reads.
  std::vector<Status> task_status;
  std::unique_ptr<sim::Channel<int>> done;
  bool ticker_active = true;

  // Per-worker task queues.
  struct WorkerQueue {
    std::deque<Task*> general;
    std::map<WorkerConnection*, std::deque<Task*>> assigned;
    int runners = 0;
  };
  std::map<std::string, WorkerQueue> queues;
};

Status ExecOneTask(RunState& st, WorkerConnection* wc, Task& task) {
  // NOLINTNEXTLINE: task fields moved at most once (each task runs once).
  // MX (§3.10): every inter-node statement carries the sender's metadata
  // version so the receiver can refuse work routed by a staler peer. One
  // SET round trip per connection per version; a no-op when current.
  CITUSX_RETURN_IF_ERROR(st.ext->StampPeerMetadataVersion(wc));
  // Propagate the coordinator session's executor choice so worker fragments
  // honor SET citus.use_vectorized_executor (same stamping idiom as the
  // metadata version: one SET round trip, only when the setting changes).
  bool vec_off =
      st.session->GetVar("citus.use_vectorized_executor") == "off";
  if (vec_off != wc->vectorized_off_stamped) {
    CITUSX_RETURN_IF_ERROR(
        wc->conn
            ->Query(vec_off ? "SET citus.use_vectorized_executor = 'off'"
                            : "SET citus.use_vectorized_executor = 'on'")
            .status());
    wc->vectorized_off_stamped = vec_off;
  }
  if (st.need_txn_block) {
    CITUSX_RETURN_IF_ERROR(st.ext->EnsureWorkerTxn(*st.session, wc));
  }
  if (task.shard_group >= 0) {
    wc->groups.insert({task.colocation_id, task.shard_group});
  }
  if (task.is_write) wc->did_write = true;
  st.ext->metric_tasks->Inc();
  // When the session carries an active trace (EXPLAIN ANALYZE), wrap the
  // task in a span and propagate the context on the wire so the worker's
  // execution span nests under it.
  sim::Simulation* sim = st.ext->node()->sim();
  obs::TraceCollector* tracer = st.ext->node()->tracer();
  obs::TraceId trace = 0;
  obs::SpanId parent = 0;
  obs::SpanId span = 0;
  if (tracer != nullptr &&
      obs::ParseTraceContext(st.session->GetVar("citusx.trace_ctx"), &trace,
                             &parent)) {
    span = tracer->StartSpan(trace, parent, "task", st.ext->node()->name(),
                             sim->now());
    tracer->SetAttr(span, "worker", task.worker);
    if (task.shard_group >= 0) {
      tracer->SetAttr(span, "shard_group", std::to_string(task.shard_group));
    }
    const std::string& span_sql =
        task.prepare_name.empty() ? task.sql : task.execute_sql;
    if (!span_sql.empty()) tracer->SetAttr(span, "sql", span_sql);
    wc->conn->SetTraceContext(obs::FormatTraceContext(trace, span));
  }
  Result<engine::QueryResult> r = [&]() -> Result<engine::QueryResult> {
    if (task.is_copy) {
      return wc->conn->CopyIn(task.copy_table, task.copy_columns,
                              std::move(task.copy_rows));
    }
    if (!task.prepare_name.empty()) {
      if (wc->prepared_stmts.count(task.prepare_name) == 0) {
        // First use on this connection: PREPARE piggybacks on the EXECUTE's
        // round trip (extended protocol batching).
        Result<engine::QueryResult> batch =
            wc->conn->QueryBatch({task.prepare_sql, task.execute_sql});
        if (batch.ok()) wc->prepared_stmts.insert(task.prepare_name);
        return batch;
      }
      return wc->conn->Query(task.execute_sql);
    }
    return wc->conn->Query(task.sql);
  }();
  if (span != 0) {
    wc->conn->SetTraceContext("");
    if (r.ok()) {
      tracer->SetRows(span, r->rows.empty()
                                ? r->rows_affected
                                : static_cast<int64_t>(r->rows.size()));
    }
    tracer->EndSpan(span, sim->now());
  }
  if (!r.ok()) return r.status();
  (*st.results)[static_cast<size_t>(task.index)] = std::move(r).value();
  return Status::OK();
}

// Execute one task with the failure-hardening wrapper: broken pooled
// connections are pruned and replaced, retryable-transient errors retry
// with capped exponential backoff, and reads whose target node is down
// fail over to the task's fallback replicas. `wc` is updated in place so
// the caller keeps draining its queue on the replacement connection.
// Connections carrying transaction state are never pruned: a transaction
// of unknown fate must surface through the 2PC/abort machinery instead.
Status ExecTaskResilient(RunState& st, WorkerConnection*& wc, Task& task) {
  CitusExtension* ext = st.ext;
  const CitusConfig& cfg = ext->config();
  sim::Simulation* sim = ext->node()->sim();
  int max_attempts = std::max(1, cfg.task_retry_attempts);
  sim::Time backoff = cfg.task_retry_backoff;
  std::string worker = task.worker;
  size_t next_fallback = 0;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= max_attempts; attempt++) {
    // Heal: replace a broken connection before dispatching on it.
    if (wc != nullptr && !wc->conn->usable()) {
      if (!wc->groups.empty() || wc->txn_open || wc->did_write ||
          !wc->prepared_gid.empty()) {
        return last.ok() ? Status::ConnectionLost(
                               "connection to " + worker +
                               " broke with transaction state pending")
                         : last;
      }
      ext->PruneConnection(*st.session, wc);
      wc = nullptr;
    }
    if (wc == nullptr) {
      auto fresh = ext->GetConnection(*st.session, worker,
                                      {task.colocation_id, task.shard_group});
      if (fresh.ok()) {
        wc = *fresh;
      } else {
        last = fresh.status();
      }
    }
    if (wc != nullptr) {
      bool was_stateless = wc->groups.empty() && !wc->txn_open &&
                           !wc->did_write && wc->prepared_gid.empty();
      last = ExecOneTask(st, wc, task);
      if (last.ok()) return last;
      if (was_stateless && !st.need_txn_block && !wc->conn->usable()) {
        // The failed attempt's affinity bookkeeping is the only state on
        // this handle; clear it so the heal step above may prune it.
        wc->groups.clear();
        wc->did_write = false;
      }
    }
    ErrorClass ec = last.error_class();
    // A stale-metadata rejection cannot heal through task-level retries:
    // this node keeps routing from the same stale copy until a re-sync.
    // Surface it immediately — it is RetryableTransient, so the client
    // retry re-plans after the maintenance daemon has re-synced the node.
    if (IsStaleMetadataStatus(last)) return last;
    // Inside a transaction block worker state is at stake: no silent
    // retries, the error aborts the distributed transaction.
    if (ec == ErrorClass::kFatal || st.need_txn_block) return last;
    if (ec == ErrorClass::kNodeDown) {
      ext->NoteWorkerUnavailable(worker);
      // Reference-table reads fail over to a replica on another node.
      if (task.is_write || task.is_copy ||
          next_fallback >= task.fallback_workers.size()) {
        return last;
      }
      worker = task.fallback_workers[next_fallback++];
      ext->metric_failovers->Inc();
      wc = nullptr;
      continue;
    }
    // Retryable-transient: pool exhaustion retries for any task; dropped
    // connections and statement timeouts only for reads (the write may
    // already have been applied before the reply was lost).
    bool can_retry =
        !task.is_copy &&
        (last.code() == StatusCode::kResourceExhausted ||
         (!task.is_write && (last.IsConnectionLost() || last.IsTimeout())));
    if (!can_retry || attempt == max_attempts) return last;
    ext->metric_task_retries->Inc();
    if (!sim->WaitFor(backoff)) return Status::Cancelled("simulation stopping");
    backoff = std::min(backoff * 2, cfg.task_retry_max_backoff);
  }
  return last;
}

// Run one chunk of read-only tasks over `wc` as a single pipelined round
// trip (PREPAREs piggyback ahead of their EXECUTE). Tasks whose statement
// failed for a retryable reason are re-run through the resilient per-task
// wrapper, which may heal/replace `wc`; fatal SQL errors and stale-metadata
// rejections are recorded directly without a wasted re-execution.
void RunPipelineChunk(RunState& st, WorkerConnection*& wc,
                      const std::vector<Task*>& chunk) {
  auto record = [&](Task* t, const Status& s) {
    if (!st.task_status.empty()) {
      st.task_status[static_cast<size_t>(t->index)] = s;
    }
    if (!s.ok() && st.first_error.ok()) st.first_error = s;
  };
  auto fallback = [&](Task* t) { record(t, ExecTaskResilient(st, wc, *t)); };

  // No usable connection: the resilient path acquires (or fails) per task.
  bool ready = wc != nullptr && wc->conn->usable();
  if (ready) {
    // Per-connection stamps (peer metadata version, executor choice) ride
    // ahead of the batch exactly as on the per-task path.
    Status stamp = st.ext->StampPeerMetadataVersion(wc);
    bool vec_off =
        st.session->GetVar("citus.use_vectorized_executor") == "off";
    if (stamp.ok() && vec_off != wc->vectorized_off_stamped) {
      stamp = wc->conn
                  ->Query(vec_off ? "SET citus.use_vectorized_executor = 'off'"
                                  : "SET citus.use_vectorized_executor = 'on'")
                  .status();
      if (stamp.ok()) wc->vectorized_off_stamped = vec_off;
    }
    ready = stamp.ok() && wc->conn->usable();
  }
  if (!ready) {
    for (Task* t : chunk) fallback(t);
    return;
  }

  struct Entry {
    Task* task;
    bool is_prepare;
  };
  std::vector<Entry> entries;
  std::vector<std::string> stmts;
  for (Task* t : chunk) {
    if (!t->prepare_name.empty()) {
      if (wc->prepared_stmts.count(t->prepare_name) == 0) {
        entries.push_back({t, true});
        stmts.push_back(t->prepare_sql);
      }
      entries.push_back({t, false});
      stmts.push_back(t->execute_sql);
    } else {
      entries.push_back({t, false});
      stmts.push_back(t->sql);
    }
  }
  st.ext->metric_pipeline_batches->Inc();
  Result<std::vector<net::StatementOutcome>> r =
      wc->conn->QueryPipeline(std::move(stmts));
  if (!r.ok()) {
    // Transport failure: every statement's fate is unknown, but these are
    // reads — safe to re-run each on a healed connection.
    for (Task* t : chunk) fallback(t);
    return;
  }
  std::vector<net::StatementOutcome> outcomes = std::move(r).value();
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    net::StatementOutcome& out = outcomes[i];
    if (e.is_prepare) {
      if (out.status.ok()) {
        wc->prepared_stmts.insert(e.task->prepare_name);
      }
      // A failed PREPARE resurfaces on its EXECUTE's outcome.
      continue;
    }
    Task* t = e.task;
    if (out.status.ok()) {
      st.ext->metric_tasks->Inc();
      st.ext->metric_pipelined_tasks->Inc();
      (*st.results)[static_cast<size_t>(t->index)] = std::move(out.result);
      record(t, Status::OK());
    } else if (out.status.error_class() == ErrorClass::kFatal ||
               IsStaleMetadataStatus(out.status)) {
      record(t, out.status);
    } else {
      fallback(t);
    }
  }
}

// A pipeline runner drains its worker's queue in chunks sized to share the
// backlog across the worker's runners, one pipelined round trip per chunk.
void PipelineRunnerLoop(RunState& st, const std::string& worker,
                        WorkerConnection* wc, int batch_size) {
  auto& q = st.queues[worker];
  for (;;) {
    int pending = static_cast<int>(q.general.size());
    if (pending == 0) break;
    int runners = std::max(1, q.runners);
    int take = std::min(batch_size, (pending + runners - 1) / runners);
    std::vector<Task*> chunk;
    chunk.reserve(static_cast<size_t>(take));
    for (int i = 0; i < take; ++i) {
      chunk.push_back(q.general.front());
      q.general.pop_front();
    }
    RunPipelineChunk(st, wc, chunk);
    for (size_t i = 0; i < chunk.size(); ++i) st.done->Send(1);
  }
  q.runners--;
}

// A runner drains one connection's assigned queue, then the general queue.
void RunnerLoop(RunState& st, const std::string& worker,
                WorkerConnection* wc) {
  auto& q = st.queues[worker];
  for (;;) {
    Task* task = nullptr;
    auto it = q.assigned.find(wc);
    if (it != q.assigned.end() && !it->second.empty()) {
      task = it->second.front();
      it->second.pop_front();
    } else if (!q.general.empty()) {
      task = q.general.front();
      q.general.pop_front();
    } else {
      break;
    }
    Status s = ExecTaskResilient(st, wc, *task);
    if (!st.task_status.empty()) {
      st.task_status[static_cast<size_t>(task->index)] = s;
    }
    if (!s.ok() && st.first_error.ok()) st.first_error = s;
    st.done->Send(1);
  }
  q.runners--;
}

}  // namespace

Result<std::vector<engine::QueryResult>> AdaptiveExecutor::Execute(
    engine::Session& session, std::vector<Task> tasks) {
  std::vector<engine::QueryResult> results(tasks.size());
  if (tasks.empty()) return results;

  int writes = 0;
  for (const auto& t : tasks) writes += t.is_write ? 1 : 0;
  bool need_txn_block = session.in_explicit_txn() || writes > 1;

  // Read-only multi-shard fan-out takes the pipelined path: tasks bound for
  // the same worker share a few pipelined connections instead of ramping
  // one connection per task. Traced statements (EXPLAIN ANALYZE) keep the
  // per-task path for span fidelity.
  if (ext_->config().enable_task_pipelining && tasks.size() > 1 &&
      !need_txn_block && session.GetVar("citusx.trace_ctx").empty()) {
    bool all_plain_reads = true;
    for (const auto& t : tasks) {
      all_plain_reads = all_plain_reads && !t.is_write && !t.is_copy;
    }
    if (all_plain_reads) return ExecutePipelined(session, std::move(tasks));
  }

  // Single-task fast path: one round trip on the affine/cached connection.
  if (tasks.size() == 1) {
    Task& t = tasks[0];
    RunState st;
    st.session = &session;
    st.ext = ext_;
    st.sim = ext_->node()->sim();
    st.need_txn_block = need_txn_block;
    st.results = &results;
    // Acquisition failures flow into the retry/failover wrapper too (a
    // downed worker must not fail queries that can heal or fail over).
    WorkerConnection* wc = nullptr;
    auto got = ext_->GetConnection(session, t.worker,
                                   {t.colocation_id, t.shard_group});
    if (got.ok()) wc = *got;
    CITUSX_RETURN_IF_ERROR(ExecTaskResilient(st, wc, t));
    return results;
  }

  sim::Simulation* sim = ext_->node()->sim();
  auto stp = std::make_shared<RunState>();
  RunState& st = *stp;
  st.session = &session;
  st.ext = ext_;
  st.sim = sim;
  st.need_txn_block = need_txn_block;
  st.owned_results.resize(tasks.size());
  st.results = &st.owned_results;  // heap-owned: safe across cancellation
  st.task_status.assign(tasks.size(), Status::OK());
  st.done = std::make_unique<sim::Channel<int>>(sim);
  sim::Channel<int>& done = *st.done;

  // Partition tasks: affinity-bound tasks go to their connection's private
  // queue; the rest to the per-worker general queue.
  CitusSessionState& css = ext_->SessionState(session);
  for (auto& t : tasks) {
    auto& q = st.queues[t.worker];
    WorkerConnection* affine = nullptr;
    if (t.shard_group >= 0) {
      for (auto& wc : css.pool[t.worker]) {
        if (wc->groups.count({t.colocation_id, t.shard_group}) > 0) {
          affine = wc.get();
          break;
        }
      }
    }
    if (affine != nullptr) {
      q.assigned[affine].push_back(&t);
    } else {
      q.general.push_back(&t);
    }
  }

  const auto& cfg = ext_->config();
  sim::Time start = sim->now();
  int total = static_cast<int>(tasks.size());
  int finished = 0;

  auto spawn_runner = [&](const std::string& worker, WorkerConnection* wc) {
    st.queues[worker].runners++;
    sim->Spawn(
        "citus:runner", [stp, worker, wc] { RunnerLoop(*stp, worker, wc); },
        /*daemon=*/true);
  };

  // Acquire the initial general-queue connections before spawning any
  // runner. An acquisition failure (worker down, pool exhausted) does NOT
  // fail the query here: the worker still gets a runner with no connection,
  // and each of its tasks goes through the retry/failover wrapper — which
  // may heal, fail over, or record a per-task error for partial-failure
  // reporting.
  std::vector<std::pair<std::string, WorkerConnection*>> initial;
  for (auto& [worker, q] : st.queues) {
    bool has_assigned_runner = false;
    for (auto& [wc, queue] : q.assigned) {
      has_assigned_runner = has_assigned_runner || !queue.empty();
    }
    if (!q.general.empty() && !has_assigned_runner) {
      auto got = ext_->GetConnection(session, worker, {0, -1});
      initial.emplace_back(worker, got.ok() ? *got : nullptr);
    }
  }
  // Start one runner per connection with assigned tasks, plus one connection
  // per worker for the general queue (slow start begins at n=1).
  for (auto& [worker, q] : st.queues) {
    for (auto& [wc, queue] : q.assigned) {
      if (!queue.empty()) spawn_runner(worker, wc);
    }
  }
  for (auto& [worker, wc] : initial) spawn_runner(worker, wc);

  // Ticker: wakes the coordinator loop at slow-start intervals so it can
  // grow pools even when no task has completed yet.
  sim::Time tick = cfg.slow_start_interval;
  sim->Spawn(
      "citus:slowstart_tick",
      [stp, sim, tick] {
        while (stp->ticker_active && sim->WaitFor(tick)) {
          if (!stp->ticker_active) break;
          stp->done->Send(0);  // sentinel
        }
      },
      /*daemon=*/true);

  // Grow connection pools toward the current allowance; new connections
  // are established concurrently (non-blocking connects), each becoming a
  // runner when ready.
  auto grow = [&st, stp, &session, this](int allowance) {
    for (auto& [worker, q] : st.queues) {
      int pending = static_cast<int>(q.general.size());
      if (pending == 0) continue;
      int target = std::min(allowance, q.runners + pending);
      while (q.runners < target) {
        q.runners++;  // reserve the slot before the async open
        std::string w = worker;
        CitusExtension* ext = ext_;
        engine::Session* sess = &session;
        st.sim->Spawn(
            "citus:opener",
            [stp, w, ext, sess] {
              auto extra = ext->TryOpenExtraConnection(*sess, w);
              if (!extra.ok() || *extra == nullptr) {
                if (!extra.ok() && stp->first_error.ok()) {
                  stp->first_error = extra.status();
                }
                stp->queues[w].runners--;
                return;
              }
              ext->metric_pool_growth->Inc();
              RunnerLoop(*stp, w, *extra);
            },
            /*daemon=*/true);
      }
    }
  };
  auto allowance_now = [&]() {
    return cfg.enable_slow_start
               ? 1 + static_cast<int>(
                         (sim->now() - start) /
                         std::max<sim::Time>(cfg.slow_start_interval, 1))
               : 1 << 20;
  };
  grow(allowance_now());  // with slow start disabled, open the pool up front

  while (finished < total) {
    auto msg = done.Receive();
    if (!msg.has_value()) {
      st.ticker_active = false;
      return Status::Cancelled("simulation stopping");
    }
    if (*msg == 1) {
      finished++;
      continue;
    }
    // Sentinel tick: the allowance for new connections per worker grows by
    // one per interval (n = n + 1 every 10ms, §3.6.1).
    grow(allowance_now());
  }
  st.ticker_active = false;
  if (!st.first_error.ok()) {
    int failed = 0;
    std::string failed_shards;
    for (const auto& t : tasks) {
      const Status& s = st.task_status[static_cast<size_t>(t.index)];
      if (s.ok()) continue;
      failed++;
      if (!failed_shards.empty()) failed_shards += ", ";
      failed_shards += t.worker + "/group" + std::to_string(t.shard_group);
    }
    // A pool-growth connect failure with every task completed is not a
    // query failure (the primary connections carried the work).
    if (failed == 0) return std::move(st.owned_results);
    // Read-only multi-shard queries degrade gracefully: when only some
    // shards failed, report exactly which ones instead of an opaque error,
    // so callers can distinguish a partial outage from a dead cluster.
    bool all_reads = true;
    for (const auto& t : tasks) {
      all_reads = all_reads && !t.is_write && !t.is_copy;
    }
    if (all_reads && failed < total) {
      ext_->metric_partial_failures->Inc();
      return Status::Unavailable(StrFormat(
          "partial query failure: %d of %d shard tasks failed (%s); first "
          "error: %s",
          failed, total, failed_shards.c_str(),
          st.first_error.message().c_str()));
    }
    return st.first_error;
  }
  return std::move(st.owned_results);
}

Result<std::vector<engine::QueryResult>> AdaptiveExecutor::ExecutePipelined(
    engine::Session& session, std::vector<Task> tasks) {
  sim::Simulation* sim = ext_->node()->sim();
  const CitusConfig& cfg = ext_->config();
  auto stp = std::make_shared<RunState>();
  RunState& st = *stp;
  st.session = &session;
  st.ext = ext_;
  st.sim = sim;
  st.need_txn_block = false;
  st.owned_results.resize(tasks.size());
  st.results = &st.owned_results;
  st.task_status.assign(tasks.size(), Status::OK());
  st.done = std::make_unique<sim::Channel<int>>(sim);
  st.ticker_active = false;  // admission is the fixed width, not slow start

  for (auto& t : tasks) st.queues[t.worker].general.push_back(&t);

  int width = std::max(1, cfg.pipeline_width);
  int batch = std::max(1, cfg.pipeline_batch_size);

  for (auto& [worker, q] : st.queues) {
    // One runner on the session's cached/affine connection; extra runners
    // (up to pipeline_width, bounded by the shared pool budget) each open
    // their own connection concurrently. A backend executes its pipeline
    // serially, so width is what buys worker-side CPU parallelism.
    int runners =
        std::min(width, static_cast<int>(q.general.size() + batch - 1) / batch);
    runners = std::max(1, runners);
    q.runners = 1;
    WorkerConnection* first = nullptr;
    auto got = ext_->GetConnection(session, worker, {0, -1});
    if (got.ok()) first = *got;
    {
      std::string w = worker;
      sim->Spawn(
          "citus:pipeline_runner",
          [stp, w, first, batch] { PipelineRunnerLoop(*stp, w, first, batch); },
          /*daemon=*/true);
    }
    for (int i = 1; i < runners; ++i) {
      q.runners++;
      std::string w = worker;
      CitusExtension* ext = ext_;
      engine::Session* sess = &session;
      sim->Spawn(
          "citus:pipeline_opener",
          [stp, w, ext, sess, batch] {
            auto extra = ext->TryOpenExtraConnection(*sess, w);
            if (!extra.ok() || *extra == nullptr) {
              // Budget or worker unavailable: the remaining runners (at
              // least the first) drain this worker's queue.
              stp->queues[w].runners--;
              return;
            }
            PipelineRunnerLoop(*stp, w, *extra, batch);
          },
          /*daemon=*/true);
    }
  }

  int total = static_cast<int>(tasks.size());
  int finished = 0;
  while (finished < total) {
    auto msg = st.done->Receive();
    if (!msg.has_value()) return Status::Cancelled("simulation stopping");
    finished++;
  }
  if (!st.first_error.ok()) {
    // Same partial-failure reporting as the general path: these are all
    // reads, so surviving shards count.
    int failed = 0;
    std::string failed_shards;
    for (const auto& t : tasks) {
      const Status& s = st.task_status[static_cast<size_t>(t.index)];
      if (s.ok()) continue;
      failed++;
      if (!failed_shards.empty()) failed_shards += ", ";
      failed_shards += t.worker + "/group" + std::to_string(t.shard_group);
    }
    if (failed == 0) return std::move(st.owned_results);
    if (failed < total) {
      ext_->metric_partial_failures->Inc();
      return Status::Unavailable(StrFormat(
          "partial query failure: %d of %d shard tasks failed (%s); first "
          "error: %s",
          failed, total, failed_shards.c_str(),
          st.first_error.message().c_str()));
    }
    return st.first_error;
  }
  return std::move(st.owned_results);
}

}  // namespace citusx::citus
