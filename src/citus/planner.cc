#include "citus/planner.h"

#include <algorithm>

#include "citus/plancache.h"
#include "engine/hooks.h"
#include "obs/trace.h"
#include "sql/deparser.h"
#include "sql/eval.h"
#include "sql/parser.h"

namespace citusx::citus {

std::atomic<int64_t> DistributedPlanner::fast_path_count{0};
std::atomic<int64_t> DistributedPlanner::router_count{0};
std::atomic<int64_t> DistributedPlanner::pushdown_count{0};
std::atomic<int64_t> DistributedPlanner::join_order_count{0};

namespace {

using sql::BinOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::SelectStmt;

constexpr const char* kIntermediateName = "citusx_intermediate";

void CollectTableRefs(const sql::TableRef& ref,
                      const CitusMetadata& metadata, TableAnalysis* out) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kTable: {
      const CitusTable* t = metadata.Find(ref.name);
      std::string alias = ref.alias.empty() ? ref.name : ref.alias;
      if (t == nullptr) {
        out->local.push_back(ref.name);
      } else {
        out->alias_map[alias] = t;
        auto& vec = t->is_reference ? out->reference : out->distributed;
        bool present = false;
        for (const auto* existing : vec) present |= existing == t;
        if (!present) vec.push_back(t);
      }
      return;
    }
    case sql::TableRef::Kind::kSubquery: {
      for (const auto& f : ref.subquery->from) {
        CollectTableRefs(*f, metadata, out);
      }
      return;
    }
    case sql::TableRef::Kind::kJoin:
      CollectTableRefs(*ref.left, metadata, out);
      CollectTableRefs(*ref.right, metadata, out);
      return;
  }
}

}  // namespace

TableAnalysis AnalyzeSelectTables(const CitusMetadata& metadata,
                                  const sql::SelectStmt& sel) {
  TableAnalysis out;
  for (const auto& f : sel.from) CollectTableRefs(*f, metadata, &out);
  return out;
}

TableAnalysis AnalyzeTables(const CitusMetadata& metadata,
                            const sql::Statement& stmt) {
  TableAnalysis out;
  auto add_table = [&](const std::string& name) {
    const CitusTable* t = metadata.Find(name);
    if (t == nullptr) {
      out.local.push_back(name);
      return;
    }
    out.alias_map[name] = t;
    auto& vec = t->is_reference ? out.reference : out.distributed;
    bool present = false;
    for (const auto* existing : vec) present |= existing == t;
    if (!present) vec.push_back(t);
  };
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      return AnalyzeSelectTables(metadata, *stmt.select);
    case sql::Statement::Kind::kInsert:
      add_table(stmt.insert->table);
      if (stmt.insert->select != nullptr) {
        TableAnalysis sub = AnalyzeSelectTables(metadata, *stmt.insert->select);
        for (const auto* t : sub.distributed) {
          bool present = false;
          for (const auto* e : out.distributed) present |= e == t;
          if (!present) out.distributed.push_back(t);
        }
        for (const auto* t : sub.reference) out.reference.push_back(t);
        for (const auto& l : sub.local) out.local.push_back(l);
        for (const auto& [a, t] : sub.alias_map) out.alias_map[a] = t;
      }
      return out;
    case sql::Statement::Kind::kUpdate:
      add_table(stmt.update->table);
      return out;
    case sql::Statement::Kind::kDelete:
      add_table(stmt.del->table);
      return out;
    default:
      return out;
  }
}

std::map<std::string, std::string> ShardGroupTableMap(
    const TableAnalysis& analysis, int shard_index) {
  std::map<std::string, std::string> map;
  for (const auto* t : analysis.distributed) {
    map[t->name] =
        t->ShardName(t->shards[static_cast<size_t>(shard_index)].shard_id);
  }
  for (const auto* t : analysis.reference) {
    map[t->name] = t->ShardName(t->shards[0].shard_id);
  }
  return map;
}

void CollectConjuncts(const sql::SelectStmt& sel,
                      std::vector<sql::ExprPtr>* out) {
  engine::SplitConjuncts(sel.where, out);
  std::function<void(const sql::TableRef&)> walk =
      [&](const sql::TableRef& ref) {
        if (ref.kind == sql::TableRef::Kind::kJoin) {
          engine::SplitConjuncts(ref.on, out);
          walk(*ref.left);
          walk(*ref.right);
        }
      };
  for (const auto& f : sel.from) walk(*f);
}

namespace {

// True if `e` is a column reference to `table`'s distribution column
// (qualifier resolved through the analysis alias map).
bool IsDistColRef(const Expr& e, const CitusTable& table,
                  const TableAnalysis& analysis) {
  if (e.kind != ExprKind::kColumnRef) return false;
  if (e.column != table.dist_column) return false;
  if (e.table.empty()) {
    // Unqualified: accept only if no *other* dist table shares the name.
    for (const auto* t : analysis.distributed) {
      if (t != &table && t->dist_column == e.column) return false;
    }
    return true;
  }
  auto it = analysis.alias_map.find(e.table);
  return it != analysis.alias_map.end() && it->second == &table;
}

bool ExprIsConstOrParam(const ExprPtr& e) {
  bool pure = true;
  sql::WalkExpr(e, [&](const Expr& x) {
    if (x.kind == ExprKind::kColumnRef || x.kind == ExprKind::kAgg ||
        x.kind == ExprKind::kStar ||
        (x.kind == ExprKind::kFunc && x.func_name == "random")) {
      pure = false;
    }
  });
  return pure;
}

}  // namespace

const CitusTable* AnyDistColRef(const sql::Expr& e,
                                const TableAnalysis& analysis) {
  for (const auto* t : analysis.distributed) {
    if (IsDistColRef(e, *t, analysis)) return t;
  }
  return nullptr;
}

std::optional<sql::Datum> FindDistColRestriction(
    const sql::SelectStmt& sel, const CitusTable& table,
    const TableAnalysis& analysis, const std::vector<sql::Datum>& params) {
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(sel, &conjuncts);
  for (const auto& c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->bin_op != BinOp::kEq) continue;
    ExprPtr col = c->args[0], val = c->args[1];
    if (!IsDistColRef(*col, table, analysis)) std::swap(col, val);
    if (!IsDistColRef(*col, table, analysis)) continue;
    if (!ExprIsConstOrParam(val)) continue;
    sql::EvalContext ec;
    ec.params = &params;
    auto v = sql::Eval(*val, ec);
    if (!v.ok() || v->is_null()) continue;
    return *v;
  }
  return std::nullopt;
}

// Transitive distribution-column restrictions: conjuncts `a.dc = b.dc`
// merge equivalence classes; `dc = const` pins a class to a value. Returns
// the restriction value per dist table (all or nothing per table).
std::map<const CitusTable*, sql::Datum> ComputeDistRestrictions(
    const sql::SelectStmt& sel, const TableAnalysis& analysis,
    const std::vector<sql::Datum>& params) {
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(sel, &conjuncts);
  std::map<const CitusTable*, const CitusTable*> parent;
  for (const auto* t : analysis.distributed) parent[t] = t;
  std::function<const CitusTable*(const CitusTable*)> find =
      [&](const CitusTable* t) {
        while (parent[t] != t) t = parent[t] = parent[parent[t]];
        return t;
      };
  std::map<const CitusTable*, sql::Datum> class_value;
  auto assign = [&](const CitusTable* t, const sql::Datum& v) {
    const CitusTable* root = find(t);
    if (class_value.find(root) == class_value.end()) class_value[root] = v;
  };
  // First pass: unions; second pass: constants (order-independent result
  // requires two passes so unions come first).
  for (const auto& c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->bin_op != BinOp::kEq) continue;
    const CitusTable* a = AnyDistColRef(*c->args[0], analysis);
    const CitusTable* b = AnyDistColRef(*c->args[1], analysis);
    if (a != nullptr && b != nullptr && a != b) parent[find(a)] = find(b);
  }
  for (const auto& c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->bin_op != BinOp::kEq) continue;
    ExprPtr col = c->args[0], val = c->args[1];
    const CitusTable* t = AnyDistColRef(*col, analysis);
    if (t == nullptr) {
      std::swap(col, val);
      t = AnyDistColRef(*col, analysis);
    }
    if (t == nullptr || !ExprIsConstOrParam(val)) continue;
    sql::EvalContext ec;
    ec.params = &params;
    auto v = sql::Eval(*val, ec);
    if (v.ok() && !v->is_null()) assign(t, *v);
  }
  std::map<const CitusTable*, sql::Datum> out;
  for (const auto* t : analysis.distributed) {
    auto it = class_value.find(find(t));
    if (it != class_value.end()) out[t] = it->second;
  }
  return out;
}

Result<engine::QueryResult> RunMasterQuery(
    engine::Session& session, const sql::SelectStmt& master,
    const std::string& temp_name, const engine::TempRelation& temp,
    const std::vector<sql::Datum>& params) {
  std::map<std::string, const engine::TempRelation*> temps = {
      {temp_name, &temp}};
  return engine::RunLocalSelect(session, master, params, &temps);
}

Result<std::vector<std::string>> ShardCreationDdl(engine::Node* node,
                                                  const CitusTable& table,
                                                  uint64_t shard_id) {
  engine::TableInfo* info = node->catalog().Find(table.name);
  if (info == nullptr) {
    return Status::NotFound("shell table missing: " + table.name);
  }
  sql::Statement create;
  create.kind = sql::Statement::Kind::kCreateTable;
  create.create_table = std::make_shared<sql::CreateTableStmt>();
  create.create_table->table = table.name;
  create.create_table->schema = info->schema();
  if (table.columnar_shards) {
    // Columnar shards (no primary-key index support, like Citus columnar).
    create.create_table->access_method = "columnar";
  } else {
    create.create_table->primary_key = info->primary_key;
  }
  std::map<std::string, std::string> map = {
      {table.name, table.ShardName(shard_id)}};
  sql::DeparseOptions opts;
  opts.table_map = &map;
  std::vector<std::string> ddl;
  ddl.push_back(sql::DeparseStatement(create, opts));
  for (const auto& post : table.post_ddl) {
    auto parsed = sql::Parse(post);
    if (!parsed.ok()) continue;
    // Index names must be unique per shard: rewrite them too.
    std::map<std::string, std::string> post_map = map;
    if (parsed->kind == sql::Statement::Kind::kCreateIndex) {
      post_map[parsed->create_index->index] =
          parsed->create_index->index + "_" + std::to_string(shard_id);
    }
    sql::DeparseOptions post_opts;
    post_opts.table_map = &post_map;
    ddl.push_back(sql::DeparseStatement(*parsed, post_opts));
  }
  return ddl;
}

// ---------------------------------------------------------------------------
// SELECT planning
// ---------------------------------------------------------------------------

// Can this select run entirely on each shard group without a merge step
// beyond concatenation? True when it has no aggregates/grouping, or when the
// GROUP BY includes a distribution column (§3.5 logical pushdown; the
// VeniceDB pattern from §5). Checked recursively for FROM subqueries.
bool SubqueryPushdownSafe(const SelectStmt& sel, const CitusMetadata& metadata,
                          std::string* reason) {
  TableAnalysis analysis = AnalyzeSelectTables(metadata, sel);
  if (analysis.distributed.empty()) return true;  // reference/local only
  bool has_agg = !sel.group_by.empty() || sel.having != nullptr;
  for (const auto& t : sel.targets) has_agg |= sql::ContainsAggregate(t.expr);
  if (has_agg) {
    bool group_has_dist = false;
    for (const auto& g : sel.group_by) {
      // Positional GROUP BY resolves through the target list.
      ExprPtr expr = g;
      if (g->kind == ExprKind::kConst && sql::IsIntegral(g->value.type())) {
        int pos = static_cast<int>(g->value.int_value());
        if (pos >= 1 && pos <= static_cast<int>(sel.targets.size())) {
          expr = sel.targets[static_cast<size_t>(pos - 1)].expr;
        }
      }
      group_has_dist |= AnyDistColRef(*expr, analysis) != nullptr;
    }
    if (!group_has_dist) {
      *reason = "subquery requires a merge step (GROUP BY without the "
                "distribution column)";
      return false;
    }
  }
  if (sel.limit != nullptr || sel.offset != nullptr) {
    *reason = "LIMIT in a subquery cannot be pushed down";
    return false;
  }
  for (const auto& f : sel.from) {
    if (f->kind == sql::TableRef::Kind::kSubquery &&
        !SubqueryPushdownSafe(*f->subquery, metadata, reason)) {
      return false;
    }
  }
  return true;
}

// All distributed tables must be joined on their distribution columns
// (connected via equality conjuncts) and share a co-location group.
bool CheckColocatedJoins(const SelectStmt& sel, const TableAnalysis& analysis,
                         const CitusMetadata& metadata, std::string* reason) {
  if (analysis.distributed.size() <= 1) {
    // Single dist table at the top level; subqueries checked separately.
    return true;
  }
  int colocation = analysis.distributed[0]->colocation_id;
  for (const auto* t : analysis.distributed) {
    if (t->colocation_id != colocation) {
      *reason = "tables are not co-located";
      return false;
    }
  }
  // Union-find over dist tables connected by dist-col equality conjuncts.
  std::map<const CitusTable*, const CitusTable*> parent;
  for (const auto* t : analysis.distributed) parent[t] = t;
  std::function<const CitusTable*(const CitusTable*)> find =
      [&](const CitusTable* t) {
        while (parent[t] != t) t = parent[t] = parent[parent[t]];
        return t;
      };
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(sel, &conjuncts);
  // Also consider conjuncts inside FROM subqueries joined at this level?
  // (Handled by requiring subquery safety separately.)
  for (const auto& c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->bin_op != BinOp::kEq) continue;
    const CitusTable* a = AnyDistColRef(*c->args[0], analysis);
    const CitusTable* b = AnyDistColRef(*c->args[1], analysis);
    if (a != nullptr && b != nullptr && a != b) parent[find(a)] = find(b);
  }
  const CitusTable* root = find(analysis.distributed[0]);
  for (const auto* t : analysis.distributed) {
    if (find(t) != root) {
      *reason = "tables are not joined on their distribution columns";
      return false;
    }
  }
  return true;
}

namespace {

// Partial-aggregate splitting for the pushdown planner: rewrites a cloned
// top-level select into (worker query, master query).
struct AggSplit {
  SelectStmt worker;  // targets: group exprs g0.. then partials p0..
  SelectStmt master;  // over kIntermediateName
  std::vector<std::string> final_names;
  Status error;
  bool ok = false;
};

ExprPtr IntermediateCol(int i) {
  return sql::MakeColumnRef("", StrFormat("c%d", i));
}

// Build the master-side merge expression for one aggregate call over
// intermediate columns starting at `col`. Returns number of columns used.
int BuildMergeAgg(const Expr& agg, int col, ExprPtr* out) {
  const std::string& f = agg.func_name;
  if (f == "count") {
    *out = sql::MakeAgg("sum", {IntermediateCol(col)});
    // Empty input: sum over no rows is NULL but count must be 0.
    *out = sql::MakeFunc("coalesce",
                         {*out, sql::MakeConst(sql::Datum::Int8(0))});
    return 1;
  }
  if (f == "sum" || f == "min" || f == "max") {
    *out = sql::MakeAgg(f, {IntermediateCol(col)});
    return 1;
  }
  if (f == "avg") {
    // avg = sum(partial_sums) / sum(partial_counts), NULL when count = 0.
    ExprPtr total = sql::MakeAgg("sum", {IntermediateCol(col)});
    ExprPtr count = sql::MakeAgg("sum", {IntermediateCol(col + 1)});
    ExprPtr cond = sql::MakeBinary(
        BinOp::kGt,
        sql::MakeFunc("coalesce",
                      {count->Clone(), sql::MakeConst(sql::Datum::Int8(0))}),
        sql::MakeConst(sql::Datum::Int8(0)));
    auto div = sql::MakeBinary(
        BinOp::kDiv, sql::MakeCast(std::move(total), sql::TypeId::kFloat8),
        std::move(count));
    auto c = std::make_shared<Expr>();
    c->kind = ExprKind::kCase;
    c->case_has_else = false;
    c->args = {std::move(cond), std::move(div)};
    *out = std::move(c);
    return 2;
  }
  *out = nullptr;
  return 0;
}

// Rewrite an expression for the master query: group-expr subtrees become
// intermediate column refs, aggregate calls become merge aggregates.
Status RewriteForMaster(ExprPtr& e, const std::vector<std::string>& group_repr,
                        const std::vector<std::string>& agg_repr,
                        const std::vector<int>& agg_first_col,
                        const std::vector<ExprPtr>& agg_originals) {
  if (e == nullptr) return Status::OK();
  std::string repr = sql::DeparseExpr(*e);
  for (size_t i = 0; i < group_repr.size(); i++) {
    if (repr == group_repr[i]) {
      e = IntermediateCol(static_cast<int>(i));
      return Status::OK();
    }
  }
  if (e->kind == ExprKind::kAgg) {
    for (size_t i = 0; i < agg_repr.size(); i++) {
      if (repr == agg_repr[i]) {
        ExprPtr merged;
        BuildMergeAgg(*agg_originals[i], agg_first_col[i], &merged);
        if (merged == nullptr) {
          return Status::NotSupported("cannot merge aggregate " +
                                      e->func_name);
        }
        e = std::move(merged);
        return Status::OK();
      }
    }
    return Status::Internal("aggregate not collected: " + repr);
  }
  if (e->kind == ExprKind::kColumnRef) {
    return Status::NotSupported(
        "column must appear in GROUP BY for distributed aggregation: " +
        e->column);
  }
  for (auto& a : e->args) {
    CITUSX_RETURN_IF_ERROR(RewriteForMaster(a, group_repr, agg_repr,
                                            agg_first_col, agg_originals));
  }
  return Status::OK();
}

// Collects distinct aggregate calls; `reprs` caches each collected call's
// deparsed text (parallel to `out`) so every expression is deparsed once
// instead of re-deparsing all existing entries per candidate.
void CollectAggCalls(const ExprPtr& e, std::vector<ExprPtr>* out,
                     std::vector<std::string>* reprs) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kAgg) {
    std::string repr = sql::DeparseExpr(*e);
    for (const auto& existing : *reprs) {
      if (existing == repr) return;
    }
    out->push_back(e);
    reprs->push_back(std::move(repr));
    return;
  }
  for (const auto& a : e->args) CollectAggCalls(a, out, reprs);
}

Result<AggSplit> SplitAggregates(const SelectStmt& original) {
  AggSplit split;
  SelectStmt sel = *original.Clone();
  // Resolve positional GROUP BY first.
  std::vector<ExprPtr> groups;
  for (const auto& g : sel.group_by) {
    ExprPtr expr = g;
    if (g->kind == ExprKind::kConst && sql::IsIntegral(g->value.type())) {
      int pos = static_cast<int>(g->value.int_value());
      if (pos < 1 || pos > static_cast<int>(sel.targets.size())) {
        return Status::InvalidArgument("GROUP BY position out of range");
      }
      expr = sel.targets[static_cast<size_t>(pos - 1)].expr->Clone();
    }
    groups.push_back(expr);
  }
  // Collect distinct aggregate calls from targets, having, order by.
  std::vector<ExprPtr> aggs;
  std::vector<std::string> agg_repr;
  for (const auto& t : sel.targets) CollectAggCalls(t.expr, &aggs, &agg_repr);
  CollectAggCalls(sel.having, &aggs, &agg_repr);
  for (const auto& o : sel.order_by) CollectAggCalls(o.expr, &aggs, &agg_repr);
  for (const auto& a : aggs) {
    if (a->agg_distinct) {
      return Status::NotSupported(
          "DISTINCT aggregates require grouping by the distribution column");
    }
  }
  if (original.distinct) {
    return Status::NotSupported(
        "SELECT DISTINCT with distributed aggregation is not supported");
  }
  // Worker query: SELECT g0..gk, partials FROM <same> GROUP BY g0..gk.
  split.worker.from = sel.from;
  split.worker.where = sel.where;
  split.worker.group_by = groups;
  std::vector<std::string> group_repr;
  for (size_t i = 0; i < groups.size(); i++) {
    split.worker.targets.push_back(
        sql::SelectItem{groups[i]->Clone(), StrFormat("g%zu", i)});
    group_repr.push_back(sql::DeparseExpr(*groups[i]));
  }
  std::vector<int> agg_first_col;
  int next_col = static_cast<int>(groups.size());
  for (const auto& a : aggs) {
    agg_first_col.push_back(next_col);
    if (a->func_name == "avg") {
      // Partial: sum(x), count(x).
      split.worker.targets.push_back(sql::SelectItem{
          sql::MakeAgg("sum", {a->args[0]->Clone()}), StrFormat("p%d", next_col)});
      split.worker.targets.push_back(sql::SelectItem{
          sql::MakeAgg("count", {a->args[0]->Clone()}),
          StrFormat("p%d", next_col + 1)});
      next_col += 2;
    } else {
      split.worker.targets.push_back(
          sql::SelectItem{a->Clone(), StrFormat("p%d", next_col)});
      next_col += 1;
    }
  }
  // Master query over the intermediate relation.
  split.master.from.push_back(std::make_shared<sql::TableRef>());
  split.master.from[0]->kind = sql::TableRef::Kind::kTable;
  split.master.from[0]->name = kIntermediateName;
  for (size_t i = 0; i < sel.targets.size(); i++) {
    ExprPtr expr = sel.targets[i].expr;  // already cloned
    CITUSX_RETURN_IF_ERROR(
        RewriteForMaster(expr, group_repr, agg_repr, agg_first_col, aggs));
    std::string name = sel.targets[i].alias;
    split.master.targets.push_back(sql::SelectItem{expr, name});
    split.final_names.push_back(name);
  }
  for (size_t i = 0; i < groups.size(); i++) {
    split.master.group_by.push_back(IntermediateCol(static_cast<int>(i)));
  }
  if (sel.having != nullptr) {
    ExprPtr having = sel.having;
    CITUSX_RETURN_IF_ERROR(
        RewriteForMaster(having, group_repr, agg_repr, agg_first_col, aggs));
    split.master.having = having;
  }
  for (const auto& o : sel.order_by) {
    sql::OrderByItem item;
    item.desc = o.desc;
    item.expr = o.expr;
    bool positional = item.expr->kind == ExprKind::kConst &&
                      sql::IsIntegral(item.expr->value.type());
    if (!positional) {
      // Resolve target-alias / target-expression references to positions
      // (ORDER BY revenue where revenue is an output alias).
      for (size_t i = 0; i < sel.targets.size(); i++) {
        const auto& t = sel.targets[i];
        bool alias_match = !t.alias.empty() &&
                           item.expr->kind == ExprKind::kColumnRef &&
                           item.expr->table.empty() &&
                           item.expr->column == t.alias;
        if (alias_match || engine::ExprEquals(item.expr, t.expr)) {
          item.expr =
              sql::MakeConst(sql::Datum::Int8(static_cast<int64_t>(i) + 1));
          positional = true;
          break;
        }
      }
    }
    if (!positional) {
      CITUSX_RETURN_IF_ERROR(RewriteForMaster(item.expr, group_repr, agg_repr,
                                              agg_first_col, aggs));
    }
    split.master.order_by.push_back(item);
  }
  split.master.limit = sel.limit;
  split.master.offset = sel.offset;
  split.ok = true;
  return split;
}

}  // namespace

// ---------------------------------------------------------------------------
// DistributedPlanner
// ---------------------------------------------------------------------------

namespace {

// Distributed EXPLAIN: describe the chosen tier and its tasks without
// executing anything.
Result<engine::QueryResult> ExplainDistributed(
    CitusExtension* ext, const sql::Statement& stmt,
    const std::vector<sql::Datum>& params, const TableAnalysis& analysis,
    bool plan_cached) {
  // "(cached)" marks shapes the session's distributed plan cache would serve
  // without re-planning (mirrors EXPLAIN's "(cached plan)" note).
  const char* cached_tag = plan_cached ? " (cached)" : "";
  std::vector<std::string> lines;
  auto add = [&](const std::string& s) { lines.push_back(s); };
  sql::DeparseOptions opts;
  opts.params = &params;
  if (stmt.kind == sql::Statement::Kind::kSelect) {
    const sql::SelectStmt& sel = *stmt.select;
    auto restrictions = ComputeDistRestrictions(sel, analysis, params);
    bool routable = !analysis.distributed.empty();
    int shard_index = -1;
    for (const auto* t : analysis.distributed) {
      auto it = restrictions.find(t);
      if (it == restrictions.end()) {
        routable = false;
        break;
      }
      auto coerced = it->second.CastTo(t->dist_col_type);
      int idx = coerced.ok()
                    ? t->ShardIndexForHash(coerced->PartitionHash())
                    : -1;
      if (idx < 0 || (shard_index >= 0 && idx != shard_index)) routable = false;
      shard_index = idx;
    }
    if (analysis.distributed.empty()) {
      add("Custom Scan (Citus Router)  Task Count: 1 (reference tables only)");
    } else if (routable) {
      bool fast = analysis.distributed.size() == 1 &&
                  analysis.reference.empty() && sel.from.size() == 1 &&
                  sel.group_by.empty();
      auto map = ShardGroupTableMap(analysis, shard_index);
      opts.table_map = &map;
      add(StrFormat("Custom Scan (Citus %s)  Task Count: 1%s",
                    fast ? "Fast Path Router" : "Router", cached_tag));
      add("  Task: " + sql::DeparseSelect(sel, opts));
      add("  Placement: " +
          analysis.distributed[0]
              ->shards[static_cast<size_t>(shard_index)]
              .placement);
    } else {
      std::string reason;
      bool colocated =
          CheckColocatedJoins(sel, analysis, ext->metadata(), &reason);
      bool subqueries_safe = true;
      for (const auto& f : sel.from) {
        if (f->kind == sql::TableRef::Kind::kSubquery) {
          subqueries_safe &=
              SubqueryPushdownSafe(*f->subquery, ext->metadata(), &reason);
        }
      }
      if (colocated && subqueries_safe && !analysis.distributed.empty()) {
        const CitusTable* rep = analysis.distributed[0];
        auto map = ShardGroupTableMap(analysis, 0);
        opts.table_map = &map;
        add(StrFormat("Custom Scan (Citus Adaptive)  Task Count: %zu",
                      rep->shards.size()));
        add("  Sample Task: " + sql::DeparseSelect(sel, opts));
      } else {
        add("Custom Scan (Citus Adaptive)  via logical join-order planner "
            "(repartition/broadcast)");
      }
    }
  } else {
    const std::string& table_name =
        stmt.kind == sql::Statement::Kind::kInsert   ? stmt.insert->table
        : stmt.kind == sql::Statement::Kind::kUpdate ? stmt.update->table
                                                     : stmt.del->table;
    const CitusTable* t = ext->metadata().Find(table_name);
    if (t != nullptr && t->is_reference) {
      add(StrFormat("Custom Scan (Citus Router)  Task Count: %zu (all "
                    "replicas)",
                    t->replica_nodes.size()));
    } else if (t != nullptr) {
      add(StrFormat("Custom Scan (Citus Adaptive)  Modify on %s (up to %zu "
                    "shard tasks)%s",
                    table_name.c_str(), t->shards.size(), cached_tag));
    }
  }
  engine::QueryResult out;
  out.column_names = {"QUERY PLAN"};
  out.column_types = {sql::TypeId::kText};
  for (const auto& l : lines) out.rows.push_back({sql::Datum::Text(l)});
  out.command_tag = "EXPLAIN";
  return out;
}

// Snapshot of the tier counters plus the executor's task counter; the delta
// across an execution identifies the tier taken and the shards touched.
struct TierSnapshot {
  int64_t fast_path = 0;
  int64_t router = 0;
  int64_t pushdown = 0;
  int64_t join_order = 0;
  int64_t tasks = 0;
};

TierSnapshot SnapshotTiers(CitusExtension* ext) {
  TierSnapshot s;
  s.fast_path = DistributedPlanner::fast_path_count;
  s.router = DistributedPlanner::router_count;
  s.pushdown = DistributedPlanner::pushdown_count;
  s.join_order = DistributedPlanner::join_order_count;
  s.tasks = ext->metric_tasks->value();
  return s;
}

std::string TierName(const TierSnapshot& before, const TierSnapshot& after,
                     const sql::Statement& stmt) {
  // Most-complex tier first: a join-order (repartition) plan internally
  // fans out pushdown-style scan tasks, so its counter wins over nested
  // increments of the simpler tiers.
  if (after.join_order > before.join_order) return "join-order";
  if (after.pushdown > before.pushdown) return "pushdown";
  if (after.router > before.router) return "router";
  if (after.fast_path > before.fast_path) return "fast path";
  return stmt.kind == sql::Statement::Kind::kSelect ? "other" : "modify";
}

double MsOf(sim::Time t) { return static_cast<double>(t) / 1e6; }

}  // namespace

Result<std::optional<engine::QueryResult>> DistributedPlanner::PlanAndExecute(
    engine::Session& session, const sql::Statement& stmt,
    const std::vector<sql::Datum>& params) {
  CITUSX_ASSIGN_OR_RETURN(std::optional<engine::QueryResult> view,
                          MaybeExecuteStatView(ext_, session, stmt, params));
  if (view.has_value()) return view;
  // MX receiver guard (§3.10): statements arriving from a peer whose synced
  // metadata is older than ours may be routed to shards we no longer hold
  // (e.g. after a move). Reject before any analysis — shard-level SQL does
  // not reference logical tables, so this check is its only protection.
  CITUSX_RETURN_IF_ERROR(ext_->CheckPeerMetadataVersion(session));
  TableAnalysis analysis = AnalyzeTables(ext_->metadata(), stmt);
  // MX routing gate: a non-authority node may coordinate distributed
  // queries only with a fully synced metadata copy. The shell-registry
  // check closes the wrong-answer hole where a stale copy no longer (or
  // never) lists a distributed table and the statement would otherwise
  // fall through to the empty local shell.
  if (!ext_->IsMetadataAuthority()) {
    bool touches_distributed = analysis.HasCitusTables();
    for (const std::string& name : analysis.local) {
      touches_distributed |= ext_->IsShellTable(name);
    }
    if (touches_distributed && !ext_->MxReady()) {
      return ext_->MxStaleRejection(StrFormat(
          "node %s has no current synced metadata (version %llu, synced "
          "%s, highest observed %llu)",
          ext_->node()->name().c_str(),
          static_cast<unsigned long long>(ext_->metadata().cluster_version()),
          ext_->metadata().mx_synced() ? "yes" : "no",
          static_cast<unsigned long long>(
              ext_->metadata().known_cluster_version())));
    }
  }
  if (!analysis.HasCitusTables()) return std::optional<engine::QueryResult>();
  if (!analysis.local.empty()) {
    return Status::NotSupported(
        "joining distributed tables with local tables is not supported");
  }
  if (stmt.is_explain) {
    if (stmt.is_analyze) {
      CITUSX_ASSIGN_OR_RETURN(engine::QueryResult r,
                              ExplainAnalyze(session, stmt, params, analysis));
      return std::optional<engine::QueryResult>(std::move(r));
    }
    CITUSX_ASSIGN_OR_RETURN(
        engine::QueryResult r,
        ExplainDistributed(
            ext_, stmt, params, analysis,
            PlanCacheContains(ext_, session, stmt, params, analysis)));
    return std::optional<engine::QueryResult>(std::move(r));
  }
  TierSnapshot before = SnapshotTiers(ext_);
  sim::Time started = ext_->node()->sim()->now();
  Result<engine::QueryResult> result = [&]() -> Result<engine::QueryResult> {
    // Single-shard CRUD statements go through the distributed plan cache:
    // a hit skips planning (binary-search pruning + template splice), a
    // miss plans once and caches; other shapes fall through to the tiers.
    if (ext_->config().enable_plan_cache) {
      CITUSX_ASSIGN_OR_RETURN(
          std::optional<engine::QueryResult> cached,
          TryPlanCacheExecution(ext_, session, stmt, params, analysis));
      if (cached.has_value()) return std::move(*cached);
    }
    switch (stmt.kind) {
      case sql::Statement::Kind::kSelect:
        return ExecuteSelect(session, *stmt.select, params, analysis);
      case sql::Statement::Kind::kInsert:
      case sql::Statement::Kind::kUpdate:
      case sql::Statement::Kind::kDelete:
        return ExecuteDml(session, stmt, params, analysis);
      default:
        return Status::Internal("unexpected statement in distributed planner");
    }
  }();
  if (!result.ok()) return result.status();
  TierSnapshot after = SnapshotTiers(ext_);
  sql::DeparseOptions nopts;
  nopts.normalize = true;
  ext_->RecordStatement(sql::DeparseStatement(stmt, nopts),
                        TierName(before, after, stmt),
                        ext_->node()->sim()->now() - started,
                        after.tasks - before.tasks);
  return std::optional<engine::QueryResult>(std::move(result).value());
}

Result<engine::QueryResult> DistributedPlanner::ExplainAnalyze(
    engine::Session& session, const sql::Statement& stmt,
    const std::vector<sql::Datum>& params, const TableAnalysis& analysis) {
  sim::Simulation* sim = ext_->node()->sim();
  obs::TraceCollector* tracer = ext_->node()->tracer();
  TierSnapshot before = SnapshotTiers(ext_);

  // Root span: the whole distributed query on the coordinator. Its context
  // is planted in the session variable so the adaptive executor parents its
  // task spans under it and propagates them to the workers.
  // Execute the statement with the EXPLAIN flags stripped: DML deparsing
  // would otherwise propagate the EXPLAIN ANALYZE prefix into the worker
  // task SQL.
  sql::Statement inner = stmt;
  inner.is_explain = false;
  inner.is_analyze = false;

  obs::TraceId trace = 0;
  obs::SpanId root = 0;
  std::string saved_ctx;
  if (tracer != nullptr) {
    trace = tracer->NewTraceId();
    root = tracer->StartSpan(trace, 0, "distributed query",
                             ext_->node()->name(), sim->now());
    sql::DeparseOptions sopts;
    sopts.params = &params;
    tracer->SetAttr(root, "sql", sql::DeparseStatement(inner, sopts));
    saved_ctx = session.GetVar("citusx.trace_ctx");
    session.SetVar("citusx.trace_ctx", obs::FormatTraceContext(trace, root));
  }

  sim::Time started = sim->now();
  Result<engine::QueryResult> result = [&]() -> Result<engine::QueryResult> {
    switch (inner.kind) {
      case sql::Statement::Kind::kSelect:
        return ExecuteSelect(session, *inner.select, params, analysis);
      case sql::Statement::Kind::kInsert:
      case sql::Statement::Kind::kUpdate:
      case sql::Statement::Kind::kDelete:
        return ExecuteDml(session, inner, params, analysis);
      default:
        return Status::Internal("unexpected statement in EXPLAIN ANALYZE");
    }
  }();
  sim::Time elapsed = sim->now() - started;
  if (tracer != nullptr) {
    session.SetVar("citusx.trace_ctx", saved_ctx);
    if (result.ok()) {
      tracer->SetRows(root, result->rows.empty()
                                ? result->rows_affected
                                : static_cast<int64_t>(result->rows.size()));
    }
    tracer->EndSpan(root, sim->now());
  }
  if (!result.ok()) return result.status();

  TierSnapshot after = SnapshotTiers(ext_);
  std::string tier = TierName(before, after, stmt);
  int64_t root_rows = result->rows.empty()
                          ? result->rows_affected
                          : static_cast<int64_t>(result->rows.size());

  engine::QueryResult out;
  out.column_names = {"QUERY PLAN"};
  out.column_types = {sql::TypeId::kText};
  auto add = [&](const std::string& s) {
    out.rows.push_back({sql::Datum::Text(s)});
  };
  const char* label = tier == "fast path" ? "Fast Path Router"
                      : tier == "router"  ? "Router"
                                          : "Adaptive";
  add(StrFormat("Custom Scan (Citus %s)  (actual time=%.3f ms, rows=%lld)",
                label, MsOf(elapsed),
                static_cast<long long>(root_rows)));
  add("  Planner Tier: " + tier);
  if (tracer == nullptr) {
    add(StrFormat("  Task Count: %lld (tracing disabled: node not in a "
                  "cluster)",
                  static_cast<long long>(after.tasks - before.tasks)));
    out.command_tag = "EXPLAIN";
    return out;
  }

  // Render the span tree: task spans are children of the root, worker
  // execution spans are children of their task.
  std::vector<obs::Span> spans = tracer->TraceSpans(trace);
  std::map<obs::SpanId, std::vector<const obs::Span*>> children;
  for (const auto& s : spans) {
    if (s.id != root) children[s.parent_id].push_back(&s);
  }
  std::vector<const obs::Span*> task_spans;
  for (const obs::Span* s : children[root]) {
    if (s->name == "task") task_spans.push_back(s);
  }
  add(StrFormat("  Task Count: %zu", task_spans.size()));
  for (const obs::Span* task : task_spans) {
    auto attr = [&](const char* key) -> std::string {
      auto it = task->attrs.find(key);
      return it == task->attrs.end() ? std::string() : it->second;
    };
    std::string group = attr("shard_group");
    add(StrFormat("  ->  Task on %s%s  (time=%.3f ms, rows=%lld)",
                  attr("worker").c_str(),
                  group.empty() ? ""
                                : StrFormat(" (shard group %s)", group.c_str())
                                      .c_str(),
                  MsOf(task->duration()),
                  static_cast<long long>(task->rows)));
    std::string sql = attr("sql");
    if (!sql.empty()) add("        Query: " + sql);
    for (const obs::Span* w : children[task->id]) {
      if (w->name != "worker execution") continue;
      add(StrFormat("        ->  Worker Execution on %s  (time=%.3f ms, "
                    "rows=%lld)",
                    w->node.c_str(), MsOf(w->duration()),
                    static_cast<long long>(w->rows)));
      // Vectorized-executor pipelines nest under the worker execution,
      // each with its morsel/worker fan-out; no pipeline children means
      // the fragment ran on the volcano path.
      for (const obs::Span* p : children[w->id]) {
        if (p->name != "pipeline") continue;
        auto pattr = [&](const char* key) -> std::string {
          auto it = p->attrs.find(key);
          return it == p->attrs.end() ? std::string() : it->second;
        };
        std::string pruned = pattr("pruned_stripes");
        add(StrFormat("              ->  Pipeline [%s]  (time=%.3f ms, "
                      "rows=%lld, morsels=%s, workers=%s%s)",
                      pattr("ops").c_str(), MsOf(p->duration()),
                      static_cast<long long>(p->rows), pattr("morsels").c_str(),
                      pattr("workers").c_str(),
                      pruned.empty()
                          ? ""
                          : StrFormat(", pruned=%s", pruned.c_str()).c_str()));
      }
    }
  }
  out.command_tag = "EXPLAIN";
  return out;
}

Result<engine::QueryResult> DistributedPlanner::ExecuteSelect(
    engine::Session& session, const sql::SelectStmt& sel,
    const std::vector<sql::Datum>& params, const TableAnalysis& analysis) {
  const auto& cost = ext_->node()->cost();
  sql::DeparseOptions opts;
  opts.params = &params;

  // ---- Tier 1/2: fast path & router ----
  // All distributed tables restricted to the same co-located shard group
  // (restrictions propagate through dist-column equijoins)?
  std::map<const CitusTable*, sql::Datum> restrictions =
      ComputeDistRestrictions(sel, analysis, params);
  bool routable = true;
  int shard_index = -1;
  std::string target_worker;
  for (const auto* t : analysis.distributed) {
    auto rit = restrictions.find(t);
    if (rit == restrictions.end()) {
      routable = false;
      break;
    }
    auto coerced = rit->second.CastTo(t->dist_col_type);
    if (!coerced.ok()) {
      routable = false;
      break;
    }
    const sql::Datum* v = &*coerced;
    int idx = t->ShardIndexForHash(v->PartitionHash());
    if (idx < 0 || (shard_index >= 0 && idx != shard_index)) {
      routable = false;
      break;
    }
    if (analysis.distributed.size() > 1 &&
        t->colocation_id != analysis.distributed[0]->colocation_id) {
      routable = false;
      break;
    }
    shard_index = idx;
    target_worker = t->shards[static_cast<size_t>(idx)].placement;
  }
  if (analysis.distributed.empty()) {
    // Reference-table-only query: prefer the local replica; when this node
    // holds none (replicas trimmed), route to the first replica holder.
    routable = true;
    shard_index = 0;
    target_worker = ext_->node()->name();
    if (!analysis.reference.empty()) {
      const auto& replicas = analysis.reference[0]->replica_nodes;
      bool local_replica =
          std::find(replicas.begin(), replicas.end(), target_worker) !=
          replicas.end();
      if (!local_replica && !replicas.empty()) {
        target_worker = replicas.front();
      }
    }
  }
  if (routable) {
    bool is_fast_path = analysis.distributed.size() == 1 &&
                        analysis.reference.empty() && sel.from.size() == 1 &&
                        sel.from[0]->kind == sql::TableRef::Kind::kTable &&
                        sel.group_by.empty() && sel.having == nullptr;
    if (!ext_->node()->cpu().Consume(is_fast_path ? cost.plan_fast_path
                                                  : cost.plan_router)) {
      return Status::Cancelled("simulation stopping");
    }
    (is_fast_path ? fast_path_count : router_count)++;
    (is_fast_path ? ext_->metric_fast_path : ext_->metric_router)->Inc();
    auto map = ShardGroupTableMap(analysis, shard_index);
    opts.table_map = &map;
    sql::Statement stmt;
    stmt.kind = sql::Statement::Kind::kSelect;
    stmt.select = std::const_pointer_cast<sql::SelectStmt>(
        std::shared_ptr<const sql::SelectStmt>(&sel, [](const SelectStmt*) {}));
    Task task;
    task.worker = target_worker;
    task.colocation_id = analysis.distributed.empty()
                             ? 0
                             : analysis.distributed[0]->colocation_id;
    task.shard_group = analysis.distributed.empty() ? -1 : shard_index;
    task.sql = sql::DeparseSelect(sel, opts);
    task.is_write = sel.for_update;
    // Reference-table reads can run against any replica: list the other
    // holders as failover targets in case the routed node is down.
    if (analysis.distributed.empty() && !analysis.reference.empty() &&
        !sel.for_update) {
      for (const std::string& replica :
           analysis.reference[0]->replica_nodes) {
        if (replica != target_worker) {
          task.fallback_workers.push_back(replica);
        }
      }
    }
    AdaptiveExecutor executor(ext_);
    CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                            executor.Execute(session, {task}));
    return std::move(results[0]);
  }

  // ---- Tier 3: logical pushdown ----
  if (!ext_->node()->cpu().Consume(cost.plan_pushdown)) {
    return Status::Cancelled("simulation stopping");
  }
  std::string reason;
  bool colocated = CheckColocatedJoins(sel, analysis, ext_->metadata(), &reason);
  bool subqueries_safe = true;
  for (const auto& f : sel.from) {
    if (f->kind == sql::TableRef::Kind::kSubquery) {
      subqueries_safe &=
          SubqueryPushdownSafe(*f->subquery, ext_->metadata(), &reason);
    }
  }
  if (colocated && subqueries_safe && !analysis.distributed.empty()) {
    // Determine merge requirements of the top level.
    bool has_agg = !sel.group_by.empty() || sel.having != nullptr;
    for (const auto& t : sel.targets) has_agg |= sql::ContainsAggregate(t.expr);
    bool group_has_dist = false;
    for (const auto& g : sel.group_by) {
      ExprPtr expr = g;
      if (g->kind == ExprKind::kConst && sql::IsIntegral(g->value.type())) {
        int pos = static_cast<int>(g->value.int_value());
        if (pos >= 1 && pos <= static_cast<int>(sel.targets.size())) {
          expr = sel.targets[static_cast<size_t>(pos - 1)].expr;
        }
      }
      group_has_dist |= AnyDistColRef(*expr, analysis) != nullptr;
    }
    const CitusTable* rep = analysis.distributed[0];
    int num_groups = static_cast<int>(rep->shards.size());
    pushdown_count++;
    ext_->metric_pushdown->Inc();
    AdaptiveExecutor executor(ext_);

    if (has_agg && !group_has_dist) {
      // Partial aggregation with a coordinator merge step.
      auto split_result = SplitAggregates(sel);
      if (split_result.ok()) {
        AggSplit& split = *split_result;
        std::vector<Task> tasks;
        for (int i = 0; i < num_groups; i++) {
          auto map = ShardGroupTableMap(analysis, i);
          sql::DeparseOptions topts;
          topts.params = &params;
          topts.table_map = &map;
          Task task;
          task.index = i;
          task.worker = rep->shards[static_cast<size_t>(i)].placement;
          task.colocation_id = rep->colocation_id;
          task.shard_group = i;
          task.sql = sql::DeparseSelect(split.worker, topts);
          tasks.push_back(std::move(task));
        }
        CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                                executor.Execute(session, std::move(tasks)));
        engine::TempRelation temp;
        if (!results.empty()) {
          temp.column_types = results[0].column_types;
          for (size_t i = 0; i < results[0].column_names.size(); i++) {
            temp.column_names.push_back(StrFormat("c%zu", i));
          }
          for (auto& r : results) {
            for (auto& row : r.rows) temp.rows.push_back(std::move(row));
          }
        }
        CITUSX_ASSIGN_OR_RETURN(
            engine::QueryResult merged,
            RunMasterQuery(session, split.master, kIntermediateName, temp,
                           params));
        // Restore original output names.
        for (size_t i = 0;
             i < merged.column_names.size() && i < split.final_names.size();
             i++) {
          if (!split.final_names[i].empty()) {
            merged.column_names[i] = split.final_names[i];
          }
        }
        return merged;
      }
      return split_result.status();
    }

    // Full pushdown: the worker query is the original query (per shard
    // group); the master concatenates, re-sorts, re-applies LIMIT/DISTINCT.
    SelectStmt worker = *sel.Clone();
    int visible = static_cast<int>(worker.targets.size());
    // ORDER BY must be computable from the worker output: resolve to
    // positions, appending hidden sort targets when necessary.
    std::vector<sql::OrderByItem> master_order;
    for (auto& o : worker.order_by) {
      int slot = -1;
      if (o.expr->kind == ExprKind::kConst &&
          sql::IsIntegral(o.expr->value.type())) {
        slot = static_cast<int>(o.expr->value.int_value()) - 1;
      } else {
        for (int i = 0; i < visible; i++) {
          const auto& t = worker.targets[static_cast<size_t>(i)];
          if ((!t.alias.empty() && o.expr->kind == ExprKind::kColumnRef &&
               o.expr->table.empty() && o.expr->column == t.alias) ||
              engine::ExprEquals(o.expr, t.expr)) {
            slot = i;
            break;
          }
        }
      }
      if (slot < 0) {
        if (worker.distinct) {
          return Status::NotSupported(
              "ORDER BY expressions must appear in the DISTINCT list");
        }
        worker.targets.push_back(sql::SelectItem{o.expr->Clone(), ""});
        slot = static_cast<int>(worker.targets.size()) - 1;
      }
      sql::OrderByItem item;
      item.expr = sql::MakeConst(sql::Datum::Int8(slot + 1));
      item.desc = o.desc;
      master_order.push_back(item);
    }
    // Push LIMIT (+offset) to workers; master re-applies exactly.
    sql::EvalContext ec;
    ec.params = &params;
    if (worker.limit != nullptr) {
      CITUSX_ASSIGN_OR_RETURN(sql::Datum lim, sql::Eval(*worker.limit, ec));
      int64_t worker_limit = lim.is_null() ? -1 : lim.AsInt64();
      if (worker.offset != nullptr && worker_limit >= 0) {
        CITUSX_ASSIGN_OR_RETURN(sql::Datum off, sql::Eval(*worker.offset, ec));
        worker_limit += off.is_null() ? 0 : off.AsInt64();
      }
      if (worker_limit >= 0) {
        worker.limit = sql::MakeConst(sql::Datum::Int8(worker_limit));
      }
    }
    sql::ExprPtr master_limit =
        sel.limit != nullptr ? sel.limit->Clone() : nullptr;
    sql::ExprPtr master_offset =
        sel.offset != nullptr ? sel.offset->Clone() : nullptr;
    worker.offset = nullptr;

    std::vector<Task> tasks;
    for (int i = 0; i < num_groups; i++) {
      auto map = ShardGroupTableMap(analysis, i);
      sql::DeparseOptions topts;
      topts.params = &params;
      topts.table_map = &map;
      Task task;
      task.index = i;
      task.worker = rep->shards[static_cast<size_t>(i)].placement;
      task.colocation_id = rep->colocation_id;
      task.shard_group = i;
      task.sql = sql::DeparseSelect(worker, topts);
      task.is_write = sel.for_update;
      tasks.push_back(std::move(task));
    }
    CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                            executor.Execute(session, std::move(tasks)));
    engine::TempRelation temp;
    std::vector<std::string> final_names;
    if (!results.empty()) {
      temp.column_types = results[0].column_types;
      final_names = results[0].column_names;
      for (size_t i = 0; i < results[0].column_names.size(); i++) {
        temp.column_names.push_back(StrFormat("c%zu", i));
      }
      for (auto& r : results) {
        for (auto& row : r.rows) temp.rows.push_back(std::move(row));
      }
    }
    SelectStmt master;
    master.from.push_back(std::make_shared<sql::TableRef>());
    master.from[0]->kind = sql::TableRef::Kind::kTable;
    master.from[0]->name = kIntermediateName;
    for (int i = 0; i < visible; i++) {
      master.targets.push_back(sql::SelectItem{IntermediateCol(i), ""});
    }
    master.distinct = sel.distinct;
    master.order_by = master_order;
    master.limit = master_limit;
    master.offset = master_offset;
    CITUSX_ASSIGN_OR_RETURN(
        engine::QueryResult merged,
        RunMasterQuery(session, master, kIntermediateName, temp, params));
    for (size_t i = 0; i < merged.column_names.size() && i < final_names.size();
         i++) {
      merged.column_names[i] = final_names[i];
    }
    return merged;
  }

  // ---- Tier 4: logical join order (repartition/broadcast) ----
  if (!ext_->node()->cpu().Consume(cost.plan_join_order)) {
    return Status::Cancelled("simulation stopping");
  }
  CITUSX_ASSIGN_OR_RETURN(
      std::optional<engine::QueryResult> join_result,
      TryJoinOrderPlan(session, sel, params, analysis));
  if (join_result.has_value()) {
    join_order_count++;
    ext_->metric_join_order->Inc();
    return std::move(*join_result);
  }
  return Status::NotSupported(
      "cannot plan distributed query: " +
      (reason.empty() ? std::string("unsupported query shape") : reason));
}

}  // namespace citusx::citus
