// Distributed DDL propagation (§3.8): CREATE INDEX / DROP TABLE / TRUNCATE
// on Citus tables propagate to every shard placement in a parallel
// distributed transaction.
#include "citus/planner.h"
#include "sql/deparser.h"

namespace citusx::citus {

namespace {

// One task per shard placement of `table`, running `stmt` deparsed with the
// shard's table map (and index-name rewriting).
std::vector<Task> ShardDdlTasks(const CitusTable& table,
                                const sql::Statement& stmt) {
  std::vector<Task> tasks;
  int index = 0;
  auto add_task = [&](const std::string& worker, uint64_t shard_id,
                      int shard_group) {
    std::map<std::string, std::string> map = {
        {table.name, table.ShardName(shard_id)}};
    if (stmt.kind == sql::Statement::Kind::kCreateIndex) {
      map[stmt.create_index->index] =
          stmt.create_index->index + "_" + std::to_string(shard_id);
    }
    sql::DeparseOptions opts;
    opts.table_map = &map;
    Task t;
    t.index = index++;
    t.worker = worker;
    t.colocation_id = table.colocation_id;
    t.shard_group = shard_group;
    t.sql = sql::DeparseStatement(stmt, opts);
    t.is_write = true;
    tasks.push_back(std::move(t));
  };
  if (table.is_reference) {
    for (const auto& node_name : table.replica_nodes) {
      add_task(node_name, table.shards[0].shard_id, -1);
    }
  } else {
    for (size_t i = 0; i < table.shards.size(); i++) {
      add_task(table.shards[i].placement, table.shards[i].shard_id,
               static_cast<int>(i));
    }
  }
  return tasks;
}

}  // namespace

Result<std::optional<engine::QueryResult>> ProcessDistributedUtility(
    CitusExtension* ext, engine::Session& session, const sql::Statement& stmt) {
  CitusMetadata& metadata = ext->metadata();
  if (!ext->IsMetadataAuthority()) {
    // Internal connections are stamped with the sender's metadata version
    // (executor.cc); their DDL is shard/shell DDL already being propagated
    // by the authority and must execute as plain local DDL here —
    // re-propagating it from this node's synced copy would recurse. Client
    // DDL touching a distributed table is refused instead: metadata writes
    // stay single-master on the authority (§3.10).
    if (!session.GetVar("citus.metadata_peer_version").empty()) {
      return std::optional<engine::QueryResult>();
    }
    std::vector<std::string> names;
    switch (stmt.kind) {
      case sql::Statement::Kind::kCreateIndex:
        names.push_back(stmt.create_index->table);
        break;
      case sql::Statement::Kind::kDropTable:
        names.push_back(stmt.drop_table->table);
        break;
      case sql::Statement::Kind::kTruncate:
        names = stmt.truncate->tables;
        break;
      default:
        return std::optional<engine::QueryResult>();
    }
    for (const std::string& name : names) {
      if (metadata.Find(name) != nullptr || ext->IsShellTable(name)) {
        return Status::NotSupported("DDL on distributed table " + name +
                                    " must run on the coordinator node");
      }
    }
    return std::optional<engine::QueryResult>();
  }
  std::string table_name;
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateIndex:
      table_name = stmt.create_index->table;
      break;
    case sql::Statement::Kind::kDropTable:
      table_name = stmt.drop_table->table;
      break;
    case sql::Statement::Kind::kTruncate: {
      // Multi-table TRUNCATE: handle only if every table is a Citus table.
      bool any_citus = false;
      for (const auto& t : stmt.truncate->tables) {
        any_citus |= metadata.Find(t) != nullptr;
      }
      if (!any_citus) return std::optional<engine::QueryResult>();
      metadata.BumpClusterVersion();
      AdaptiveExecutor executor(ext);
      for (const auto& t : stmt.truncate->tables) {
        CitusTable* table = metadata.Find(t);
        if (table == nullptr) {
          return Status::NotSupported(
              "TRUNCATE mixing local and distributed tables");
        }
        sql::Statement one;
        one.kind = sql::Statement::Kind::kTruncate;
        one.truncate = std::make_shared<sql::TruncateStmt>();
        one.truncate->tables = {t};
        auto tasks = ShardDdlTasks(*table, one);
        CITUSX_RETURN_IF_ERROR(
            executor.Execute(session, std::move(tasks)).status());
        table->approx_rows = 0;
        table->approx_bytes = 0;
        metadata.TouchTable(table);
      }
      ext->MaybeSyncMetadata();
      engine::QueryResult out;
      out.command_tag = "TRUNCATE TABLE";
      return std::optional<engine::QueryResult>(std::move(out));
    }
    default:
      return std::optional<engine::QueryResult>();  // not a Citus concern
  }
  CitusTable* table = metadata.Find(table_name);
  if (table == nullptr) return std::optional<engine::QueryResult>();

  // Any DDL on a distributed table invalidates cached distributed plans,
  // on this node and (through the sync that follows) on every other.
  metadata.BumpClusterVersion();

  AdaptiveExecutor executor(ext);
  switch (stmt.kind) {
    case sql::Statement::Kind::kCreateIndex: {
      auto tasks = ShardDdlTasks(*table, stmt);
      CITUSX_RETURN_IF_ERROR(
          executor.Execute(session, std::move(tasks)).status());
      // Remember for future shard placements (moves), and create the index
      // on the coordinator's (empty) shell so deparsing stays complete.
      table->post_ddl.push_back(sql::DeparseStatement(stmt));
      metadata.TouchTable(table);
      ext->MaybeSyncMetadata();
      engine::QueryResult out;
      out.command_tag = "CREATE INDEX";
      return std::optional<engine::QueryResult>(std::move(out));
    }
    case sql::Statement::Kind::kDropTable: {
      auto tasks = ShardDdlTasks(*table, stmt);
      // Also drop the shell tables on every other node.
      int index = static_cast<int>(tasks.size());
      for (const auto& worker : metadata.workers) {
        if (worker == ext->node()->name()) continue;
        Task t;
        t.index = index++;
        t.worker = worker;
        t.sql = "DROP TABLE IF EXISTS " + table_name;
        t.is_write = true;
        tasks.push_back(std::move(t));
      }
      // Remove from the authority's catalog first; workers run the shell
      // drops as plain local DDL (their utility hooks see the stamped
      // internal connection) and their synced copies reconcile on the sync
      // below.
      metadata.Remove(table_name);
      metadata.RecordTableDrop(table_name);
      table = nullptr;
      CITUSX_RETURN_IF_ERROR(
          executor.Execute(session, std::move(tasks)).status());
      // Drop the coordinator shell too.
      CITUSX_IGNORE_STATUS(
          session.node()->catalog().DropTable(table_name),
          "shard drops already applied; a missing shell is not an error");
      ext->MaybeSyncMetadata();
      engine::QueryResult out;
      out.command_tag = "DROP TABLE";
      return std::optional<engine::QueryResult>(std::move(out));
    }
    default:
      return std::optional<engine::QueryResult>();
  }
}

}  // namespace citusx::citus
