// The distributed query planner (paper §3.5): four planner tiers tried from
// cheapest to most expensive — fast path, router, logical pushdown, logical
// join-order — plus distributed DML, COPY, DDL, and procedure delegation.
#ifndef CITUSX_CITUS_PLANNER_H_
#define CITUSX_CITUS_PLANNER_H_

#include <atomic>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "citus/executor.h"
#include "citus/extension.h"
#include "sql/ast.h"

namespace citusx::citus {

/// Which planner produced a distributed plan (for stats/ablation).
enum class PlannerTier {
  kFastPath,
  kRouter,
  kPushdown,
  kJoinOrder,
};

/// Analysis of the tables referenced by a statement.
struct TableAnalysis {
  std::vector<const CitusTable*> distributed;  // distinct dist tables
  std::vector<const CitusTable*> reference;
  std::vector<std::string> local;  // plain tables (non-Citus)
  /// alias (or table name) -> citus table, for column-qualifier resolution.
  std::map<std::string, const CitusTable*> alias_map;

  bool HasCitusTables() const {
    return !distributed.empty() || !reference.empty();
  }
};

/// Collect referenced tables (recursively through joins and subqueries).
TableAnalysis AnalyzeTables(const CitusMetadata& metadata,
                            const sql::Statement& stmt);
TableAnalysis AnalyzeSelectTables(const CitusMetadata& metadata,
                                  const sql::SelectStmt& sel);

/// The per-shard-group table map: logical name -> shard name at `index`,
/// reference tables -> their single shard name.
std::map<std::string, std::string> ShardGroupTableMap(
    const TableAnalysis& analysis, int shard_index);

class DistributedPlanner {
 public:
  explicit DistributedPlanner(CitusExtension* ext) : ext_(ext) {}

  /// Entry point from the planner hook. Returns nullopt when the statement
  /// involves no Citus tables (falls through to local planning).
  Result<std::optional<engine::QueryResult>> PlanAndExecute(
      engine::Session& session, const sql::Statement& stmt,
      const std::vector<sql::Datum>& params);

  /// Stats: how many statements each tier has planned. Atomic so that
  /// concurrent sessions (and TSan builds) stay clean.
  static std::atomic<int64_t> fast_path_count;
  static std::atomic<int64_t> router_count;
  static std::atomic<int64_t> pushdown_count;
  static std::atomic<int64_t> join_order_count;

 private:
  Result<engine::QueryResult> ExecuteSelect(
      engine::Session& session, const sql::SelectStmt& sel,
      const std::vector<sql::Datum>& params, const TableAnalysis& analysis);
  Result<engine::QueryResult> ExecuteDml(engine::Session& session,
                                         const sql::Statement& stmt,
                                         const std::vector<sql::Datum>& params,
                                         const TableAnalysis& analysis);
  Result<engine::QueryResult> ExecuteInsert(
      engine::Session& session, const sql::InsertStmt& ins,
      const std::vector<sql::Datum>& params, const TableAnalysis& analysis);
  Result<engine::QueryResult> ExecuteInsertSelect(
      engine::Session& session, const sql::InsertStmt& ins,
      const std::vector<sql::Datum>& params, const TableAnalysis& analysis);

  // Join-order planner (repartition.cc).
  Result<std::optional<engine::QueryResult>> TryJoinOrderPlan(
      engine::Session& session, const sql::SelectStmt& sel,
      const std::vector<sql::Datum>& params, const TableAnalysis& analysis);

  /// EXPLAIN ANALYZE: execute the statement under a fresh trace and render
  /// the resulting span tree (per-task, per-shard timings and row counts).
  Result<engine::QueryResult> ExplainAnalyze(
      engine::Session& session, const sql::Statement& stmt,
      const std::vector<sql::Datum>& params, const TableAnalysis& analysis);

  CitusExtension* ext_;
};

// ---- observability views (stat_views.cc) ----

/// Intercept SELECTs over the citus_stat_statements / citus_stat_activity
/// monitoring views. Returns nullopt when `stmt` references neither.
Result<std::optional<engine::QueryResult>> MaybeExecuteStatView(
    CitusExtension* ext, engine::Session& session, const sql::Statement& stmt,
    const std::vector<sql::Datum>& params);

// ---- hooks implemented in ddl.cc / dml.cc ----

Result<std::optional<engine::QueryResult>> ProcessDistributedUtility(
    CitusExtension* ext, engine::Session& session, const sql::Statement& stmt);

Result<std::optional<engine::QueryResult>> ProcessDistributedCopy(
    CitusExtension* ext, engine::Session& session, const sql::CopyStmt& stmt,
    const std::vector<std::vector<std::string>>& rows);

Result<std::optional<engine::QueryResult>> ProcessDelegatedCall(
    CitusExtension* ext, engine::Session& session, const sql::CallStmt& stmt,
    const std::vector<sql::Datum>& args);

// ---- shared helpers ----

/// Find an equality restriction `<table's dist col> = <const|param>` among
/// the statement's conjuncts. Returns the restriction value or nullopt.
std::optional<sql::Datum> FindDistColRestriction(
    const sql::SelectStmt& sel, const CitusTable& table,
    const TableAnalysis& analysis, const std::vector<sql::Datum>& params);

/// All conjuncts of a select: WHERE plus all JOIN ON clauses (recursive
/// through joins, not into subqueries).
void CollectConjuncts(const sql::SelectStmt& sel,
                      std::vector<sql::ExprPtr>* out);

/// True if `sel` (used as a FROM subquery or INSERT..SELECT source) can run
/// per shard group without a coordinator merge step.
bool SubqueryPushdownSafe(const sql::SelectStmt& sel,
                          const CitusMetadata& metadata, std::string* reason);

/// All distributed tables co-located and connected by dist-column equijoins.
bool CheckColocatedJoins(const sql::SelectStmt& sel,
                         const TableAnalysis& analysis,
                         const CitusMetadata& metadata, std::string* reason);

/// The distributed table whose distribution column `e` references, or null.
const CitusTable* AnyDistColRef(const sql::Expr& e,
                                const TableAnalysis& analysis);

/// Execute a SELECT locally over intermediate results (the "master query").
Result<engine::QueryResult> RunMasterQuery(
    engine::Session& session, const sql::SelectStmt& master,
    const std::string& temp_name, const engine::TempRelation& temp,
    const std::vector<sql::Datum>& params);

/// Reconstruct a CREATE TABLE statement for a shard from the coordinator's
/// catalog shell, plus recorded post-creation DDL.
Result<std::vector<std::string>> ShardCreationDdl(engine::Node* node,
                                                  const CitusTable& table,
                                                  uint64_t shard_id);

}  // namespace citusx::citus

#endif  // CITUSX_CITUS_PLANNER_H_
