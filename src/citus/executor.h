// The adaptive executor (paper §3.6.1): executes a distributed plan's tasks
// over per-worker connection pools with "slow start" connection ramp-up, a
// shared connection limit, and co-located-shard connection affinity inside
// transactions.
#ifndef CITUSX_CITUS_EXECUTOR_H_
#define CITUSX_CITUS_EXECUTOR_H_

#include <string>
#include <vector>

#include "citus/extension.h"

namespace citusx::citus {

/// One unit of work against one worker: a SQL string (already deparsed with
/// shard names) or a COPY batch.
struct Task {
  int index = 0;  // position of the result in the output vector
  std::string worker;
  int colocation_id = 0;
  int shard_group = -1;  // shard index for connection affinity; -1 = none
  std::string sql;
  bool is_write = false;
  bool is_copy = false;
  std::string copy_table;
  std::vector<std::string> copy_columns;
  std::vector<std::vector<std::string>> copy_rows;
  /// Plan-cache execution via a worker-side prepared statement: when
  /// `prepare_name` is set, the executor sends `prepare_sql` once per
  /// connection (batched with the first EXECUTE in one round trip), then
  /// runs `execute_sql`, letting the worker skip re-parse and re-plan.
  std::string prepare_name;
  std::string prepare_sql;   // PREPARE <name> AS <shard query with $n>
  std::string execute_sql;   // EXECUTE <name>(<param literals>)
  /// Replica nodes this task may fail over to when `worker` is down
  /// (reference-table reads: every replica holds the same placement).
  std::vector<std::string> fallback_workers;
};

class AdaptiveExecutor {
 public:
  explicit AdaptiveExecutor(CitusExtension* ext) : ext_(ext) {}

  /// Execute all tasks; results are returned in task-index order. Worker
  /// transaction blocks are opened when the session is in an explicit
  /// transaction or when multiple write tasks require atomic commit (2PC).
  Result<std::vector<engine::QueryResult>> Execute(engine::Session& session,
                                                   std::vector<Task> tasks);

 private:
  /// Fast path for read-only multi-shard fan-out: batch each worker's tasks
  /// into pipelined round trips over a small fixed set of shared
  /// connections (pipeline_width per worker) instead of ramping one
  /// connection per task through slow start.
  Result<std::vector<engine::QueryResult>> ExecutePipelined(
      engine::Session& session, std::vector<Task> tasks);

  CitusExtension* ext_;
};

}  // namespace citusx::citus

#endif  // CITUSX_CITUS_EXECUTOR_H_
