#include "citus/plancache.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <set>

#include "citus/executor.h"
#include "citus/planner.h"
#include "common/str.h"
#include "engine/hooks.h"
#include "sql/deparser.h"

namespace citusx::citus {

namespace {

using sql::BinOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;

// Worker prepared-statement names must be unique per backend; a global
// counter keeps them unique across sessions and extensions.
std::atomic<int64_t> g_next_plan_id{1};

// Template sentinels (see DeparseOptions::param_markers): \x01 marks the
// table name, \x02<n>\x02 marks parameter n.
constexpr char kTableSentinel = '\x01';
constexpr char kParamSentinel = '\x02';

/// A statement clone with constants lifted into parameters.
struct Normalized {
  sql::Statement stmt;
  std::vector<sql::Datum> lifted;  // lifted constant values, in walk order
  int base_params = 0;
  int dist_param = -1;  // bound-param index of the dist-column value
};

bool CloneStatement(const sql::Statement& in, sql::Statement* out) {
  out->kind = in.kind;
  switch (in.kind) {
    case sql::Statement::Kind::kSelect:
      out->select = in.select->Clone();
      return true;
    case sql::Statement::Kind::kInsert: {
      auto ins = std::make_shared<sql::InsertStmt>();
      ins->table = in.insert->table;
      ins->columns = in.insert->columns;
      ins->on_conflict_do_nothing = in.insert->on_conflict_do_nothing;
      for (const auto& row : in.insert->values) {
        std::vector<ExprPtr> r;
        r.reserve(row.size());
        for (const auto& v : row) r.push_back(v->Clone());
        ins->values.push_back(std::move(r));
      }
      if (in.insert->select != nullptr) ins->select = in.insert->select->Clone();
      out->insert = std::move(ins);
      return true;
    }
    case sql::Statement::Kind::kUpdate: {
      auto upd = std::make_shared<sql::UpdateStmt>();
      upd->table = in.update->table;
      for (const auto& [col, e] : in.update->sets) {
        upd->sets.emplace_back(col, e->Clone());
      }
      if (in.update->where != nullptr) upd->where = in.update->where->Clone();
      out->update = std::move(upd);
      return true;
    }
    case sql::Statement::Kind::kDelete: {
      auto del = std::make_shared<sql::DeleteStmt>();
      del->table = in.del->table;
      if (in.del->where != nullptr) del->where = in.del->where->Clone();
      out->del = std::move(del);
      return true;
    }
    default:
      return false;
  }
}

/// Replace *slot (a non-null constant) with a parameter, recording its value.
void LiftSlot(ExprPtr* slot, Normalized* n) {
  if (*slot == nullptr || (*slot)->kind != ExprKind::kConst) return;
  if ((*slot)->value.is_null()) return;
  sql::Datum v = (*slot)->value;
  *slot = sql::MakeParam(n->base_params + static_cast<int>(n->lifted.size()));
  n->lifted.push_back(std::move(v));
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kLike:
    case BinOp::kNotLike:
    case BinOp::kILike:
      return true;
    default:
      return false;
  }
}

/// Lift constant comparison values (and IN-list items) out of the top-level
/// conjuncts of a WHERE clause. Only value positions are lifted — constants
/// elsewhere stay in the statement and thus in the cache key, so statements
/// differing there never share an entry.
void LiftWhereConsts(const ExprPtr& where, Normalized* n) {
  std::vector<ExprPtr> conjuncts;
  engine::SplitConjuncts(where, &conjuncts);
  for (const auto& c : conjuncts) {
    if (c == nullptr) continue;
    if (c->kind == ExprKind::kBinary && IsComparison(c->bin_op)) {
      for (auto& a : c->args) LiftSlot(&a, n);
    } else if (c->kind == ExprKind::kIn) {
      for (size_t i = 1; i < c->args.size(); i++) LiftSlot(&c->args[i], n);
    }
  }
}

/// The parameter carrying the dist-column equality value, or -1.
int FindDistParam(const ExprPtr& where, const CitusTable& table) {
  std::vector<ExprPtr> conjuncts;
  engine::SplitConjuncts(where, &conjuncts);
  for (const auto& c : conjuncts) {
    if (c == nullptr || c->kind != ExprKind::kBinary ||
        c->bin_op != BinOp::kEq) {
      continue;
    }
    ExprPtr col = c->args[0];
    ExprPtr val = c->args[1];
    auto is_dist_col = [&](const ExprPtr& e) {
      return e->kind == ExprKind::kColumnRef && e->column == table.dist_column;
    };
    if (!is_dist_col(col)) std::swap(col, val);
    if (!is_dist_col(col)) continue;
    if (val->kind == ExprKind::kParam) return val->param_index;
  }
  return -1;
}

/// Normalize `stmt` against `table` if its shape is cacheable: single-shard
/// CRUD with a dist-column equality on a constant or parameter. Mirrors the
/// fast-path planner's shape tests (planner.cc / dml.cc).
bool NormalizeStatement(const sql::Statement& stmt, const CitusTable& table,
                        int base_params, Normalized* out) {
  out->base_params = base_params;
  if (!CloneStatement(stmt, &out->stmt)) return false;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect: {
      sql::SelectStmt& s = *out->stmt.select;
      if (s.from.size() != 1 ||
          s.from[0]->kind != sql::TableRef::Kind::kTable ||
          s.from[0]->name != table.name) {
        return false;
      }
      if (!s.group_by.empty() || s.having != nullptr) return false;
      LiftWhereConsts(s.where, out);
      LiftSlot(&s.limit, out);
      LiftSlot(&s.offset, out);
      out->dist_param = FindDistParam(s.where, table);
      return out->dist_param >= 0;
    }
    case sql::Statement::Kind::kUpdate: {
      sql::UpdateStmt& u = *out->stmt.update;
      if (u.table != table.name) return false;
      for (auto& [col, e] : u.sets) LiftSlot(&e, out);
      LiftWhereConsts(u.where, out);
      out->dist_param = FindDistParam(u.where, table);
      return out->dist_param >= 0;
    }
    case sql::Statement::Kind::kDelete: {
      sql::DeleteStmt& d = *out->stmt.del;
      if (d.table != table.name) return false;
      LiftWhereConsts(d.where, out);
      out->dist_param = FindDistParam(d.where, table);
      return out->dist_param >= 0;
    }
    case sql::Statement::Kind::kInsert: {
      sql::InsertStmt& ins = *out->stmt.insert;
      if (ins.table != table.name || ins.select != nullptr ||
          ins.values.size() != 1) {
        return false;
      }
      int dist_pos = -1;
      if (ins.columns.empty()) {
        dist_pos = table.dist_col_index;
      } else {
        for (size_t i = 0; i < ins.columns.size(); i++) {
          if (ins.columns[i] == table.dist_column) {
            dist_pos = static_cast<int>(i);
          }
        }
      }
      auto& row = ins.values[0];
      if (dist_pos < 0 || dist_pos >= static_cast<int>(row.size())) {
        return false;
      }
      for (auto& v : row) LiftSlot(&v, out);
      const ExprPtr& dv = row[static_cast<size_t>(dist_pos)];
      if (dv->kind != ExprKind::kParam) return false;
      out->dist_param = dv->param_index;
      return true;
    }
    default:
      return false;
  }
}

/// Every parameter index referenced by the (normalized) statement.
void CollectExprParams(const ExprPtr& e, std::set<int>* out) {
  sql::WalkExpr(e, [out](const Expr& x) {
    if (x.kind == ExprKind::kParam) out->insert(x.param_index);
  });
}

std::set<int> CollectParamIndices(const sql::Statement& stmt) {
  std::set<int> out;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect: {
      const sql::SelectStmt& s = *stmt.select;
      for (const auto& t : s.targets) CollectExprParams(t.expr, &out);
      CollectExprParams(s.where, &out);
      for (const auto& g : s.group_by) CollectExprParams(g, &out);
      CollectExprParams(s.having, &out);
      for (const auto& o : s.order_by) CollectExprParams(o.expr, &out);
      CollectExprParams(s.limit, &out);
      CollectExprParams(s.offset, &out);
      break;
    }
    case sql::Statement::Kind::kInsert:
      for (const auto& row : stmt.insert->values) {
        for (const auto& v : row) CollectExprParams(v, &out);
      }
      break;
    case sql::Statement::Kind::kUpdate:
      for (const auto& [col, e] : stmt.update->sets) {
        CollectExprParams(e, &out);
      }
      CollectExprParams(stmt.update->where, &out);
      break;
    case sql::Statement::Kind::kDelete:
      CollectExprParams(stmt.del->where, &out);
      break;
    default:
      break;
  }
  return out;
}

/// Split the sentinel-marked deparse into chunks and slots. Leaves
/// has_template false on a malformed marker sequence.
void ParseTemplate(const std::string& s, CachedDistPlan* plan) {
  std::vector<std::string> chunks;
  std::vector<int> slots;
  std::string cur;
  for (size_t i = 0; i < s.size(); i++) {
    char c = s[i];
    if (c == kTableSentinel) {
      chunks.push_back(cur);
      cur.clear();
      slots.push_back(-1);
      continue;
    }
    if (c == kParamSentinel) {
      size_t j = i + 1;
      std::string digits;
      while (j < s.size() && std::isdigit(static_cast<unsigned char>(s[j]))) {
        digits.push_back(s[j++]);
      }
      if (digits.empty() || j >= s.size() || s[j] != kParamSentinel) return;
      int idx = std::atoi(digits.c_str());
      if (idx < 0 || idx >= plan->num_params) return;
      chunks.push_back(cur);
      cur.clear();
      slots.push_back(idx);
      i = j;
      continue;
    }
    cur.push_back(c);
  }
  chunks.push_back(std::move(cur));
  plan->chunks = std::move(chunks);
  plan->slots = std::move(slots);
  plan->has_template = true;
}

/// Interleave the template chunks with the pruned shard name and parameter
/// values — as $n placeholders (for the worker-side PREPARE body) or as
/// literals (direct execution).
std::string RenderTemplate(const CachedDistPlan& plan,
                           const std::string& shard_name,
                           const std::vector<sql::Datum>& bound,
                           bool params_as_dollar) {
  std::string out = plan.chunks[0];
  for (size_t i = 0; i < plan.slots.size(); i++) {
    int slot = plan.slots[i];
    if (slot < 0) {
      out += shard_name;
    } else if (params_as_dollar) {
      out += StrFormat("$%d", slot + 1);
    } else {
      out += bound[static_cast<size_t>(slot)].ToSqlLiteral();
    }
    out += plan.chunks[i + 1];
  }
  return out;
}

std::shared_ptr<CachedDistPlan> BuildPlan(Normalized&& norm, std::string key,
                                          const CitusTable& table,
                                          uint64_t generation) {
  auto plan = std::make_shared<CachedDistPlan>();
  plan->generation = generation;
  plan->plan_id = g_next_plan_id++;
  plan->table = table.name;
  plan->dist_col_type = table.dist_col_type;
  plan->colocation_id = table.colocation_id;
  plan->dist_param = norm.dist_param;
  plan->kind = norm.stmt.kind;
  plan->is_write = norm.stmt.kind == sql::Statement::Kind::kSelect
                       ? norm.stmt.select->for_update
                       : true;
  plan->base_params = norm.base_params;
  plan->num_params = norm.base_params + static_cast<int>(norm.lifted.size());
  std::set<int> used = CollectParamIndices(norm.stmt);
  bool dense =
      static_cast<int>(used.size()) == plan->num_params &&
      (used.empty() ||
       (*used.begin() == 0 && *used.rbegin() == plan->num_params - 1));
  plan->normalized = std::make_shared<const sql::Statement>(std::move(norm.stmt));
  // If the plain deparse already contains a sentinel byte (a pathological
  // string literal), splicing would be ambiguous — keep the fallback path.
  if (key.find(kTableSentinel) == std::string::npos &&
      key.find(kParamSentinel) == std::string::npos) {
    std::map<std::string, std::string> tmap = {
        {plan->table, std::string(1, kTableSentinel)}};
    sql::DeparseOptions opts;
    opts.table_map = &tmap;
    opts.param_markers = true;
    ParseTemplate(sql::DeparseStatement(*plan->normalized, opts), plan.get());
  }
  plan->use_prepared = dense && plan->has_template;
  plan->key = std::move(key);
  return plan;
}

}  // namespace

std::string CachedDistPlan::PrepareName(int shard_index) const {
  return StrFormat("citusx_p%lld_s%d", static_cast<long long>(plan_id),
                   shard_index);
}

Result<std::optional<engine::QueryResult>> TryPlanCacheExecution(
    CitusExtension* ext, engine::Session& session, const sql::Statement& stmt,
    const std::vector<sql::Datum>& params, const TableAnalysis& analysis) {
  std::optional<engine::QueryResult> not_handled;
  if (analysis.distributed.size() != 1 || !analysis.reference.empty() ||
      !analysis.local.empty()) {
    return not_handled;
  }
  const CitusTable* table0 = analysis.distributed[0];
  if (table0->is_reference || table0->shards.empty()) return not_handled;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
    case sql::Statement::Kind::kInsert:
    case sql::Statement::Kind::kUpdate:
    case sql::Statement::Kind::kDelete:
      break;
    default:
      return not_handled;
  }

  // MX belt-and-braces: the planner gate already rejects statements on a
  // node without current synced metadata before the cache is consulted;
  // re-check here so a cached plan can never route from an unsynced copy
  // if a future caller reaches the cache directly. Cross-node
  // invalidation needs no extra plumbing — FinishSync bumps this node's
  // generation, so the snapshot checks below drop every pre-sync plan.
  if (!ext->MxReady()) {
    return ext->MxStaleRejection("cached distributed plan on node " +
                                 ext->node()->name());
  }
  CitusSessionState& state = ext->SessionState(session);
  const uint64_t gen = ext->metadata().generation();
  engine::PreparedStatement* prep = session.active_prepared();

  std::shared_ptr<CachedDistPlan> plan;
  std::vector<sql::Datum> bound;
  bool hit = false;

  // Fast lane: an EXECUTE whose prepared statement already carries the plan
  // skips normalization and the key lookup entirely.
  if (prep != nullptr && prep->generic_plan != nullptr) {
    auto ref = std::static_pointer_cast<PreparedPlanRef>(prep->generic_plan);
    if (ref->plan->generation == gen) {
      plan = ref->plan;
      bound = params;
      bound.insert(bound.end(), ref->lifted.begin(), ref->lifted.end());
      hit = true;
    } else {
      ext->metric_plancache_invalidation->Inc();
      // Only drop the map entry if it is still this plan (another statement
      // may have rebuilt the shape already).
      auto mit = state.plan_cache.find(ref->plan->key);
      if (mit != state.plan_cache.end() && mit->second == ref->plan) {
        state.plan_cache.erase(mit);
      }
      prep->generic_plan.reset();
    }
  }

  if (plan == nullptr) {
    Normalized norm;
    if (!NormalizeStatement(stmt, *table0, static_cast<int>(params.size()),
                            &norm)) {
      return not_handled;
    }
    std::string key = sql::DeparseStatement(norm.stmt, {});
    auto it = state.plan_cache.find(key);
    if (it != state.plan_cache.end() && it->second->generation != gen) {
      ext->metric_plancache_invalidation->Inc();
      state.plan_cache.erase(it);
      it = state.plan_cache.end();
    }
    if (it != state.plan_cache.end()) {
      plan = it->second;
      // Same key but a different parameter layout (caller passed unused
      // params): don't risk mis-binding, fall through to the planner.
      if (plan->base_params != static_cast<int>(params.size()) ||
          plan->num_params !=
              static_cast<int>(params.size() + norm.lifted.size())) {
        return not_handled;
      }
      hit = true;
    } else {
      plan = BuildPlan(std::move(norm), std::move(key), *table0, gen);
      state.plan_cache[plan->key] = plan;
      ext->metric_plancache_miss->Inc();
    }
    bound = params;
    bound.insert(bound.end(), norm.lifted.begin(), norm.lifted.end());
    if (prep != nullptr) {
      auto ref = std::make_shared<PreparedPlanRef>();
      ref->plan = plan;
      ref->lifted = std::move(norm.lifted);
      prep->generic_plan = std::move(ref);
    }
  }

  if (plan->dist_param < 0 ||
      plan->dist_param >= static_cast<int>(bound.size())) {
    return not_handled;
  }
  const sql::Datum& dist_value = bound[static_cast<size_t>(plan->dist_param)];
  if (dist_value.is_null()) return not_handled;  // not routable: full planner
  auto coerced = dist_value.CastTo(plan->dist_col_type);
  if (!coerced.ok()) return not_handled;

  CitusTable* table = ext->metadata().Find(plan->table);
  if (table == nullptr) return not_handled;  // unreachable: generation guard
  int idx = table->ShardIndexForHash(coerced->PartitionHash());
  if (idx < 0) return Status::Internal("no shard for hash value");

  // A hit re-binds in O(log shards); a miss pays the fast-path planner.
  const auto& cost = ext->node()->cost();
  if (!ext->node()->cpu().Consume(hit ? cost.plan_cached_bind
                                      : cost.plan_fast_path)) {
    return Status::Cancelled("simulation stopping");
  }
  if (hit) ext->metric_plancache_hit->Inc();
  // Every plan-cache execution is a fast-path plan (tier accounting).
  DistributedPlanner::fast_path_count++;
  ext->metric_fast_path->Inc();

  const ShardInterval& shard = table->shards[static_cast<size_t>(idx)];
  std::string shard_name = table->ShardName(shard.shard_id);

  Task t;
  t.worker = shard.placement;
  t.colocation_id = table->colocation_id;
  t.shard_group = idx;
  t.is_write = plan->is_write;
  if (plan->use_prepared) {
    t.prepare_name = plan->PrepareName(idx);
    auto pit = plan->prepare_sql_by_shard.find(idx);
    if (pit == plan->prepare_sql_by_shard.end()) {
      pit = plan->prepare_sql_by_shard
                .emplace(idx, "PREPARE " + t.prepare_name + " AS " +
                                  RenderTemplate(*plan, shard_name, bound,
                                                 /*params_as_dollar=*/true))
                .first;
    }
    t.prepare_sql = pit->second;
    std::string args;
    for (int i = 0; i < plan->num_params; i++) {
      if (i > 0) args += ", ";
      args += bound[static_cast<size_t>(i)].ToSqlLiteral();
    }
    t.execute_sql = "EXECUTE " + t.prepare_name +
                    (plan->num_params > 0 ? " (" + args + ")" : "");
  } else if (plan->has_template) {
    t.sql = RenderTemplate(*plan, shard_name, bound, /*params_as_dollar=*/false);
  } else {
    std::map<std::string, std::string> map = {{plan->table, shard_name}};
    sql::DeparseOptions opts;
    opts.table_map = &map;
    opts.params = &bound;
    t.sql = sql::DeparseStatement(*plan->normalized, opts);
  }

  AdaptiveExecutor executor(ext);
  CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                          executor.Execute(session, {std::move(t)}));
  engine::QueryResult out = std::move(results[0]);
  if (plan->kind == sql::Statement::Kind::kInsert) {
    table->approx_rows += out.rows_affected;
  }
  return std::optional<engine::QueryResult>(std::move(out));
}

bool PlanCacheContains(CitusExtension* ext, engine::Session& session,
                       const sql::Statement& stmt,
                       const std::vector<sql::Datum>& params,
                       const TableAnalysis& analysis) {
  if (!ext->config().enable_plan_cache) return false;
  if (analysis.distributed.size() != 1 || !analysis.reference.empty() ||
      !analysis.local.empty()) {
    return false;
  }
  Normalized norm;
  if (!NormalizeStatement(stmt, *analysis.distributed[0],
                          static_cast<int>(params.size()), &norm)) {
    return false;
  }
  CitusSessionState& state = ext->SessionState(session);
  auto it = state.plan_cache.find(sql::DeparseStatement(norm.stmt, {}));
  return it != state.plan_cache.end() &&
         it->second->generation == ext->metadata().generation();
}

}  // namespace citusx::citus
