// Citus metadata: distributed tables, shards, placements, co-location
// groups, and procedure-delegation records.
//
// The real extension stores these in catalog tables (pg_dist_partition,
// pg_dist_shard, pg_dist_placement, ...) replicated to workers when metadata
// syncing is enabled (§3.10, "Citus MX"). Each node's extension instance
// owns its own CitusMetadata copy: the coordinator's copy is the authority
// (the single writer), and worker copies are replicas maintained over the
// wire by metadata_sync.cc so that any node can coordinate distributed
// queries (§3.2.1). Two counters with distinct jobs track change:
//
//   generation       — node-local plan-invalidation counter. Bumped by any
//                      local event that can invalidate a cached distributed
//                      plan (authoritative DDL, a sync applying on a
//                      replica, a worker marked unreachable). Never
//                      compared across nodes.
//   cluster_version  — the authoritative metadata version. Only the
//                      authority increments it (BumpClusterVersion); a
//                      replica's copy holds the version it last applied via
//                      sync. Stamped onto every inter-node connection so a
//                      receiver can refuse work routed by a staler peer.
//
// Commit records (pg_dist_transaction) are the exception: they must commit
// atomically with the local transaction, so they live in a real engine
// table per node (see twophase.cc).
#ifndef CITUSX_CITUS_METADATA_H_
#define CITUSX_CITUS_METADATA_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/status.h"
#include "common/str.h"
#include "sql/types.h"

namespace citusx::citus {

/// One shard of a distributed table: a contiguous range of the int32 hash
/// space, placed on one worker (reference tables: full range, all workers).
struct ShardInterval {
  uint64_t shard_id = 0;
  int32_t min_hash = 0;
  int32_t max_hash = 0;
  std::string placement;  // worker node name
};

struct CitusTable {
  std::string name;
  bool is_reference = false;
  std::string dist_column;       // empty for reference tables
  int dist_col_index = -1;
  sql::TypeId dist_col_type = sql::TypeId::kNull;
  int colocation_id = 0;         // 0 for reference tables
  bool columnar_shards = false;
  std::vector<ShardInterval> shards;  // sorted by min_hash
  /// Worker nodes holding a replica (reference tables only).
  std::vector<std::string> replica_nodes;
  /// DDL applied after creation (indexes), replayed when creating new
  /// placements during shard moves.
  std::vector<std::string> post_ddl;
  /// Rough statistics maintained by the extension (row count), used by the
  /// join-order planner to pick broadcast vs repartition.
  int64_t approx_rows = 0;
  int64_t approx_bytes = 0;
  /// Cluster version at which this table last changed (authority side).
  /// Lets metadata sync ship only the tables newer than what the peer
  /// already applied instead of the full catalog every round.
  uint64_t modified_version = 0;

  std::string ShardName(uint64_t shard_id) const {
    return StrFormat("%s_%llu", name.c_str(),
                     static_cast<unsigned long long>(shard_id));
  }

  /// Index of the shard covering `hash`, or -1. Binary search over the
  /// min_hash-sorted intervals: find the last shard with min_hash <= hash,
  /// then confirm its max_hash covers it (ranges may have gaps).
  int ShardIndexForHash(int32_t hash) const {
    size_t lo = 0;
    size_t hi = shards.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (shards[mid].min_hash <= hash) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) return -1;
    const ShardInterval& s = shards[lo - 1];
    return hash <= s.max_hash ? static_cast<int>(lo - 1) : -1;
  }
};

/// A stored procedure registered for worker delegation (§3.8).
struct DistributedProcedure {
  std::string name;
  int dist_arg_index = 0;           // which CALL argument is the dist key
  std::string colocated_table;      // placement follows this table's shards
};

class CitusMetadata {
 public:
  int default_shard_count = 32;

  CitusTable* Find(const std::string& name) {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
  }
  const CitusTable* Find(const std::string& name) const {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
  }

  Result<CitusTable*> Get(const std::string& name) {
    CitusTable* t = Find(name);
    if (t == nullptr) {
      return Status::NotFound("not a distributed table: " + name);
    }
    return t;
  }

  CitusTable* Add(CitusTable table) {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    generation_++;
    return &(tables_[table.name] = std::move(table));
  }

  void Remove(const std::string& name) {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    generation_++;
    tables_.erase(name);
  }

  /// Metadata generation, bumped by every change that can invalidate a
  /// cached distributed plan (DDL, create_distributed_table, shard moves,
  /// node add/remove). Plan-cache entries snapshot it and are discarded
  /// when it no longer matches.
  uint64_t generation() const {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    return generation_;
  }
  void BumpGeneration() {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    generation_++;
  }

  // --- MX metadata-sync state (§3.10) -----------------------------------

  /// Marks this copy as the cluster's metadata authority (the coordinator).
  /// The authority is born synced at version 1; replicas stay at version 0
  /// and unsynced until a sync round completes.
  void InitAuthority() {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    cluster_version_ = 1;
    mx_synced_ = true;
  }

  /// Authoritative metadata version of this copy: the version the authority
  /// has published, or the version a replica last applied.
  uint64_t cluster_version() const {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    return cluster_version_;
  }

  /// Authority-only: record a cluster-visible metadata change. Also bumps
  /// the local generation, since every authoritative change invalidates
  /// cached plans on this node too.
  void BumpClusterVersion() {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    generation_++;
    cluster_version_++;
  }

  /// Authority-only: stamp `table` as changed at the current version, so
  /// incremental sync ships it to peers that applied an older version.
  void TouchTable(CitusTable* table) {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    table->modified_version = cluster_version_;
  }

  /// Authority-only: record that `name` was dropped at the current version.
  /// Delta sync ships "drop X" to peers instead of a full name-list
  /// reconcile. The log is capped; DropLogCovers reports whether it still
  /// reaches back far enough for a given peer (if not, sync falls back to
  /// the full protocol).
  void RecordTableDrop(const std::string& name) {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    dropped_log_.emplace_back(cluster_version_, name);
    while (dropped_log_.size() > kDropLogCap) {
      drop_log_floor_ = dropped_log_.front().first;
      dropped_log_.erase(dropped_log_.begin());
    }
  }
  std::vector<std::string> DroppedSince(uint64_t version) const {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    std::vector<std::string> out;
    for (const auto& [v, name] : dropped_log_) {
      if (v > version) out.push_back(name);
    }
    return out;
  }
  bool DropLogCovers(uint64_t version) const {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    return version >= drop_log_floor_;
  }

  /// Authority-only: stamp the worker list / procedure map as changed at
  /// the current version, so delta sync ships them only when they changed.
  void TouchWorkers() {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    workers_modified_version_ = cluster_version_;
  }
  uint64_t workers_modified_version() const {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    return workers_modified_version_;
  }
  void TouchProcedures() {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    procedures_modified_version_ = cluster_version_;
  }
  uint64_t procedures_modified_version() const {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    return procedures_modified_version_;
  }

  /// True once a replica has applied a complete sync (always true on the
  /// authority). Cleared while a sync round is applying and on node
  /// restart, so a half-applied copy is never used for routing.
  bool mx_synced() const {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    return mx_synced_;
  }
  void set_mx_synced(bool synced) {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    mx_synced_ = synced;
  }

  /// Highest cluster version this node has ever observed, its own or
  /// stamped on an inbound peer connection. A replica whose own
  /// cluster_version falls below this watermark knows it is stale even
  /// before the authority re-syncs it.
  uint64_t known_cluster_version() const {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    return known_cluster_version_;
  }
  void NoteObservedVersion(uint64_t version) {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    known_cluster_version_ = std::max(known_cluster_version_, version);
  }

  /// Replica-side sync protocol. BeginSync marks the copy unsynced for the
  /// duration of the apply window and reports the last applied version so
  /// the authority can ship an incremental payload. ApplySyncedTable
  /// replaces one table in place (std::map node addresses are stable, so
  /// CitusTable pointers held across a yield by in-flight queries stay
  /// valid). ReconcileTables drops tables the authority no longer has.
  /// FinishSync publishes the new version and bumps the generation once so
  /// cached plans built against the old copy are discarded.
  uint64_t BeginSync() {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    mx_synced_ = false;
    return cluster_version_;
  }
  void ApplySyncedTable(CitusTable table) {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    tables_[table.name] = std::move(table);
  }
  int ReconcileTables(const std::set<std::string>& keep) {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    int removed = 0;
    for (auto it = tables_.begin(); it != tables_.end();) {
      if (keep.count(it->first) == 0) {
        it = tables_.erase(it);
        removed++;
        generation_++;
      } else {
        ++it;
      }
    }
    return removed;
  }
  void FinishSync(uint64_t version) {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    cluster_version_ = version;
    known_cluster_version_ = std::max(known_cluster_version_, version);
    mx_synced_ = true;
    generation_++;
  }

  const std::map<std::string, CitusTable>& tables() const { return tables_; }
  std::map<std::string, CitusTable>& mutable_tables() { return tables_; }

  /// Worker node names (round-robin shard placement order).
  std::vector<std::string> workers;

  uint64_t NextShardId() {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    return next_shard_id_++;
  }
  int NextColocationId() {
    std::lock_guard<OrderedMutex> guard(metadata_mu_);
    return next_colocation_id_++;
  }

  /// All tables in a co-location group.
  std::vector<CitusTable*> ColocatedTables(int colocation_id) {
    std::vector<CitusTable*> out;
    for (auto& [name, t] : tables_) {
      if (!t.is_reference && t.colocation_id == colocation_id) {
        out.push_back(&t);
      }
    }
    return out;
  }

  /// Find an existing co-location group compatible with (type, shard count),
  /// for implicit co-location. Returns 0 if none.
  int FindCompatibleColocation(sql::TypeId type, int shard_count) const {
    for (const auto& [name, t] : tables_) {
      if (!t.is_reference && t.dist_col_type == type &&
          static_cast<int>(t.shards.size()) == shard_count) {
        return t.colocation_id;
      }
    }
    return 0;
  }

  std::map<std::string, DistributedProcedure> procedures;

 private:
  /// Guards the table-map structure, the generation, and the id counters.
  /// Lookups that hand out CitusTable pointers (Find/Get/tables()) stay
  /// lock-free: simulated processes are cooperatively scheduled, so readers
  /// cannot interleave with the locked mutation windows above — the mutex
  /// makes those windows explicit and rank-ordered (see
  /// common/ordered_mutex.h).
  mutable OrderedMutex metadata_mu_{LockRank::kCitusMetadata};
  std::map<std::string, CitusTable> tables_;
  uint64_t next_shard_id_ = 102008;
  int next_colocation_id_ = 1;
  uint64_t generation_ = 0;
  uint64_t cluster_version_ = 0;
  uint64_t known_cluster_version_ = 0;
  bool mx_synced_ = false;
  /// (version, table name) drops for delta sync; see RecordTableDrop.
  static constexpr size_t kDropLogCap = 256;
  std::vector<std::pair<uint64_t, std::string>> dropped_log_;
  uint64_t drop_log_floor_ = 0;
  uint64_t workers_modified_version_ = 0;
  uint64_t procedures_modified_version_ = 0;
};

/// Evenly divide the int32 hash space into `count` intervals.
std::vector<std::pair<int32_t, int32_t>> MakeHashIntervals(int count);

}  // namespace citusx::citus

#endif  // CITUSX_CITUS_METADATA_H_
