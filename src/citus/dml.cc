// Distributed DML: routed and multi-shard INSERT/UPDATE/DELETE, the three
// INSERT..SELECT strategies (§3.8), distributed COPY, and stored-procedure
// delegation.
#include "citus/planner.h"
#include "engine/hooks.h"
#include "sql/deparser.h"
#include "sql/eval.h"

namespace citusx::citus {

namespace {

using sql::BinOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;

// Find the dist-column equality value in an UPDATE/DELETE WHERE clause.
std::optional<sql::Datum> DmlDistRestriction(
    const ExprPtr& where, const CitusTable& table,
    const std::vector<sql::Datum>& params) {
  std::vector<ExprPtr> conjuncts;
  engine::SplitConjuncts(where, &conjuncts);
  for (const auto& c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->bin_op != BinOp::kEq) continue;
    ExprPtr col = c->args[0], val = c->args[1];
    auto is_dist_col = [&](const ExprPtr& e) {
      return e->kind == ExprKind::kColumnRef && e->column == table.dist_column;
    };
    if (!is_dist_col(col)) std::swap(col, val);
    if (!is_dist_col(col)) continue;
    bool pure = true;
    sql::WalkExpr(val, [&](const Expr& x) {
      if (x.kind == ExprKind::kColumnRef) pure = false;
    });
    if (!pure) continue;
    sql::EvalContext ec;
    ec.params = &params;
    auto v = sql::Eval(*val, ec);
    if (v.ok() && !v->is_null()) return *v;
  }
  return std::nullopt;
}

// Replica task list for reference-table DML: one task per replica node.
std::vector<Task> ReferenceTableTasks(const CitusTable& table,
                                      const std::string& sql) {
  std::vector<Task> tasks;
  int i = 0;
  for (const auto& node_name : table.replica_nodes) {
    Task t;
    t.index = i++;
    t.worker = node_name;
    t.sql = sql;
    t.is_write = true;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

}  // namespace

Result<engine::QueryResult> DistributedPlanner::ExecuteInsert(
    engine::Session& session, const sql::InsertStmt& ins,
    const std::vector<sql::Datum>& params, const TableAnalysis& analysis) {
  if (ins.select != nullptr) {
    return ExecuteInsertSelect(session, ins, params, analysis);
  }
  CitusTable* table = ext_->metadata().Find(ins.table);
  const auto& cost = ext_->node()->cost();
  sql::DeparseOptions opts;
  opts.params = &params;

  sql::Statement stmt;
  stmt.kind = sql::Statement::Kind::kInsert;
  stmt.insert = std::make_shared<sql::InsertStmt>(ins);

  AdaptiveExecutor executor(ext_);
  if (table->is_reference) {
    if (!ext_->node()->cpu().Consume(cost.plan_router)) {
      return Status::Cancelled("simulation stopping");
    }
    router_count++;
    ext_->metric_router->Inc();
    std::map<std::string, std::string> map = {
        {table->name, table->ShardName(table->shards[0].shard_id)}};
    opts.table_map = &map;
    auto tasks = ReferenceTableTasks(*table, sql::DeparseStatement(stmt, opts));
    CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                            executor.Execute(session, std::move(tasks)));
    table->approx_rows += results.empty() ? 0 : results[0].rows_affected;
    return std::move(results[0]);
  }

  // Locate the distribution column among the insert columns.
  engine::TableInfo* shell = ext_->node()->catalog().Find(ins.table);
  if (shell == nullptr) return Status::NotFound("shell table missing");
  int dist_pos = -1;
  if (ins.columns.empty()) {
    dist_pos = table->dist_col_index;
  } else {
    for (size_t i = 0; i < ins.columns.size(); i++) {
      if (ins.columns[i] == table->dist_column) {
        dist_pos = static_cast<int>(i);
      }
    }
  }
  if (dist_pos < 0) {
    return Status::InvalidArgument(
        "cannot perform an INSERT without the partition column");
  }
  // Group VALUES rows by target shard.
  std::map<int, std::vector<const std::vector<ExprPtr>*>> by_shard;
  sql::EvalContext ec;
  ec.params = &params;
  for (const auto& row : ins.values) {
    if (dist_pos >= static_cast<int>(row.size())) {
      return Status::InvalidArgument("INSERT row is missing columns");
    }
    CITUSX_ASSIGN_OR_RETURN(sql::Datum v,
                            sql::Eval(*row[static_cast<size_t>(dist_pos)], ec));
    if (v.is_null()) {
      return Status::InvalidArgument(
          "the partition column value cannot be NULL");
    }
    // Coerce to the declared column type so hashing matches routing of
    // queries (e.g. an int literal inserted into a text column).
    CITUSX_ASSIGN_OR_RETURN(
        v, v.CastTo(table->dist_col_type));
    int idx = table->ShardIndexForHash(v.PartitionHash());
    if (idx < 0) return Status::Internal("no shard for hash value");
    by_shard[idx].push_back(&row);
  }
  if (!ext_->node()->cpu().Consume(
          by_shard.size() == 1 && ins.values.size() == 1 ? cost.plan_fast_path
                                                         : cost.plan_router)) {
    return Status::Cancelled("simulation stopping");
  }
  bool ins_fast = by_shard.size() == 1 && ins.values.size() == 1;
  (ins_fast ? fast_path_count : router_count)++;
  (ins_fast ? ext_->metric_fast_path : ext_->metric_router)->Inc();
  std::vector<Task> tasks;
  int index = 0;
  for (const auto& [shard_idx, rows] : by_shard) {
    sql::InsertStmt shard_ins;
    shard_ins.table = ins.table;
    shard_ins.columns = ins.columns;
    shard_ins.on_conflict_do_nothing = ins.on_conflict_do_nothing;
    for (const auto* row : rows) shard_ins.values.push_back(*row);
    sql::Statement shard_stmt;
    shard_stmt.kind = sql::Statement::Kind::kInsert;
    shard_stmt.insert = std::make_shared<sql::InsertStmt>(std::move(shard_ins));
    std::map<std::string, std::string> map = {
        {table->name,
         table->ShardName(table->shards[static_cast<size_t>(shard_idx)].shard_id)}};
    sql::DeparseOptions topts;
    topts.params = &params;
    topts.table_map = &map;
    Task t;
    t.index = index++;
    t.worker = table->shards[static_cast<size_t>(shard_idx)].placement;
    t.colocation_id = table->colocation_id;
    t.shard_group = shard_idx;
    t.sql = sql::DeparseStatement(shard_stmt, topts);
    t.is_write = true;
    tasks.push_back(std::move(t));
  }
  CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                          executor.Execute(session, std::move(tasks)));
  engine::QueryResult out;
  for (const auto& r : results) out.rows_affected += r.rows_affected;
  out.command_tag = StrFormat("INSERT 0 %lld",
                              static_cast<long long>(out.rows_affected));
  table->approx_rows += out.rows_affected;
  return out;
}

Result<engine::QueryResult> DistributedPlanner::ExecuteDml(
    engine::Session& session, const sql::Statement& stmt,
    const std::vector<sql::Datum>& params, const TableAnalysis& analysis) {
  if (stmt.kind == sql::Statement::Kind::kInsert) {
    return ExecuteInsert(session, *stmt.insert, params, analysis);
  }
  const std::string& table_name = stmt.kind == sql::Statement::Kind::kUpdate
                                      ? stmt.update->table
                                      : stmt.del->table;
  const ExprPtr& where = stmt.kind == sql::Statement::Kind::kUpdate
                             ? stmt.update->where
                             : stmt.del->where;
  CitusTable* table = ext_->metadata().Find(table_name);
  const auto& cost = ext_->node()->cost();
  AdaptiveExecutor executor(ext_);

  if (table->is_reference) {
    if (!ext_->node()->cpu().Consume(cost.plan_router)) {
      return Status::Cancelled("simulation stopping");
    }
    router_count++;
    ext_->metric_router->Inc();
    std::map<std::string, std::string> map = {
        {table->name, table->ShardName(table->shards[0].shard_id)}};
    sql::DeparseOptions opts;
    opts.params = &params;
    opts.table_map = &map;
    auto tasks = ReferenceTableTasks(*table, sql::DeparseStatement(stmt, opts));
    CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                            executor.Execute(session, std::move(tasks)));
    return std::move(results[0]);
  }

  auto restriction = DmlDistRestriction(where, *table, params);
  if (restriction.has_value()) {
    // Router (fast path) DML: single shard.
    CITUSX_ASSIGN_OR_RETURN(sql::Datum coerced,
                            restriction->CastTo(table->dist_col_type));
    int idx = table->ShardIndexForHash(coerced.PartitionHash());
    if (idx < 0) return Status::Internal("no shard for hash value");
    if (!ext_->node()->cpu().Consume(cost.plan_fast_path)) {
      return Status::Cancelled("simulation stopping");
    }
    fast_path_count++;
    ext_->metric_fast_path->Inc();
    std::map<std::string, std::string> map = {
        {table->name,
         table->ShardName(table->shards[static_cast<size_t>(idx)].shard_id)}};
    sql::DeparseOptions opts;
    opts.params = &params;
    opts.table_map = &map;
    Task t;
    t.worker = table->shards[static_cast<size_t>(idx)].placement;
    t.colocation_id = table->colocation_id;
    t.shard_group = idx;
    t.sql = sql::DeparseStatement(stmt, opts);
    t.is_write = true;
    CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                            executor.Execute(session, {std::move(t)}));
    return std::move(results[0]);
  }

  // Parallel multi-shard DML (§3.8 "parallel, distributed DML").
  if (!ext_->node()->cpu().Consume(cost.plan_pushdown)) {
    return Status::Cancelled("simulation stopping");
  }
  pushdown_count++;
  ext_->metric_pushdown->Inc();
  std::vector<Task> tasks;
  for (size_t i = 0; i < table->shards.size(); i++) {
    std::map<std::string, std::string> map = {
        {table->name, table->ShardName(table->shards[i].shard_id)}};
    for (const auto* ref : analysis.reference) {
      map[ref->name] = ref->ShardName(ref->shards[0].shard_id);
    }
    sql::DeparseOptions opts;
    opts.params = &params;
    opts.table_map = &map;
    Task t;
    t.index = static_cast<int>(i);
    t.worker = table->shards[i].placement;
    t.colocation_id = table->colocation_id;
    t.shard_group = static_cast<int>(i);
    t.sql = sql::DeparseStatement(stmt, opts);
    t.is_write = true;
    tasks.push_back(std::move(t));
  }
  CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                          executor.Execute(session, std::move(tasks)));
  engine::QueryResult out;
  for (const auto& r : results) out.rows_affected += r.rows_affected;
  out.command_tag = StrFormat(
      "%s %lld", stmt.kind == sql::Statement::Kind::kUpdate ? "UPDATE" : "DELETE",
      static_cast<long long>(out.rows_affected));
  return out;
}

Result<engine::QueryResult> DistributedPlanner::ExecuteInsertSelect(
    engine::Session& session, const sql::InsertStmt& ins,
    const std::vector<sql::Datum>& params, const TableAnalysis& analysis) {
  CitusTable* target = ext_->metadata().Find(ins.table);
  if (target == nullptr) {
    return Status::NotSupported(
        "INSERT .. SELECT into a local table from distributed tables");
  }
  const sql::SelectStmt& sel = *ins.select;
  TableAnalysis source = AnalyzeSelectTables(ext_->metadata(), sel);

  // Strategy 1: co-located INSERT..SELECT executed per shard pair (§3.8).
  // Requirements: target distributed; source dist tables co-located with the
  // target; no merge step (subqueries safe, top-level group-by includes the
  // dist column when aggregating); the target's dist column receives a
  // source dist column at the right position.
  bool colocated = !target->is_reference && !source.distributed.empty();
  for (const auto* t : source.distributed) {
    colocated &= t->colocation_id == target->colocation_id;
  }
  if (colocated) {
    std::string reason;
    colocated &= SubqueryPushdownSafe(sel, ext_->metadata(), &reason);
    std::string tmp;
    colocated &= CheckColocatedJoins(sel, source, ext_->metadata(), &tmp);
  }
  if (colocated) {
    // Locate the target position of the distribution column.
    int dist_pos = -1;
    if (ins.columns.empty()) {
      dist_pos = target->dist_col_index;
    } else {
      for (size_t i = 0; i < ins.columns.size(); i++) {
        if (ins.columns[i] == target->dist_column) {
          dist_pos = static_cast<int>(i);
        }
      }
    }
    bool dist_aligned =
        dist_pos >= 0 && dist_pos < static_cast<int>(sel.targets.size());
    if (dist_aligned) {
      const ExprPtr& e = sel.targets[static_cast<size_t>(dist_pos)].expr;
      dist_aligned = AnyDistColRef(*e, source) != nullptr ||
                     (e->kind == ExprKind::kColumnRef &&
                      !source.distributed.empty() &&
                      e->column == source.distributed[0]->dist_column);
    }
    if (dist_aligned) {
      pushdown_count++;
      ext_->metric_pushdown->Inc();
      if (!ext_->node()->cpu().Consume(ext_->node()->cost().plan_pushdown)) {
        return Status::Cancelled("simulation stopping");
      }
      std::vector<Task> tasks;
      for (size_t i = 0; i < target->shards.size(); i++) {
        auto map = ShardGroupTableMap(source, static_cast<int>(i));
        map[target->name] = target->ShardName(target->shards[i].shard_id);
        sql::DeparseOptions opts;
        opts.params = &params;
        opts.table_map = &map;
        sql::Statement stmt;
        stmt.kind = sql::Statement::Kind::kInsert;
        stmt.insert = std::make_shared<sql::InsertStmt>(ins);
        Task t;
        t.index = static_cast<int>(i);
        t.worker = target->shards[i].placement;
        t.colocation_id = target->colocation_id;
        t.shard_group = static_cast<int>(i);
        t.sql = sql::DeparseStatement(stmt, opts);
        t.is_write = true;
        tasks.push_back(std::move(t));
      }
      AdaptiveExecutor executor(ext_);
      CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                              executor.Execute(session, std::move(tasks)));
      engine::QueryResult out;
      for (const auto& r : results) out.rows_affected += r.rows_affected;
      out.command_tag = StrFormat(
          "INSERT 0 %lld", static_cast<long long>(out.rows_affected));
      target->approx_rows += out.rows_affected;
      return out;
    }
  }

  // Strategy 3 (also covers strategy 2 here, see DESIGN.md): run the SELECT
  // as a distributed query, then COPY the result into the target table.
  CITUSX_ASSIGN_OR_RETURN(engine::QueryResult rows,
                          ExecuteSelect(session, sel, params, source));
  std::vector<std::vector<std::string>> text_rows;
  text_rows.reserve(rows.rows.size());
  for (const auto& row : rows.rows) {
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (const auto& d : row) {
      fields.push_back(d.is_null() ? "\\N" : d.ToText());
    }
    text_rows.push_back(std::move(fields));
  }
  sql::CopyStmt copy;
  copy.table = ins.table;
  copy.columns = ins.columns;
  CITUSX_ASSIGN_OR_RETURN(
      std::optional<engine::QueryResult> copied,
      ProcessDistributedCopy(ext_, session, copy, text_rows));
  if (!copied.has_value()) {
    return Status::Internal("distributed COPY did not handle the target");
  }
  engine::QueryResult out;
  out.rows_affected = copied->rows_affected;
  out.command_tag = StrFormat("INSERT 0 %lld",
                              static_cast<long long>(out.rows_affected));
  return out;
}

// ---------------------------------------------------------------------------
// Distributed COPY (§3.8)
// ---------------------------------------------------------------------------

Result<std::optional<engine::QueryResult>> ProcessDistributedCopy(
    CitusExtension* ext, engine::Session& session, const sql::CopyStmt& stmt,
    const std::vector<std::vector<std::string>>& rows) {
  CitusTable* table = ext->metadata().Find(stmt.table);
  // MX routing gate, mirroring the planner's (§3.10): a stale non-authority
  // node must not COPY into what its copy thinks the table is — and above
  // all must not fall through to the empty local shell, where the rows
  // would silently vanish.
  if (!ext->IsMetadataAuthority() &&
      (table != nullptr || ext->IsShellTable(stmt.table)) && !ext->MxReady()) {
    return ext->MxStaleRejection("COPY on node " + ext->node()->name() +
                                 " without current synced metadata");
  }
  if (table == nullptr) return std::optional<engine::QueryResult>();
  engine::TableInfo* shell = ext->node()->catalog().Find(stmt.table);
  if (shell == nullptr) return Status::NotFound("shell table missing");
  const sql::Schema& schema = shell->schema();

  // The coordinator parses every row on a single backend (one core): this
  // is the paper's Figure 7(a) bottleneck. Cost scales with bytes.
  int64_t copy_bytes = 0;
  for (const auto& row : rows) {
    for (const auto& f : row) copy_bytes += static_cast<int64_t>(f.size());
  }
  if (!ext->node()->cpu().Consume(
          static_cast<int64_t>(rows.size()) *
              ext->node()->cost().cpu_per_row_copy_parse +
          copy_bytes * ext->node()->cost().parse_per_char)) {
    return Status::Cancelled("simulation stopping");
  }

  AdaptiveExecutor executor(ext);
  if (table->is_reference) {
    std::vector<Task> tasks;
    int index = 0;
    for (const auto& node_name : table->replica_nodes) {
      Task t;
      t.index = index++;
      t.worker = node_name;
      t.is_copy = true;
      t.is_write = true;
      t.copy_table = table->ShardName(table->shards[0].shard_id);
      t.copy_columns = stmt.columns;
      t.copy_rows = rows;
      tasks.push_back(std::move(t));
    }
    CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> results,
                            executor.Execute(session, std::move(tasks)));
    table->approx_rows += static_cast<int64_t>(rows.size());
    engine::QueryResult out;
    out.rows_affected = static_cast<int64_t>(rows.size());
    out.command_tag = StrFormat("COPY %lld",
                                static_cast<long long>(out.rows_affected));
    return std::optional<engine::QueryResult>(std::move(out));
  }

  // Locate the distribution column within the COPY column list.
  int dist_pos = -1;
  if (stmt.columns.empty()) {
    dist_pos = table->dist_col_index;
  } else {
    for (size_t i = 0; i < stmt.columns.size(); i++) {
      if (stmt.columns[i] == table->dist_column) {
        dist_pos = static_cast<int>(i);
      }
    }
  }
  if (dist_pos < 0) {
    return Status::InvalidArgument(
        "COPY into a distributed table requires the partition column");
  }
  sql::TypeId dist_type = schema.columns[static_cast<size_t>(
      table->dist_col_index)].type;
  // Partition rows into per-shard batches.
  std::map<int, std::vector<std::vector<std::string>>> by_shard;
  for (const auto& row : rows) {
    if (dist_pos >= static_cast<int>(row.size())) {
      return Status::InvalidArgument("COPY row is missing fields");
    }
    CITUSX_ASSIGN_OR_RETURN(
        sql::Datum v,
        sql::Datum::FromText(dist_type, row[static_cast<size_t>(dist_pos)]));
    int idx = table->ShardIndexForHash(v.PartitionHash());
    if (idx < 0) return Status::Internal("no shard for hash value");
    by_shard[idx].push_back(row);
  }
  std::vector<Task> tasks;
  int index = 0;
  int64_t total = 0;
  for (auto& [shard_idx, batch] : by_shard) {
    Task t;
    t.index = index++;
    t.worker = table->shards[static_cast<size_t>(shard_idx)].placement;
    t.colocation_id = table->colocation_id;
    t.shard_group = shard_idx;
    t.is_copy = true;
    t.is_write = true;
    t.copy_table =
        table->ShardName(table->shards[static_cast<size_t>(shard_idx)].shard_id);
    t.copy_columns = stmt.columns;
    total += static_cast<int64_t>(batch.size());
    t.copy_rows = std::move(batch);
    tasks.push_back(std::move(t));
  }
  CITUSX_RETURN_IF_ERROR(
      executor.Execute(session, std::move(tasks)).status());
  table->approx_rows += total;
  engine::QueryResult out;
  out.rows_affected = total;
  out.command_tag = StrFormat("COPY %lld", static_cast<long long>(total));
  return std::optional<engine::QueryResult>(std::move(out));
}

// ---------------------------------------------------------------------------
// Stored-procedure delegation (§3.8)
// ---------------------------------------------------------------------------

Result<std::optional<engine::QueryResult>> ProcessDelegatedCall(
    CitusExtension* ext, engine::Session& session, const sql::CallStmt& stmt,
    const std::vector<sql::Datum>& args) {
  auto it = ext->metadata().procedures.find(stmt.procedure);
  if (it == ext->metadata().procedures.end()) {
    return std::optional<engine::QueryResult>();  // not delegated
  }
  if (session.in_explicit_txn()) {
    // Delegation is skipped inside multi-statement transactions; the
    // procedure runs on the coordinator with regular distributed statements.
    return std::optional<engine::QueryResult>();
  }
  const DistributedProcedure& proc = it->second;
  const CitusTable* table = ext->metadata().Find(proc.colocated_table);
  if (table == nullptr || proc.dist_arg_index >= static_cast<int>(args.size())) {
    return std::optional<engine::QueryResult>();
  }
  CITUSX_ASSIGN_OR_RETURN(
      sql::Datum v,
      args[static_cast<size_t>(proc.dist_arg_index)].CastTo(
          table->dist_col_type));
  int idx = table->ShardIndexForHash(v.PartitionHash());
  if (idx < 0) return Status::Internal("no shard for hash value");
  const std::string& worker =
      table->shards[static_cast<size_t>(idx)].placement;
  if (worker == ext->node()->name()) {
    // Local shard: run the procedure here (no delegation round trip).
    return std::optional<engine::QueryResult>();
  }
  if (!ext->node()->cpu().Consume(ext->node()->cost().plan_fast_path)) {
    return Status::Cancelled("simulation stopping");
  }
  // One round trip: the worker runs the whole procedure (§3.8).
  sql::Statement call;
  call.kind = sql::Statement::Kind::kCall;
  call.call = std::make_shared<sql::CallStmt>(stmt);
  sql::DeparseOptions opts;
  std::vector<sql::Datum> no_params;
  opts.params = &no_params;
  // Substitute evaluated args as literals.
  call.call->args.clear();
  for (const auto& a : args) {
    call.call->args.push_back(sql::MakeConst(a));
  }
  CITUSX_ASSIGN_OR_RETURN(WorkerConnection * wc,
                          ext->GetConnection(session, worker,
                                             {table->colocation_id, idx}));
  // Delegated CALLs bypass ExecOneTask, so refresh the metadata version
  // stamp here — a pooled connection may carry a stamp from before the
  // worker last synced, which the worker would reject as stale.
  CITUSX_RETURN_IF_ERROR(ext->StampPeerMetadataVersion(wc));
  CITUSX_ASSIGN_OR_RETURN(engine::QueryResult r,
                          wc->conn->Query(sql::DeparseStatement(call, opts)));
  return std::optional<engine::QueryResult>(std::move(r));
}

}  // namespace citusx::citus
