#include "citus/extension.h"

#include <mutex>
#include <unordered_map>

#include "citus/plancache.h"
#include "citus/planner.h"
#include "exec/vectorized.h"

namespace citusx::citus {

namespace {
// Node -> extension registry (PostgreSQL would keep this in shared memory).
std::unordered_map<engine::Node*, CitusExtension*>& Registry() {
  static auto* kMap = new std::unordered_map<engine::Node*, CitusExtension*>();
  return *kMap;
}
}  // namespace

CitusExtension* GetExtension(engine::Node* node) {
  auto it = Registry().find(node);
  return it == Registry().end() ? nullptr : it->second;
}

void UninstallExtension(engine::Node* node) { Registry().erase(node); }

CitusSessionState::~CitusSessionState() {
  for (auto& [worker, conns] : pool) {
    for (auto& wc : conns) {
      wc->conn->Close();
      if (extension != nullptr) extension->OnConnectionClosed(worker);
    }
  }
}

CitusExtension::CitusExtension(engine::Node* node,
                               net::NodeDirectory* directory,
                               std::shared_ptr<CitusMetadata> metadata,
                               CitusConfig config)
    : node_(node),
      directory_(directory),
      metadata_(std::move(metadata)),
      config_(config) {
  obs::Metrics& m = node_->metrics();
  metric_tasks = m.counter("citus.executor.tasks");
  metric_pool_growth = m.counter("citus.executor.pool_growth");
  metric_pipeline_batches = m.counter("citus.executor.pipeline_batches");
  metric_pipelined_tasks = m.counter("citus.executor.pipelined_tasks");
  metric_prepares = m.counter("citus.2pc.prepares");
  metric_2pc_commits = m.counter("citus.2pc.commits");
  metric_1pc_commits = m.counter("citus.2pc.single_node_commits");
  metric_fast_path = m.counter("citus.planner.fast_path");
  metric_router = m.counter("citus.planner.router");
  metric_pushdown = m.counter("citus.planner.pushdown");
  metric_join_order = m.counter("citus.planner.join_order");
  metric_plancache_hit = m.counter("citus.plancache.hit");
  metric_plancache_miss = m.counter("citus.plancache.miss");
  metric_plancache_invalidation = m.counter("citus.plancache.invalidation");
  metric_task_retries = m.counter("citus.failures.retries");
  metric_failovers = m.counter("citus.failures.failovers");
  metric_pruned = m.counter("citus.failures.pruned_connections");
  metric_partial_failures = m.counter("citus.failures.partial_failures");
  metric_node_down = m.counter("citus.failures.node_down_invalidations");
  metric_recovered = m.counter("citus.2pc.recovered");
  metric_mx_rejections = m.counter("citus.mx.stale_rejections");
  metric_mx_sync_rounds = m.counter("citus.mx.sync_rounds");
  metric_mx_sync_failures = m.counter("citus.mx.sync_failures");
  metric_mx_sync_applied = m.counter("citus.mx.sync_applied");
  metric_mx_delta_syncs = m.counter("citus.mx.delta_syncs");
  metric_mx_sync_bytes = m.counter("citus.mx.sync_bytes");
}

CitusExtension* CitusExtension::Install(
    engine::Node* node, net::NodeDirectory* directory,
    std::shared_ptr<CitusMetadata> metadata, const CitusConfig& config) {
  auto* ext = new CitusExtension(node, directory, std::move(metadata), config);
  Registry()[node] = ext;
  ext->RegisterHooks();
  ext->RegisterUdfs();
  if (config.use_vectorized_executor) exec::InstallVectorizedExecutor(node);
  // The commit-records catalog table (pg_dist_transaction). Real MVCC
  // storage: commit records become visible atomically with local commit.
  if (node->catalog().Find(kCommitRecordsTable) == nullptr) {
    sql::Schema schema;
    schema.columns.push_back(
        sql::ColumnDef{"gid", sql::TypeId::kText, true, true, ""});
    // Primary key on gid: recovery lookups and post-commit deletions must
    // stay O(1) as the commit-record heap accumulates slots.
    CITUSX_IGNORE_STATUS(
        node->catalog().CreateTable(kCommitRecordsTable, schema, {"gid"}),
        "existence checked above; a lost race re-checks on next install");
  }
  ext->StartMaintenanceDaemon();
  return ext;
}

void CitusExtension::RegisterHooks() {
  engine::ExtensionHooks& hooks = node_->hooks();
  CitusExtension* ext = this;
  hooks.planner_hook = [ext](engine::Session& session,
                             const sql::Statement& stmt,
                             const std::vector<sql::Datum>& params)
      -> Result<std::optional<engine::QueryResult>> {
    DistributedPlanner planner(ext);
    return planner.PlanAndExecute(session, stmt, params);
  };
  hooks.utility_hook =
      [ext](engine::Session& session, const sql::Statement& stmt)
      -> Result<std::optional<engine::QueryResult>> {
    return ProcessDistributedUtility(ext, session, stmt);
  };
  hooks.copy_hook = [ext](engine::Session& session, const sql::CopyStmt& stmt,
                          const std::vector<std::vector<std::string>>& rows)
      -> Result<std::optional<engine::QueryResult>> {
    return ProcessDistributedCopy(ext, session, stmt, rows);
  };
  hooks.call_hook = [ext](engine::Session& session, const sql::CallStmt& stmt,
                          const std::vector<sql::Datum>& args)
      -> Result<std::optional<engine::QueryResult>> {
    return ProcessDelegatedCall(ext, session, stmt, args);
  };
  hooks.pre_commit = [ext](engine::Session& session) {
    return ext->PreCommit(session);
  };
  hooks.post_commit = [ext](engine::Session& session) {
    ext->PostCommit(session);
  };
  hooks.post_abort = [ext](engine::Session& session) {
    ext->PostAbort(session);
  };
  hooks.on_restart = [ext](engine::Node&) {
    // A restarted worker must not trust its metadata copy until the
    // authority re-syncs it (the copy may have missed changes while the
    // node was down): clear the synced marker so MX routing is refused,
    // and bump the generation so cached distributed plans are rebuilt.
    if (!ext->IsMetadataAuthority()) {
      ext->metadata().set_mx_synced(false);
      ext->metadata().BumpGeneration();
    }
  };
}

void CitusExtension::StartMaintenanceDaemon() {
  // The maintenance daemon (§3.1 background workers): distributed deadlock
  // detection + 2PC recovery.
  CitusExtension* ext = this;
  node_->hooks().background_workers.emplace_back(
      "citus_maintenance", [ext](engine::Node& node) {
        sim::Simulation* sim = node.sim();
        sim::Time last_recovery = 0;
        while (sim->WaitFor(ext->config().deadlock_poll_interval)) {
          if (node.is_down()) continue;
          ext->DetectDistributedDeadlocks();
          // Metadata-sync repair (§3.10): re-sync any worker that is behind
          // the current cluster version, restarted since its last sync, or
          // whose last round failed mid-way. This is what heals a node left
          // stale by a crash during sync.
          if (ext->config().enable_metadata_sync &&
              ext->AnyMetadataSyncPending()) {
            CITUSX_IGNORE_STATUS(
                ext->SyncMetadataToWorkers().status(),
                "periodic daemon pass; unsynced nodes refuse MX routing "
                "and are retried next round");
          }
          if (sim->now() - last_recovery >=
              ext->config().recovery_poll_interval) {
            last_recovery = sim->now();
            auto session = node.OpenSession();
            CITUSX_IGNORE_STATUS(
                ext->RecoverTwoPhaseCommits(*session),
                "periodic daemon pass; failures retry next round");
            if (ext->pending_cleanup_count() > 0) {
              ext->RunDeferredCleanup(*session);
            }
          }
        }
      });
}

CitusSessionState& CitusExtension::SessionState(engine::Session& session) {
  if (session.extension_state == nullptr) {
    auto state = std::make_shared<CitusSessionState>();
    state->extension = this;
    session.extension_state = state;
  }
  return *static_cast<CitusSessionState*>(session.extension_state.get());
}

std::string CitusExtension::NextDistTxnId() {
  return StrFormat("%s_%llu", node_->name().c_str(),
                   static_cast<unsigned long long>(++dist_txn_counter_));
}

std::string CitusExtension::MakeGid(const std::string& dist_txn_id, int seq) {
  return StrFormat("citusx_%s_%d", dist_txn_id.c_str(), seq);
}

void CitusExtension::OnConnectionClosed(const std::string& worker) {
  std::lock_guard<OrderedMutex> guard(pool_mu_);
  auto it = outgoing_.find(worker);
  if (it != outgoing_.end() && it->second > 0) it->second--;
}

namespace {
// A connection with no transaction state can be discarded without losing
// track of an in-flight transaction's fate.
bool IsStateless(const WorkerConnection& wc) {
  return wc.groups.empty() && !wc.txn_open && !wc.did_write &&
         wc.prepared_gid.empty();
}
}  // namespace

Result<WorkerConnection*> CitusExtension::GetConnection(
    engine::Session& session, const std::string& worker,
    std::pair<int, int> group, bool prefer_idle_only) {
  CitusSessionState& state = SessionState(session);
  auto& conns = state.pool[worker];
  // Affinity: a connection that already touched this co-located shard group
  // in the current transaction must be reused (§3.6.1).
  if (group.second >= 0) {
    for (auto& wc : conns) {
      if (wc->groups.count(group) > 0) return wc.get();
    }
  }
  // Prune broken stateless connections (dead backends from a crashed
  // worker); the pool re-grows below or through slow start.
  for (auto it = conns.begin(); it != conns.end();) {
    if (!(*it)->conn->usable() && IsStateless(**it)) {
      (*it)->conn->Close();
      OnConnectionClosed(worker);
      metric_pruned->Inc();
      it = conns.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& wc : conns) {
    if (wc->conn->usable()) return wc.get();
  }
  // Only broken-but-stateful connections remain: the caller must observe
  // the breakage through them (abort path owns the cleanup).
  if (!conns.empty()) return conns.front().get();
  // Open the session's primary connection to this worker.
  if (outgoing_connections(worker) >= config_.max_shared_pool_size) {
    return Status::ResourceExhausted(
        "shared connection pool for " + worker + " is exhausted");
  }
  CITUSX_ASSIGN_OR_RETURN(std::unique_ptr<net::Connection> conn,
                          directory_->Connect(node_, worker));
  NoteWorkerAvailable(worker);
  if (config_.statement_timeout > 0) {
    conn->SetStatementTimeout(config_.statement_timeout);
  }
  {
    std::lock_guard<OrderedMutex> guard(pool_mu_);
    outgoing_[worker]++;
  }
  auto wc = std::make_unique<WorkerConnection>();
  wc->conn = std::move(conn);
  wc->worker = worker;
  WorkerConnection* ptr = wc.get();
  conns.push_back(std::move(wc));
  return ptr;
}

Result<WorkerConnection*> CitusExtension::TryOpenExtraConnection(
    engine::Session& session, const std::string& worker) {
  if (outgoing_connections(worker) >= config_.max_shared_pool_size) {
    return static_cast<WorkerConnection*>(nullptr);  // limit reached
  }
  auto conn = directory_->Connect(node_, worker);
  if (!conn.ok()) {
    if (conn.status().code() == StatusCode::kResourceExhausted) {
      return static_cast<WorkerConnection*>(nullptr);
    }
    return conn.status();
  }
  NoteWorkerAvailable(worker);
  if (config_.statement_timeout > 0) {
    (*conn)->SetStatementTimeout(config_.statement_timeout);
  }
  {
    std::lock_guard<OrderedMutex> guard(pool_mu_);
    outgoing_[worker]++;
  }
  CitusSessionState& state = SessionState(session);
  auto wc = std::make_unique<WorkerConnection>();
  wc->conn = std::move(conn).value();
  wc->worker = worker;
  WorkerConnection* ptr = wc.get();
  state.pool[worker].push_back(std::move(wc));
  return ptr;
}

void CitusExtension::PruneConnection(engine::Session& session,
                                     WorkerConnection* wc) {
  CitusSessionState& state = SessionState(session);
  auto it = state.pool.find(wc->worker);
  if (it == state.pool.end()) return;
  auto& conns = it->second;
  for (auto cit = conns.begin(); cit != conns.end(); ++cit) {
    if (cit->get() == wc) {
      wc->conn->Close();
      OnConnectionClosed(wc->worker);
      metric_pruned->Inc();
      conns.erase(cit);  // destroys *wc
      return;
    }
  }
}

void CitusExtension::NoteWorkerUnavailable(const std::string& worker) {
  engine::Node* node = directory_->Find(worker);
  // Only mark the worker down when it actually is (a single dropped
  // connection must not invalidate every cached plan).
  if (node == nullptr || !node->is_down()) return;
  {
    std::lock_guard<OrderedMutex> guard(pool_mu_);
    if (!down_workers_.insert(worker).second) return;
  }
  metric_node_down->Inc();
  // Cached distributed plans may route to the dead node; moving the
  // metadata generation drops them lazily, exactly like a shard move.
  metadata_->BumpGeneration();
}

void CitusExtension::NoteWorkerAvailable(const std::string& worker) {
  std::lock_guard<OrderedMutex> guard(pool_mu_);
  down_workers_.erase(worker);
}

void CitusExtension::AddDeferredCleanup(const std::string& worker,
                                        std::vector<std::string> tables) {
  std::lock_guard<OrderedMutex> guard(pool_mu_);
  auto& pending = pending_cleanup_[worker];
  pending.insert(pending.end(), tables.begin(), tables.end());
}

int CitusExtension::RunDeferredCleanup(engine::Session& session) {
  // Snapshot under the lock, drop over the network without it (round trips
  // yield), then fold the survivors back in under the lock.
  std::map<std::string, std::vector<std::string>> snapshot;
  {
    std::lock_guard<OrderedMutex> guard(pool_mu_);
    snapshot = pending_cleanup_;
  }
  int dropped = 0;
  for (auto& [worker, tables] : snapshot) {
    engine::Node* node = directory_->Find(worker);
    if (node == nullptr || node->is_down()) {
      continue;  // still unreachable; retry next round
    }
    auto conn = directory_->Connect(node_, worker);
    if (!conn.ok()) continue;
    std::vector<std::string> dropped_tables;
    for (const std::string& table : tables) {
      auto r = (*conn)->Query("DROP TABLE IF EXISTS " + table);
      if (r.ok()) {
        dropped++;
        dropped_tables.push_back(table);
      }
    }
    std::lock_guard<OrderedMutex> guard(pool_mu_);
    auto it = pending_cleanup_.find(worker);
    if (it == pending_cleanup_.end()) continue;
    std::vector<std::string> remaining;
    for (const std::string& table : it->second) {
      bool was_dropped = false;
      for (const std::string& d : dropped_tables) {
        if (d == table) was_dropped = true;
      }
      if (!was_dropped) remaining.push_back(table);
    }
    if (remaining.empty()) {
      pending_cleanup_.erase(it);
    } else {
      it->second = std::move(remaining);
    }
  }
  return dropped;
}

Status CitusExtension::EnsureWorkerTxn(engine::Session& session,
                                       WorkerConnection* wc) {
  if (wc->txn_open) return Status::OK();
  CitusSessionState& state = SessionState(session);
  if (state.dist_txn_id.empty()) {
    state.dist_txn_id = NextDistTxnId();
    MarkDistTxnActive(state.dist_txn_id);
    // Tag the local transaction for distributed deadlock detection.
    session.SetVar("citus.distributed_txid", state.dist_txn_id);
    if (session.txn_open()) {
      node_->RegisterTxn(session.current_txn(), state.dist_txn_id);
    }
  }
  // One round trip: the id assignment and BEGIN are batched, as the real
  // extension batches assign_distributed_transaction_id with BEGIN.
  auto begin_r = wc->conn->QueryBatch(
      {"SET citus.distributed_txid = '" + state.dist_txn_id + "'", "BEGIN"});
  if (!begin_r.ok()) return begin_r.status();
  wc->txn_open = true;
  return Status::OK();
}

}  // namespace citusx::citus
