#include "citus/rebalancer.h"

#include <algorithm>

#include "citus/planner.h"
#include "sql/deparser.h"

namespace citusx::citus {

namespace {

// Pull all rows of a shard table appended at or after `from_row` via a
// SELECT over a fresh connection; returns text rows for COPY.
Result<std::vector<std::vector<std::string>>> FetchShardRows(
    CitusExtension* ext, engine::Session& session, const std::string& worker,
    const std::string& shard_table) {
  CITUSX_ASSIGN_OR_RETURN(WorkerConnection * wc,
                          ext->GetConnection(session, worker, {0, -1}));
  CITUSX_ASSIGN_OR_RETURN(engine::QueryResult r,
                          wc->conn->Query("SELECT * FROM " + shard_table));
  std::vector<std::vector<std::string>> rows;
  rows.reserve(r.rows.size());
  for (const auto& row : r.rows) {
    std::vector<std::string> fields;
    for (const auto& d : row) fields.push_back(d.is_null() ? "\\N" : d.ToText());
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace

Status Rebalancer::MoveShardGroup(engine::Session& session, int colocation_id,
                                  int shard_index, const std::string& target) {
  auto tables = ext_->metadata().ColocatedTables(colocation_id);
  if (tables.empty()) return Status::NotFound("empty colocation group");
  std::string source =
      tables[0]->shards[static_cast<size_t>(shard_index)].placement;
  if (source == target) return Status::OK();

  // Shard tables created on the target so far: a mid-move failure must
  // drop them (or defer the drop when the target is unreachable) and leave
  // the distributed metadata untouched.
  std::vector<std::string> created;
  auto abort_move = [&](Status why) -> Status {
    if (created.empty()) return why;
    engine::Node* tnode = ext_->directory().Find(target);
    if (tnode == nullptr || tnode->is_down()) {
      // Target dead: the maintenance daemon drops the orphaned placements
      // once it is reachable again.
      ext_->AddDeferredCleanup(target, created);
      return why;
    }
    auto conn = ext_->GetConnection(session, target, {0, -1});
    if (!conn.ok() || !(*conn)->conn->usable()) {
      ext_->AddDeferredCleanup(target, created);
      return why;
    }
    for (const std::string& t : created) {
      auto r = (*conn)->conn->Query("DROP TABLE IF EXISTS " + t);
      if (!r.ok()) ext_->AddDeferredCleanup(target, {t});
    }
    return why;
  };

  // Phase 1: create the new placements and copy a snapshot while writes
  // continue on the source (logical replication initial data copy).
  for (CitusTable* table : tables) {
    uint64_t shard_id =
        table->shards[static_cast<size_t>(shard_index)].shard_id;
    auto ddl = ShardCreationDdl(ext_->node(), *table, shard_id);
    if (!ddl.ok()) return abort_move(ddl.status());
    auto wcr = ext_->GetConnection(session, target, {0, -1});
    if (!wcr.ok()) return abort_move(wcr.status());
    WorkerConnection* wc = *wcr;
    // The first DDL statement creates the table; record it up front so a
    // partial DDL failure still gets cleaned up (DROP IF EXISTS is
    // idempotent).
    created.push_back(table->ShardName(shard_id));
    for (const auto& sql_text : *ddl) {
      auto r = wc->conn->Query(sql_text);
      if (!r.ok()) return abort_move(r.status());
    }
    auto rows = FetchShardRows(ext_, session, source,
                               table->ShardName(shard_id));
    if (!rows.ok()) return abort_move(rows.status());
    if (!rows->empty()) {
      auto copied =
          wc->conn->CopyIn(table->ShardName(shard_id), {}, std::move(*rows));
      if (!copied.ok()) return abort_move(copied.status());
    }
  }

  // Phase 2: block writes briefly (metadata flip window), let replication
  // catch up (approximated by a short delta re-copy of late rows), then
  // update the distributed metadata.
  sim::Time block_start = ext_->node()->sim()->now();
  // Take exclusive locks on the source shard tables (blocks writers).
  auto src = ext_->GetConnection(session, source, {0, -1});
  if (!src.ok()) return abort_move(src.status());
  WorkerConnection* src_conn = *src;
  auto rb = src_conn->conn->Query("BEGIN");
  if (!rb.ok()) return abort_move(rb.status());
  auto rollback_and_abort = [&](Status why) -> Status {
    CITUSX_IGNORE_STATUS(src_conn->conn->Query("ROLLBACK"),
                         "move already failing; rollback is best-effort");
    src_conn->txn_open = false;
    return abort_move(std::move(why));
  };
  src_conn->txn_open = true;
  for (CitusTable* table : tables) {
    uint64_t shard_id =
        table->shards[static_cast<size_t>(shard_index)].shard_id;
    // SELECT .. FOR UPDATE takes row locks; for the catch-up window a
    // table-level write blocker is modelled by a short LOCK via TRUNCATE-free
    // exclusive acquisition: we reuse FOR UPDATE over the shard.
    auto r = src_conn->conn->Query("SELECT count(*) FROM " +
                                   table->ShardName(shard_id) + " FOR UPDATE");
    if (!r.ok()) return rollback_and_abort(r.status());
  }
  // The flip hands the placements to the target: refuse if it died while
  // the source was being locked, otherwise queries would route to a dead
  // node with no data to fall back on.
  engine::Node* tnode = ext_->directory().Find(target);
  if (tnode == nullptr || tnode->is_down()) {
    return rollback_and_abort(Status::Unavailable(
        "shard move aborted: target " + target + " went down"));
  }
  // Metadata flip: new queries now go to the target placement. Bump the
  // cluster version so cached distributed plans stop routing to the old
  // placement — on this node via the generation, on every other node via
  // the metadata sync that follows the move (a worker that misses the sync
  // is marked unsynced and refuses MX routing rather than chase the old
  // placement).
  for (CitusTable* table : tables) {
    table->shards[static_cast<size_t>(shard_index)].placement = target;
  }
  ext_->metadata().BumpClusterVersion();
  for (CitusTable* table : tables) {
    ext_->metadata().TouchTable(table);
  }
  auto rc = src_conn->conn->Query("COMMIT");
  src_conn->txn_open = false;
  last_move_blocked_time = ext_->node()->sim()->now() - block_start;
  if (!rc.ok()) {
    // The source died after the flip: the target holds the data and the
    // metadata is consistent, so the move stands; only the old placements
    // could not be dropped — leave that to the maintenance daemon.
    std::vector<std::string> old_tables;
    for (CitusTable* table : tables) {
      uint64_t shard_id =
          table->shards[static_cast<size_t>(shard_index)].shard_id;
      old_tables.push_back(table->ShardName(shard_id));
    }
    ext_->AddDeferredCleanup(source, std::move(old_tables));
    ext_->MaybeSyncMetadata();
    return Status::OK();
  }

  // Cleanup: drop the old placements (deferred cleanup in real Citus).
  for (CitusTable* table : tables) {
    uint64_t shard_id =
        table->shards[static_cast<size_t>(shard_index)].shard_id;
    CITUSX_IGNORE_STATUS(
        src_conn->conn->Query("DROP TABLE IF EXISTS " +
                              table->ShardName(shard_id)),
        "old placement cleanup is best-effort; an orphaned shard is "
        "unreachable once metadata points at the new placement");
  }
  ext_->MaybeSyncMetadata();
  return Status::OK();
}

Status Rebalancer::MoveShard(engine::Session& session, uint64_t shard_id,
                             const std::string& source,
                             const std::string& target) {
  for (auto& [name, table] : ext_->metadata().mutable_tables()) {
    for (size_t i = 0; i < table.shards.size(); i++) {
      if (table.shards[i].shard_id == shard_id) {
        if (table.shards[i].placement != source) {
          return Status::InvalidArgument("shard is not on " + source);
        }
        return MoveShardGroup(session, table.colocation_id,
                              static_cast<int>(i), target);
      }
    }
  }
  return Status::NotFound("shard not found");
}

Result<int> Rebalancer::Rebalance(engine::Session& session,
                                  RebalanceStrategy strategy) {
  RebalancePolicy policy;
  if (strategy == RebalanceStrategy::kByShardCount) {
    policy.cost = [](int) { return 1.0; };
  }
  // kByDiskSize: cost filled per colocation group below (needs table data);
  // handled inside RebalanceWithPolicy via a null cost meaning "by size".
  policy.capacity = [](const std::string&) { return 1.0; };
  policy.constraint = [](int, const std::string&) { return true; };
  if (strategy == RebalanceStrategy::kByDiskSize) policy.cost = nullptr;
  return RebalanceWithPolicy(session, policy);
}

Result<int> Rebalancer::RebalanceWithPolicy(engine::Session& session,
                                            const RebalancePolicy& policy) {
  int moves = 0;
  const auto& workers = ext_->metadata().workers;
  if (workers.empty()) return 0;
  // Collect distinct co-location groups.
  std::set<int> groups;
  for (const auto& [name, t] : ext_->metadata().tables()) {
    if (!t.is_reference) groups.insert(t.colocation_id);
  }
  for (int colocation : groups) {
    auto tables = ext_->metadata().ColocatedTables(colocation);
    if (tables.empty()) continue;
    CitusTable* rep = tables[0];
    int shard_count = static_cast<int>(rep->shards.size());
    // Greedy: repeatedly move a shard group from the most- to the
    // least-loaded worker until balanced.
    for (int iteration = 0; iteration < shard_count * 2; iteration++) {
      std::map<std::string, double> load;
      std::map<std::string, std::vector<int>> groups_on;
      for (const auto& w : workers) load[w] = 0;
      for (int i = 0; i < shard_count; i++) {
        const auto& placement = rep->shards[static_cast<size_t>(i)].placement;
        double cost = policy.cost
                          ? policy.cost(i)
                          : 1.0 + static_cast<double>(rep->approx_rows) /
                                      std::max(1, shard_count);
        load[placement] += cost;
        groups_on[placement].push_back(i);
      }
      auto max_it = std::max_element(
          load.begin(), load.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      auto min_it = std::min_element(
          load.begin(), load.end(),
          [&](const auto& a, const auto& b) {
            return a.second / std::max(policy.capacity(a.first), 1e-9) <
                   b.second / std::max(policy.capacity(b.first), 1e-9);
          });
      if (max_it->first == min_it->first) break;
      if (groups_on[max_it->first].empty()) break;
      // Balanced enough? Moving one unit should strictly improve.
      int candidate = groups_on[max_it->first].front();
      double cost = policy.cost
                        ? policy.cost(candidate)
                        : 1.0 + static_cast<double>(rep->approx_rows) /
                                    std::max(1, shard_count);
      if (max_it->second - min_it->second <= cost) break;
      if (!policy.constraint(candidate, min_it->first)) break;
      CITUSX_RETURN_IF_ERROR(
          MoveShardGroup(session, colocation, candidate, min_it->first));
      moves++;
    }
  }
  return moves;
}

}  // namespace citusx::citus
