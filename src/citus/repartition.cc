// The logical join-order planner (paper §3.5, Figure 4D): plans joins
// between non-co-located distributed tables by either broadcasting the
// smaller table to every participating worker or re-partitioning it along
// the larger table's shard intervals, choosing the order/strategy that
// minimizes network traffic.
//
// Data movement is coordinator-mediated: map output is pulled to the
// coordinator and COPY'd to the workers as an intermediate relation, which
// is then registered as a temporary reference table so the co-located
// pushdown planner can finish the job (filters, aggregates, merge step).
#include "citus/planner.h"
#include "engine/hooks.h"
#include "sql/deparser.h"

namespace citusx::citus {

namespace {

uint64_t g_repart_counter = 0;

// Rewrite FROM references of `from_name` to `to_name`, preserving column
// qualification by aliasing the new name back to the old one.
void RewriteTableRefs(sql::TableRefPtr& ref, const std::string& from_name,
                      const std::string& to_name) {
  if (ref == nullptr) return;
  switch (ref->kind) {
    case sql::TableRef::Kind::kTable:
      if (ref->name == from_name) {
        if (ref->alias.empty()) ref->alias = from_name;
        ref->name = to_name;
      }
      return;
    case sql::TableRef::Kind::kSubquery:
      for (auto& f : ref->subquery->from) {
        RewriteTableRefs(f, from_name, to_name);
      }
      return;
    case sql::TableRef::Kind::kJoin:
      RewriteTableRefs(ref->left, from_name, to_name);
      RewriteTableRefs(ref->right, from_name, to_name);
      return;
  }
}

// True if `name` appears as a base table somewhere under a FROM subquery
// (we only reposition top-level tables).
bool AppearsInSubquery(const sql::SelectStmt& sel, const std::string& name) {
  std::function<bool(const sql::TableRef&, bool)> walk =
      [&](const sql::TableRef& ref, bool inside_subquery) -> bool {
    switch (ref.kind) {
      case sql::TableRef::Kind::kTable:
        return inside_subquery && ref.name == name;
      case sql::TableRef::Kind::kSubquery:
        for (const auto& f : ref.subquery->from) {
          if (walk(*f, true)) return true;
        }
        return false;
      case sql::TableRef::Kind::kJoin:
        return walk(*ref.left, inside_subquery) ||
               walk(*ref.right, inside_subquery);
    }
    return false;
  };
  for (const auto& f : sel.from) {
    if (walk(*f, false)) return true;
  }
  return false;
}

// Find the join key of `moved` against `kept`: an equality conjunct with one
// side referencing only `moved` columns. Returns the column name of the
// moved side, or empty.
std::string FindJoinColumn(const sql::SelectStmt& sel, const CitusTable& moved,
                           const TableAnalysis& analysis) {
  std::vector<sql::ExprPtr> conjuncts;
  CollectConjuncts(sel, &conjuncts);
  auto refs_table = [&](const sql::Expr& e, const CitusTable& t) {
    if (e.kind != sql::ExprKind::kColumnRef) return false;
    if (!e.table.empty()) {
      auto it = analysis.alias_map.find(e.table);
      return it != analysis.alias_map.end() && it->second == &t;
    }
    return false;  // require qualification for non-co-located joins
  };
  for (const auto& c : conjuncts) {
    if (c->kind != sql::ExprKind::kBinary ||
        c->bin_op != sql::BinOp::kEq) {
      continue;
    }
    for (int side = 0; side < 2; side++) {
      const sql::ExprPtr& a = c->args[static_cast<size_t>(side)];
      if (refs_table(*a, moved)) return a->column;
    }
  }
  return "";
}

}  // namespace

Result<std::optional<engine::QueryResult>> DistributedPlanner::TryJoinOrderPlan(
    engine::Session& session, const sql::SelectStmt& sel,
    const std::vector<sql::Datum>& params, const TableAnalysis& analysis) {
  // Scope: exactly two distributed tables at the top level (reference
  // tables ride along), joined by equality.
  if (analysis.distributed.size() != 2) {
    return std::optional<engine::QueryResult>();
  }
  const CitusTable* a = analysis.distributed[0];
  const CitusTable* b = analysis.distributed[1];
  if (AppearsInSubquery(sel, a->name) || AppearsInSubquery(sel, b->name)) {
    return std::optional<engine::QueryResult>();
  }

  // Join-order selection: move the smaller table (by tracked statistics);
  // estimated network traffic is size(moved) for repartition and
  // size(moved) * workers for broadcast (§3.5 "minimizes network traffic").
  const CitusTable* kept = a;
  const CitusTable* moved = b;
  if (a->approx_rows < b->approx_rows) {
    kept = b;
    moved = a;
  }
  std::string join_col = FindJoinColumn(sel, *moved, analysis);
  std::set<std::string> kept_workers;
  for (const auto& s : kept->shards) kept_workers.insert(s.placement);
  // Repartition traffic ~= size(moved); broadcast ~= size(moved) * workers.
  // Prefer repartitioning unless the moved table is tiny (broadcast avoids
  // hashing and works without a join column).
  bool use_repartition = !join_col.empty() && kept_workers.size() > 1 &&
                         moved->approx_rows >= 1000;

  // ---- map phase: read the moved table's shards ----
  AdaptiveExecutor executor(ext_);
  std::vector<Task> map_tasks;
  engine::TableInfo* moved_shell = ext_->node()->catalog().Find(moved->name);
  if (moved_shell == nullptr) return Status::NotFound("shell table missing");
  for (size_t i = 0; i < moved->shards.size(); i++) {
    Task t;
    t.index = static_cast<int>(i);
    t.worker = moved->shards[i].placement;
    t.sql = "SELECT * FROM " + moved->ShardName(moved->shards[i].shard_id);
    map_tasks.push_back(std::move(t));
  }
  CITUSX_ASSIGN_OR_RETURN(std::vector<engine::QueryResult> map_results,
                          executor.Execute(session, std::move(map_tasks)));

  // ---- shuffle phase: build the per-worker intermediate relations ----
  std::string tmp_logical = StrFormat("citusx_repart_%llu",
                                      static_cast<unsigned long long>(
                                          ++g_repart_counter));
  int join_col_idx =
      join_col.empty() ? -1 : moved_shell->schema().FindColumn(join_col);
  if (join_col_idx < 0) use_repartition = false;

  // worker -> rows shipped there.
  std::map<std::string, std::vector<std::vector<std::string>>> shipments;
  for (auto& r : map_results) {
    for (auto& row : r.rows) {
      std::vector<std::string> fields;
      fields.reserve(row.size());
      for (const auto& d : row) {
        fields.push_back(d.is_null() ? "\\N" : d.ToText());
      }
      if (use_repartition) {
        const sql::Datum& key = row[static_cast<size_t>(join_col_idx)];
        if (key.is_null()) continue;  // NULL keys never join
        auto coerced = key.CastTo(kept->dist_col_type);
        int idx = coerced.ok()
                      ? kept->ShardIndexForHash(coerced->PartitionHash())
                      : -1;
        if (idx < 0) continue;
        shipments[kept->shards[static_cast<size_t>(idx)].placement].push_back(
            std::move(fields));
      } else {
        for (const auto& w : kept_workers) shipments[w].push_back(fields);
      }
    }
  }

  // Register the intermediate relation as a temporary reference table so
  // the pushdown planner can treat the rewritten query as co-located.
  CitusTable tmp;
  tmp.name = tmp_logical;
  tmp.is_reference = true;
  ShardInterval si;
  si.shard_id = ext_->metadata().NextShardId();
  si.min_hash = INT32_MIN;
  si.max_hash = INT32_MAX;
  tmp.shards.push_back(si);
  tmp.replica_nodes.assign(kept_workers.begin(), kept_workers.end());
  std::string tmp_shard = tmp.ShardName(si.shard_id);
  CitusTable* registered = ext_->metadata().Add(tmp);
  // The coordinator needs a shell for ShardCreationDdl-free deparsing of
  // worker DDL: create shard tables directly with the moved table's schema.
  sql::Statement create;
  create.kind = sql::Statement::Kind::kCreateTable;
  create.create_table = std::make_shared<sql::CreateTableStmt>();
  create.create_table->table = tmp_shard;
  create.create_table->schema = moved_shell->schema();
  std::string create_sql = sql::DeparseStatement(create);

  auto cleanup = [&]() {
    for (const auto& w : registered->replica_nodes) {
      auto conn = ext_->GetConnection(session, w, {0, -1});
      if (conn.ok()) {
        CITUSX_IGNORE_STATUS(
            (*conn)->conn->Query("DROP TABLE IF EXISTS " + tmp_shard),
            "temporary repartition shard; deferred cleanup retries");
      }
    }
    ext_->metadata().Remove(tmp_logical);
    ext_->metadata().RecordTableDrop(tmp_logical);
  };

  std::vector<Task> ship_tasks;
  int index = 0;
  for (const auto& w : registered->replica_nodes) {
    Task t;
    t.index = index++;
    t.worker = w;
    t.sql = create_sql;
    ship_tasks.push_back(std::move(t));
  }
  auto created = executor.Execute(session, std::move(ship_tasks));
  if (!created.ok()) {
    cleanup();
    return created.status();
  }
  std::vector<Task> copy_tasks;
  index = 0;
  for (auto& [w, rows] : shipments) {
    if (rows.empty()) continue;
    Task t;
    t.index = index++;
    t.worker = w;
    t.is_copy = true;
    t.copy_table = tmp_shard;
    t.copy_rows = std::move(rows);
    copy_tasks.push_back(std::move(t));
  }
  auto shipped = executor.Execute(session, std::move(copy_tasks));
  if (!shipped.ok()) {
    cleanup();
    return shipped.status();
  }

  // ---- rewrite and delegate to the co-located pushdown path ----
  sql::SelectPtr rewritten = sel.Clone();
  for (auto& f : rewritten->from) {
    RewriteTableRefs(f, moved->name, tmp_logical);
  }
  TableAnalysis new_analysis =
      AnalyzeSelectTables(ext_->metadata(), *rewritten);
  auto result = ExecuteSelect(session, *rewritten, params, new_analysis);
  cleanup();
  if (!result.ok()) return result.status();
  return std::optional<engine::QueryResult>(std::move(result).value());
}

}  // namespace citusx::citus
