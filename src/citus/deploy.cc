#include "citus/deploy.h"

namespace citusx::citus {

Deployment::Deployment(sim::Simulation* sim, const DeploymentOptions& options)
    : sim_(sim) {
  cluster_ = std::make_unique<net::Cluster>(
      sim, options.cost, options.num_workers + options.spare_workers);
  metadata_ = std::make_shared<CitusMetadata>();
  metadata_->default_shard_count = options.citus.shard_count;
  if (options.install_citus) {
    int active = options.num_workers == 0
                     ? 1
                     : options.num_workers;  // 0+1: coordinator is the worker
    std::vector<engine::Node*> ws = cluster_->workers();
    for (int i = 0; i < active && i < static_cast<int>(ws.size()); i++) {
      metadata_->workers.push_back(ws[static_cast<size_t>(i)]->name());
    }
    // Per-node metadata copies (§3.10): the coordinator's copy (metadata_)
    // is the cluster authority; every other node starts with an empty
    // replica that metadata sync fills in, after which it can coordinate
    // distributed queries itself.
    metadata_->InitAuthority();
    for (size_t i = 0; i < cluster_->num_nodes(); i++) {
      engine::Node* node = cluster_->node(i);
      CitusConfig cfg = options.citus;
      cfg.is_coordinator = node == cluster_->coordinator();
      std::shared_ptr<CitusMetadata> copy = metadata_;
      if (!cfg.is_coordinator) {
        copy = std::make_shared<CitusMetadata>();
        copy->default_shard_count = options.citus.shard_count;
      }
      extensions_.push_back(CitusExtension::Install(
          node, &cluster_->directory(), std::move(copy), cfg));
    }
  }
  if (options.start_background_workers) {
    for (size_t i = 0; i < cluster_->num_nodes(); i++) {
      cluster_->node(i)->StartBackgroundWorkers();
    }
  }
}

Deployment::~Deployment() {
  for (size_t i = 0; i < cluster_->num_nodes(); i++) {
    UninstallExtension(cluster_->node(i));
  }
  for (CitusExtension* ext : extensions_) delete ext;
}

}  // namespace citusx::citus
