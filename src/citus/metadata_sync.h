// Metadata syncing (§3.10, Citus MX): payload serialization helpers shared
// by the authority-side syncer (metadata_sync.cc) and the worker-side
// internal UDFs that apply a payload (udf.cc). The protocol itself is three
// round trips driven by CitusExtension::SyncMetadataToNode:
//
//   1. SELECT citus_internal_metadata_sync_begin('<version>')
//        marks the peer's copy unsynced, returns the version it last
//        applied (for incremental payloads)
//   2. SELECT citus_internal_metadata_apply('<json payload>')
//        replaces tables changed since that version, reconciles drops,
//        refreshes workers / procedures / shell registrations
//   3. SELECT citus_internal_metadata_sync_finish('<version>')
//        publishes the new version and re-marks the copy synced
//
// A failure at any point leaves the peer unsynced; it refuses MX routing
// (never answers from a half-applied copy) until the maintenance daemon or
// a manual citus_sync_metadata() completes a full round.
//
// Delta fast path (large clusters): when the authority knows a peer is
// synced at version F (and the peer has not restarted since), it ships one
// round trip instead of three:
//
//   SELECT citus_internal_metadata_apply_delta('<json delta>')
//
// The delta carries only what changed between F and the current version V:
// changed tables, dropped table names (from the authority's drop log),
// and the worker list / procedure map only if they changed. The receiver
// validates atomically that its copy is synced at exactly F before
// applying, and publishes V in the same step; any mismatch is a SQL error
// and the authority falls back to the full three-round-trip protocol in
// the same call. Sync cost per change is therefore proportional to the
// size of the change, not to the catalog or the cluster.
#ifndef CITUSX_CITUS_METADATA_SYNC_H_
#define CITUSX_CITUS_METADATA_SYNC_H_

#include <cstdint>
#include <string>

#include "citus/metadata.h"
#include "common/status.h"

namespace citusx::citus {

class CitusExtension;

/// Serialize `md` into the sync payload JSON. Only tables with
/// modified_version > peer_version are included in "tables"; "table_names"
/// always lists the full catalog so the receiver can reconcile drops.
std::string SerializeMetadataPayload(const CitusMetadata& md,
                                     uint64_t peer_version);

/// Apply a sync payload to `ext`'s local metadata copy (worker side).
/// Registers every listed table as a shell and drops local tables absent
/// from the payload's full name list. Does not publish a version — that is
/// sync_finish's job, after the apply succeeded.
Status ApplyMetadataPayload(CitusExtension* ext, const std::string& json);

/// Serialize the delta between `from_version` and md's current version:
/// changed tables, dropped names, and workers/procedures when touched
/// since. Caller must have verified DropLogCovers(from_version).
std::string SerializeMetadataDelta(const CitusMetadata& md,
                                   uint64_t from_version);

/// Apply a delta payload (worker side). Validates the local copy is synced
/// at exactly the delta's base version, applies the changes, and publishes
/// the delta's target version — all atomically (no yields). A base
/// mismatch returns InvalidArgument without touching the copy.
Status ApplyMetadataDelta(CitusExtension* ext, const std::string& json);

}  // namespace citusx::citus

#endif  // CITUSX_CITUS_METADATA_SYNC_H_
