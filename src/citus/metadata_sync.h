// Metadata syncing (§3.10, Citus MX): payload serialization helpers shared
// by the authority-side syncer (metadata_sync.cc) and the worker-side
// internal UDFs that apply a payload (udf.cc). The protocol itself is three
// round trips driven by CitusExtension::SyncMetadataToNode:
//
//   1. SELECT citus_internal_metadata_sync_begin('<version>')
//        marks the peer's copy unsynced, returns the version it last
//        applied (for incremental payloads)
//   2. SELECT citus_internal_metadata_apply('<json payload>')
//        replaces tables changed since that version, reconciles drops,
//        refreshes workers / procedures / shell registrations
//   3. SELECT citus_internal_metadata_sync_finish('<version>')
//        publishes the new version and re-marks the copy synced
//
// A failure at any point leaves the peer unsynced; it refuses MX routing
// (never answers from a half-applied copy) until the maintenance daemon or
// a manual citus_sync_metadata() completes a full round.
#ifndef CITUSX_CITUS_METADATA_SYNC_H_
#define CITUSX_CITUS_METADATA_SYNC_H_

#include <cstdint>
#include <string>

#include "citus/metadata.h"
#include "common/status.h"

namespace citusx::citus {

class CitusExtension;

/// Serialize `md` into the sync payload JSON. Only tables with
/// modified_version > peer_version are included in "tables"; "table_names"
/// always lists the full catalog so the receiver can reconcile drops.
std::string SerializeMetadataPayload(const CitusMetadata& md,
                                     uint64_t peer_version);

/// Apply a sync payload to `ext`'s local metadata copy (worker side).
/// Registers every listed table as a shell and drops local tables absent
/// from the payload's full name list. Does not publish a version — that is
/// sync_finish's job, after the apply succeeded.
Status ApplyMetadataPayload(CitusExtension* ext, const std::string& json);

}  // namespace citusx::citus

#endif  // CITUSX_CITUS_METADATA_SYNC_H_
