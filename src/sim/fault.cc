#include "sim/fault.h"

namespace citusx::sim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRestart:
      return "restart";
    case FaultKind::kConnectionDrop:
      return "connection_drop";
    case FaultKind::kDelaySpike:
      return "delay_spike";
    case FaultKind::kRefusal:
      return "refusal";
    case FaultKind::kKindCount:
      break;
  }
  return "unknown";
}

bool FaultInjector::Crash(const std::string& target) {
  auto it = targets_.find(target);
  if (it == targets_.end() || !it->second.crash) return false;
  Count(FaultKind::kCrash, target);
  it->second.crash();
  return true;
}

bool FaultInjector::Restart(const std::string& target) {
  auto it = targets_.find(target);
  if (it == targets_.end() || !it->second.restart) return false;
  Count(FaultKind::kRestart, target);
  it->second.restart();
  return true;
}

void FaultInjector::ScheduleCrash(Time at, const std::string& target,
                                  Time down_for) {
  sim_->Spawn(
      "fault:crash:" + target,
      [this, at, target, down_for] {
        if (!sim_->WaitUntil(at)) return;
        Crash(target);
        if (down_for < 0) return;
        if (!sim_->WaitFor(down_for)) return;
        Restart(target);
      },
      /*daemon=*/true);
}

void FaultInjector::SetConnectionDropProbability(const std::string& target,
                                                 double p) {
  net_[target].drop_probability = p;
  armed_ = true;
}

void FaultInjector::DropNextRoundTrips(const std::string& target, int n) {
  net_[target].drop_next = n;
  armed_ = true;
}

void FaultInjector::SetDelaySpike(const std::string& target, Time extra,
                                  Time until) {
  NetFaults& f = net_[target];
  f.delay_extra = extra;
  f.delay_until = until;
  armed_ = true;
}

void FaultInjector::SetRefuseConnections(const std::string& target,
                                         bool refuse) {
  net_[target].refuse = refuse;
  armed_ = true;
}

bool FaultInjector::ShouldDropRoundTrip(const std::string& target) {
  auto it = net_.find(target);
  if (it == net_.end()) return false;
  NetFaults& f = it->second;
  if (f.drop_next > 0) {
    f.drop_next--;
    Count(FaultKind::kConnectionDrop, target);
    return true;
  }
  if (f.drop_probability > 0 && rng_.Chance(f.drop_probability)) {
    Count(FaultKind::kConnectionDrop, target);
    return true;
  }
  return false;
}

Time FaultInjector::ExtraDelay(const std::string& target) {
  auto it = net_.find(target);
  if (it == net_.end()) return 0;
  NetFaults& f = it->second;
  if (f.delay_extra <= 0 || sim_->now() >= f.delay_until) return 0;
  Count(FaultKind::kDelaySpike, target);
  return f.delay_extra;
}

bool FaultInjector::IsRefusingConnections(const std::string& target) {
  auto it = net_.find(target);
  if (it == net_.end() || !it->second.refuse) return false;
  Count(FaultKind::kRefusal, target);
  return true;
}

int64_t FaultInjector::total_injected() const {
  int64_t total = 0;
  for (int64_t c : counts_) total += c;
  return total;
}

}  // namespace citusx::sim
