// The calibrated cost model: all virtual-time charges in the engine flow
// through these constants. Values are order-of-magnitude calibrated against
// PostgreSQL 13 on the paper's hardware (16 vcpu Azure VMs, network-attached
// disks with 7500 IOPS); ablation benches vary them.
#ifndef CITUSX_SIM_COST_MODEL_H_
#define CITUSX_SIM_COST_MODEL_H_

#include "sim/simulation.h"

namespace citusx::sim {

struct CostModel {
  // ---- per-node hardware (paper §4: 16 vcpus, 64 GB, 7500 IOPS) ----
  int cores_per_node = 16;
  int64_t disk_iops = 7500;
  int disk_queue_depth = 8;
  int64_t buffer_pool_bytes = 64LL << 20;  // scaled-down "RAM" per node
  int64_t page_bytes = 8192;

  // ---- network ----
  Time net_rtt = 500 * kMicrosecond;        // same-region VM round trip
  Time connect_cost = 5 * kMillisecond;     // process fork + auth + TLS
  int64_t net_bytes_per_second = 1LL << 30; // 1 GB/s NIC
  int max_connections = 300;                // per node

  // ---- CPU costs (single core) ----
  Time parse_per_char = 20;                 // 20ns/char lex+parse
  Time plan_local = 60 * kMicrosecond;      // local planner
  Time plan_fast_path = 20 * kMicrosecond;  // Citus fast-path planner (§3.5)
  Time plan_router = 60 * kMicrosecond;
  Time plan_pushdown = 200 * kMicrosecond;
  Time plan_join_order = 1 * kMillisecond;
  Time plan_cached_bind = 2 * kMicrosecond;  // re-bind params into a cached
                                             // (generic) plan: hashtable
                                             // lookup + shard re-pruning
  Time executor_startup = 20 * kMicrosecond;

  Time cpu_per_row_scan = 100;              // evaluate visibility + fetch
  Time cpu_per_expr_eval = 60;              // per WHERE/projection expr, per row
  Time cpu_per_row_sort = 250;
  Time cpu_per_row_hash = 150;              // group-by / hash-join probe
  Time cpu_per_row_insert = 800;            // heap insert incl. WAL record
  Time cpu_per_index_insert = 1200;         // per index entry
  Time cpu_per_index_lookup = 4 * kMicrosecond;
  Time cpu_per_row_copy_parse = 500;        // COPY framing per row
  // COPY field parsing is charged per byte (parse_per_char) as well; JSON
  // documents make rows hundreds of bytes wide.
  Time cpu_per_gin_recheck = 25 * kMicrosecond;  // JSONB re-evaluation per
                                                 // index candidate
  Time cpu_per_trgm_insert = 300;           // per trigram posting update
  Time cpu_per_row_net = 200;               // serialize/deserialize tuple

  // ---- transactions ----
  Time wal_flush = 400 * kMicrosecond;      // commit record fsync (group-commit
                                            // amortized on network disk)
  Time cpu_commit = 30 * kMicrosecond;
  Time cpu_commit_readonly = 3 * kMicrosecond;  // no commit record: ProcArray
                                                // exit + resource cleanup only

  // ---- vectorized executor (src/exec) ----
  // Per-row rates for batch-at-a-time operators. Vectorization amortizes
  // the interpreter dispatch that dominates the volcano per-row constants
  // above (Neumann-style compilation gets further, but an order of
  // magnitude is the well-published batch-executor win on scan/agg shapes).
  Time vec_per_row_scan = 8;        // columnar batch read, per row
  Time vec_per_expr_eval = 6;       // per expression per row, batch-evaluated
  Time vec_per_row_hash = 25;       // batched hash build/probe/group
  Time vec_per_row_sort = 120;      // sorts vectorize worst (random access)
  Time vec_pipeline_startup = 5 * kMicrosecond;  // per pipeline
  Time vec_morsel_overhead = 2 * kMicrosecond;   // scheduling per morsel
  /// Rows per morsel (heap/temp sources; columnar uses stripe granularity).
  int64_t vec_morsel_rows = 16384;

  // ---- maintenance ----
  Time deadlock_poll_interval = 2 * kSecond;      // paper §3.7.3
  Time recovery_poll_interval = 30 * kSecond;     // 2PC recovery daemon
  Time executor_slow_start_interval = 10 * kMillisecond;  // paper §3.6.1

  /// Rows are charged in batches to bound event count.
  int64_t cpu_charge_batch_rows = 4096;
};

/// The default calibration used by benches unless overridden.
inline const CostModel& DefaultCostModel() {
  static const CostModel kModel;
  return kModel;
}

}  // namespace citusx::sim

#endif  // CITUSX_SIM_COST_MODEL_H_
