// Discrete-event simulation kernel.
//
// citusx executes real database logic (real parsing, planning, locking, 2PC,
// real rows) but accounts *time* virtually, so a 9-node cluster with 16-core
// nodes and IOPS-limited disks can be modelled faithfully on a 1-core host and
// benchmarks are deterministic.
//
// Model: simulated processes are OS threads, but exactly one runs at a time;
// control is handed directly from the yielding process to the next scheduled
// one ("pass the baton"). Processes block either by scheduling a timer event
// for themselves (WaitFor / WaitUntil) or by parking until another process
// wakes them (Wake). All ordering ties are broken by a monotonically
// increasing sequence number, so runs are fully deterministic.
#ifndef CITUSX_SIM_SIMULATION_H_
#define CITUSX_SIM_SIMULATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/ordered_mutex.h"

namespace citusx::sim {

/// Simulated time in nanoseconds since simulation start.
using Time = int64_t;

constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

class Simulation;
class FaultInjector;

/// One simulated thread of control. Created via Simulation::Spawn; the body
/// runs on a dedicated OS thread but only while it holds the baton.
class Process {
 public:
  enum class State { kReady, kRunning, kBlocked, kDone };

  const std::string& name() const { return name_; }
  uint64_t id() const { return id_; }
  bool cancelled() const { return cancelled_; }
  bool daemon() const { return daemon_; }

 private:
  friend class Simulation;

  Process(Simulation* sim, uint64_t id, std::string name, bool daemon)
      : sim_(sim), id_(id), name_(std::move(name)), daemon_(daemon) {}

  Simulation* sim_;
  uint64_t id_;
  std::string name_;
  bool daemon_;
  State state_ = State::kReady;
  bool cancelled_ = false;
  std::condition_variable_any cv_;
  std::thread thread_;
};

/// The simulation: virtual clock, event queue, process registry.
///
/// Typical use:
///   Simulation sim;
///   sim.Spawn("client", [&] { ... sim.WaitFor(10 * kMillisecond); ... });
///   sim.Run();        // returns when all non-daemon processes finish
///   sim.Shutdown();   // cancels daemons and joins all threads
class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time. Callable from anywhere.
  Time now() const;

  /// Create a process scheduled to start at the current virtual time.
  /// Daemon processes do not keep Run() alive.
  Process* Spawn(std::string name, std::function<void()> fn,
                 bool daemon = false);

  /// Drive the simulation until every non-daemon process has finished (or
  /// nothing is runnable). Must be called from the driving (non-sim) thread.
  void Run();

  /// Cancel all live processes, drain them, and join their threads.
  /// After Shutdown the simulation can no longer spawn processes.
  void Shutdown();

  /// True once Shutdown has begun; long-running loops should exit.
  bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }

  // ---- Calls below are only valid from within a simulated process. ----

  /// Sleep until virtual time `t`. Returns false if cancelled.
  bool WaitUntil(Time t);

  /// Sleep for `d` virtual nanoseconds. Returns false if cancelled.
  bool WaitFor(Time d);

  /// Park the calling process until another process calls Wake on it.
  /// Returns false if cancelled instead of woken.
  bool Block();

  /// Make a parked process runnable at the current virtual time.
  /// May be called from a running process or (between Run calls) externally.
  void Wake(Process* p);

  /// The process currently holding the baton on this thread (null on the
  /// driving thread).
  static Process* Current();

  /// Number of events processed so far (for tests/diagnostics).
  uint64_t events_processed() const { return events_processed_; }

  /// The simulation's fault injector (chaos testing), created lazily on
  /// first access. Callable from anywhere in the simulation domain.
  FaultInjector& faults();

  /// True once faults() has been called (lets hot paths skip the lookup).
  bool has_fault_injector() const { return faults_ != nullptr; }

 private:
  struct Event {
    Time time;
    uint64_t seq;
    Process* process;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Pre: lock held, caller is the running process and has either enqueued
  // itself or set its state to kBlocked. Hands the baton to the next event's
  // process (or the driving thread) and waits until this process runs again.
  // Returns false if the process was cancelled.
  bool YieldLocked(std::unique_lock<OrderedMutex>& lock, Process* self);

  // Pre: lock held, running_ == nullptr. Pops the next event and hands the
  // baton to its process. Returns false if the queue is empty.
  bool DispatchNextLocked();

  void EnqueueLocked(Process* p, Time t);
  bool AllWorkersDoneLocked() const;

  void ProcessMain(Process* p, std::function<void()> fn);

  // The baton-handoff lock: innermost rank — Wake() is called while the
  // lock manager or a channel holds its own lock.
  mutable OrderedMutex sched_mu_{LockRank::kSimScheduler};
  std::condition_variable_any driver_cv_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::vector<std::unique_ptr<Process>> processes_;
  Process* running_ = nullptr;
  std::atomic<bool> stopping_{false};
  bool shutdown_done_ = false;
  std::unique_ptr<FaultInjector> faults_;
};

}  // namespace citusx::sim

#endif  // CITUSX_SIM_SIMULATION_H_
