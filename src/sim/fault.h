// Fault injection for the simulation (chaos testing, paper §3.2): node
// crash/restart, connection drops, network delay spikes, and
// refuse-new-connections faults, all driven by a seeded RNG so every chaos
// run replays deterministically.
//
// The injector lives in the sim layer and knows nothing about database
// nodes: crash/restart are delivered through handlers registered per target
// name (the net layer registers each engine node), while the network-fault
// state (drop probability, delay spike, refusal) is polled by the connection
// layer on every open / round trip.
#ifndef CITUSX_SIM_FAULT_H_
#define CITUSX_SIM_FAULT_H_

#include <array>
#include <functional>
#include <map>
#include <string>

#include "common/rng.h"
#include "sim/simulation.h"

namespace citusx::sim {

enum class FaultKind {
  kCrash = 0,
  kRestart,
  kConnectionDrop,
  kDelaySpike,
  kRefusal,
  kKindCount,  // sentinel
};

const char* FaultKindName(FaultKind kind);

class FaultInjector {
 public:
  explicit FaultInjector(Simulation* sim, uint64_t seed = 42)
      : sim_(sim), rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Reset the RNG (chaos benches pass --seed= through here).
  void Reseed(uint64_t seed) { rng_ = Rng(seed); }
  Rng& rng() { return rng_; }

  // ---- crash/restart targets ----

  struct Target {
    std::function<void()> crash;
    std::function<void()> restart;
  };

  /// Register a crashable target (the net layer registers every node).
  void RegisterTarget(const std::string& name, Target target) {
    targets_[name] = std::move(target);
  }

  /// Crash/restart a target now. Returns false for unknown targets.
  bool Crash(const std::string& target);
  bool Restart(const std::string& target);

  /// Schedule a crash at virtual time `at`; the target restarts `down_for`
  /// later (down_for < 0: stays down until Restart is called explicitly).
  /// Runs as a daemon process, so schedules never keep Run() alive.
  void ScheduleCrash(Time at, const std::string& target, Time down_for);

  // ---- network faults (polled by net::Connection) ----

  /// Each round trip to `target` is dropped with probability `p`
  /// (connection-reset semantics: the connection becomes unusable).
  void SetConnectionDropProbability(const std::string& target, double p);

  /// Deterministically drop the next `n` round trips to `target`.
  void DropNextRoundTrips(const std::string& target, int n);

  /// Add `extra` latency to every round trip to `target` until time `until`.
  void SetDelaySpike(const std::string& target, Time extra, Time until);

  /// Refuse new connections to `target` (accept queue full / pg_hba reject).
  void SetRefuseConnections(const std::string& target, bool refuse);

  /// Polled per round trip; rolls the RNG and counts an injected fault when
  /// it fires.
  bool ShouldDropRoundTrip(const std::string& target);

  /// Extra latency to charge on a round trip to `target` right now.
  Time ExtraDelay(const std::string& target);

  /// Polled on connection establishment.
  bool IsRefusingConnections(const std::string& target);

  /// True once any network fault has been configured; lets the connection
  /// hot path skip per-request map lookups in fault-free runs.
  bool armed() const { return armed_; }

  // ---- accounting ----

  int64_t injected(FaultKind kind) const {
    return counts_[static_cast<size_t>(kind)];
  }
  int64_t injected_on(const std::string& target) const {
    auto it = per_target_.find(target);
    return it == per_target_.end() ? 0 : it->second;
  }
  int64_t total_injected() const;

 private:
  struct NetFaults {
    double drop_probability = 0;
    int drop_next = 0;
    Time delay_extra = 0;
    Time delay_until = 0;
    bool refuse = false;
  };

  void Count(FaultKind kind, const std::string& target) {
    counts_[static_cast<size_t>(kind)]++;
    per_target_[target]++;
  }

  Simulation* sim_;
  Rng rng_;
  bool armed_ = false;
  std::map<std::string, Target> targets_;
  std::map<std::string, NetFaults> net_;
  std::array<int64_t, static_cast<size_t>(FaultKind::kKindCount)> counts_ = {};
  std::map<std::string, int64_t> per_target_;
};

}  // namespace citusx::sim

#endif  // CITUSX_SIM_FAULT_H_
