#include "sim/simulation.h"

#include <cassert>
#include <cstdio>

#include "sim/fault.h"

namespace citusx::sim {

namespace {
thread_local Process* g_current_process = nullptr;
}  // namespace

Process* Simulation::Current() { return g_current_process; }

Simulation::Simulation() = default;

Simulation::~Simulation() { Shutdown(); }

FaultInjector& Simulation::faults() {
  if (faults_ == nullptr) faults_ = std::make_unique<FaultInjector>(this);
  return *faults_;
}

Time Simulation::now() const {
  std::lock_guard<OrderedMutex> lock(sched_mu_);
  return now_;
}

Process* Simulation::Spawn(std::string name, std::function<void()> fn,
                           bool daemon) {
  std::lock_guard<OrderedMutex> lock(sched_mu_);
  assert(!shutdown_done_ && "Spawn after Shutdown");
  // Reap finished processes: their threads have exited (or are about to);
  // joining here bounds thread and memory usage for workloads that spawn a
  // process per operation (parallel 2PC phases, executor runners).
  for (auto it = processes_.begin(); it != processes_.end();) {
    Process* p = it->get();
    if (p->state_ == Process::State::kDone && p->thread_.joinable()) {
      p->thread_.join();
      it = processes_.erase(it);
    } else {
      ++it;
    }
  }
  auto owned = std::unique_ptr<Process>(
      new Process(this, next_id_++, std::move(name), daemon));
  Process* p = owned.get();
  processes_.push_back(std::move(owned));
  EnqueueLocked(p, now_);
  p->thread_ = std::thread([this, p, fn = std::move(fn)]() mutable {
    ProcessMain(p, std::move(fn));
  });
  return p;
}

void Simulation::ProcessMain(Process* p, std::function<void()> fn) {
  g_current_process = p;
  {
    std::unique_lock<OrderedMutex> lock(sched_mu_);
    while (running_ != p) p->cv_.wait(lock);
  }
  if (!p->cancelled_) fn();
  // Process exit: hand the baton onward.
  std::unique_lock<OrderedMutex> lock(sched_mu_);
  p->state_ = Process::State::kDone;
  running_ = nullptr;
  bool stop_dispatch = !stopping_ && AllWorkersDoneLocked();
  if (stop_dispatch || !DispatchNextLocked()) driver_cv_.notify_all();
}

void Simulation::EnqueueLocked(Process* p, Time t) {
  assert(t >= now_);
  events_.push(Event{t, next_seq_++, p});
}

bool Simulation::AllWorkersDoneLocked() const {
  for (const auto& p : processes_) {
    if (!p->daemon_ && p->state_ != Process::State::kDone) return false;
  }
  return true;
}

bool Simulation::DispatchNextLocked() {
  if (events_.empty()) return false;
  Event e = events_.top();
  events_.pop();
  events_processed_++;
  if (e.time > now_) now_ = e.time;
  running_ = e.process;
  e.process->state_ = Process::State::kRunning;
  e.process->cv_.notify_one();
  return true;
}

bool Simulation::YieldLocked(std::unique_lock<OrderedMutex>& lock,
                             Process* self) {
  running_ = nullptr;
  bool stop_dispatch = !stopping_ && AllWorkersDoneLocked();
  if (stop_dispatch || !DispatchNextLocked()) driver_cv_.notify_all();
  while (running_ != self) self->cv_.wait(lock);
  self->state_ = Process::State::kRunning;
  return !self->cancelled_;
}

bool Simulation::WaitUntil(Time t) {
  Process* self = Current();
  assert(self != nullptr && "WaitUntil outside a simulated process");
  std::unique_lock<OrderedMutex> lock(sched_mu_);
  if (self->cancelled_) return false;
  self->state_ = Process::State::kReady;
  EnqueueLocked(self, t < now_ ? now_ : t);
  return YieldLocked(lock, self);
}

bool Simulation::WaitFor(Time d) {
  std::unique_lock<OrderedMutex> lock(sched_mu_);
  Process* self = Current();
  assert(self != nullptr && "WaitFor outside a simulated process");
  if (self->cancelled_) return false;
  self->state_ = Process::State::kReady;
  EnqueueLocked(self, now_ + (d < 0 ? 0 : d));
  return YieldLocked(lock, self);
}

bool Simulation::Block() {
  Process* self = Current();
  assert(self != nullptr && "Block outside a simulated process");
  std::unique_lock<OrderedMutex> lock(sched_mu_);
  if (self->cancelled_) return false;
  self->state_ = Process::State::kBlocked;
  return YieldLocked(lock, self);
}

void Simulation::Wake(Process* p) {
  std::lock_guard<OrderedMutex> lock(sched_mu_);
  if (p->state_ != Process::State::kBlocked) return;
  p->state_ = Process::State::kReady;
  EnqueueLocked(p, now_);
}

void Simulation::Run() {
  std::unique_lock<OrderedMutex> lock(sched_mu_);
  for (;;) {
    if (running_ == nullptr) {
      if (AllWorkersDoneLocked()) return;
      if (!DispatchNextLocked()) {
        // Nothing runnable but workers not done: simulated deadlock.
        int blocked = 0;
        for (const auto& p : processes_) {
          if (!p->daemon_ && p->state_ == Process::State::kBlocked) blocked++;
        }
        if (blocked > 0) {
          std::fprintf(stderr,
                       "[sim] Run() returning with %d blocked worker(s) -- "
                       "simulated deadlock\n",
                       blocked);
        }
        return;
      }
    }
    driver_cv_.wait(lock);
  }
}

void Simulation::Shutdown() {
  std::unique_lock<OrderedMutex> lock(sched_mu_);
  if (shutdown_done_) return;
  stopping_.store(true, std::memory_order_release);
  for (const auto& p : processes_) {
    if (p->state_ == Process::State::kDone) continue;
    p->cancelled_ = true;
    if (p->state_ == Process::State::kBlocked) {
      p->state_ = Process::State::kReady;
      EnqueueLocked(p.get(), now_);
    }
  }
  for (;;) {
    bool all_done = true;
    for (const auto& p : processes_) {
      if (p->state_ != Process::State::kDone) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    if (running_ == nullptr && !DispatchNextLocked()) break;
    driver_cv_.wait(lock);
  }
  lock.unlock();
  for (const auto& p : processes_) {
    if (p->thread_.joinable()) p->thread_.join();
  }
  shutdown_done_ = true;
}

}  // namespace citusx::sim
