// Resource models charged in virtual time: multi-core CPUs, IOPS-capped
// disks, and counting semaphores (connection slots).
//
// All state here is simulation-domain: only one simulated process runs at a
// time, so no locking is needed.
#ifndef CITUSX_SIM_RESOURCES_H_
#define CITUSX_SIM_RESOURCES_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace citusx::sim {

/// An n-core CPU. Consume(cost) occupies the earliest-free core for `cost`
/// virtual nanoseconds (FCFS by call order), modelling one single-threaded
/// backend process doing `cost` worth of work.
class CpuResource {
 public:
  CpuResource(Simulation* sim, int cores)
      : sim_(sim), core_busy_until_(static_cast<size_t>(cores), 0) {}

  /// Blocks (in virtual time) until the work completes. Returns false if the
  /// process was cancelled while waiting.
  bool Consume(Time cost) {
    if (cost <= 0) return true;
    auto it =
        std::min_element(core_busy_until_.begin(), core_busy_until_.end());
    Time start = std::max(sim_->now(), *it);
    Time end = start + cost;
    *it = end;
    busy_total_ += cost;
    return sim_->WaitUntil(end);
  }

  int cores() const { return static_cast<int>(core_busy_until_.size()); }

  /// Total CPU-nanoseconds consumed (for utilization reporting).
  Time busy_total() const { return busy_total_; }

 private:
  Simulation* sim_;
  std::vector<Time> core_busy_until_;
  Time busy_total_ = 0;
};

/// A disk with an IOPS cap and a fixed queue depth. Each I/O operation has
/// service time queue_depth/iops on one of queue_depth service channels, so
/// aggregate throughput is capped at `iops` and the unloaded latency matches
/// a network-attached disk (~1ms at depth 8 / 7500 IOPS).
class DiskResource {
 public:
  DiskResource(Simulation* sim, int64_t iops, int queue_depth = 8)
      : sim_(sim),
        service_time_(queue_depth * kSecond / std::max<int64_t>(iops, 1)),
        chan_busy_until_(static_cast<size_t>(queue_depth), 0) {}

  /// Perform `ops` I/O operations back-to-back on one channel.
  bool Io(int64_t ops) {
    if (ops <= 0) return true;
    auto it =
        std::min_element(chan_busy_until_.begin(), chan_busy_until_.end());
    Time start = std::max(sim_->now(), *it);
    Time end = start + ops * service_time_;
    *it = end;
    ops_total_ += ops;
    return sim_->WaitUntil(end);
  }

  int64_t ops_total() const { return ops_total_; }
  Time service_time() const { return service_time_; }

 private:
  Simulation* sim_;
  Time service_time_;
  std::vector<Time> chan_busy_until_;
  int64_t ops_total_ = 0;
};

/// FIFO counting semaphore; used for connection slots and worker pools.
class Semaphore {
 public:
  Semaphore(Simulation* sim, int64_t capacity)
      : sim_(sim), available_(capacity), capacity_(capacity) {}

  /// Acquire one unit, waiting FIFO. Returns false if cancelled.
  bool Acquire() {
    Process* self = Simulation::Current();
    if (available_ > 0 && waiters_.empty()) {
      available_--;
      return true;
    }
    waiters_.push_back(self);
    for (;;) {
      if (!sim_->Block()) {
        // Cancelled: remove self from the queue if still present.
        for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
          if (*it == self) {
            waiters_.erase(it);
            break;
          }
        }
        return false;
      }
      if (!waiters_.empty() && waiters_.front() == self && available_ > 0) {
        waiters_.pop_front();
        available_--;
        return true;
      }
    }
  }

  /// Try to acquire without waiting.
  bool TryAcquire() {
    if (available_ > 0 && waiters_.empty()) {
      available_--;
      return true;
    }
    return false;
  }

  void Release() {
    available_++;
    if (!waiters_.empty()) sim_->Wake(waiters_.front());
  }

  int64_t available() const { return available_; }
  int64_t capacity() const { return capacity_; }
  int64_t waiting() const { return static_cast<int64_t>(waiters_.size()); }

 private:
  Simulation* sim_;
  int64_t available_;
  int64_t capacity_;
  std::deque<Process*> waiters_;
};

}  // namespace citusx::sim

#endif  // CITUSX_SIM_RESOURCES_H_
