// An unbounded message queue between simulated processes; the building block
// for the simulated network and for request/response handoff.
#ifndef CITUSX_SIM_CHANNEL_H_
#define CITUSX_SIM_CHANNEL_H_

#include <deque>
#include <optional>
#include <utility>

#include "sim/simulation.h"

namespace citusx::sim {

/// FIFO channel. Send never blocks; Receive blocks until a message arrives
/// or the channel is closed. Simulation-domain: no locking required.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulation* sim) : sim_(sim) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void Send(T value) {
    queue_.push_back(std::move(value));
    if (!waiters_.empty()) sim_->Wake(waiters_.front());
  }

  /// Returns nullopt when the channel is closed and drained, or when the
  /// receiving process is cancelled.
  std::optional<T> Receive() {
    Process* self = Simulation::Current();
    for (;;) {
      if (!queue_.empty() && (waiters_.empty() || waiters_.front() == self)) {
        if (!waiters_.empty()) waiters_.pop_front();
        T v = std::move(queue_.front());
        queue_.pop_front();
        return v;
      }
      if (closed_) {
        RemoveWaiter(self);
        return std::nullopt;
      }
      if (!IsWaiting(self)) waiters_.push_back(self);
      if (!sim_->Block()) {
        RemoveWaiter(self);
        return std::nullopt;
      }
    }
  }

  /// Non-blocking receive.
  std::optional<T> TryReceive() {
    if (queue_.empty() || !waiters_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  /// Close the channel and wake all waiters; pending messages can still be
  /// received.
  void Close() {
    closed_ = true;
    for (Process* w : waiters_) sim_->Wake(w);
  }

  bool closed() const { return closed_; }
  size_t size() const { return queue_.size(); }

 private:
  bool IsWaiting(Process* p) const {
    for (Process* w : waiters_) {
      if (w == p) return true;
    }
    return false;
  }
  void RemoveWaiter(Process* p) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == p) {
        waiters_.erase(it);
        return;
      }
    }
  }

  Simulation* sim_;
  std::deque<T> queue_;
  std::deque<Process*> waiters_;
  bool closed_ = false;
};

}  // namespace citusx::sim

#endif  // CITUSX_SIM_CHANNEL_H_
