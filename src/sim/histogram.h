// Log-bucketed latency histogram for benchmark reporting.
#ifndef CITUSX_SIM_HISTOGRAM_H_
#define CITUSX_SIM_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <cmath>

namespace citusx::sim {

/// Records int64 values (typically nanoseconds) into logarithmic buckets:
/// 64 powers of two, 16 linear sub-buckets each. Percentile error < ~6%.
class Histogram {
 public:
  static constexpr int kSubBuckets = 16;
  static constexpr int kBuckets = 64 * kSubBuckets;

  void Record(int64_t value) {
    if (value < 0) value = 0;
    count_++;
    sum_ += value;
    max_ = std::max(max_, value);
    min_ = count_ == 1 ? value : std::min(min_, value);
    buckets_[BucketFor(value)]++;
  }

  void Merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    if (other.count_ > 0) {
      min_ = count_ == other.count_ ? other.min_ : std::min(min_, other.min_);
    }
    for (int i = 0; i < kBuckets; i++) buckets_[i] += other.buckets_[i];
  }

  void Reset() { *this = Histogram(); }

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t max() const { return max_; }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }

  /// Value at percentile p in [0, 100]. Returns the bucket upper bound.
  int64_t Percentile(double p) const {
    if (count_ == 0) return 0;
    int64_t target = static_cast<int64_t>(
        std::ceil(static_cast<double>(count_) * p / 100.0));
    if (target < 1) target = 1;
    int64_t seen = 0;
    for (int i = 0; i < kBuckets; i++) {
      seen += buckets_[i];
      if (seen >= target) return BucketUpperBound(i);
    }
    return max_;
  }

 private:
  static int BucketFor(int64_t v) {
    if (v < kSubBuckets) return static_cast<int>(v);
    int msb = 63 - __builtin_clzll(static_cast<uint64_t>(v));
    int shift = msb - 4;  // log2(kSubBuckets)
    int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
    int idx = (msb - 3) * kSubBuckets + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static int64_t BucketUpperBound(int i) {
    if (i < kSubBuckets) return i;
    int group = i / kSubBuckets + 3;
    int sub = i % kSubBuckets;
    int shift = group - 4;
    return ((int64_t{16} + sub + 1) << shift) - 1;
  }

  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
  int64_t min_ = 0;
  std::array<int64_t, kBuckets> buckets_{};
};

}  // namespace citusx::sim

#endif  // CITUSX_SIM_HISTOGRAM_H_
