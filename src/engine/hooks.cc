#include "engine/hooks.h"

#include "engine/planner.h"

namespace citusx::engine {

Result<QueryResult> RunLocalSelect(
    Session& session, const sql::SelectStmt& stmt,
    const std::vector<sql::Datum>& params,
    const std::map<std::string, const TempRelation*>* temp_relations) {
  PlannerInput input;
  input.catalog = &session.node()->catalog();
  input.temp_relations = temp_relations;
  input.params = &params;
  ExecContext ctx = session.MakeExecContext(&params);
  return ExecuteSelect(stmt, input, ctx);
}

}  // namespace citusx::engine
