#include "engine/node.h"

#include "engine/session.h"

namespace citusx::engine {

Node::Node(sim::Simulation* sim, std::string name, const sim::CostModel& cost)
    : sim_(sim),
      name_(std::move(name)),
      cost_(cost),
      cpu_(sim, cost.cores_per_node),
      disk_(sim, cost.disk_iops, cost.disk_queue_depth),
      pool_(sim, &disk_, cost.buffer_pool_bytes, cost.page_bytes),
      catalog_(&pool_),
      locks_(sim) {
  pool_.BindMetrics(&metrics_);
  locks_.BindMetrics(&metrics_);
  txns_.BindMetrics(&metrics_);
}

Node::~Node() = default;

std::unique_ptr<Session> Node::OpenSession() {
  return std::make_unique<Session>(this);
}

void Node::StartBackgroundWorkers() {
  if (workers_started_) return;
  workers_started_ = true;
  // Autovacuum: reclaim dead MVCC versions when they accumulate.
  sim_->Spawn(
      name_ + ":autovacuum",
      [this] {
        while (sim_->WaitFor(5 * sim::kSecond)) {
          if (down_) continue;
          for (TableInfo* table : catalog_.AllTables()) {
            if (table->heap == nullptr) continue;
            if (table->heap->dead_versions() < 1000) continue;
            TxnId oldest = txns_.OldestActive();
            int64_t reclaimed = table->heap->Vacuum(oldest, txns_);
            vacuum_runs++;
            // Vacuum cost: scan + write back, charged as CPU + I/O.
            if (!cpu_.Consume(reclaimed * 500)) return;
            if (!disk_.Io(reclaimed / 64 + 1)) return;
          }
        }
      },
      /*daemon=*/true);
  // Local deadlock detector (PostgreSQL has one built in; 1s timeout).
  sim_->Spawn(
      name_ + ":deadlock_check",
      [this] {
        while (sim_->WaitFor(sim::kSecond)) {
          if (down_) continue;
          auto edges = locks_.WaitEdges();
          if (edges.empty()) continue;
          // Find a cycle with DFS over local transactions.
          std::map<TxnId, std::vector<TxnId>> graph;
          for (const auto& e : edges) graph[e.waiter].push_back(e.holder);
          std::map<TxnId, int> color;  // 0 new, 1 visiting, 2 done
          std::vector<TxnId> stack;
          TxnId victim = 0;
          std::function<bool(TxnId)> dfs = [&](TxnId t) -> bool {
            color[t] = 1;
            stack.push_back(t);
            for (TxnId next : graph[t]) {
              if (color[next] == 1) {
                // Cycle: pick the youngest (largest id) member as victim.
                bool in_cycle = false;
                for (TxnId s : stack) {
                  if (s == next) in_cycle = true;
                  if (in_cycle && s > victim) victim = s;
                }
                if (next > victim) victim = next;
                return true;
              }
              if (color[next] == 0 && dfs(next)) return true;
            }
            stack.pop_back();
            color[t] = 2;
            return false;
          };
          for (const auto& [t, succ] : graph) {
            if (color[t] == 0 && dfs(t)) break;
          }
          if (victim != 0) locks_.CancelWaiter(victim);
        }
      },
      /*daemon=*/true);
  for (const auto& [worker_name, fn] : hooks_.background_workers) {
    sim_->Spawn(
        name_ + ":" + worker_name, [this, fn] { fn(*this); },
        /*daemon=*/true);
  }
}

void Node::RegisterTxn(TxnId local, const std::string& dist_id) {
  dist_id_of_txn_[local] = dist_id;
}

void Node::UnregisterTxn(TxnId local) { dist_id_of_txn_.erase(local); }

const std::string& Node::DistIdOf(TxnId local) const {
  static const std::string kEmpty;
  auto it = dist_id_of_txn_.find(local);
  return it == dist_id_of_txn_.end() ? kEmpty : it->second;
}

std::vector<DistributedWaitEdge> Node::DistributedWaitEdges() {
  std::vector<DistributedWaitEdge> out;
  for (const auto& e : locks_.WaitEdges()) {
    DistributedWaitEdge de;
    de.waiter_local = e.waiter;
    de.holder_local = e.holder;
    de.waiter_dist_id = DistIdOf(e.waiter);
    de.holder_dist_id = DistIdOf(e.holder);
    out.push_back(std::move(de));
  }
  return out;
}

bool Node::CancelDistributedTxn(const std::string& dist_id) {
  for (const auto& [local, dist] : dist_id_of_txn_) {
    if (dist == dist_id) {
      if (locks_.CancelWaiter(local)) return true;
    }
  }
  return false;
}

void Node::Crash() {
  down_ = true;
  restart_epoch_++;
  // Non-prepared in-progress transactions abort and lose their locks;
  // prepared transactions keep theirs across the restart (PostgreSQL
  // persists them in the WAL).
  for (TxnId xid : txns_.CrashRecovery()) {
    locks_.ReleaseAll(xid);
    UnregisterTxn(xid);
  }
  // Buffer cache is lost (cold restart). Columnar objects matter too:
  // before the vectorized-executor work made columnar shards a hot path,
  // only heap pages were forgotten here, so post-crash columnar scans were
  // charged as if the cache were still warm.
  for (TableInfo* t : catalog_.AllTables()) {
    if (t->heap != nullptr) pool_.Forget(t->heap->object_id());
    if (t->columnar != nullptr) pool_.Forget(t->columnar->object_id());
  }
}

void Node::Restart() {
  down_ = false;
  if (hooks_.on_restart) hooks_.on_restart(*this);
}

bool Node::WalFlush() {
  constexpr int kGroupCommitBatch = 4;
  wal_flushes++;
  if (!sim_->WaitFor(cost_.wal_flush)) return false;
  if (wal_flushes % kGroupCommitBatch == 0) {
    if (!disk_.Io(1)) return false;
  }
  return true;
}

}  // namespace citusx::engine
