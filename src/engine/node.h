// A database node ("a PostgreSQL server"): catalog, storage, transactions,
// locks, simulated hardware, extension hooks, and background workers.
#ifndef CITUSX_ENGINE_NODE_H_
#define CITUSX_ENGINE_NODE_H_

#include <map>
#include <memory>
#include <string>

#include "engine/catalog.h"
#include "engine/hooks.h"
#include "engine/locks.h"
#include "engine/txn.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/resources.h"

namespace citusx::engine {

/// A wait edge annotated with distributed transaction ids, as reported to
/// the distributed deadlock detector (paper §3.7.3).
struct DistributedWaitEdge {
  std::string waiter_dist_id;  // empty if purely local
  std::string holder_dist_id;
  TxnId waiter_local;
  TxnId holder_local;
};

class Session;

class Node {
 public:
  Node(sim::Simulation* sim, std::string name, const sim::CostModel& cost);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  sim::Simulation* sim() { return sim_; }
  const sim::CostModel& cost() const { return cost_; }

  sim::CpuResource& cpu() { return cpu_; }
  sim::DiskResource& disk() { return disk_; }
  storage::BufferPool& buffer_pool() { return pool_; }
  Catalog& catalog() { return catalog_; }
  TxnManager& txns() { return txns_; }
  LockManager& locks() { return locks_; }
  ExtensionHooks& hooks() { return hooks_; }
  obs::Metrics& metrics() { return metrics_; }

  /// Trace collector shared across the cluster (set by net::Cluster);
  /// nullptr when the node runs standalone — tracing is then disabled.
  obs::TraceCollector* tracer() { return tracer_; }
  void set_tracer(obs::TraceCollector* tracer) { tracer_ = tracer; }

  /// Batch (vectorized) plan executor consulted by ExecuteSelect; empty =
  /// volcano only. Installed by the extension layer (src/exec via the Citus
  /// extension) or directly by tests.
  const BatchExecutor& batch_executor() const { return batch_executor_; }
  void set_batch_executor(BatchExecutor exec) {
    batch_executor_ = std::move(exec);
  }

  /// Open a local session (the net layer opens one per connection).
  std::unique_ptr<Session> OpenSession();

  /// Stored procedures (registered by workloads; CALL statements).
  void RegisterProcedure(const std::string& name, Procedure proc) {
    procedures_[name] = std::move(proc);
  }
  const Procedure* FindProcedure(const std::string& name) const {
    auto it = procedures_.find(name);
    return it == procedures_.end() ? nullptr : &it->second;
  }

  /// Start autovacuum and any extension background workers (daemons).
  void StartBackgroundWorkers();

  // ---- backend registry (deadlock detection & cancellation) ----

  /// Associate a running local transaction with an (optional) distributed
  /// transaction id. Called by sessions.
  void RegisterTxn(TxnId local, const std::string& dist_id);
  void UnregisterTxn(TxnId local);

  /// The local lock wait graph with distributed ids attached.
  std::vector<DistributedWaitEdge> DistributedWaitEdges();

  /// Cancel the local transaction belonging to a distributed transaction if
  /// it waits on a lock. Returns true if something was cancelled.
  bool CancelDistributedTxn(const std::string& dist_id);

  const std::string& DistIdOf(TxnId local) const;

  /// Snapshot of (local txn, distributed id) registrations — the backing
  /// data of the citus_stat_activity monitoring view.
  std::map<TxnId, std::string> RegisteredTxns() const {
    return dist_id_of_txn_;
  }

  // ---- failure simulation ----

  bool is_down() const { return down_; }
  /// Crash: abort in-progress transactions (prepared ones survive), drop the
  /// buffer cache, mark the node down.
  void Crash();
  /// Bring the node back (recovery of prepared transactions already done by
  /// the transaction manager's durable state).
  void Restart();
  /// Incremented on every crash. Connections snapshot it at establishment:
  /// a mismatch later means the backend process died with the crash, so the
  /// client handle is broken even after the node restarts.
  uint64_t restart_epoch() const { return restart_epoch_; }

  /// WAL flush with group commit: waits the flush latency, and every
  /// `kGroupCommitBatch`-th flush pays one disk I/O (concurrent commits on a
  /// node share a flush). Returns false on cancellation.
  bool WalFlush();

  // ---- stats ----
  int64_t statements_executed = 0;
  int64_t vacuum_runs = 0;
  int64_t wal_flushes = 0;

 private:
  sim::Simulation* sim_;
  std::string name_;
  sim::CostModel cost_;
  obs::Metrics metrics_;
  obs::TraceCollector* tracer_ = nullptr;
  sim::CpuResource cpu_;
  sim::DiskResource disk_;
  storage::BufferPool pool_;
  Catalog catalog_;
  TxnManager txns_;
  LockManager locks_;
  ExtensionHooks hooks_;
  BatchExecutor batch_executor_;
  std::map<std::string, Procedure> procedures_;
  std::map<TxnId, std::string> dist_id_of_txn_;
  bool down_ = false;
  uint64_t restart_epoch_ = 0;
  bool workers_started_ = false;
};

}  // namespace citusx::engine

#endif  // CITUSX_ENGINE_NODE_H_
