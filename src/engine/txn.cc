#include "engine/txn.h"

namespace citusx::engine {

TxnId TxnManager::Begin() {
  TxnId xid = states_.size();
  states_.push_back(TxnState::kInProgress);
  active_.insert(xid);
  return xid;
}

void TxnManager::Commit(TxnId xid) {
  if (xid < states_.size()) states_[xid] = TxnState::kCommitted;
  active_.erase(xid);
  if (commits_metric_ != nullptr) commits_metric_->Inc();
}

void TxnManager::Abort(TxnId xid) {
  if (xid < states_.size()) states_[xid] = TxnState::kAborted;
  active_.erase(xid);
  if (aborts_metric_ != nullptr) aborts_metric_->Inc();
}

Status TxnManager::Prepare(TxnId xid, const std::string& gid) {
  if (xid < states_.size() && states_[xid] == TxnState::kAborted) {
    // The transaction was aborted underneath the session (crash recovery or
    // a cancellation); like PostgreSQL's 25P02 this follows a transient
    // cause, so the client may retry the whole transaction.
    return Status::Aborted("cannot prepare: transaction was aborted");
  }
  if (xid >= states_.size() || states_[xid] != TxnState::kInProgress) {
    return Status::InvalidArgument("cannot prepare: transaction not active");
  }
  if (prepared_.count(gid) > 0) {
    return Status::AlreadyExists("prepared transaction exists: " + gid);
  }
  states_[xid] = TxnState::kPrepared;
  prepared_[gid] = PreparedTxn{gid, xid};
  if (prepares_metric_ != nullptr) prepares_metric_->Inc();
  // Remains in active_ so snapshots keep treating it as in-progress.
  return Status::OK();
}

Result<TxnId> TxnManager::CommitPrepared(const std::string& gid) {
  auto it = prepared_.find(gid);
  if (it == prepared_.end()) {
    return Status::NotFound("prepared transaction does not exist: " + gid);
  }
  TxnId xid = it->second.xid;
  states_[xid] = TxnState::kCommitted;
  active_.erase(xid);
  prepared_.erase(it);
  if (commits_metric_ != nullptr) commits_metric_->Inc();
  return xid;
}

Result<TxnId> TxnManager::RollbackPrepared(const std::string& gid) {
  auto it = prepared_.find(gid);
  if (it == prepared_.end()) {
    return Status::NotFound("prepared transaction does not exist: " + gid);
  }
  TxnId xid = it->second.xid;
  states_[xid] = TxnState::kAborted;
  active_.erase(xid);
  prepared_.erase(it);
  if (aborts_metric_ != nullptr) aborts_metric_->Inc();
  return xid;
}

std::vector<std::string> TxnManager::PreparedGids() const {
  std::vector<std::string> out;
  for (const auto& [gid, p] : prepared_) out.push_back(gid);
  return out;
}

Snapshot TxnManager::TakeSnapshot(TxnId self) const {
  Snapshot snap;
  snap.self = self;
  snap.xmax = states_.size();
  snap.in_progress.assign(active_.begin(), active_.end());
  return snap;
}

TxnId TxnManager::OldestActive() const {
  if (active_.empty()) return states_.size();
  return *active_.begin();
}

std::vector<TxnId> TxnManager::CrashRecovery() {
  std::set<TxnId> prepared_xids;
  for (const auto& [gid, p] : prepared_) prepared_xids.insert(p.xid);
  std::vector<TxnId> aborted;
  for (TxnId xid : std::vector<TxnId>(active_.begin(), active_.end())) {
    if (prepared_xids.count(xid) == 0) {
      Abort(xid);
      aborted.push_back(xid);
    }
  }
  return aborted;
}

}  // namespace citusx::engine
