#include "engine/locks.h"

#include <mutex>

namespace citusx::engine {

bool LockManager::CanGrantLocked(const LockState& state, TxnId txn,
                                 LockMode mode) const {
  for (const auto& [holder, held_mode] : state.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::Acquire(const LockTag& tag, TxnId txn, LockMode mode) {
  std::shared_ptr<Waiter> waiter;
  {
    std::lock_guard<OrderedMutex> guard(lock_table_mu_);
    LockState& state = locks_[tag];
    auto held = state.holders.find(txn);
    if (held != state.holders.end()) {
      if (held->second == LockMode::kExclusive || mode == LockMode::kShared) {
        return Status::OK();  // already strong enough
      }
      // Upgrade request falls through to the wait path below.
    }
    // Fairness: join the queue if anyone is already waiting, even if the
    // lock is momentarily free (prevents starvation of exclusive waiters).
    if (state.queue.empty() && CanGrantLocked(state, txn, mode)) {
      bool first_grant = state.holders.find(txn) == state.holders.end();
      state.holders[txn] = mode;
      if (first_grant) held_by_txn_[txn].push_back(tag);
      return Status::OK();
    }
    waiter = std::make_shared<Waiter>();
    waiter->txn = txn;
    waiter->mode = mode;
    waiter->process = sim::Simulation::Current();
    state.queue.push_back(waiter);
  }
  if (waits_metric_ != nullptr) waits_metric_->Inc();
  const sim::Time wait_start = sim_->now();
  auto record_wait = [&] {
    if (wait_time_metric_ != nullptr) {
      wait_time_metric_->Record(sim_->now() - wait_start);
    }
  };
  for (;;) {
    if (!sim_->Block()) {
      // Simulation shutdown: drop out of the queue.
      std::lock_guard<OrderedMutex> guard(lock_table_mu_);
      auto& q = locks_[tag].queue;
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->get() == waiter.get()) {
          q.erase(it);
          break;
        }
      }
      return Status::Cancelled("simulation stopping");
    }
    std::lock_guard<OrderedMutex> guard(lock_table_mu_);
    if (waiter->cancelled) {
      record_wait();
      return Status::Deadlock("canceling statement due to deadlock");
    }
    if (waiter->granted) {
      record_wait();
      bool first_grant = true;
      auto it = held_by_txn_.find(txn);
      if (it != held_by_txn_.end()) {
        for (const auto& t : it->second) {
          if (t == tag) first_grant = false;
        }
      }
      if (first_grant) held_by_txn_[txn].push_back(tag);
      return Status::OK();
    }
  }
}

void LockManager::GrantWaiters(LockState* state) {
  while (!state->queue.empty()) {
    auto& w = state->queue.front();
    if (!CanGrantLocked(*state, w->txn, w->mode)) break;
    state->holders[w->txn] = w->mode;
    w->granted = true;
    sim_->Wake(w->process);
    state->queue.pop_front();
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<OrderedMutex> guard(lock_table_mu_);
  auto it = held_by_txn_.find(txn);
  if (it == held_by_txn_.end()) return;
  std::vector<LockTag> tags = std::move(it->second);
  held_by_txn_.erase(it);
  for (const auto& tag : tags) {
    auto lit = locks_.find(tag);
    if (lit == locks_.end()) continue;
    lit->second.holders.erase(txn);
    GrantWaiters(&lit->second);
    if (lit->second.holders.empty() && lit->second.queue.empty()) {
      locks_.erase(lit);
    }
  }
}

bool LockManager::CancelWaiter(TxnId txn) {
  std::lock_guard<OrderedMutex> guard(lock_table_mu_);
  for (auto& [tag, state] : locks_) {
    for (auto it = state.queue.begin(); it != state.queue.end(); ++it) {
      if ((*it)->txn == txn && !(*it)->granted && !(*it)->cancelled) {
        (*it)->cancelled = true;
        if (deadlocks_metric_ != nullptr) deadlocks_metric_->Inc();
        sim_->Wake((*it)->process);
        state.queue.erase(it);
        GrantWaiters(&state);
        return true;
      }
    }
  }
  return false;
}

std::vector<WaitEdge> LockManager::WaitEdges() const {
  std::lock_guard<OrderedMutex> guard(lock_table_mu_);
  std::vector<WaitEdge> edges;
  for (const auto& [tag, state] : locks_) {
    for (const auto& w : state.queue) {
      if (w->granted || w->cancelled) continue;
      for (const auto& [holder, mode] : state.holders) {
        if (holder != w->txn) edges.push_back(WaitEdge{w->txn, holder});
      }
      // Waiters also wait for incompatible earlier waiters (queue order).
      for (const auto& other : state.queue) {
        if (other.get() == w.get()) break;
        if (other->txn != w->txn) {
          edges.push_back(WaitEdge{w->txn, other->txn});
        }
      }
    }
  }
  return edges;
}

bool LockManager::IsWaiting(TxnId txn) const {
  std::lock_guard<OrderedMutex> guard(lock_table_mu_);
  for (const auto& [tag, state] : locks_) {
    for (const auto& w : state.queue) {
      if (w->txn == txn && !w->granted && !w->cancelled) return true;
    }
  }
  return false;
}

int64_t LockManager::locks_held() const {
  std::lock_guard<OrderedMutex> guard(lock_table_mu_);
  int64_t n = 0;
  for (const auto& [tag, state] : locks_) {
    n += static_cast<int64_t>(state.holders.size());
  }
  return n;
}

}  // namespace citusx::engine
