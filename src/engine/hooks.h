// The extension hook API (paper §3.1). The Citus layer installs itself into
// a node exclusively through these seams, mirroring PostgreSQL's extension
// points:
//  - planner hook        -> planner_hook (may take over SELECT/DML planning;
//                           stands in for planner_hook + CustomScan)
//  - utility hook        -> utility_hook (DDL) and copy_hook (COPY)
//  - transaction callbacks -> pre_commit / post_commit / post_abort
//  - UDFs                -> udfs registry (callable from SELECT)
//  - CALL handler        -> call_hook (stored-procedure delegation)
//  - background workers  -> background_workers (maintenance daemon)
#ifndef CITUSX_ENGINE_HOOKS_H_
#define CITUSX_ENGINE_HOOKS_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/exec.h"
#include "sql/ast.h"

namespace citusx::engine {

class Session;
class Node;

/// A user-defined function callable as SELECT f(args).
using Udf =
    std::function<Result<sql::Datum>(Session&, const std::vector<sql::Datum>&)>;

/// A stored procedure callable as CALL p(args).
using Procedure = std::function<Result<QueryResult>(
    Session&, const std::vector<sql::Datum>&)>;

struct ExtensionHooks {
  /// Consulted before local planning of SELECT/INSERT/UPDATE/DELETE.
  /// Return a result to take over; nullopt to fall through.
  std::function<Result<std::optional<QueryResult>>(
      Session&, const sql::Statement&, const std::vector<sql::Datum>&)>
      planner_hook;

  /// Consulted for DDL/TRUNCATE utility statements.
  std::function<Result<std::optional<QueryResult>>(Session&,
                                                   const sql::Statement&)>
      utility_hook;

  /// Consulted for COPY with the already-framed input rows.
  std::function<Result<std::optional<QueryResult>>(
      Session&, const sql::CopyStmt&,
      const std::vector<std::vector<std::string>>&)>
      copy_hook;

  /// Consulted for CALL (stored-procedure delegation, §3.8).
  std::function<Result<std::optional<QueryResult>>(
      Session&, const sql::CallStmt&, const std::vector<sql::Datum>&)>
      call_hook;

  /// Transaction callbacks (§3.7). pre_commit failing aborts the local
  /// transaction.
  std::function<Status(Session&)> pre_commit;
  std::function<void(Session&)> post_commit;
  std::function<void(Session&)> post_abort;

  /// Fired when the node comes back up after a crash (Node::Restart), so
  /// an extension can invalidate state it must not trust across a restart
  /// (e.g. the Citus MX synced-metadata marker).
  std::function<void(Node&)> on_restart;

  /// SELECT-able UDFs (create_distributed_table etc.).
  std::map<std::string, Udf> udfs;

  /// Background workers started with the node (maintenance daemon).
  std::vector<std::pair<std::string, std::function<void(Node&)>>>
      background_workers;
};

// ---------------------------------------------------------------------------
// Extension support API.
//
// Everything an extension may call back into the engine for lives here; the
// Citus layer includes engine/hooks.h and nothing else from engine/ (the
// layering rule is enforced by tools/cituslint). When an extension needs a
// new engine capability, extend this surface rather than reaching into
// engine internals.

/// Split an expression into top-level AND conjuncts.
void SplitConjuncts(const sql::ExprPtr& e, std::vector<sql::ExprPtr>* out);

/// Structural expression equality (by deparse text).
bool ExprEquals(const sql::ExprPtr& a, const sql::ExprPtr& b);

/// Plan and run a SELECT against the local engine inside the session's
/// current transaction. `temp_relations` (optional) are in-memory relations
/// resolvable by name before the catalog — how extensions execute a "master
/// query" over gathered intermediate results (pg: reading a tuplestore
/// behind a scan node).
Result<QueryResult> RunLocalSelect(
    Session& session, const sql::SelectStmt& stmt,
    const std::vector<sql::Datum>& params,
    const std::map<std::string, const TempRelation*>* temp_relations = nullptr);

// The batch-executor seam: an extension layer (src/exec, installed by the
// Citus extension) may register a BatchExecutor on a Node
// (Node::set_batch_executor); local SELECT execution then offers every
// planned tree to it before falling back to the volcano path. Like the Citus
// layer, src/exec includes engine/hooks.h and nothing else from engine/.

}  // namespace citusx::engine

// The Session and Node surfaces are part of the extension-visible API: every
// hook receives a Session&, and background workers receive a Node&. Pulled in
// at the end (not the top) because engine/node.h itself includes this header
// — Node holds an ExtensionHooks by value, so the struct definition above
// must come first on that inclusion path.
#include "engine/session.h"  // also provides engine/node.h

#endif  // CITUSX_ENGINE_HOOKS_H_
