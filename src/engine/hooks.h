// The extension hook API (paper §3.1). The Citus layer installs itself into
// a node exclusively through these seams, mirroring PostgreSQL's extension
// points:
//  - planner hook        -> planner_hook (may take over SELECT/DML planning;
//                           stands in for planner_hook + CustomScan)
//  - utility hook        -> utility_hook (DDL) and copy_hook (COPY)
//  - transaction callbacks -> pre_commit / post_commit / post_abort
//  - UDFs                -> udfs registry (callable from SELECT)
//  - CALL handler        -> call_hook (stored-procedure delegation)
//  - background workers  -> background_workers (maintenance daemon)
#ifndef CITUSX_ENGINE_HOOKS_H_
#define CITUSX_ENGINE_HOOKS_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/exec.h"
#include "sql/ast.h"

namespace citusx::engine {

class Session;
class Node;

/// A user-defined function callable as SELECT f(args).
using Udf =
    std::function<Result<sql::Datum>(Session&, const std::vector<sql::Datum>&)>;

/// A stored procedure callable as CALL p(args).
using Procedure = std::function<Result<QueryResult>(
    Session&, const std::vector<sql::Datum>&)>;

struct ExtensionHooks {
  /// Consulted before local planning of SELECT/INSERT/UPDATE/DELETE.
  /// Return a result to take over; nullopt to fall through.
  std::function<Result<std::optional<QueryResult>>(
      Session&, const sql::Statement&, const std::vector<sql::Datum>&)>
      planner_hook;

  /// Consulted for DDL/TRUNCATE utility statements.
  std::function<Result<std::optional<QueryResult>>(Session&,
                                                   const sql::Statement&)>
      utility_hook;

  /// Consulted for COPY with the already-framed input rows.
  std::function<Result<std::optional<QueryResult>>(
      Session&, const sql::CopyStmt&,
      const std::vector<std::vector<std::string>>&)>
      copy_hook;

  /// Consulted for CALL (stored-procedure delegation, §3.8).
  std::function<Result<std::optional<QueryResult>>(
      Session&, const sql::CallStmt&, const std::vector<sql::Datum>&)>
      call_hook;

  /// Transaction callbacks (§3.7). pre_commit failing aborts the local
  /// transaction.
  std::function<Status(Session&)> pre_commit;
  std::function<void(Session&)> post_commit;
  std::function<void(Session&)> post_abort;

  /// SELECT-able UDFs (create_distributed_table etc.).
  std::map<std::string, Udf> udfs;

  /// Background workers started with the node (maintenance daemon).
  std::vector<std::pair<std::string, std::function<void(Node&)>>>
      background_workers;
};

}  // namespace citusx::engine

#endif  // CITUSX_ENGINE_HOOKS_H_
