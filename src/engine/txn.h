// Per-node transaction manager: txn id assignment, commit state, snapshots,
// prepared transactions (the substrate for Citus 2PC).
#ifndef CITUSX_ENGINE_TXN_H_
#define CITUSX_ENGINE_TXN_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/mvcc.h"

namespace citusx::engine {

using storage::Snapshot;
using storage::TxnId;

enum class TxnState : uint8_t {
  kInProgress,
  kCommitted,
  kAborted,
  kPrepared,
};

/// Metadata about a prepared (2PC) transaction. Survives node restarts
/// (PostgreSQL persists prepared state in the WAL; we keep it across
/// simulated crashes).
struct PreparedTxn {
  std::string gid;
  TxnId xid = storage::kInvalidTxn;
};

class TxnManager : public storage::TxnStatusResolver {
 public:
  TxnManager() { states_.push_back(TxnState::kAborted); }  // xid 0 invalid

  /// Start a transaction; returns its id.
  TxnId Begin();

  void Commit(TxnId xid);
  void Abort(TxnId xid);

  /// PREPARE TRANSACTION 'gid': the transaction keeps its locks and can be
  /// committed or aborted later, surviving restarts.
  Status Prepare(TxnId xid, const std::string& gid);
  /// Returns the transaction id that was finalized (caller releases locks).
  Result<TxnId> CommitPrepared(const std::string& gid);
  Result<TxnId> RollbackPrepared(const std::string& gid);

  /// GIDs of all currently prepared transactions (2PC recovery polls this).
  std::vector<std::string> PreparedGids() const;

  /// An MVCC snapshot for `self` at the current moment.
  Snapshot TakeSnapshot(TxnId self) const;

  /// Oldest transaction id still in progress (vacuum horizon).
  TxnId OldestActive() const;

  TxnState state(TxnId xid) const {
    return xid < states_.size() ? states_[xid] : TxnState::kInProgress;
  }

  // storage::TxnStatusResolver:
  bool IsCommitted(TxnId xid) const override {
    return state(xid) == TxnState::kCommitted;
  }
  bool IsAborted(TxnId xid) const override {
    return state(xid) == TxnState::kAborted;
  }

  /// Simulated crash: all in-progress transactions abort; prepared
  /// transactions survive. Returns the aborted transaction ids.
  std::vector<TxnId> CrashRecovery();

  int64_t active_count() const { return static_cast<int64_t>(active_.size()); }

  /// Mirror commit/abort/prepare counts into a metrics registry.
  void BindMetrics(obs::Metrics* metrics) {
    commits_metric_ = metrics->counter("txn.commits");
    aborts_metric_ = metrics->counter("txn.aborts");
    prepares_metric_ = metrics->counter("txn.prepares");
  }

 private:
  std::vector<TxnState> states_;  // indexed by xid
  std::set<TxnId> active_;        // in-progress (incl. prepared)
  std::map<std::string, PreparedTxn> prepared_;
  obs::Counter* commits_metric_ = nullptr;
  obs::Counter* aborts_metric_ = nullptr;
  obs::Counter* prepares_metric_ = nullptr;
};

}  // namespace citusx::engine

#endif  // CITUSX_ENGINE_TXN_H_
