#include "engine/session.h"

#include "common/str.h"
#include "engine/planner.h"
#include "sql/deparser.h"
#include "sql/parser.h"

namespace citusx::engine {

namespace {

void VisitExprParams(const sql::ExprPtr& e, int* max_param);

void VisitSelectParams(const sql::SelectStmt& s, int* max_param);

void VisitTableRefParams(const sql::TableRefPtr& ref, int* max_param) {
  if (ref == nullptr) return;
  switch (ref->kind) {
    case sql::TableRef::Kind::kTable:
      return;
    case sql::TableRef::Kind::kSubquery:
      if (ref->subquery) VisitSelectParams(*ref->subquery, max_param);
      return;
    case sql::TableRef::Kind::kJoin:
      VisitTableRefParams(ref->left, max_param);
      VisitTableRefParams(ref->right, max_param);
      VisitExprParams(ref->on, max_param);
      return;
  }
}

void VisitExprParams(const sql::ExprPtr& e, int* max_param) {
  if (e == nullptr) return;
  sql::WalkExpr(e, [max_param](const sql::Expr& x) {
    if (x.kind == sql::ExprKind::kParam && x.param_index + 1 > *max_param) {
      *max_param = x.param_index + 1;
    }
  });
}

void VisitSelectParams(const sql::SelectStmt& s, int* max_param) {
  for (const auto& t : s.targets) VisitExprParams(t.expr, max_param);
  for (const auto& f : s.from) VisitTableRefParams(f, max_param);
  VisitExprParams(s.where, max_param);
  for (const auto& g : s.group_by) VisitExprParams(g, max_param);
  VisitExprParams(s.having, max_param);
  for (const auto& o : s.order_by) VisitExprParams(o.expr, max_param);
  VisitExprParams(s.limit, max_param);
  VisitExprParams(s.offset, max_param);
}

/// Highest $n referenced anywhere in the statement (1-based count).
int MaxParamCount(const sql::Statement& stmt) {
  int max_param = 0;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect:
      VisitSelectParams(*stmt.select, &max_param);
      break;
    case sql::Statement::Kind::kInsert:
      for (const auto& row : stmt.insert->values) {
        for (const auto& v : row) VisitExprParams(v, &max_param);
      }
      if (stmt.insert->select) {
        VisitSelectParams(*stmt.insert->select, &max_param);
      }
      break;
    case sql::Statement::Kind::kUpdate:
      for (const auto& s : stmt.update->sets) {
        VisitExprParams(s.second, &max_param);
      }
      VisitExprParams(stmt.update->where, &max_param);
      break;
    case sql::Statement::Kind::kDelete:
      VisitExprParams(stmt.del->where, &max_param);
      break;
    default:
      break;
  }
  return max_param;
}

}  // namespace

Session::Session(Node* node) : node_(node), rng_(0xC1705) {}

Session::~Session() {
  if (txn_open()) AbortTxn();
}

void Session::SetVar(const std::string& name, const std::string& value) {
  vars_[name] = value;
}

std::string Session::GetVar(const std::string& name) const {
  auto it = vars_.find(name);
  return it == vars_.end() ? std::string() : it->second;
}

Status Session::EnsureTxn() {
  if (node_->is_down()) return Status::Unavailable(node_->name() + " is down");
  if (txn_open()) return Status::OK();
  txn_ = node_->txns().Begin();
  txn_aborted_ = false;
  std::string dist_id = GetVar("citus.distributed_txid");
  if (!dist_id.empty()) node_->RegisterTxn(txn_, dist_id);
  return Status::OK();
}

ExecContext Session::MakeExecContext(const std::vector<sql::Datum>* params) {
  ExecContext ctx;
  ctx.sim = node_->sim();
  ctx.cpu = &node_->cpu();
  ctx.cost = &node_->cost();
  ctx.catalog = &node_->catalog();
  ctx.txns = &node_->txns();
  ctx.locks = &node_->locks();
  ctx.txn = txn_;
  ctx.snapshot = node_->txns().TakeSnapshot(txn_);
  ctx.params = params;
  ctx.rng = &rng_;
  // Vectorized-executor switch: the registered batch executor runs unless
  // the session opted out (SET citus.use_vectorized_executor = off). The
  // coordinator propagates the setting to worker connections so "off"
  // really means the volcano oracle end to end.
  ctx.vectorize = GetVar("citus.use_vectorized_executor") != "off";
  ctx.batch_exec = &node_->batch_executor();
  // Statement trace (EXPLAIN ANALYZE): pipelines nest under the statement's
  // "worker execution" span when one is open, else directly under the span
  // carried by the wire context (coordinator-local master queries).
  ctx.tracer = node_->tracer();
  if (active_span_ != 0) {
    ctx.trace = active_trace_;
    ctx.parent_span = active_span_;
  } else {
    obs::TraceId trace = 0;
    obs::SpanId parent = 0;
    if (ctx.tracer != nullptr &&
        obs::ParseTraceContext(GetVar("citusx.trace_ctx"), &trace, &parent)) {
      ctx.trace = trace;
      ctx.parent_span = parent;
    }
  }
  if (ctx.trace == 0) ctx.tracer = nullptr;
  return ctx;
}

Status Session::CommitTxn() {
  if (!txn_open()) return Status::OK();
  // Pre-commit callback: the Citus layer runs its 2PC prepare phase here;
  // failure aborts the local transaction.
  if (node_->hooks().pre_commit) {
    Status st = node_->hooks().pre_commit(*this);
    if (!st.ok()) {
      AbortTxn();
      return st;
    }
  }
  // Commit-record WAL flush (group-commit amortized). Read-only
  // transactions have no commit record to make durable and skip it.
  if (txn_wrote_ && !node_->WalFlush()) {
    AbortTxn();
    return Status::Cancelled("simulation stopping");
  }
  if (!node_->cpu().Consume(txn_wrote_ ? node_->cost().cpu_commit
                                       : node_->cost().cpu_commit_readonly)) {
    AbortTxn();
    return Status::Cancelled("simulation stopping");
  }
  TxnId finished = txn_;
  node_->txns().Commit(finished);
  node_->locks().ReleaseAll(finished);
  node_->UnregisterTxn(finished);
  txn_ = storage::kInvalidTxn;
  explicit_txn_ = false;
  txn_aborted_ = false;
  txn_wrote_ = false;
  if (node_->hooks().post_commit) node_->hooks().post_commit(*this);
  return Status::OK();
}

void Session::AbortTxn() {
  if (!txn_open()) return;
  TxnId finished = txn_;
  node_->txns().Abort(finished);
  node_->locks().ReleaseAll(finished);
  node_->UnregisterTxn(finished);
  txn_ = storage::kInvalidTxn;
  explicit_txn_ = false;
  txn_aborted_ = false;
  txn_wrote_ = false;
  if (node_->hooks().post_abort) node_->hooks().post_abort(*this);
}

Result<QueryResult> Session::ExecuteTxnStmt(const sql::TxnStmt& stmt) {
  QueryResult result;
  switch (stmt.op) {
    case sql::TxnOp::kBegin:
      if (explicit_txn_) {
        return Status::InvalidArgument("there is already a transaction in progress");
      }
      CITUSX_RETURN_IF_ERROR(EnsureTxn());
      explicit_txn_ = true;
      result.command_tag = "BEGIN";
      return result;
    case sql::TxnOp::kCommit:
      if (txn_aborted_) {
        AbortTxn();
        result.command_tag = "ROLLBACK";
        return result;
      }
      CITUSX_RETURN_IF_ERROR(CommitTxn());
      result.command_tag = "COMMIT";
      return result;
    case sql::TxnOp::kRollback:
      AbortTxn();
      result.command_tag = "ROLLBACK";
      return result;
    case sql::TxnOp::kPrepare: {
      if (!txn_open() || txn_aborted_) {
        return Status::InvalidArgument("no transaction to prepare");
      }
      // Prepared state is durable: flush to WAL.
      if (!node_->WalFlush()) {
        return Status::Cancelled("simulation stopping");
      }
      CITUSX_RETURN_IF_ERROR(node_->txns().Prepare(txn_, stmt.gid));
      // The backend detaches from the transaction; locks stay with the xid.
      node_->UnregisterTxn(txn_);
      txn_ = storage::kInvalidTxn;
      explicit_txn_ = false;
      txn_wrote_ = false;
      result.command_tag = "PREPARE TRANSACTION";
      return result;
    }
    case sql::TxnOp::kCommitPrepared: {
      if (!node_->WalFlush()) {
        return Status::Cancelled("simulation stopping");
      }
      CITUSX_ASSIGN_OR_RETURN(TxnId xid,
                              node_->txns().CommitPrepared(stmt.gid));
      node_->locks().ReleaseAll(xid);
      result.command_tag = "COMMIT PREPARED";
      return result;
    }
    case sql::TxnOp::kRollbackPrepared: {
      CITUSX_ASSIGN_OR_RETURN(TxnId xid,
                              node_->txns().RollbackPrepared(stmt.gid));
      node_->locks().ReleaseAll(xid);
      result.command_tag = "ROLLBACK PREPARED";
      return result;
    }
  }
  return Status::Internal("bad txn op");
}

Result<QueryResult> Session::RunInTxn(
    const std::function<Result<QueryResult>()>& body) {
  CITUSX_RETURN_IF_ERROR(EnsureTxn());
  auto result = body();
  if (!result.ok()) {
    if (explicit_txn_) {
      // PostgreSQL: the transaction enters aborted state until ROLLBACK.
      txn_aborted_ = true;
    } else {
      AbortTxn();
    }
    return result;
  }
  if (!explicit_txn_) {
    Status st = CommitTxn();
    if (!st.ok()) return st;
  }
  return result;
}

Result<QueryResult> Session::Execute(const std::string& sql,
                                     const std::vector<sql::Datum>& params) {
  node_->statements_executed++;
  if (node_->is_down()) {
    return Status::Unavailable(node_->name() + " is down");
  }
  // Parsing cost.
  if (!node_->cpu().Consume(static_cast<int64_t>(sql.size()) *
                            node_->cost().parse_per_char)) {
    return Status::Cancelled("simulation stopping");
  }
  CITUSX_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  // If the request carried a trace context (set by the net backend), record
  // this statement as a "worker execution" span under the remote caller's.
  obs::TraceCollector* tracer = node_->tracer();
  const std::string trace_ctx = GetVar("citusx.trace_ctx");
  obs::TraceId trace = 0;
  obs::SpanId parent = 0;
  if (tracer != nullptr && !trace_ctx.empty() &&
      obs::ParseTraceContext(trace_ctx, &trace, &parent)) {
    obs::SpanId span = tracer->StartSpan(trace, parent, "worker execution",
                                         node_->name(), node_->sim()->now());
    tracer->SetAttr(span, "sql", sql);
    active_trace_ = trace;
    active_span_ = span;
    Result<QueryResult> result = ExecuteParsed(stmt, params);
    active_trace_ = 0;
    active_span_ = 0;
    if (result.ok()) {
      tracer->SetRows(span, result->rows.empty()
                                ? result->rows_affected
                                : static_cast<int64_t>(result->rows.size()));
    }
    tracer->EndSpan(span, node_->sim()->now());
    return result;
  }
  return ExecuteParsed(stmt, params);
}

Result<QueryResult> Session::ExecuteParsed(
    const sql::Statement& stmt, const std::vector<sql::Datum>& params) {
  // Transaction control works even in aborted state.
  if (stmt.kind == sql::Statement::Kind::kTxn) {
    return ExecuteTxnStmt(*stmt.txn);
  }
  if (txn_aborted_) {
    return Status::Aborted(
        "current transaction is aborted, commands ignored until end of "
        "transaction block");
  }
  if (stmt.kind == sql::Statement::Kind::kSet) {
    SetVar(stmt.set->name, stmt.set->value);
    QueryResult r;
    r.command_tag = "SET";
    return r;
  }
  if (stmt.kind == sql::Statement::Kind::kPrepare) {
    return ExecutePrepare(*stmt.prepare);
  }
  if (stmt.kind == sql::Statement::Kind::kExecute) {
    return ExecutePrepared(*stmt.execute, params);
  }
  if (stmt.kind == sql::Statement::Kind::kDeallocate) {
    return ExecuteDeallocate(*stmt.deallocate);
  }
  if (stmt.kind == sql::Statement::Kind::kDiscard) {
    DiscardAll();
    QueryResult r;
    r.command_tag = "DISCARD ALL";
    return r;
  }
  return DispatchStatement(stmt, params);
}

Result<QueryResult> Session::ExecutePrepare(const sql::PrepareStmt& stmt) {
  auto existing = prepared_.find(stmt.name);
  if (existing != prepared_.end()) {
    // Re-preparing the exact same statement is a no-op (a client that lost
    // track of an in-flight batch may retry); a different body errors.
    if (sql::DeparseStatement(*stmt.body) ==
        sql::DeparseStatement(*existing->second.body)) {
      QueryResult r;
      r.command_tag = "PREPARE";
      return r;
    }
    return Status::AlreadyExists("prepared statement \"" + stmt.name +
                                 "\" already exists");
  }
  PreparedStatement ps;
  ps.body = std::make_shared<const sql::Statement>(*stmt.body);
  ps.param_types = stmt.param_types;
  ps.num_params = MaxParamCount(*stmt.body);
  if (static_cast<int>(ps.param_types.size()) > ps.num_params) {
    ps.num_params = static_cast<int>(ps.param_types.size());
  }
  prepared_.emplace(stmt.name, std::move(ps));
  QueryResult r;
  r.command_tag = "PREPARE";
  return r;
}

Result<QueryResult> Session::ExecutePrepared(
    const sql::ExecuteStmt& stmt, const std::vector<sql::Datum>& params) {
  auto it = prepared_.find(stmt.name);
  if (it == prepared_.end()) {
    return Status::NotFound("prepared statement \"" + stmt.name +
                            "\" does not exist");
  }
  PreparedStatement& ps = it->second;
  if (static_cast<int>(stmt.args.size()) != ps.num_params) {
    return Status::InvalidArgument(StrFormat(
        "wrong number of parameters for prepared statement \"%s\": expected "
        "%d, got %zu",
        stmt.name.c_str(), ps.num_params, stmt.args.size()));
  }
  // Evaluate the EXECUTE arguments (outer $n params remain visible) and
  // coerce them to the declared parameter types.
  std::vector<sql::Datum> bound;
  bound.reserve(stmt.args.size());
  sql::EvalContext ec;
  ec.params = &params;
  ec.rng = &rng_;
  for (size_t i = 0; i < stmt.args.size(); i++) {
    CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*stmt.args[i], ec));
    if (i < ps.param_types.size() && !v.is_null() &&
        v.type() != ps.param_types[i]) {
      CITUSX_ASSIGN_OR_RETURN(v, v.CastTo(ps.param_types[i]));
    }
    bound.push_back(std::move(v));
  }
  // Expose the entry so the planner hook can attach its generic plan, and
  // restore the previous one on exit (EXECUTE may nest via procedures).
  PreparedStatement* saved = active_prepared_;
  active_prepared_ = &ps;
  Result<QueryResult> result = DispatchStatement(*ps.body, bound);
  active_prepared_ = saved;
  if (result.ok()) {
    ps.executions++;
    ps.local_plan_cached = true;
  }
  return result;
}

Result<QueryResult> Session::ExecuteDeallocate(const sql::DeallocateStmt& stmt) {
  QueryResult r;
  if (stmt.name.empty()) {
    prepared_.clear();
    r.command_tag = "DEALLOCATE ALL";
    return r;
  }
  if (prepared_.erase(stmt.name) == 0) {
    return Status::NotFound("prepared statement \"" + stmt.name +
                            "\" does not exist");
  }
  r.command_tag = "DEALLOCATE";
  return r;
}

Result<QueryResult> Session::DispatchStatement(
    const sql::Statement& stmt, const std::vector<sql::Datum>& params) {
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect: {
      // FROM-less single-UDF SELECT dispatches to the UDF registry.
      const auto& sel = *stmt.select;
      if (sel.from.empty() && sel.targets.size() == 1 &&
          sel.targets[0].expr->kind == sql::ExprKind::kFunc) {
        const auto& udfs = node_->hooks().udfs;
        auto it = udfs.find(sel.targets[0].expr->func_name);
        if (it != udfs.end()) {
          return RunInTxn([&]() -> Result<QueryResult> {
            // UDFs may mutate catalogs/metadata; treat the txn as a writer.
            txn_wrote_ = true;
            // Evaluate arguments.
            std::vector<sql::Datum> args;
            sql::EvalContext ec;
            ec.params = &params;
            ec.rng = &rng_;
            for (const auto& a : sel.targets[0].expr->args) {
              CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*a, ec));
              args.push_back(std::move(v));
            }
            CITUSX_ASSIGN_OR_RETURN(sql::Datum out, it->second(*this, args));
            QueryResult r;
            r.column_names = {sel.targets[0].expr->func_name};
            r.column_types = {out.type()};
            r.rows.push_back({std::move(out)});
            r.rows_affected = 1;
            r.command_tag = "SELECT";
            return r;
          });
        }
      }
      [[fallthrough]];
    }
    case sql::Statement::Kind::kInsert:
    case sql::Statement::Kind::kUpdate:
    case sql::Statement::Kind::kDelete: {
      return RunInTxn([&]() -> Result<QueryResult> {
        if (node_->hooks().planner_hook) {
          CITUSX_ASSIGN_OR_RETURN(std::optional<QueryResult> handled,
                                  node_->hooks().planner_hook(*this, stmt,
                                                              params));
          if (handled.has_value()) return std::move(*handled);
        }
        // Local DML writes WAL (marked after the planner hook: statements
        // the extension routes to workers leave the local txn read-only).
        if (stmt.kind != sql::Statement::Kind::kSelect &&
            !(stmt.is_explain && !stmt.is_analyze)) {
          txn_wrote_ = true;
        }
        ExecContext ctx = MakeExecContext(&params);
        PlannerInput input;
        input.catalog = &node_->catalog();
        input.params = &params;
        input.cached_plan =
            active_prepared_ != nullptr && active_prepared_->local_plan_cached;
        if (stmt.is_explain && stmt.is_analyze) {
          // EXPLAIN ANALYZE: execute for real, then append the measured
          // virtual time and row count to the plan description.
          const sim::Time started = node_->sim()->now();
          Result<QueryResult> real = [&]() -> Result<QueryResult> {
            switch (stmt.kind) {
              case sql::Statement::Kind::kSelect:
                return ExecuteSelect(*stmt.select, input, ctx);
              case sql::Statement::Kind::kInsert:
                return ExecuteInsert(*stmt.insert, input, ctx);
              case sql::Statement::Kind::kUpdate:
                return ExecuteUpdate(*stmt.update, input, ctx);
              default:
                return ExecuteDelete(*stmt.del, input, ctx);
            }
          }();
          if (!real.ok()) return real.status();
          CITUSX_ASSIGN_OR_RETURN(QueryResult out,
                                  ExplainStatement(stmt, input));
          int64_t rows = real->rows.empty()
                             ? real->rows_affected
                             : static_cast<int64_t>(real->rows.size());
          double ms = static_cast<double>(node_->sim()->now() - started) /
                      static_cast<double>(sim::kMillisecond);
          out.rows.push_back({sql::Datum::Text(StrFormat(
              "Actual: time=%.3f ms, rows=%lld", ms,
              static_cast<long long>(rows)))});
          return out;
        }
        if (stmt.is_explain) return ExplainStatement(stmt, input);
        switch (stmt.kind) {
          case sql::Statement::Kind::kSelect:
            return ExecuteSelect(*stmt.select, input, ctx);
          case sql::Statement::Kind::kInsert:
            return ExecuteInsert(*stmt.insert, input, ctx);
          case sql::Statement::Kind::kUpdate:
            return ExecuteUpdate(*stmt.update, input, ctx);
          default:
            return ExecuteDelete(*stmt.del, input, ctx);
        }
      });
    }
    case sql::Statement::Kind::kCall: {
      return RunInTxn([&]() -> Result<QueryResult> {
        txn_wrote_ = true;  // procedures run DML
        std::vector<sql::Datum> args;
        sql::EvalContext ec;
        ec.params = &params;
        ec.rng = &rng_;
        for (const auto& a : stmt.call->args) {
          CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*a, ec));
          args.push_back(std::move(v));
        }
        if (node_->hooks().call_hook) {
          CITUSX_ASSIGN_OR_RETURN(
              std::optional<QueryResult> handled,
              node_->hooks().call_hook(*this, *stmt.call, args));
          if (handled.has_value()) return std::move(*handled);
        }
        const Procedure* proc = node_->FindProcedure(stmt.call->procedure);
        if (proc == nullptr) {
          return Status::NotFound("procedure \"" + stmt.call->procedure +
                                  "\" does not exist");
        }
        return (*proc)(*this, args);
      });
    }
    case sql::Statement::Kind::kCopy:
      return Status::InvalidArgument(
          "COPY FROM STDIN requires CopyIn with attached rows");
    default:
      return ExecuteUtility(stmt);
  }
}

Result<QueryResult> Session::ExecuteUtility(const sql::Statement& stmt) {
  return RunInTxn([&]() -> Result<QueryResult> {
    txn_wrote_ = true;  // DDL writes catalogs
    if (node_->hooks().utility_hook) {
      CITUSX_ASSIGN_OR_RETURN(std::optional<QueryResult> handled,
                              node_->hooks().utility_hook(*this, stmt));
      if (handled.has_value()) return std::move(*handled);
    }
    QueryResult result;
    switch (stmt.kind) {
      case sql::Statement::Kind::kCreateTable: {
        const auto& ct = *stmt.create_table;
        if (ct.if_not_exists &&
            node_->catalog().Find(ct.table) != nullptr) {
          result.command_tag = "CREATE TABLE";
          return result;
        }
        bool columnar = ct.access_method == "columnar" ||
                        GetVar("citusx.default_table_access_method") ==
                            "columnar";
        CITUSX_RETURN_IF_ERROR(node_->catalog()
                                   .CreateTable(ct.table, ct.schema,
                                                ct.primary_key, columnar)
                                   .status());
        result.command_tag = "CREATE TABLE";
        return result;
      }
      case sql::Statement::Kind::kCreateIndex: {
        const auto& ci = *stmt.create_index;
        // DDL takes an exclusive table lock.
        CITUSX_ASSIGN_OR_RETURN(TableInfo * table,
                                node_->catalog().Get(ci.table));
        CITUSX_RETURN_IF_ERROR(node_->locks().Acquire(
            LockTag{table->oid, LockTag::kTableRid}, txn_,
            LockMode::kExclusive));
        if (ci.method == sql::IndexMethod::kGinTrgm) {
          sql::ExprPtr bound = ci.expression->Clone();
          const sql::Schema& schema = table->schema();
          Status st = Status::OK();
          sql::WalkExprMut(bound, [&](sql::Expr& x) {
            if (x.kind == sql::ExprKind::kColumnRef) {
              int pos = schema.FindColumn(x.column);
              if (pos < 0) {
                st = Status::InvalidArgument("column \"" + x.column +
                                             "\" does not exist");
              }
              x.slot = pos;
            }
          });
          CITUSX_RETURN_IF_ERROR(st);
          bool exists = false;
          for (const auto& idx : table->indexes) {
            if (idx->name == ci.index) exists = true;
          }
          if (exists && ci.if_not_exists) {
            result.command_tag = "CREATE INDEX";
            return result;
          }
          CITUSX_ASSIGN_OR_RETURN(
              IndexInfo * idx,
              node_->catalog().CreateGinIndex(ci.table, ci.index, bound));
          // Build the index over existing rows.
          ExecContext ctx = MakeExecContext(nullptr);
          storage::RowId n = table->heap->num_rows();
          for (storage::RowId rid = 0; rid < n; rid++) {
            const storage::TupleVersion* v =
                table->heap->LatestVersion(rid, node_->txns());
            if (v == nullptr) continue;
            auto ec = ctx.EvalCtx(&v->row);
            CITUSX_ASSIGN_OR_RETURN(sql::Datum text, sql::Eval(*bound, ec));
            int64_t postings =
                idx->gin->Insert(text.is_null() ? "" : text.ToText(), rid);
            CITUSX_RETURN_IF_ERROR(
                ctx.ChargeCpu(postings * ctx.cost->cpu_per_trgm_insert));
          }
          CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
        } else {
          bool exists = false;
          for (const auto& idx : table->indexes) {
            if (idx->name == ci.index) exists = true;
          }
          if (exists && ci.if_not_exists) {
            result.command_tag = "CREATE INDEX";
            return result;
          }
          CITUSX_ASSIGN_OR_RETURN(
              IndexInfo * idx,
              node_->catalog().CreateBtreeIndex(ci.table, ci.index,
                                                ci.columns, ci.unique));
          ExecContext ctx = MakeExecContext(nullptr);
          storage::RowId n = table->heap->num_rows();
          for (storage::RowId rid = 0; rid < n; rid++) {
            const storage::TupleVersion* v =
                table->heap->LatestVersion(rid, node_->txns());
            if (v == nullptr) continue;
            storage::IndexKey key = idx->btree->KeyFromRow(v->row);
            CITUSX_RETURN_IF_ERROR(
                ctx.ChargeCpu(ctx.cost->cpu_per_index_insert));
            idx->btree->Insert(key, rid);
          }
          CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
        }
        result.command_tag = "CREATE INDEX";
        return result;
      }
      case sql::Statement::Kind::kDropTable: {
        const auto& dt = *stmt.drop_table;
        if (node_->catalog().Find(dt.table) == nullptr && dt.if_exists) {
          result.command_tag = "DROP TABLE";
          return result;
        }
        CITUSX_RETURN_IF_ERROR(node_->catalog().DropTable(dt.table));
        result.command_tag = "DROP TABLE";
        return result;
      }
      case sql::Statement::Kind::kTruncate: {
        for (const auto& name : stmt.truncate->tables) {
          CITUSX_ASSIGN_OR_RETURN(TableInfo * table,
                                  node_->catalog().Get(name));
          CITUSX_RETURN_IF_ERROR(node_->locks().Acquire(
              LockTag{table->oid, LockTag::kTableRid}, txn_,
              LockMode::kExclusive));
          if (table->heap != nullptr) table->heap->Truncate();
          if (table->columnar != nullptr) table->columnar->Truncate();
          for (auto& idx : table->indexes) {
            if (idx->btree) idx->btree->Truncate();
            if (idx->gin) idx->gin->Truncate();
          }
        }
        result.command_tag = "TRUNCATE TABLE";
        return result;
      }
      default:
        return Status::NotSupported("unsupported utility statement");
    }
  });
}

Result<QueryResult> Session::CopyIn(
    const std::string& table, const std::vector<std::string>& columns,
    const std::vector<std::vector<std::string>>& rows) {
  node_->statements_executed++;
  if (node_->is_down()) {
    return Status::Unavailable(node_->name() + " is down");
  }
  return RunInTxn([&]() -> Result<QueryResult> {
    if (node_->hooks().copy_hook) {
      sql::CopyStmt stmt;
      stmt.table = table;
      stmt.columns = columns;
      CITUSX_ASSIGN_OR_RETURN(std::optional<QueryResult> handled,
                              node_->hooks().copy_hook(*this, stmt, rows));
      if (handled.has_value()) return std::move(*handled);
    }
    txn_wrote_ = true;  // local COPY writes heap + WAL
    CITUSX_ASSIGN_OR_RETURN(TableInfo * info, node_->catalog().Get(table));
    const sql::Schema& schema = info->schema();
    std::vector<int> positions;
    if (columns.empty()) {
      for (int i = 0; i < schema.num_columns(); i++) positions.push_back(i);
    } else {
      for (const auto& c : columns) {
        int pos = schema.FindColumn(c);
        if (pos < 0) {
          return Status::InvalidArgument("column \"" + c + "\" does not exist");
        }
        positions.push_back(pos);
      }
    }
    ExecContext ctx = MakeExecContext(nullptr);
    CITUSX_RETURN_IF_ERROR(
        ctx.locks->Acquire(LockTag{info->oid, LockTag::kTableRid}, txn_,
                           LockMode::kShared));
    int64_t inserted = 0;
    for (const auto& text_row : rows) {
      if (text_row.size() != positions.size()) {
        return Status::InvalidArgument("COPY row has wrong number of fields");
      }
      int64_t row_bytes = 0;
      for (const auto& f : text_row) {
        row_bytes += static_cast<int64_t>(f.size());
      }
      CITUSX_RETURN_IF_ERROR(
          ctx.ChargeCpu(ctx.cost->cpu_per_row_copy_parse +
                        row_bytes * ctx.cost->parse_per_char));
      sql::Row full(static_cast<size_t>(schema.num_columns()));
      for (size_t i = 0; i < positions.size(); i++) {
        const auto& col = schema.columns[static_cast<size_t>(positions[i])];
        if (text_row[i] == "\\N") {
          full[static_cast<size_t>(positions[i])] = sql::Datum::Null();
          continue;
        }
        CITUSX_ASSIGN_OR_RETURN(sql::Datum v,
                                sql::Datum::FromText(col.type, text_row[i]));
        full[static_cast<size_t>(positions[i])] = std::move(v);
      }
      CITUSX_RETURN_IF_ERROR(CoerceRowToSchema(schema, &full));
      CITUSX_RETURN_IF_ERROR(InsertRowWithIndexes(ctx, info, std::move(full),
                                                  /*on_conflict=*/false,
                                                  nullptr));
      inserted++;
    }
    CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
    QueryResult result;
    result.rows_affected = inserted;
    result.command_tag =
        StrFormat("COPY %lld", static_cast<long long>(inserted));
    return result;
  });
}

}  // namespace citusx::engine
