// A session ("backend"): executes SQL statements against one node with
// PostgreSQL transaction semantics (implicit single-statement transactions,
// explicit BEGIN/COMMIT blocks, statement-level snapshots, abort-on-error).
#ifndef CITUSX_ENGINE_SESSION_H_
#define CITUSX_ENGINE_SESSION_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/exec.h"
#include "engine/node.h"
#include "obs/trace.h"

namespace citusx::engine {

/// A session-scoped prepared statement (PREPARE name AS ...). Mirrors
/// PostgreSQL's plancache entry: the parsed body plus a generic-plan slot
/// where the planner hook (the Citus extension) attaches its cached state.
struct PreparedStatement {
  std::shared_ptr<const sql::Statement> body;
  std::vector<sql::TypeId> param_types;  // declared types; may be empty
  int num_params = 0;                    // highest $n referenced in the body
  int64_t executions = 0;
  /// Opaque cached plan owned by the planner hook; reset by DEALLOCATE.
  std::shared_ptr<void> generic_plan;
  /// After the first successful execution the local planner treats the body
  /// as a generic plan and charges plan_cached_bind instead of plan_local.
  bool local_plan_cached = false;
};

class Session {
 public:
  explicit Session(Node* node);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  Node* node() { return node_; }

  /// Parse and execute one statement.
  Result<QueryResult> Execute(const std::string& sql,
                              const std::vector<sql::Datum>& params = {});

  /// Execute an already-parsed statement (used by hooks re-entering).
  Result<QueryResult> ExecuteParsed(const sql::Statement& stmt,
                                    const std::vector<sql::Datum>& params);

  /// COPY table FROM STDIN: `rows` are pre-split text fields per row.
  Result<QueryResult> CopyIn(const std::string& table,
                             const std::vector<std::string>& columns,
                             const std::vector<std::vector<std::string>>& rows);

  // ---- transaction state (used by hooks and the Citus layer) ----

  bool in_explicit_txn() const { return explicit_txn_; }
  bool txn_open() const { return txn_ != storage::kInvalidTxn; }
  TxnId current_txn() const { return txn_; }

  /// Mark the current transaction as having written WAL. Read-only commits
  /// skip the commit-record flush (PostgreSQL: RecordTransactionCommit does
  /// not XLogFlush when the transaction wrote nothing); extensions that make
  /// the local commit durable for their own protocol (e.g. the 2PC decision
  /// record) call this from their pre-commit hook.
  void MarkTxnWrite() { txn_wrote_ = true; }

  /// Start a transaction if none is open (implicit otherwise).
  Status EnsureTxn();

  /// Session variables (SET name = value).
  void SetVar(const std::string& name, const std::string& value);
  std::string GetVar(const std::string& name) const;

  /// DISCARD ALL: drop every piece of SQL-visible session state — variables
  /// and prepared statements — returning the backend to a neutral state a
  /// transaction pooler can hand to a different client. Backend-local
  /// resource caches (extension_state: worker connections, plan cache) are
  /// deliberately retained; they carry no client-visible semantics and
  /// keeping them warm is what makes pooled backends cheap to recycle.
  void DiscardAll() {
    vars_.clear();
    prepared_.clear();
  }

  /// An execution context bound to the current transaction, with a fresh
  /// statement snapshot.
  ExecContext MakeExecContext(const std::vector<sql::Datum>* params);

  /// Arbitrary per-session extension state (the Citus layer hangs its
  /// connection/transaction bookkeeping here). Destroyed with the session.
  std::shared_ptr<void> extension_state;

  /// The prepared statement currently being EXECUTEd, if any. The planner
  /// hook uses this to attach/reuse its generic plan across executions.
  PreparedStatement* active_prepared() { return active_prepared_; }

  /// The session's prepared statements, keyed by name (read-only view).
  const std::map<std::string, PreparedStatement>& prepared_statements() const {
    return prepared_;
  }

  Rng& rng() { return rng_; }

 private:
  Result<QueryResult> ExecuteTxnStmt(const sql::TxnStmt& stmt);
  Result<QueryResult> ExecutePrepare(const sql::PrepareStmt& stmt);
  Result<QueryResult> ExecutePrepared(const sql::ExecuteStmt& stmt,
                                      const std::vector<sql::Datum>& params);
  Result<QueryResult> ExecuteDeallocate(const sql::DeallocateStmt& stmt);
  Result<QueryResult> ExecuteUtility(const sql::Statement& stmt);
  Result<QueryResult> DispatchStatement(const sql::Statement& stmt,
                                        const std::vector<sql::Datum>& params);
  Status CommitTxn();
  void AbortTxn();
  /// Wrap statement execution with implicit-transaction + error semantics.
  Result<QueryResult> RunInTxn(
      const std::function<Result<QueryResult>()>& body);

  Node* node_;
  TxnId txn_ = storage::kInvalidTxn;
  bool explicit_txn_ = false;
  bool txn_aborted_ = false;
  bool txn_wrote_ = false;
  std::map<std::string, std::string> vars_;
  std::map<std::string, PreparedStatement> prepared_;
  PreparedStatement* active_prepared_ = nullptr;
  /// Open "worker execution" span of the statement in flight (traced
  /// statements only); execution contexts parent pipeline spans under it.
  obs::TraceId active_trace_ = 0;
  obs::SpanId active_span_ = 0;
  Rng rng_;
};

}  // namespace citusx::engine

#endif  // CITUSX_ENGINE_SESSION_H_
