#include "engine/catalog.h"

#include <mutex>

namespace citusx::engine {

Result<TableInfo*> Catalog::CreateTable(
    const std::string& name, sql::Schema schema,
    const std::vector<std::string>& primary_key, bool columnar) {
  std::lock_guard<OrderedMutex> guard(catalog_mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  for (const auto& pk_col : primary_key) {
    if (schema.FindColumn(pk_col) < 0) {
      return Status::InvalidArgument("primary key column not found: " + pk_col);
    }
  }
  auto info = std::make_unique<TableInfo>();
  info->name = name;
  info->oid = next_oid_++;
  info->primary_key = primary_key;
  if (columnar) {
    if (!primary_key.empty()) {
      return Status::NotSupported("columnar tables do not support primary keys");
    }
    info->columnar = std::make_unique<storage::ColumnarTable>(
        info->oid, std::move(schema), pool_);
  } else {
    info->heap =
        std::make_unique<storage::HeapTable>(info->oid, std::move(schema), pool_);
  }
  TableInfo* ptr = info.get();
  tables_[name] = std::move(info);
  if (!primary_key.empty()) {
    auto idx = CreateBtreeIndexLocked(name, name + "_pkey", primary_key,
                                      /*unique=*/true);
    if (!idx.ok()) {
      tables_.erase(name);
      return idx.status();
    }
    ptr->pk_index = (*idx)->btree.get();
  }
  return ptr;
}

Result<IndexInfo*> Catalog::CreateBtreeIndex(
    const std::string& table, const std::string& index_name,
    const std::vector<std::string>& columns, bool unique) {
  std::lock_guard<OrderedMutex> guard(catalog_mu_);
  return CreateBtreeIndexLocked(table, index_name, columns, unique);
}

Result<IndexInfo*> Catalog::CreateBtreeIndexLocked(
    const std::string& table, const std::string& index_name,
    const std::vector<std::string>& columns, bool unique) {
  TableInfo* info = FindLocked(table);
  if (info == nullptr) {
    return Status::NotFound("relation \"" + table + "\" does not exist");
  }
  if (info->is_columnar()) {
    return Status::NotSupported("columnar tables do not support indexes");
  }
  for (const auto& idx : info->indexes) {
    if (idx->name == index_name) {
      return Status::AlreadyExists("index already exists: " + index_name);
    }
  }
  std::vector<int> key_cols;
  for (const auto& c : columns) {
    int pos = info->schema().FindColumn(c);
    if (pos < 0) {
      return Status::InvalidArgument("index column not found: " + c);
    }
    key_cols.push_back(pos);
  }
  auto idx = std::make_unique<IndexInfo>();
  idx->name = index_name;
  idx->unique = unique;
  idx->column_names = columns;
  idx->btree = std::make_unique<storage::BtreeIndex>(next_oid_++, key_cols,
                                                     unique, pool_);
  IndexInfo* ptr = idx.get();
  info->indexes.push_back(std::move(idx));
  return ptr;
}

Result<IndexInfo*> Catalog::CreateGinIndex(const std::string& table,
                                           const std::string& index_name,
                                           sql::ExprPtr expression) {
  std::lock_guard<OrderedMutex> guard(catalog_mu_);
  TableInfo* info = FindLocked(table);
  if (info == nullptr) {
    return Status::NotFound("relation \"" + table + "\" does not exist");
  }
  if (info->is_columnar()) {
    return Status::NotSupported("columnar tables do not support indexes");
  }
  for (const auto& idx : info->indexes) {
    if (idx->name == index_name) {
      return Status::AlreadyExists("index already exists: " + index_name);
    }
  }
  auto idx = std::make_unique<IndexInfo>();
  idx->name = index_name;
  idx->gin = std::make_unique<storage::GinTrgmIndex>(next_oid_++, pool_);
  idx->expression = std::move(expression);
  IndexInfo* ptr = idx.get();
  info->indexes.push_back(std::move(idx));
  return ptr;
}

Status Catalog::DropTable(const std::string& name) {
  // Detach under the lock; release storage outside it (pure memory today,
  // but keeps the critical section minimal).
  std::unique_ptr<TableInfo> detached;
  {
    std::lock_guard<OrderedMutex> guard(catalog_mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table does not exist: " + name);
    }
    detached = std::move(it->second);
    tables_.erase(it);
  }
  if (detached->heap != nullptr) detached->heap->Truncate();
  if (detached->columnar != nullptr) detached->columnar->Truncate();
  for (auto& idx : detached->indexes) {
    if (idx->btree) idx->btree->Truncate();
    if (idx->gin) idx->gin->Truncate();
  }
  return Status::OK();
}

TableInfo* Catalog::FindLocked(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

TableInfo* Catalog::Find(const std::string& name) {
  std::lock_guard<OrderedMutex> guard(catalog_mu_);
  return FindLocked(name);
}

const TableInfo* Catalog::Find(const std::string& name) const {
  std::lock_guard<OrderedMutex> guard(catalog_mu_);
  return FindLocked(name);
}

Result<TableInfo*> Catalog::Get(const std::string& name) {
  std::lock_guard<OrderedMutex> guard(catalog_mu_);
  TableInfo* info = FindLocked(name);
  if (info == nullptr) {
    return Status::NotFound("relation \"" + name + "\" does not exist");
  }
  return info;
}

std::vector<TableInfo*> Catalog::AllTables() {
  std::lock_guard<OrderedMutex> guard(catalog_mu_);
  std::vector<TableInfo*> out;
  for (auto& [name, info] : tables_) out.push_back(info.get());
  return out;
}

}  // namespace citusx::engine
