// Execution engine: push-model plan nodes over MVCC storage.
//
// Each node streams rows into a sink callback; blocking operators (sort,
// hash join build, aggregation) materialize internally. CPU time is charged
// in batches against the node's simulated cores; I/O is charged by the
// storage layer through the buffer pool.
#ifndef CITUSX_ENGINE_EXEC_H_
#define CITUSX_ENGINE_EXEC_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/catalog.h"
#include "engine/locks.h"
#include "engine/txn.h"
#include "obs/trace.h"
#include "sim/cost_model.h"
#include "sim/resources.h"
#include "sql/ast.h"
#include "sql/eval.h"

namespace citusx::engine {

/// Result of executing one statement.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<sql::TypeId> column_types;
  std::vector<sql::Row> rows;
  int64_t rows_affected = 0;
  std::string command_tag;  // "SELECT", "INSERT", ...

  int64_t NumRows() const { return static_cast<int64_t>(rows.size()); }
};

/// An in-memory relation (used for intermediate results in distributed
/// plans and for VALUES).
struct TempRelation {
  std::vector<std::string> column_names;
  std::vector<sql::TypeId> column_types;
  std::vector<sql::Row> rows;
};

class ExecNode;
struct ExecContext;

/// An alternative plan executor (the vectorized engine in src/exec).
/// Consulted by ExecuteSelect after planning: returns a result to take over
/// execution of the plan tree, or nullopt to fall through to the volcano
/// path (unsupported plan shape). Registered per node via
/// Node::set_batch_executor.
using BatchExecutor =
    std::function<Result<std::optional<QueryResult>>(ExecNode&, ExecContext&)>;

/// Runtime context threaded through execution.
struct ExecContext {
  sim::Simulation* sim = nullptr;
  sim::CpuResource* cpu = nullptr;
  const sim::CostModel* cost = nullptr;
  Catalog* catalog = nullptr;
  TxnManager* txns = nullptr;
  LockManager* locks = nullptr;
  TxnId txn = storage::kInvalidTxn;
  Snapshot snapshot;
  const std::vector<sql::Datum>* params = nullptr;
  Rng* rng = nullptr;

  /// True when the session allows the registered batch executor to take
  /// over plan execution (citus.use_vectorized_executor GUC; sessions
  /// default it on).
  bool vectorize = true;

  /// The node's registered batch executor; nullptr or empty = volcano only.
  const BatchExecutor* batch_exec = nullptr;

  /// Active trace of the statement (EXPLAIN ANALYZE propagation): the batch
  /// executor parents its per-pipeline spans under `parent_span`. Null
  /// tracer = tracing off.
  obs::TraceCollector* tracer = nullptr;
  obs::TraceId trace = 0;
  obs::SpanId parent_span = 0;

  sql::EvalContext EvalCtx(const sql::Row* row) const {
    sql::EvalContext ec;
    ec.row = row;
    ec.params = params;
    ec.rng = rng;
    return ec;
  }

  /// Accumulate CPU nanoseconds; charged against the cores in batches.
  Status ChargeCpu(int64_t ns);
  /// Charge any accumulated remainder (call at statement end).
  Status FlushCpu();

  int64_t pending_cpu_ = 0;
};

/// Sink invoked per output row; return false to stop early (LIMIT).
using RowSink = std::function<Result<bool>(sql::Row&)>;

class ExecNode {
 public:
  virtual ~ExecNode() = default;
  /// Stream all output rows into `sink`.
  virtual Status Execute(ExecContext& ctx, const RowSink& sink) = 0;

  /// For transparent wrapper nodes: the child EXPLAIN should descend into.
  virtual const ExecNode* explain_child() const { return nullptr; }

  // Output layout metadata, filled by the planner.
  std::vector<std::string> output_names;
  std::vector<sql::TypeId> output_types;
};

using ExecNodePtr = std::unique_ptr<ExecNode>;

/// Sequential heap/columnar scan with optional filter, row locking
/// (FOR UPDATE / DML), and a hidden trailing rowid column for DML.
class SeqScanNode : public ExecNode {
 public:
  TableInfo* table = nullptr;
  sql::ExprPtr filter;  // bound; may be null
  bool lock_rows = false;
  bool emit_rowid = false;
  std::vector<int> projection;  // columnar scans: referenced column indexes

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

/// B-tree index scan: equality on a key prefix or a range on the first
/// key column, plus residual filter.
class IndexScanNode : public ExecNode {
 public:
  TableInfo* table = nullptr;
  storage::BtreeIndex* index = nullptr;
  std::vector<sql::ExprPtr> equal_keys;  // bound exprs for key prefix
  sql::ExprPtr range_lo, range_hi;       // bound; either may be null
  bool lo_inclusive = true, hi_inclusive = true;
  sql::ExprPtr filter;  // residual, bound against table row
  bool lock_rows = false;
  bool emit_rowid = false;

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

/// Trigram GIN index scan for LIKE/ILIKE '%literal%' patterns.
class GinScanNode : public ExecNode {
 public:
  TableInfo* table = nullptr;
  storage::GinTrgmIndex* index = nullptr;
  sql::ExprPtr pattern;  // bound expr producing the pattern text
  sql::ExprPtr filter;   // full predicate recheck, bound against table row
  bool emit_rowid = false;

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

/// Scan over an in-memory relation (intermediate results, VALUES).
class TempScanNode : public ExecNode {
 public:
  const TempRelation* relation = nullptr;
  sql::ExprPtr filter;

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

/// Emits exactly one empty row (SELECT without FROM).
class OneRowNode : public ExecNode {
 public:
  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

/// Evaluates target expressions over each input row.
class ProjectNode : public ExecNode {
 public:
  ExecNodePtr input;
  std::vector<sql::ExprPtr> exprs;  // bound against input layout

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

class FilterNode : public ExecNode {
 public:
  ExecNodePtr input;
  sql::ExprPtr predicate;  // bound against input layout

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

/// Hash join; output = left columns ++ right columns. Right side is built
/// into a hash table.
class HashJoinNode : public ExecNode {
 public:
  ExecNodePtr left;   // probe
  ExecNodePtr right;  // build
  std::vector<sql::ExprPtr> left_keys;   // bound against left layout
  std::vector<sql::ExprPtr> right_keys;  // bound against right layout
  sql::ExprPtr residual;  // bound against combined layout; may be null
  sql::JoinType join_type = sql::JoinType::kInner;

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

/// Nested-loop join for non-equi conditions; right side materialized.
class NestLoopJoinNode : public ExecNode {
 public:
  ExecNodePtr left;
  ExecNodePtr right;
  sql::ExprPtr predicate;  // bound against combined layout; may be null
  sql::JoinType join_type = sql::JoinType::kInner;

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

/// One aggregate call within an AggNode.
struct AggSpec {
  std::string func;  // count/sum/avg/min/max
  sql::ExprPtr arg;  // bound; null for count(*)
  bool distinct = false;
};

/// Hash aggregation. Output = group exprs ++ aggregate results. With no
/// group exprs produces exactly one row.
class AggNode : public ExecNode {
 public:
  ExecNodePtr input;
  std::vector<sql::ExprPtr> group_exprs;  // bound against input
  std::vector<AggSpec> aggs;

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

class SortNode : public ExecNode {
 public:
  ExecNodePtr input;
  std::vector<int> sort_slots;  // into input layout
  std::vector<bool> desc;

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

class LimitNode : public ExecNode {
 public:
  ExecNodePtr input;
  int64_t limit = -1;   // -1 = none
  int64_t offset = 0;

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

class DistinctNode : public ExecNode {
 public:
  ExecNodePtr input;

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

/// Drops the trailing `count` hidden columns (added for sorting).
class StripColumnsNode : public ExecNode {
 public:
  ExecNodePtr input;
  int keep = 0;

  Status Execute(ExecContext& ctx, const RowSink& sink) override;
};

/// Collect all rows of a plan into a QueryResult.
Result<QueryResult> CollectRows(ExecNode& plan, ExecContext& ctx);

/// EXPLAIN output: an indented description of a plan tree.
std::string ExplainPlan(const ExecNode& root);

// ---- shared helpers used by scans and DML ----

/// Lock a row and return its latest live version, rechecking `filter`
/// against it (read-committed semantics after a lock wait). Returns the row
/// (without lock) or nullopt if the row no longer qualifies.
Result<std::optional<sql::Row>> LockAndRecheck(ExecContext& ctx,
                                               TableInfo* table,
                                               storage::RowId rid,
                                               const sql::ExprPtr& filter);

/// Insert a row into a table, maintaining all indexes and enforcing unique
/// constraints. Charges CPU and I/O.
Status InsertRowWithIndexes(ExecContext& ctx, TableInfo* table, sql::Row row,
                            bool on_conflict_do_nothing, bool* inserted);

/// Index maintenance for a new row version created by UPDATE. Entries are
/// only added for keys that changed (HOT-style; unchanged keys already have
/// an entry pointing at this version chain).
Status IndexNewVersion(ExecContext& ctx, TableInfo* table, storage::RowId rid,
                       const sql::Row& old_row, const sql::Row& new_row);

}  // namespace citusx::engine

#endif  // CITUSX_ENGINE_EXEC_H_
