#include "engine/exec.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/str.h"
#include "sql/deparser.h"

namespace citusx::engine {

namespace {
// Flush threshold: one simulated CPU charge per ~200us of work.
constexpr int64_t kCpuFlushNs = 200 * 1000;
}  // namespace

Status ExecContext::ChargeCpu(int64_t ns) {
  pending_cpu_ += ns;
  if (pending_cpu_ >= kCpuFlushNs) return FlushCpu();
  return Status::OK();
}

Status ExecContext::FlushCpu() {
  if (pending_cpu_ <= 0) return Status::OK();
  int64_t ns = pending_cpu_;
  pending_cpu_ = 0;
  if (cpu != nullptr && !cpu->Consume(ns)) {
    return Status::Cancelled("simulation stopping");
  }
  return Status::OK();
}

// ---- row-level helpers ----

Result<std::optional<sql::Row>> LockAndRecheck(ExecContext& ctx,
                                               TableInfo* table,
                                               storage::RowId rid,
                                               const sql::ExprPtr& filter) {
  CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
  CITUSX_RETURN_IF_ERROR(
      ctx.locks->Acquire(LockTag{table->oid, rid}, ctx.txn, LockMode::kExclusive));
  const storage::TupleVersion* latest =
      table->heap->LatestVersion(rid, *ctx.txns);
  if (latest == nullptr) return std::optional<sql::Row>();
  // Deleted by a committed transaction (or pending delete by another txn that
  // must have committed for us to get the lock)?
  if (latest->xmax != storage::kInvalidTxn && latest->xmax != ctx.txn &&
      !ctx.txns->IsAborted(latest->xmax)) {
    return std::optional<sql::Row>();
  }
  if (filter != nullptr) {
    auto ec = ctx.EvalCtx(&latest->row);
    CITUSX_ASSIGN_OR_RETURN(bool keep, sql::EvalPredicate(*filter, ec));
    if (!keep) return std::optional<sql::Row>();
  }
  return std::optional<sql::Row>(latest->row);
}

namespace {

// Evaluate a GIN index expression for a row; empty string when NULL.
Result<std::string> GinTextForRow(ExecContext& ctx, const IndexInfo& idx,
                                  const sql::Row& row) {
  auto ec = ctx.EvalCtx(&row);
  CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*idx.expression, ec));
  return v.is_null() ? std::string() : v.ToText();
}

// True if a unique-key conflict exists among live versions.
Result<bool> UniqueConflict(ExecContext& ctx, TableInfo* table,
                            storage::BtreeIndex* index,
                            const storage::IndexKey& key) {
  bool has_null = false;
  for (const auto& d : key) has_null = has_null || d.is_null();
  if (has_null) return false;  // NULLs never conflict
  std::vector<storage::RowId> candidates;
  if (!index->EqualRange(key, &candidates)) {
    return Status::Cancelled("simulation stopping");
  }
  for (storage::RowId rid : candidates) {
    const storage::TupleVersion* latest =
        table->heap->LatestVersion(rid, *ctx.txns);
    if (latest == nullptr) continue;
    if (latest->xmax != storage::kInvalidTxn &&
        !ctx.txns->IsAborted(latest->xmax)) {
      continue;  // deleted (possibly pending; simplification, see README)
    }
    // Re-verify the key matches (index entries can be stale).
    storage::IndexKey actual = index->KeyFromRow(latest->row);
    if (actual.size() == key.size()) {
      bool equal = true;
      for (size_t i = 0; i < key.size(); i++) {
        if (sql::Datum::Compare(actual[i], key[i]) != 0) equal = false;
      }
      if (equal) return true;
    }
  }
  return false;
}

}  // namespace

Status InsertRowWithIndexes(ExecContext& ctx, TableInfo* table, sql::Row row,
                            bool on_conflict_do_nothing, bool* inserted) {
  if (inserted != nullptr) *inserted = false;
  CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_row_insert));
  if (table->is_columnar()) {
    CITUSX_RETURN_IF_ERROR(table->columnar->Insert(std::move(row), ctx.txn));
    if (inserted != nullptr) *inserted = true;
    return Status::OK();
  }
  // Unique checks first.
  for (const auto& idx : table->indexes) {
    if (idx->btree == nullptr || !idx->unique) continue;
    storage::IndexKey key = idx->btree->KeyFromRow(row);
    CITUSX_ASSIGN_OR_RETURN(bool conflict,
                            UniqueConflict(ctx, table, idx->btree.get(), key));
    if (conflict) {
      if (on_conflict_do_nothing) return Status::OK();
      return Status::AlreadyExists(
          StrFormat("duplicate key value violates unique constraint \"%s\"",
                    idx->name.c_str()));
    }
  }
  CITUSX_ASSIGN_OR_RETURN(storage::RowId rid,
                          table->heap->Insert(std::move(row), ctx.txn));
  // Maintain indexes; reread the stored row (moved above).
  const storage::TupleVersion* stored =
      table->heap->LatestVersion(rid, *ctx.txns);
  if (stored == nullptr) return Status::Internal("inserted row vanished");
  sql::Row row_copy = stored->row;
  for (const auto& idx : table->indexes) {
    if (idx->btree != nullptr) {
      CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_index_insert));
      idx->btree->Insert(idx->btree->KeyFromRow(row_copy), rid);
    } else if (idx->gin != nullptr) {
      CITUSX_ASSIGN_OR_RETURN(std::string text,
                              GinTextForRow(ctx, *idx, row_copy));
      int64_t postings = idx->gin->Insert(text, rid);
      CITUSX_RETURN_IF_ERROR(
          ctx.ChargeCpu(postings * ctx.cost->cpu_per_trgm_insert));
    }
  }
  if (inserted != nullptr) *inserted = true;
  return Status::OK();
}

Status IndexNewVersion(ExecContext& ctx, TableInfo* table, storage::RowId rid,
                       const sql::Row& old_row, const sql::Row& new_row) {
  for (const auto& idx : table->indexes) {
    if (idx->btree != nullptr) {
      storage::IndexKey new_key = idx->btree->KeyFromRow(new_row);
      storage::IndexKey old_key = idx->btree->KeyFromRow(old_row);
      // HOT-style optimization: an unchanged key already has an entry
      // pointing at this version chain.
      bool same = new_key.size() == old_key.size();
      for (size_t i = 0; same && i < new_key.size(); i++) {
        same = sql::Datum::Compare(new_key[i], old_key[i]) == 0 &&
               new_key[i].is_null() == old_key[i].is_null();
      }
      if (same) continue;
      CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_index_insert));
      idx->btree->Insert(new_key, rid);
    } else if (idx->gin != nullptr) {
      CITUSX_ASSIGN_OR_RETURN(std::string old_text,
                              GinTextForRow(ctx, *idx, old_row));
      CITUSX_ASSIGN_OR_RETURN(std::string text,
                              GinTextForRow(ctx, *idx, new_row));
      if (old_text == text) continue;
      int64_t postings = idx->gin->Insert(text, rid);
      CITUSX_RETURN_IF_ERROR(
          ctx.ChargeCpu(postings * ctx.cost->cpu_per_trgm_insert));
    }
  }
  return Status::OK();
}

// ---- scans ----

namespace {

// Shared per-candidate-row logic for heap scans: visibility, filter,
// locking, rowid projection. Returns false (in the bool) to stop.
Result<bool> EmitHeapRow(ExecContext& ctx, TableInfo* table,
                         storage::RowId rid, const sql::ExprPtr& filter,
                         bool lock_rows, bool emit_rowid,
                         const RowSink& sink) {
  CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_row_scan));
  if (!table->heap->TouchRow(rid, /*dirty=*/false)) {
    return Status::Cancelled("simulation stopping");
  }
  const storage::TupleVersion* v =
      table->heap->VisibleVersion(rid, ctx.snapshot, *ctx.txns);
  if (v == nullptr) return true;
  if (filter != nullptr) {
    CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_expr_eval));
    auto ec = ctx.EvalCtx(&v->row);
    CITUSX_ASSIGN_OR_RETURN(bool keep, sql::EvalPredicate(*filter, ec));
    if (!keep) return true;
  }
  sql::Row out;
  if (lock_rows) {
    CITUSX_ASSIGN_OR_RETURN(std::optional<sql::Row> locked,
                            LockAndRecheck(ctx, table, rid, filter));
    if (!locked.has_value()) return true;
    out = std::move(*locked);
  } else {
    out = v->row;
  }
  if (emit_rowid) out.push_back(sql::Datum::Int8(static_cast<int64_t>(rid)));
  return sink(out);
}

}  // namespace

Status SeqScanNode::Execute(ExecContext& ctx, const RowSink& sink) {
  if (table->is_columnar()) {
    if (lock_rows || emit_rowid) {
      return Status::NotSupported(
          "UPDATE/DELETE are not supported on columnar tables");
    }
    Status inner_status;
    bool finished = table->columnar->Scan(
        ctx.snapshot, *ctx.txns, projection, [&](const sql::Row& row) {
          Status s = ctx.ChargeCpu(ctx.cost->cpu_per_row_scan);
          if (!s.ok()) {
            inner_status = s;
            return false;
          }
          if (filter != nullptr) {
            auto ec = ctx.EvalCtx(&row);
            auto keep = sql::EvalPredicate(*filter, ec);
            if (!keep.ok()) {
              inner_status = keep.status();
              return false;
            }
            if (!*keep) return true;
          }
          sql::Row copy = row;
          auto cont = sink(copy);
          if (!cont.ok()) {
            inner_status = cont.status();
            return false;
          }
          return *cont;
        });
    if (!inner_status.ok()) return inner_status;
    if (!finished && inner_status.ok()) return Status::OK();
    return Status::OK();
  }
  storage::RowId n = table->heap->num_rows();
  for (storage::RowId rid = 0; rid < n; rid++) {
    CITUSX_ASSIGN_OR_RETURN(
        bool cont,
        EmitHeapRow(ctx, table, rid, filter, lock_rows, emit_rowid, sink));
    if (!cont) break;
  }
  return Status::OK();
}

Status IndexScanNode::Execute(ExecContext& ctx, const RowSink& sink) {
  CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_index_lookup));
  std::vector<storage::RowId> candidates;
  if (!equal_keys.empty()) {
    storage::IndexKey key;
    for (const auto& e : equal_keys) {
      auto ec = ctx.EvalCtx(nullptr);
      CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*e, ec));
      key.push_back(std::move(v));
    }
    CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
    if (!index->EqualRange(key, &candidates)) {
      return Status::Cancelled("simulation stopping");
    }
  } else {
    sql::Datum lo_v, hi_v;
    bool has_lo = false, has_hi = false;
    auto ec = ctx.EvalCtx(nullptr);
    if (range_lo != nullptr) {
      CITUSX_ASSIGN_OR_RETURN(lo_v, sql::Eval(*range_lo, ec));
      has_lo = true;
    }
    if (range_hi != nullptr) {
      CITUSX_ASSIGN_OR_RETURN(hi_v, sql::Eval(*range_hi, ec));
      has_hi = true;
    }
    CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
    if (!index->Range(has_lo ? &lo_v : nullptr, lo_inclusive,
                      has_hi ? &hi_v : nullptr, hi_inclusive, &candidates)) {
      return Status::Cancelled("simulation stopping");
    }
  }
  // Stale entries can produce duplicate rids; each logical row is visited
  // once.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (storage::RowId rid : candidates) {
    CITUSX_ASSIGN_OR_RETURN(
        bool cont,
        EmitHeapRow(ctx, table, rid, filter, lock_rows, emit_rowid, sink));
    if (!cont) break;
  }
  return Status::OK();
}

Status GinScanNode::Execute(ExecContext& ctx, const RowSink& sink) {
  auto ec = ctx.EvalCtx(nullptr);
  CITUSX_ASSIGN_OR_RETURN(sql::Datum pat, sql::Eval(*pattern, ec));
  if (pat.is_null()) return Status::OK();
  auto trigrams = storage::GinTrgmIndex::PatternTrigrams(pat.ToText());
  if (trigrams.empty()) {
    return Status::Internal("gin scan planned without extractable trigrams");
  }
  CITUSX_RETURN_IF_ERROR(
      ctx.ChargeCpu(static_cast<int64_t>(trigrams.size()) *
                    ctx.cost->cpu_per_index_lookup));
  CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
  std::vector<storage::RowId> candidates;
  if (!index->Candidates(trigrams, &candidates)) {
    return Status::Cancelled("simulation stopping");
  }
  for (storage::RowId rid : candidates) {
    // Rechecking a candidate re-evaluates the JSONB path expression and the
    // pattern match against the document: far more expensive than a plain
    // predicate.
    CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_gin_recheck));
    CITUSX_ASSIGN_OR_RETURN(
        bool cont, EmitHeapRow(ctx, table, rid, filter, /*lock_rows=*/false,
                               emit_rowid, sink));
    if (!cont) break;
  }
  return Status::OK();
}

Status TempScanNode::Execute(ExecContext& ctx, const RowSink& sink) {
  for (const auto& row : relation->rows) {
    CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_row_scan));
    if (filter != nullptr) {
      auto ec = ctx.EvalCtx(&row);
      CITUSX_ASSIGN_OR_RETURN(bool keep, sql::EvalPredicate(*filter, ec));
      if (!keep) continue;
    }
    sql::Row copy = row;
    CITUSX_ASSIGN_OR_RETURN(bool cont, sink(copy));
    if (!cont) break;
  }
  return Status::OK();
}

Status OneRowNode::Execute(ExecContext& ctx, const RowSink& sink) {
  sql::Row empty;
  return sink(empty).status();
}

Status ProjectNode::Execute(ExecContext& ctx, const RowSink& sink) {
  return input->Execute(ctx, [&](sql::Row& in) -> Result<bool> {
    CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(
        static_cast<int64_t>(exprs.size()) * ctx.cost->cpu_per_expr_eval));
    sql::Row out;
    out.reserve(exprs.size());
    auto ec = ctx.EvalCtx(&in);
    for (const auto& e : exprs) {
      CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*e, ec));
      out.push_back(std::move(v));
    }
    return sink(out);
  });
}

Status FilterNode::Execute(ExecContext& ctx, const RowSink& sink) {
  return input->Execute(ctx, [&](sql::Row& in) -> Result<bool> {
    CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_expr_eval));
    auto ec = ctx.EvalCtx(&in);
    CITUSX_ASSIGN_OR_RETURN(bool keep, sql::EvalPredicate(*predicate, ec));
    if (!keep) return true;
    return sink(in);
  });
}

namespace {
Result<std::string> RowKey(ExecContext& ctx,
                           const std::vector<sql::ExprPtr>& keys,
                           const sql::Row& row) {
  std::string out;
  auto ec = ctx.EvalCtx(&row);
  for (const auto& k : keys) {
    CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*k, ec));
    if (v.is_null()) return std::string();  // NULL keys never join
    out += v.GroupKey();
    out.push_back('\x1f');
  }
  return out;
}
}  // namespace

Status HashJoinNode::Execute(ExecContext& ctx, const RowSink& sink) {
  // Build phase over the right input.
  std::unordered_map<std::string, std::vector<sql::Row>> table;
  CITUSX_RETURN_IF_ERROR(
      right->Execute(ctx, [&](sql::Row& row) -> Result<bool> {
        CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_row_hash));
        CITUSX_ASSIGN_OR_RETURN(std::string key,
                                RowKey(ctx, right_keys, row));
        if (!key.empty()) table[key].push_back(std::move(row));
        return true;
      }));
  size_t right_width = right->output_types.size();
  // Probe phase.
  return left->Execute(ctx, [&](sql::Row& lrow) -> Result<bool> {
    CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_row_hash));
    CITUSX_ASSIGN_OR_RETURN(std::string key, RowKey(ctx, left_keys, lrow));
    bool matched = false;
    if (!key.empty()) {
      auto it = table.find(key);
      if (it != table.end()) {
        for (const auto& rrow : it->second) {
          sql::Row combined = lrow;
          combined.insert(combined.end(), rrow.begin(), rrow.end());
          if (residual != nullptr) {
            auto ec = ctx.EvalCtx(&combined);
            CITUSX_ASSIGN_OR_RETURN(bool keep,
                                    sql::EvalPredicate(*residual, ec));
            if (!keep) continue;
          }
          matched = true;
          CITUSX_ASSIGN_OR_RETURN(bool cont, sink(combined));
          if (!cont) return false;
        }
      }
    }
    if (!matched && join_type == sql::JoinType::kLeft) {
      sql::Row combined = lrow;
      combined.resize(lrow.size() + right_width);  // NULL-padded
      return sink(combined);
    }
    return true;
  });
}

Status NestLoopJoinNode::Execute(ExecContext& ctx, const RowSink& sink) {
  std::vector<sql::Row> inner;
  CITUSX_RETURN_IF_ERROR(
      right->Execute(ctx, [&](sql::Row& row) -> Result<bool> {
        inner.push_back(std::move(row));
        return true;
      }));
  size_t right_width = right->output_types.size();
  return left->Execute(ctx, [&](sql::Row& lrow) -> Result<bool> {
    bool matched = false;
    for (const auto& rrow : inner) {
      CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_expr_eval));
      sql::Row combined = lrow;
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      if (predicate != nullptr) {
        auto ec = ctx.EvalCtx(&combined);
        CITUSX_ASSIGN_OR_RETURN(bool keep, sql::EvalPredicate(*predicate, ec));
        if (!keep) continue;
      }
      matched = true;
      CITUSX_ASSIGN_OR_RETURN(bool cont, sink(combined));
      if (!cont) return false;
    }
    if (!matched && join_type == sql::JoinType::kLeft) {
      sql::Row combined = lrow;
      combined.resize(lrow.size() + right_width);
      return sink(combined);
    }
    return true;
  });
}

namespace {

struct AggState {
  int64_t count = 0;
  double sum_f = 0;
  int64_t sum_i = 0;
  bool sum_is_float = false;
  bool any = false;
  sql::Datum min_max;
  std::set<std::string> distinct_seen;
};

void AggTransition(const AggSpec& spec, const sql::Datum& v, AggState* st) {
  if (spec.func == "count") {
    st->count++;
    return;
  }
  st->any = true;
  if (spec.func == "sum" || spec.func == "avg") {
    st->count++;
    if (v.type() == sql::TypeId::kFloat8) {
      st->sum_is_float = true;
      st->sum_f += v.float_value();
    } else {
      st->sum_i += v.AsInt64();
      st->sum_f += static_cast<double>(v.AsInt64());
    }
    return;
  }
  if (spec.func == "min") {
    if (st->min_max.is_null() || sql::Datum::Compare(v, st->min_max) < 0) {
      st->min_max = v;
    }
    return;
  }
  if (spec.func == "max") {
    if (st->min_max.is_null() || sql::Datum::Compare(v, st->min_max) > 0) {
      st->min_max = v;
    }
    return;
  }
}

sql::Datum AggFinal(const AggSpec& spec, const AggState& st) {
  if (spec.func == "count") return sql::Datum::Int8(st.count);
  if (spec.func == "sum") {
    if (!st.any) return sql::Datum::Null();
    return st.sum_is_float ? sql::Datum::Float8(st.sum_f)
                           : sql::Datum::Int8(st.sum_i);
  }
  if (spec.func == "avg") {
    if (st.count == 0) return sql::Datum::Null();
    return sql::Datum::Float8(st.sum_f / static_cast<double>(st.count));
  }
  return st.min_max;  // min/max; NULL when no input
}

}  // namespace

Status AggNode::Execute(ExecContext& ctx, const RowSink& sink) {
  struct Group {
    sql::Row keys;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups;
  CITUSX_RETURN_IF_ERROR(
      input->Execute(ctx, [&](sql::Row& row) -> Result<bool> {
        CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_row_hash));
        auto ec = ctx.EvalCtx(&row);
        std::string key;
        sql::Row key_vals;
        for (const auto& g : group_exprs) {
          CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*g, ec));
          key += v.GroupKey();
          key.push_back('\x1f');
          key_vals.push_back(std::move(v));
        }
        auto [it, added] = groups.try_emplace(key);
        if (added) {
          it->second.keys = std::move(key_vals);
          it->second.states.resize(aggs.size());
        }
        for (size_t i = 0; i < aggs.size(); i++) {
          const AggSpec& spec = aggs[i];
          sql::Datum v;
          if (spec.arg != nullptr) {
            CITUSX_ASSIGN_OR_RETURN(v, sql::Eval(*spec.arg, ec));
            if (v.is_null()) continue;  // aggregates skip NULLs
          }
          if (spec.distinct && spec.arg != nullptr) {
            std::string dkey = v.GroupKey();
            if (!it->second.states[i].distinct_seen.insert(dkey).second) {
              continue;
            }
          }
          AggTransition(spec, v, &it->second.states[i]);
        }
        return true;
      }));
  if (groups.empty() && group_exprs.empty()) {
    // Aggregate over empty input: one row of "empty" aggregates.
    Group g;
    g.states.resize(aggs.size());
    groups.emplace("", std::move(g));
  }
  for (auto& [key, g] : groups) {
    sql::Row out = g.keys;
    for (size_t i = 0; i < aggs.size(); i++) {
      out.push_back(AggFinal(aggs[i], g.states[i]));
    }
    CITUSX_ASSIGN_OR_RETURN(bool cont, sink(out));
    if (!cont) break;
  }
  return Status::OK();
}

Status SortNode::Execute(ExecContext& ctx, const RowSink& sink) {
  std::vector<sql::Row> rows;
  CITUSX_RETURN_IF_ERROR(
      input->Execute(ctx, [&](sql::Row& row) -> Result<bool> {
        rows.push_back(std::move(row));
        return true;
      }));
  CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(static_cast<int64_t>(rows.size()) *
                                       ctx.cost->cpu_per_row_sort));
  std::stable_sort(rows.begin(), rows.end(),
                   [this](const sql::Row& a, const sql::Row& b) {
                     for (size_t i = 0; i < sort_slots.size(); i++) {
                       size_t s = static_cast<size_t>(sort_slots[i]);
                       int c = sql::Datum::Compare(a[s], b[s]);
                       if (c != 0) return desc[i] ? c > 0 : c < 0;
                     }
                     return false;
                   });
  for (auto& row : rows) {
    CITUSX_ASSIGN_OR_RETURN(bool cont, sink(row));
    if (!cont) break;
  }
  return Status::OK();
}

Status LimitNode::Execute(ExecContext& ctx, const RowSink& sink) {
  int64_t skipped = 0, emitted = 0;
  return input->Execute(ctx, [&](sql::Row& row) -> Result<bool> {
    if (skipped < offset) {
      skipped++;
      return true;
    }
    if (limit >= 0 && emitted >= limit) return false;
    emitted++;
    CITUSX_ASSIGN_OR_RETURN(bool cont, sink(row));
    if (!cont) return false;
    return limit < 0 || emitted < limit;
  });
}

Status DistinctNode::Execute(ExecContext& ctx, const RowSink& sink) {
  std::set<std::string> seen;
  return input->Execute(ctx, [&](sql::Row& row) -> Result<bool> {
    CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_row_hash));
    std::string key;
    for (const auto& d : row) {
      key += d.GroupKey();
      key.push_back('\x1f');
    }
    if (!seen.insert(key).second) return true;
    return sink(row);
  });
}

Status StripColumnsNode::Execute(ExecContext& ctx, const RowSink& sink) {
  return input->Execute(ctx, [&](sql::Row& row) -> Result<bool> {
    row.resize(static_cast<size_t>(keep));
    return sink(row);
  });
}

namespace {

void ExplainNode(const ExecNode* n, int depth, std::string* out) {
  if (n == nullptr) return;
  if (const ExecNode* child = n->explain_child(); child != nullptr) {
    ExplainNode(child, depth, out);
    return;
  }
  out->append(static_cast<size_t>(depth) * 2, ' ');
  auto line = [&](const std::string& text) {
    out->append(text);
    out->push_back('\n');
  };
  if (auto* s = dynamic_cast<const SeqScanNode*>(n)) {
    line(StrFormat("Seq Scan on %s%s%s", s->table->name.c_str(),
                   s->table->is_columnar() ? " (columnar)" : "",
                   s->filter ? ("  Filter: " +
                                sql::DeparseExpr(*s->filter)).c_str()
                             : ""));
  } else if (auto* i = dynamic_cast<const IndexScanNode*>(n)) {
    line(StrFormat("Index Scan on %s using %zu-column index%s",
                   i->table->name.c_str(), i->index->key_columns().size(),
                   i->equal_keys.empty() ? " (range)" : ""));
  } else if (auto* g = dynamic_cast<const GinScanNode*>(n)) {
    line(StrFormat("Bitmap Scan on %s using trigram index, pattern %s",
                   g->table->name.c_str(),
                   sql::DeparseExpr(*g->pattern).c_str()));
  } else if (dynamic_cast<const TempScanNode*>(n) != nullptr) {
    line("Scan on intermediate result");
  } else if (dynamic_cast<const OneRowNode*>(n) != nullptr) {
    line("Result (one row)");
  } else if (auto* p = dynamic_cast<const ProjectNode*>(n)) {
    line(StrFormat("Project (%zu columns)", p->exprs.size()));
    ExplainNode(p->input.get(), depth + 1, out);
  } else if (auto* f = dynamic_cast<const FilterNode*>(n)) {
    line("Filter: " + sql::DeparseExpr(*f->predicate));
    ExplainNode(f->input.get(), depth + 1, out);
  } else if (auto* hj = dynamic_cast<const HashJoinNode*>(n)) {
    line(StrFormat("Hash %s Join (%zu key(s))",
                   hj->join_type == sql::JoinType::kLeft ? "Left" : "Inner",
                   hj->left_keys.size()));
    ExplainNode(hj->left.get(), depth + 1, out);
    ExplainNode(hj->right.get(), depth + 1, out);
  } else if (auto* nl = dynamic_cast<const NestLoopJoinNode*>(n)) {
    line(StrFormat("Nested Loop %s Join",
                   nl->join_type == sql::JoinType::kLeft ? "Left" : "Inner"));
    ExplainNode(nl->left.get(), depth + 1, out);
    ExplainNode(nl->right.get(), depth + 1, out);
  } else if (auto* a = dynamic_cast<const AggNode*>(n)) {
    line(StrFormat("%sAggregate (%zu aggregate(s))",
                   a->group_exprs.empty() ? "" : "Group", a->aggs.size()));
    ExplainNode(a->input.get(), depth + 1, out);
  } else if (auto* so = dynamic_cast<const SortNode*>(n)) {
    line(StrFormat("Sort (%zu key(s))", so->sort_slots.size()));
    ExplainNode(so->input.get(), depth + 1, out);
  } else if (auto* l = dynamic_cast<const LimitNode*>(n)) {
    line(StrFormat("Limit %lld offset %lld",
                   static_cast<long long>(l->limit),
                   static_cast<long long>(l->offset)));
    ExplainNode(l->input.get(), depth + 1, out);
  } else if (auto* d = dynamic_cast<const DistinctNode*>(n)) {
    line("Distinct");
    ExplainNode(d->input.get(), depth + 1, out);
  } else if (auto* st = dynamic_cast<const StripColumnsNode*>(n)) {
    ExplainNode(st->input.get(), depth, out);  // invisible plumbing
    out->resize(out->size());
  } else {
    line("?node");
  }
}

}  // namespace

std::string ExplainPlan(const ExecNode& root) {
  std::string out;
  ExplainNode(&root, 0, &out);
  return out;
}

Result<QueryResult> CollectRows(ExecNode& plan, ExecContext& ctx) {
  QueryResult result;
  result.column_names = plan.output_names;
  result.column_types = plan.output_types;
  CITUSX_RETURN_IF_ERROR(plan.Execute(ctx, [&](sql::Row& row) -> Result<bool> {
    result.rows.push_back(std::move(row));
    return true;
  }));
  CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
  result.rows_affected = result.NumRows();
  result.command_tag = "SELECT";
  return result;
}

}  // namespace citusx::engine
