// Lock manager: row- and table-level locks with FIFO queues, simulated
// blocking, wait-graph export (for local and distributed deadlock detection),
// and waiter cancellation (how deadlock victims are killed).
#ifndef CITUSX_ENGINE_LOCKS_H_
#define CITUSX_ENGINE_LOCKS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sim/simulation.h"
#include "storage/heap.h"
#include "storage/mvcc.h"

namespace citusx::engine {

using storage::TxnId;

/// What is being locked: a row of a table, or the whole table.
struct LockTag {
  uint64_t oid = 0;
  storage::RowId rid = kTableRid;

  static constexpr storage::RowId kTableRid = ~storage::RowId{0};

  bool is_table_lock() const { return rid == kTableRid; }
  bool operator==(const LockTag& o) const {
    return oid == o.oid && rid == o.rid;
  }
};

struct LockTagHash {
  size_t operator()(const LockTag& t) const {
    return static_cast<size_t>(t.oid * 0x9e3779b97f4a7c15ULL + t.rid);
  }
};

enum class LockMode : uint8_t { kShared, kExclusive };

/// An edge in the wait-for graph: `waiter` waits for `holder`.
struct WaitEdge {
  TxnId waiter;
  TxnId holder;
};

class LockManager {
 public:
  explicit LockManager(sim::Simulation* sim) : sim_(sim) {}

  /// Acquire (blocking in virtual time). Reentrant for the same transaction.
  /// Returns Deadlock if this waiter is cancelled as a deadlock victim, or
  /// Cancelled on simulation shutdown.
  Status Acquire(const LockTag& tag, TxnId txn, LockMode mode);

  /// Release everything held by `txn` and grant unblocked waiters.
  void ReleaseAll(TxnId txn);

  /// Cancel `txn` if it is currently waiting for a lock. Returns true if a
  /// waiter was cancelled.
  bool CancelWaiter(TxnId txn);

  /// Current wait-for edges (one per waiter/holder pair).
  std::vector<WaitEdge> WaitEdges() const;

  /// True if `txn` currently waits for a lock.
  bool IsWaiting(TxnId txn) const;

  int64_t locks_held() const;

  /// Mirror lock waits / wait time / deadlock cancellations into a registry.
  void BindMetrics(obs::Metrics* metrics) {
    waits_metric_ = metrics->counter("locks.waits");
    wait_time_metric_ = metrics->histogram("locks.wait_time");
    deadlocks_metric_ = metrics->counter("locks.deadlock_cancels");
  }

 private:
  struct Waiter {
    TxnId txn;
    LockMode mode;
    sim::Process* process;
    bool granted = false;
    bool cancelled = false;
  };
  struct LockState {
    std::map<TxnId, LockMode> holders;
    std::deque<std::shared_ptr<Waiter>> queue;
  };

  bool CanGrantLocked(const LockState& state, TxnId txn, LockMode mode) const;
  void GrantWaiters(LockState* state);

  sim::Simulation* sim_;
  /// Guards locks_ and held_by_txn_ (plus the Waiter flags reachable from
  /// them). Never held across a simulation yield: Acquire drops it before
  /// blocking and re-takes it to inspect its waiter entry.
  mutable OrderedMutex lock_table_mu_{LockRank::kLockTable};
  std::unordered_map<LockTag, LockState, LockTagHash> locks_;
  std::unordered_map<TxnId, std::vector<LockTag>> held_by_txn_;
  obs::Counter* waits_metric_ = nullptr;
  obs::Histogram* wait_time_metric_ = nullptr;
  obs::Counter* deadlocks_metric_ = nullptr;
};

}  // namespace citusx::engine

#endif  // CITUSX_ENGINE_LOCKS_H_
