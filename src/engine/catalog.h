// Per-node catalog: tables, indexes, storage objects.
#ifndef CITUSX_ENGINE_CATALOG_H_
#define CITUSX_ENGINE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/status.h"
#include "sql/ast.h"
#include "storage/columnar.h"
#include "storage/heap.h"
#include "storage/index.h"

namespace citusx::engine {

/// One secondary index (B-tree or trigram GIN over an expression).
struct IndexInfo {
  std::string name;
  bool unique = false;
  std::vector<std::string> column_names;       // btree key columns
  std::unique_ptr<storage::BtreeIndex> btree;  // exactly one of btree/gin set
  std::unique_ptr<storage::GinTrgmIndex> gin;
  sql::ExprPtr expression;  // gin: text expression over the row
};

/// One table: either heap (default) or columnar storage.
struct TableInfo {
  std::string name;
  uint64_t oid = 0;
  std::unique_ptr<storage::HeapTable> heap;
  std::unique_ptr<storage::ColumnarTable> columnar;
  std::vector<std::unique_ptr<IndexInfo>> indexes;
  std::vector<std::string> primary_key;
  storage::BtreeIndex* pk_index = nullptr;  // owned by indexes

  const sql::Schema& schema() const {
    return heap != nullptr ? heap->schema() : columnar->schema();
  }
  bool is_columnar() const { return columnar != nullptr; }
  int64_t data_bytes() const {
    return heap != nullptr ? heap->data_bytes() : columnar->data_bytes();
  }
};

class Catalog {
 public:
  explicit Catalog(storage::BufferPool* pool) : pool_(pool) {}

  /// Create a heap (or columnar) table with optional primary-key index.
  Result<TableInfo*> CreateTable(const std::string& name, sql::Schema schema,
                                 const std::vector<std::string>& primary_key,
                                 bool columnar = false);

  Result<IndexInfo*> CreateBtreeIndex(const std::string& table,
                                      const std::string& index_name,
                                      const std::vector<std::string>& columns,
                                      bool unique);

  Result<IndexInfo*> CreateGinIndex(const std::string& table,
                                    const std::string& index_name,
                                    sql::ExprPtr expression);

  Status DropTable(const std::string& name);

  /// nullptr if absent.
  TableInfo* Find(const std::string& name);
  const TableInfo* Find(const std::string& name) const;

  Result<TableInfo*> Get(const std::string& name);

  std::vector<TableInfo*> AllTables();

  uint64_t NextOid() {
    std::lock_guard<OrderedMutex> guard(catalog_mu_);
    return next_oid_++;
  }

 private:
  TableInfo* FindLocked(const std::string& name) const;
  Result<IndexInfo*> CreateBtreeIndexLocked(
      const std::string& table, const std::string& index_name,
      const std::vector<std::string>& columns, bool unique);

  /// Guards the table registry and the oid counter — not row data, which is
  /// protected by MVCC plus the lock manager. Critical sections are pure
  /// memory manipulation (no simulated I/O), so the mutex is never held
  /// across a simulation yield.
  mutable OrderedMutex catalog_mu_{LockRank::kCatalog};
  storage::BufferPool* pool_;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
  uint64_t next_oid_ = 1000;
};

}  // namespace citusx::engine

#endif  // CITUSX_ENGINE_CATALOG_H_
