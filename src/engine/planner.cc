#include "engine/planner.h"

#include "engine/hooks.h"

#include <algorithm>
#include <set>

#include "common/str.h"
#include "sql/deparser.h"
#include "sql/parser.h"

namespace citusx::engine {

namespace {

using sql::BinOp;
using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::TypeId;

// ---- scopes ----

struct ScopeColumn {
  std::string qualifier;  // table alias (or name); empty for derived
  std::string name;
  TypeId type = TypeId::kNull;
};

struct Scope {
  std::vector<ScopeColumn> cols;

  // Returns slot or -1; sets *ambiguous when multiple candidates match.
  int Find(const std::string& qualifier, const std::string& name,
           bool* ambiguous) const {
    int found = -1;
    *ambiguous = false;
    for (size_t i = 0; i < cols.size(); i++) {
      if (!qualifier.empty() && cols[i].qualifier != qualifier) continue;
      if (cols[i].name != name) continue;
      if (found >= 0) {
        *ambiguous = true;
        return found;
      }
      found = static_cast<int>(i);
    }
    return found;
  }

  std::vector<TypeId> Types() const {
    std::vector<TypeId> out;
    for (const auto& c : cols) out.push_back(c.type);
    return out;
  }
};

Scope ConcatScopes(const Scope& a, const Scope& b) {
  Scope out = a;
  out.cols.insert(out.cols.end(), b.cols.begin(), b.cols.end());
  return out;
}

// Bind column references in `e` against `scope`. Column refs inside the tree
// get their slot assigned (previous bindings are overwritten).
Status BindExpr(const ExprPtr& e, const Scope& scope) {
  if (e == nullptr) return Status::OK();
  if (e->kind == ExprKind::kColumnRef) {
    bool ambiguous = false;
    int slot = scope.Find(e->table, e->column, &ambiguous);
    if (ambiguous) {
      return Status::InvalidArgument("column reference is ambiguous: " +
                                     e->column);
    }
    if (slot < 0) {
      return Status::InvalidArgument(
          "column \"" + (e->table.empty() ? e->column
                                          : e->table + "." + e->column) +
          "\" does not exist");
    }
    e->slot = slot;
    return Status::OK();
  }
  if (e->kind == ExprKind::kStar) {
    return Status::InvalidArgument("* is not allowed in this context");
  }
  for (const auto& a : e->args) CITUSX_RETURN_IF_ERROR(BindExpr(a, scope));
  return Status::OK();
}

// True if all column refs in e can be bound in scope (non-mutating check).
bool CanBind(const ExprPtr& e, const Scope& scope) {
  if (e == nullptr) return true;
  bool ok = true;
  sql::WalkExpr(e, [&](const Expr& x) {
    if (x.kind == ExprKind::kColumnRef) {
      bool amb = false;
      if (scope.Find(x.table, x.column, &amb) < 0) ok = false;
    }
  });
  return ok;
}

bool HasColumnRefs(const ExprPtr& e) {
  return sql::ExprContains(
      e, [](const Expr& x) { return x.kind == ExprKind::kColumnRef; });
}

std::string DeriveName(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return e.column;
    case ExprKind::kFunc:
    case ExprKind::kAgg:
      return e.func_name;
    case ExprKind::kCast:
      return DeriveName(*e.args[0]);
    default:
      return "?column?";
  }
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const auto& c : conjuncts) {
    out = out == nullptr ? c : sql::MakeBinary(BinOp::kAnd, out, c);
  }
  return out;
}

// ---- per-table access path selection ----

struct PlannedRel {
  ExecNodePtr node;
  Scope scope;
};

// Referenced columns of a base table (for columnar projection pruning):
// computed from the whole statement by qualifier/name matching.
std::vector<int> ReferencedColumns(const sql::SelectStmt& stmt,
                                   const std::string& qualifier,
                                   const sql::Schema& schema) {
  std::set<int> used;
  bool star = false;
  auto visit = [&](const ExprPtr& e) {
    sql::WalkExpr(e, [&](const Expr& x) {
      if (x.kind == ExprKind::kStar) star = true;
      if (x.kind == ExprKind::kColumnRef &&
          (x.table.empty() || x.table == qualifier)) {
        int c = schema.FindColumn(x.column);
        if (c >= 0) used.insert(c);
      }
    });
  };
  for (const auto& t : stmt.targets) visit(t.expr);
  visit(stmt.where);
  for (const auto& g : stmt.group_by) visit(g);
  visit(stmt.having);
  for (const auto& o : stmt.order_by) visit(o.expr);
  if (star) return {};  // all columns
  return {used.begin(), used.end()};
}

// Build the best scan for `table` given filter conjuncts bound against its
// scope. Consumes `conjuncts`.
Result<ExecNodePtr> BuildScan(TableInfo* table, const Scope& scope,
                              std::vector<ExprPtr> conjuncts,
                              const std::vector<int>& columnar_projection,
                              bool lock_rows, bool emit_rowid) {
  // Classify conjuncts: equality col=value, range on col, like/ilike.
  struct Equality {
    int col;
    ExprPtr value;
    size_t conjunct_idx;
  };
  std::vector<Equality> equalities;
  struct RangeCond {
    int col;
    ExprPtr value;
    BinOp op;
    size_t conjunct_idx;
  };
  std::vector<RangeCond> ranges;
  for (size_t i = 0; i < conjuncts.size(); i++) {
    const ExprPtr& c = conjuncts[i];
    if (c->kind != ExprKind::kBinary) continue;
    BinOp op = c->bin_op;
    bool is_eq = op == BinOp::kEq;
    bool is_range = op == BinOp::kLt || op == BinOp::kLe || op == BinOp::kGt ||
                    op == BinOp::kGe;
    if (!is_eq && !is_range) continue;
    ExprPtr col_side = c->args[0], val_side = c->args[1];
    bool flipped = false;
    if (col_side->kind != ExprKind::kColumnRef ||
        HasColumnRefs(val_side)) {
      std::swap(col_side, val_side);
      flipped = true;
    }
    if (col_side->kind != ExprKind::kColumnRef || HasColumnRefs(val_side)) {
      continue;
    }
    int slot = col_side->slot;
    if (is_eq) {
      equalities.push_back(Equality{slot, val_side, i});
    } else {
      BinOp effective = op;
      if (flipped) {
        // value OP col  ==>  col OP' value
        effective = op == BinOp::kLt   ? BinOp::kGt
                    : op == BinOp::kLe ? BinOp::kGe
                    : op == BinOp::kGt ? BinOp::kLt
                                       : BinOp::kLe;
      }
      ranges.push_back(RangeCond{slot, val_side, effective, i});
    }
  }

  if (!table->is_columnar()) {
    // 1) Longest equality prefix over any B-tree index (unique first).
    IndexInfo* best_index = nullptr;
    std::vector<ExprPtr> best_keys;
    std::set<size_t> best_used;
    int best_score = 0;
    for (const auto& idx : table->indexes) {
      if (idx->btree == nullptr) continue;
      std::vector<ExprPtr> keys;
      std::set<size_t> used;
      for (int key_col : idx->btree->key_columns()) {
        bool found = false;
        for (const auto& eq : equalities) {
          if (eq.col == key_col) {
            keys.push_back(eq.value);
            used.insert(eq.conjunct_idx);
            found = true;
            break;
          }
        }
        if (!found) break;
      }
      if (keys.empty()) continue;
      int score = static_cast<int>(keys.size()) * 2;
      if (idx->unique &&
          keys.size() == idx->btree->key_columns().size()) {
        score += 100;
      }
      if (score > best_score) {
        best_score = score;
        best_index = idx.get();
        best_keys = std::move(keys);
        best_used = std::move(used);
      }
    }
    if (best_index != nullptr) {
      auto scan = std::make_unique<IndexScanNode>();
      scan->table = table;
      scan->index = best_index->btree.get();
      scan->equal_keys = std::move(best_keys);
      // Index entries can be stale (they reference version chains, not
      // versions), so the full predicate is always rechecked.
      scan->filter = AndAll(conjuncts);
      scan->lock_rows = lock_rows;
      scan->emit_rowid = emit_rowid;
      return ExecNodePtr(std::move(scan));
    }
    // 2) Trigram GIN for LIKE/ILIKE '%literal%'.
    for (size_t i = 0; i < conjuncts.size(); i++) {
      const ExprPtr& c = conjuncts[i];
      if (c->kind != ExprKind::kBinary ||
          (c->bin_op != BinOp::kLike && c->bin_op != BinOp::kILike)) {
        continue;
      }
      if (c->args[1]->kind != ExprKind::kConst) continue;
      auto trigrams = storage::GinTrgmIndex::PatternTrigrams(
          c->args[1]->value.ToText());
      if (trigrams.empty()) continue;
      for (const auto& idx : table->indexes) {
        if (idx->gin == nullptr) continue;
        if (!ExprEquals(idx->expression, c->args[0])) continue;
        auto scan = std::make_unique<GinScanNode>();
        scan->table = table;
        scan->index = idx->gin.get();
        scan->pattern = c->args[1];
        scan->filter = AndAll(conjuncts);  // full recheck
        scan->emit_rowid = emit_rowid;
        if (lock_rows) break;  // gin scans don't lock; fall through to seq
        return ExecNodePtr(std::move(scan));
      }
    }
    // 3) Range scan on the first column of an index.
    for (const auto& idx : table->indexes) {
      if (idx->btree == nullptr) continue;
      int first_col = idx->btree->key_columns()[0];
      ExprPtr lo, hi;
      bool lo_inc = true, hi_inc = true;
      std::set<size_t> used;
      for (const auto& r : ranges) {
        if (r.col != first_col) continue;
        if ((r.op == BinOp::kGt || r.op == BinOp::kGe) && lo == nullptr) {
          lo = r.value;
          lo_inc = r.op == BinOp::kGe;
          used.insert(r.conjunct_idx);
        } else if ((r.op == BinOp::kLt || r.op == BinOp::kLe) &&
                   hi == nullptr) {
          hi = r.value;
          hi_inc = r.op == BinOp::kLe;
          used.insert(r.conjunct_idx);
        }
      }
      if (lo == nullptr && hi == nullptr) continue;
      auto scan = std::make_unique<IndexScanNode>();
      scan->table = table;
      scan->index = idx->btree.get();
      scan->range_lo = lo;
      scan->range_hi = hi;
      scan->lo_inclusive = lo_inc;
      scan->hi_inclusive = hi_inc;
      // Keep range conjuncts in the residual too: index entries may be stale.
      scan->filter = AndAll(conjuncts);
      scan->lock_rows = lock_rows;
      scan->emit_rowid = emit_rowid;
      return ExecNodePtr(std::move(scan));
    }
  }
  // 4) Sequential scan.
  auto scan = std::make_unique<SeqScanNode>();
  scan->table = table;
  scan->filter = AndAll(conjuncts);
  scan->lock_rows = lock_rows;
  scan->emit_rowid = emit_rowid;
  scan->projection = columnar_projection;
  return ExecNodePtr(std::move(scan));
}

// ---- the planner ----

class SelectPlanner {
 public:
  SelectPlanner(const sql::SelectStmt& stmt, const PlannerInput& input)
      : stmt_(stmt), input_(input) {}

  Result<ExecNodePtr> Plan();

 private:
  Result<PlannedRel> PlanTableRef(const sql::TableRef& ref,
                                  std::vector<ExprPtr>* conjuncts);
  Result<PlannedRel> PlanBaseTable(const sql::TableRef& ref,
                                   std::vector<ExprPtr>* conjuncts);
  Result<PlannedRel> JoinRels(PlannedRel left, PlannedRel right,
                              sql::JoinType type,
                              std::vector<ExprPtr> join_conjuncts);

  // Rewrites expr for evaluation above the aggregation node: group exprs
  // become column refs, aggregate calls get result slots.
  Status RewriteForAgg(const ExprPtr& e, const Scope& input_scope,
                       const std::vector<ExprPtr>& bound_groups,
                       std::vector<AggSpec>* aggs, bool inside_agg);

  const sql::SelectStmt& stmt_;
  const PlannerInput& input_;
};

Result<PlannedRel> SelectPlanner::PlanBaseTable(
    const sql::TableRef& ref, std::vector<ExprPtr>* conjuncts) {
  std::string qualifier = ref.alias.empty() ? ref.name : ref.alias;
  // Temp relations (distributed intermediate results) take precedence.
  if (input_.temp_relations != nullptr) {
    auto it = input_.temp_relations->find(ref.name);
    if (it != input_.temp_relations->end()) {
      const TempRelation* rel = it->second;
      PlannedRel out;
      for (size_t i = 0; i < rel->column_names.size(); i++) {
        out.scope.cols.push_back(
            ScopeColumn{qualifier, rel->column_names[i], rel->column_types[i]});
      }
      auto node = std::make_unique<TempScanNode>();
      node->relation = rel;
      // Pull applicable conjuncts into the scan filter.
      std::vector<ExprPtr> mine;
      for (auto it2 = conjuncts->begin(); it2 != conjuncts->end();) {
        if (CanBind(*it2, out.scope)) {
          CITUSX_RETURN_IF_ERROR(BindExpr(*it2, out.scope));
          mine.push_back(*it2);
          it2 = conjuncts->erase(it2);
        } else {
          ++it2;
        }
      }
      node->filter = AndAll(mine);
      for (const auto& c : out.scope.cols) {
        node->output_names.push_back(c.name);
        node->output_types.push_back(c.type);
      }
      out.node = std::move(node);
      return out;
    }
  }
  CITUSX_ASSIGN_OR_RETURN(TableInfo * table, input_.catalog->Get(ref.name));
  PlannedRel out;
  for (const auto& col : table->schema().columns) {
    out.scope.cols.push_back(ScopeColumn{qualifier, col.name, col.type});
  }
  std::vector<ExprPtr> mine;
  for (auto it = conjuncts->begin(); it != conjuncts->end();) {
    if (CanBind(*it, out.scope)) {
      CITUSX_RETURN_IF_ERROR(BindExpr(*it, out.scope));
      mine.push_back(*it);
      it = conjuncts->erase(it);
    } else {
      ++it;
    }
  }
  std::vector<int> projection =
      table->is_columnar() ? ReferencedColumns(stmt_, qualifier, table->schema())
                           : std::vector<int>();
  CITUSX_ASSIGN_OR_RETURN(
      ExecNodePtr node,
      BuildScan(table, out.scope, std::move(mine), projection,
                stmt_.for_update, /*emit_rowid=*/false));
  for (const auto& c : out.scope.cols) {
    node->output_names.push_back(c.name);
    node->output_types.push_back(c.type);
  }
  out.node = std::move(node);
  return out;
}

Result<PlannedRel> SelectPlanner::JoinRels(PlannedRel left, PlannedRel right,
                                           sql::JoinType type,
                                           std::vector<ExprPtr> join_conjuncts) {
  Scope combined = ConcatScopes(left.scope, right.scope);
  // Find equi-join keys: conjunct a = b with a from one side only, b from
  // the other.
  std::vector<ExprPtr> left_keys, right_keys, residual;
  for (const auto& c : join_conjuncts) {
    bool is_equi = false;
    if (c->kind == ExprKind::kBinary && c->bin_op == BinOp::kEq) {
      const ExprPtr& a = c->args[0];
      const ExprPtr& b = c->args[1];
      if (CanBind(a, left.scope) && CanBind(b, right.scope) &&
          HasColumnRefs(a) && HasColumnRefs(b)) {
        CITUSX_RETURN_IF_ERROR(BindExpr(a, left.scope));
        CITUSX_RETURN_IF_ERROR(BindExpr(b, right.scope));
        left_keys.push_back(a);
        right_keys.push_back(b);
        is_equi = true;
      } else if (CanBind(b, left.scope) && CanBind(a, right.scope) &&
                 HasColumnRefs(a) && HasColumnRefs(b)) {
        CITUSX_RETURN_IF_ERROR(BindExpr(b, left.scope));
        CITUSX_RETURN_IF_ERROR(BindExpr(a, right.scope));
        left_keys.push_back(b);
        right_keys.push_back(a);
        is_equi = true;
      }
    }
    if (!is_equi) {
      CITUSX_RETURN_IF_ERROR(BindExpr(c, combined));
      residual.push_back(c);
    }
  }
  PlannedRel out;
  out.scope = combined;
  std::vector<std::string> names;
  std::vector<TypeId> types;
  for (const auto& c : combined.cols) {
    names.push_back(c.name);
    types.push_back(c.type);
  }
  if (!left_keys.empty()) {
    auto join = std::make_unique<HashJoinNode>();
    join->left = std::move(left.node);
    join->right = std::move(right.node);
    join->left_keys = std::move(left_keys);
    join->right_keys = std::move(right_keys);
    join->residual = AndAll(residual);
    join->join_type = type;
    join->output_names = std::move(names);
    join->output_types = std::move(types);
    out.node = std::move(join);
  } else {
    auto join = std::make_unique<NestLoopJoinNode>();
    join->left = std::move(left.node);
    join->right = std::move(right.node);
    join->predicate = AndAll(residual);
    join->join_type = type;
    join->output_names = std::move(names);
    join->output_types = std::move(types);
    out.node = std::move(join);
  }
  return out;
}

Result<PlannedRel> SelectPlanner::PlanTableRef(
    const sql::TableRef& ref, std::vector<ExprPtr>* conjuncts) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kTable:
      return PlanBaseTable(ref, conjuncts);
    case sql::TableRef::Kind::kSubquery: {
      CITUSX_ASSIGN_OR_RETURN(ExecNodePtr sub,
                              PlanSelect(*ref.subquery, input_));
      PlannedRel out;
      for (size_t i = 0; i < sub->output_names.size(); i++) {
        out.scope.cols.push_back(ScopeColumn{
            ref.alias, sub->output_names[i], sub->output_types[i]});
      }
      // Applicable conjuncts become a FilterNode above the subquery.
      std::vector<ExprPtr> mine;
      for (auto it = conjuncts->begin(); it != conjuncts->end();) {
        if (CanBind(*it, out.scope)) {
          CITUSX_RETURN_IF_ERROR(BindExpr(*it, out.scope));
          mine.push_back(*it);
          it = conjuncts->erase(it);
        } else {
          ++it;
        }
      }
      if (!mine.empty()) {
        auto filter = std::make_unique<FilterNode>();
        filter->predicate = AndAll(mine);
        filter->output_names = sub->output_names;
        filter->output_types = sub->output_types;
        filter->input = std::move(sub);
        sub = std::move(filter);
      }
      out.node = std::move(sub);
      return out;
    }
    case sql::TableRef::Kind::kJoin: {
      CITUSX_ASSIGN_OR_RETURN(PlannedRel left,
                              PlanTableRef(*ref.left, conjuncts));
      CITUSX_ASSIGN_OR_RETURN(PlannedRel right,
                              PlanTableRef(*ref.right, conjuncts));
      std::vector<ExprPtr> on_conjuncts;
      SplitConjuncts(ref.on, &on_conjuncts);
      // For INNER joins, WHERE conjuncts spanning both sides can join here.
      if (ref.join_type == sql::JoinType::kInner) {
        Scope combined = ConcatScopes(left.scope, right.scope);
        for (auto it = conjuncts->begin(); it != conjuncts->end();) {
          if (CanBind(*it, combined)) {
            on_conjuncts.push_back(*it);
            it = conjuncts->erase(it);
          } else {
            ++it;
          }
        }
      }
      return JoinRels(std::move(left), std::move(right), ref.join_type,
                      std::move(on_conjuncts));
    }
  }
  return Status::Internal("bad table ref");
}

Status SelectPlanner::RewriteForAgg(const ExprPtr& e, const Scope& input_scope,
                                    const std::vector<ExprPtr>& bound_groups,
                                    std::vector<AggSpec>* aggs,
                                    bool inside_agg) {
  if (e == nullptr) return Status::OK();
  // Whole-subtree match against a GROUP BY expression?
  if (!inside_agg) {
    for (size_t i = 0; i < bound_groups.size(); i++) {
      if (ExprEquals(e, bound_groups[i])) {
        // Rewrite in place into a column ref over the agg output.
        std::string name = DeriveName(*e);
        e->kind = ExprKind::kColumnRef;
        e->args.clear();
        e->table.clear();
        e->column = name;
        e->slot = static_cast<int>(i);
        return Status::OK();
      }
    }
  }
  if (e->kind == ExprKind::kAgg && !inside_agg) {
    // Bind the argument against the pre-aggregation scope and register.
    AggSpec spec;
    spec.func = e->func_name;
    spec.distinct = e->agg_distinct;
    if (!e->agg_star && !e->args.empty()) {
      CITUSX_RETURN_IF_ERROR(BindExpr(e->args[0], input_scope));
      spec.arg = e->args[0];
    }
    // Dedupe identical aggregate calls.
    int found = -1;
    for (size_t i = 0; i < aggs->size(); i++) {
      std::string other =
          (*aggs)[i].func + "/" + ((*aggs)[i].distinct ? "d" : "") +
          ((*aggs)[i].arg != nullptr ? sql::DeparseExpr(*(*aggs)[i].arg) : "*");
      std::string mine = spec.func + "/" + (spec.distinct ? "d" : "") +
                         (spec.arg != nullptr ? sql::DeparseExpr(*spec.arg)
                                              : "*");
      if (other == mine) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found < 0) {
      aggs->push_back(spec);
      found = static_cast<int>(aggs->size()) - 1;
    }
    e->slot = static_cast<int>(bound_groups.size()) + found;
    return Status::OK();
  }
  if (e->kind == ExprKind::kColumnRef) {
    if (inside_agg) return BindExpr(e, input_scope);
    return Status::InvalidArgument(
        "column \"" + e->column +
        "\" must appear in the GROUP BY clause or be used in an aggregate "
        "function");
  }
  for (const auto& a : e->args) {
    CITUSX_RETURN_IF_ERROR(RewriteForAgg(a, input_scope, bound_groups, aggs,
                                         inside_agg ||
                                             e->kind == ExprKind::kAgg));
  }
  return Status::OK();
}

Result<ExecNodePtr> SelectPlanner::Plan() {
  // 1. Plan FROM with WHERE conjunct pushdown.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(stmt_.where, &conjuncts);

  PlannedRel rel;
  if (stmt_.from.empty()) {
    rel.node = std::make_unique<OneRowNode>();
  } else {
    CITUSX_ASSIGN_OR_RETURN(rel, PlanTableRef(*stmt_.from[0], &conjuncts));
    for (size_t i = 1; i < stmt_.from.size(); i++) {
      CITUSX_ASSIGN_OR_RETURN(PlannedRel next,
                              PlanTableRef(*stmt_.from[i], &conjuncts));
      // Conjuncts spanning exactly these relations become join conditions.
      Scope combined = ConcatScopes(rel.scope, next.scope);
      std::vector<ExprPtr> joinable;
      for (auto it = conjuncts.begin(); it != conjuncts.end();) {
        if (CanBind(*it, combined)) {
          joinable.push_back(*it);
          it = conjuncts.erase(it);
        } else {
          ++it;
        }
      }
      CITUSX_ASSIGN_OR_RETURN(
          rel, JoinRels(std::move(rel), std::move(next), sql::JoinType::kInner,
                        std::move(joinable)));
    }
  }
  if (!conjuncts.empty()) {
    // Bind leftovers against the full scope (errors if truly unresolvable).
    for (const auto& c : conjuncts) {
      CITUSX_RETURN_IF_ERROR(BindExpr(c, rel.scope));
    }
    auto filter = std::make_unique<FilterNode>();
    filter->predicate = AndAll(conjuncts);
    filter->output_names = rel.node->output_names;
    filter->output_types = rel.node->output_types;
    filter->input = std::move(rel.node);
    rel.node = std::move(filter);
  }

  // 2. Expand SELECT * and clone targets (planning mutates expressions).
  std::vector<sql::SelectItem> targets;
  for (const auto& t : stmt_.targets) {
    if (t.expr->kind == ExprKind::kStar) {
      for (size_t i = 0; i < rel.scope.cols.size(); i++) {
        const auto& c = rel.scope.cols[i];
        if (!t.expr->table.empty() && c.qualifier != t.expr->table) continue;
        sql::SelectItem item;
        item.expr = sql::MakeColumnRef(c.qualifier, c.name);
        item.alias = c.name;
        targets.push_back(std::move(item));
      }
      continue;
    }
    sql::SelectItem item;
    item.expr = t.expr->Clone();
    item.alias = t.alias;
    targets.push_back(std::move(item));
  }

  // 3. Aggregation.
  bool has_agg = !stmt_.group_by.empty();
  for (const auto& t : targets) has_agg = has_agg || sql::ContainsAggregate(t.expr);
  if (stmt_.having != nullptr) has_agg = true;

  Scope project_scope = rel.scope;  // the scope targets are bound against
  ExprPtr having;
  std::vector<TypeId> pre_agg_types = rel.scope.Types();
  if (has_agg) {
    // Resolve GROUP BY items (positional or expressions).
    std::vector<ExprPtr> groups;
    for (const auto& g : stmt_.group_by) {
      ExprPtr expr = g->Clone();
      if (expr->kind == ExprKind::kConst &&
          sql::IsIntegral(expr->value.type())) {
        int pos = static_cast<int>(expr->value.int_value());
        if (pos < 1 || pos > static_cast<int>(targets.size())) {
          return Status::InvalidArgument("GROUP BY position out of range");
        }
        expr = targets[static_cast<size_t>(pos - 1)].expr->Clone();
      }
      CITUSX_RETURN_IF_ERROR(BindExpr(expr, rel.scope));
      groups.push_back(std::move(expr));
    }
    std::vector<AggSpec> aggs;
    for (auto& t : targets) {
      CITUSX_RETURN_IF_ERROR(
          RewriteForAgg(t.expr, rel.scope, groups, &aggs, false));
    }
    if (stmt_.having != nullptr) {
      having = stmt_.having->Clone();
      CITUSX_RETURN_IF_ERROR(
          RewriteForAgg(having, rel.scope, groups, &aggs, false));
    }
    auto agg = std::make_unique<AggNode>();
    agg->group_exprs = groups;
    agg->aggs = aggs;
    // Output layout: group values then agg results.
    Scope agg_scope;
    for (size_t i = 0; i < groups.size(); i++) {
      agg_scope.cols.push_back(
          ScopeColumn{"", StrFormat("g%zu", i),
                      sql::InferType(*groups[i], pre_agg_types)});
    }
    for (size_t i = 0; i < aggs.size(); i++) {
      TypeId t = TypeId::kInt8;
      if (aggs[i].func == "avg") {
        t = TypeId::kFloat8;
      } else if (aggs[i].arg != nullptr) {
        t = sql::InferType(*aggs[i].arg, pre_agg_types);
        if (aggs[i].func == "count") t = TypeId::kInt8;
      }
      agg_scope.cols.push_back(ScopeColumn{"", StrFormat("a%zu", i), t});
    }
    for (const auto& c : agg_scope.cols) {
      agg->output_names.push_back(c.name);
      agg->output_types.push_back(c.type);
    }
    agg->input = std::move(rel.node);
    rel.node = std::move(agg);
    rel.scope = agg_scope;
    project_scope = agg_scope;
  } else {
    for (auto& t : targets) {
      CITUSX_RETURN_IF_ERROR(BindExpr(t.expr, rel.scope));
    }
  }

  if (having != nullptr) {
    auto filter = std::make_unique<FilterNode>();
    filter->predicate = having;
    filter->output_names = rel.node->output_names;
    filter->output_types = rel.node->output_types;
    filter->input = std::move(rel.node);
    rel.node = std::move(filter);
  }

  // 4. Projection (plus hidden sort columns).
  std::vector<ExprPtr> project_exprs;
  std::vector<std::string> project_names;
  std::vector<TypeId> scope_types = project_scope.Types();
  for (const auto& t : targets) {
    project_exprs.push_back(t.expr);
    project_names.push_back(t.alias.empty() ? DeriveName(*t.expr) : t.alias);
  }
  int visible = static_cast<int>(project_exprs.size());

  // Resolve ORDER BY into sort slots over the projection output.
  std::vector<int> sort_slots;
  std::vector<bool> sort_desc;
  for (const auto& item : stmt_.order_by) {
    ExprPtr expr = item.expr->Clone();
    int slot = -1;
    if (expr->kind == ExprKind::kConst && sql::IsIntegral(expr->value.type())) {
      int pos = static_cast<int>(expr->value.int_value());
      if (pos < 1 || pos > visible) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      slot = pos - 1;
    } else if (expr->kind == ExprKind::kColumnRef && expr->table.empty()) {
      for (int i = 0; i < visible; i++) {
        if (project_names[static_cast<size_t>(i)] == expr->column) {
          slot = i;
          break;
        }
      }
    }
    if (slot < 0) {
      for (int i = 0; i < visible; i++) {
        if (ExprEquals(expr, project_exprs[static_cast<size_t>(i)])) {
          slot = i;
          break;
        }
      }
    }
    if (slot < 0) {
      // Hidden sort column computed from the projection input scope.
      if (has_agg) {
        std::vector<AggSpec> dummy;  // new aggs after agg node not allowed
        auto* agg_node = dynamic_cast<AggNode*>(
            having != nullptr
                ? static_cast<FilterNode*>(rel.node.get())->input.get()
                : rel.node.get());
        std::vector<AggSpec>* aggs =
            agg_node != nullptr ? &agg_node->aggs : &dummy;
        CITUSX_RETURN_IF_ERROR(RewriteForAgg(
            expr, project_scope /*unused for agg*/,
            agg_node != nullptr ? agg_node->group_exprs
                                : std::vector<ExprPtr>{},
            aggs, false));
      } else {
        CITUSX_RETURN_IF_ERROR(BindExpr(expr, project_scope));
      }
      if (stmt_.distinct) {
        return Status::NotSupported(
            "ORDER BY expressions must appear in the select list with "
            "DISTINCT");
      }
      project_exprs.push_back(expr);
      project_names.push_back("<sort>");
      slot = static_cast<int>(project_exprs.size()) - 1;
    }
    sort_slots.push_back(slot);
    sort_desc.push_back(item.desc);
  }

  auto project = std::make_unique<ProjectNode>();
  project->exprs = project_exprs;
  for (size_t i = 0; i < project_exprs.size(); i++) {
    project->output_names.push_back(project_names[i]);
    project->output_types.push_back(
        sql::InferType(*project_exprs[i], scope_types));
  }
  project->input = std::move(rel.node);
  ExecNodePtr top = std::move(project);

  if (stmt_.distinct) {
    auto d = std::make_unique<DistinctNode>();
    d->output_names = top->output_names;
    d->output_types = top->output_types;
    d->input = std::move(top);
    top = std::move(d);
  }

  if (!sort_slots.empty()) {
    auto sort = std::make_unique<SortNode>();
    sort->sort_slots = sort_slots;
    sort->desc = sort_desc;
    sort->output_names = top->output_names;
    sort->output_types = top->output_types;
    sort->input = std::move(top);
    top = std::move(sort);
  }
  if (static_cast<int>(top->output_names.size()) > visible) {
    auto strip = std::make_unique<StripColumnsNode>();
    strip->keep = visible;
    strip->output_names.assign(top->output_names.begin(),
                               top->output_names.begin() + visible);
    strip->output_types.assign(top->output_types.begin(),
                               top->output_types.begin() + visible);
    strip->input = std::move(top);
    top = std::move(strip);
  }

  if (stmt_.limit != nullptr || stmt_.offset != nullptr) {
    auto limit = std::make_unique<LimitNode>();
    sql::EvalContext ec;
    ec.params = input_.params;
    if (stmt_.limit != nullptr) {
      CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*stmt_.limit, ec));
      if (!v.is_null()) limit->limit = v.AsInt64();
    }
    if (stmt_.offset != nullptr) {
      CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*stmt_.offset, ec));
      if (!v.is_null()) limit->offset = v.AsInt64();
    }
    limit->output_names = top->output_names;
    limit->output_types = top->output_types;
    limit->input = std::move(top);
    top = std::move(limit);
  }
  return top;
}

}  // namespace

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->bin_op == BinOp::kAnd) {
    SplitConjuncts(e->args[0], out);
    SplitConjuncts(e->args[1], out);
    return;
  }
  out->push_back(e);
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == nullptr || b == nullptr) return a == b;
  return sql::DeparseExpr(*a) == sql::DeparseExpr(*b);
}

Result<ExecNodePtr> PlanSelect(const sql::SelectStmt& stmt,
                               const PlannerInput& input) {
  // Clone first: planning mutates expression slots.
  sql::SelectPtr cloned = stmt.Clone();
  SelectPlanner planner(*cloned, input);
  CITUSX_ASSIGN_OR_RETURN(ExecNodePtr plan, planner.Plan());
  // The cloned statement owns expressions referenced by the plan; keep it
  // alive by attaching it. (Simplest ownership: a wrapper node.)
  struct OwnerNode : ExecNode {
    ExecNodePtr inner;
    sql::SelectPtr owned;
    Status Execute(ExecContext& ctx, const RowSink& sink) override {
      return inner->Execute(ctx, sink);
    }
    const ExecNode* explain_child() const override { return inner.get(); }
  };
  auto owner = std::make_unique<OwnerNode>();
  owner->output_names = plan->output_names;
  owner->output_types = plan->output_types;
  owner->inner = std::move(plan);
  owner->owned = std::move(cloned);
  return ExecNodePtr(std::move(owner));
}

Result<QueryResult> ExplainStatement(const sql::Statement& stmt,
                                     const PlannerInput& input) {
  std::string text;
  switch (stmt.kind) {
    case sql::Statement::Kind::kSelect: {
      CITUSX_ASSIGN_OR_RETURN(ExecNodePtr plan, PlanSelect(*stmt.select, input));
      text = ExplainPlan(*plan);
      break;
    }
    case sql::Statement::Kind::kInsert:
      text = "Insert on " + stmt.insert->table + "\n";
      if (stmt.insert->select != nullptr) {
        CITUSX_ASSIGN_OR_RETURN(ExecNodePtr plan,
                                PlanSelect(*stmt.insert->select, input));
        text += ExplainPlan(*plan);
      }
      break;
    case sql::Statement::Kind::kUpdate:
    case sql::Statement::Kind::kDelete: {
      // Describe the qualifying scan by planning the WHERE as a SELECT.
      const std::string& table = stmt.kind == sql::Statement::Kind::kUpdate
                                     ? stmt.update->table
                                     : stmt.del->table;
      const sql::ExprPtr& where = stmt.kind == sql::Statement::Kind::kUpdate
                                      ? stmt.update->where
                                      : stmt.del->where;
      text = (stmt.kind == sql::Statement::Kind::kUpdate ? "Update on "
                                                         : "Delete on ") +
             table + "\n";
      sql::SelectStmt sel;
      sel.targets.push_back(sql::SelectItem{sql::MakeStar(), ""});
      auto ref = std::make_shared<sql::TableRef>();
      ref->kind = sql::TableRef::Kind::kTable;
      ref->name = table;
      sel.from.push_back(ref);
      sel.where = where;
      CITUSX_ASSIGN_OR_RETURN(ExecNodePtr plan, PlanSelect(sel, input));
      text += ExplainPlan(*plan);
      break;
    }
    default:
      return Status::NotSupported("EXPLAIN supports SELECT/DML only");
  }
  QueryResult out;
  out.column_names = {"QUERY PLAN"};
  out.column_types = {sql::TypeId::kText};
  for (const auto& line : SplitString(text, '\n')) {
    if (!line.empty()) out.rows.push_back({sql::Datum::Text(line)});
  }
  out.command_tag = "EXPLAIN";
  return out;
}

Result<QueryResult> ExecuteSelect(const sql::SelectStmt& stmt,
                                  const PlannerInput& input, ExecContext& ctx) {
  // A generic (cached) plan for a prepared statement skips the full planner
  // cost; only parameter binding is charged (PostgreSQL plancache analog).
  CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(
      input.cached_plan ? ctx.cost->plan_cached_bind : ctx.cost->plan_local));
  CITUSX_ASSIGN_OR_RETURN(ExecNodePtr plan, PlanSelect(stmt, input));
  // The batch (vectorized) executor gets first claim on the planned tree;
  // it declines plan shapes it does not cover (nullopt), leaving the
  // volcano path below as both the fallback and the differential oracle.
  if (ctx.vectorize && ctx.batch_exec != nullptr && *ctx.batch_exec) {
    CITUSX_ASSIGN_OR_RETURN(std::optional<QueryResult> batched,
                            (*ctx.batch_exec)(*plan, ctx));
    if (batched.has_value()) return std::move(*batched);
  }
  return CollectRows(*plan, ctx);
}

Status CoerceRowToSchema(const sql::Schema& schema, sql::Row* row) {
  for (size_t i = 0; i < row->size(); i++) {
    const auto& col = schema.columns[i];
    sql::Datum& d = (*row)[i];
    if (d.is_null()) {
      if (col.not_null) {
        return Status::InvalidArgument(
            "null value in column \"" + col.name + "\" violates not-null "
            "constraint");
      }
      continue;
    }
    if (d.type() != col.type) {
      CITUSX_ASSIGN_OR_RETURN(d, d.CastTo(col.type));
    }
  }
  return Status::OK();
}

Result<QueryResult> ExecuteInsert(const sql::InsertStmt& stmt,
                                  const PlannerInput& input, ExecContext& ctx) {
  CITUSX_ASSIGN_OR_RETURN(TableInfo * table, input.catalog->Get(stmt.table));
  const sql::Schema& schema = table->schema();
  // Map provided columns to schema positions.
  std::vector<int> positions;
  if (stmt.columns.empty()) {
    for (int i = 0; i < schema.num_columns(); i++) positions.push_back(i);
  } else {
    for (const auto& c : stmt.columns) {
      int pos = schema.FindColumn(c);
      if (pos < 0) {
        return Status::InvalidArgument("column \"" + c + "\" does not exist");
      }
      positions.push_back(pos);
    }
  }
  // Table-level shared lock (DDL excludes DML).
  CITUSX_RETURN_IF_ERROR(
      ctx.locks->Acquire(LockTag{table->oid, LockTag::kTableRid}, ctx.txn,
                         LockMode::kShared));

  auto make_full_row = [&](sql::Row provided) -> Result<sql::Row> {
    sql::Row full(static_cast<size_t>(schema.num_columns()));
    std::vector<bool> set(static_cast<size_t>(schema.num_columns()), false);
    for (size_t i = 0; i < positions.size(); i++) {
      full[static_cast<size_t>(positions[i])] = std::move(provided[i]);
      set[static_cast<size_t>(positions[i])] = true;
    }
    for (int i = 0; i < schema.num_columns(); i++) {
      if (set[static_cast<size_t>(i)]) continue;
      const auto& col = schema.columns[static_cast<size_t>(i)];
      if (!col.default_expr.empty()) {
        CITUSX_ASSIGN_OR_RETURN(sql::ExprPtr def,
                                sql::ParseExpression(col.default_expr));
        auto ec = ctx.EvalCtx(nullptr);
        CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*def, ec));
        full[static_cast<size_t>(i)] = std::move(v);
      }
    }
    CITUSX_RETURN_IF_ERROR(CoerceRowToSchema(schema, &full));
    return full;
  };

  int64_t inserted_count = 0;
  if (stmt.select != nullptr) {
    CITUSX_ASSIGN_OR_RETURN(ExecNodePtr plan, PlanSelect(*stmt.select, input));
    CITUSX_RETURN_IF_ERROR(
        plan->Execute(ctx, [&](sql::Row& row) -> Result<bool> {
          if (row.size() != positions.size()) {
            return Status::InvalidArgument(
                "INSERT has a different number of target columns");
          }
          CITUSX_ASSIGN_OR_RETURN(sql::Row full, make_full_row(std::move(row)));
          bool inserted = false;
          CITUSX_RETURN_IF_ERROR(InsertRowWithIndexes(
              ctx, table, std::move(full), stmt.on_conflict_do_nothing,
              &inserted));
          if (inserted) inserted_count++;
          return true;
        }));
  } else {
    for (const auto& value_row : stmt.values) {
      if (value_row.size() != positions.size()) {
        return Status::InvalidArgument(
            "INSERT has a different number of target columns");
      }
      sql::Row provided;
      auto ec = ctx.EvalCtx(nullptr);
      for (const auto& e : value_row) {
        CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*e, ec));
        provided.push_back(std::move(v));
      }
      CITUSX_ASSIGN_OR_RETURN(sql::Row full, make_full_row(std::move(provided)));
      bool inserted = false;
      CITUSX_RETURN_IF_ERROR(InsertRowWithIndexes(
          ctx, table, std::move(full), stmt.on_conflict_do_nothing, &inserted));
      if (inserted) inserted_count++;
    }
  }
  CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
  QueryResult result;
  result.rows_affected = inserted_count;
  result.command_tag = StrFormat("INSERT 0 %lld",
                                 static_cast<long long>(inserted_count));
  return result;
}

namespace {

// Plan the target-table scan for UPDATE/DELETE: locked, with rowid.
Result<ExecNodePtr> PlanDmlScan(TableInfo* table, const sql::ExprPtr& where,
                                const PlannerInput& input, ExecContext& ctx) {
  sql::SelectStmt sel;
  auto star = sql::MakeStar();
  sel.targets.push_back(sql::SelectItem{star, ""});
  auto ref = std::make_shared<sql::TableRef>();
  ref->kind = sql::TableRef::Kind::kTable;
  ref->name = table->name;
  sel.from.push_back(ref);
  sel.where = where != nullptr ? where->Clone() : nullptr;
  sel.for_update = true;
  // Build via the planner, then flip the scan flags.
  // Simpler: construct the scan directly.
  std::vector<sql::ExprPtr> conjuncts;
  sql::ExprPtr where_clone = where != nullptr ? where->Clone() : nullptr;
  SplitConjuncts(where_clone, &conjuncts);
  // Bind conjuncts against the table scope.
  sql::Schema const& schema = table->schema();
  for (auto& c : conjuncts) {
    Status st = Status::OK();
    sql::WalkExprMut(c, [&](sql::Expr& x) {
      if (x.kind == sql::ExprKind::kColumnRef) {
        int pos = schema.FindColumn(x.column);
        if (pos < 0) {
          st = Status::InvalidArgument("column \"" + x.column +
                                       "\" does not exist");
        }
        x.slot = pos;
      }
    });
    CITUSX_RETURN_IF_ERROR(st);
  }
  // Reuse scan selection by creating a private planner call: we inline the
  // access-path logic through PlanSelect on a FOR UPDATE select, but we need
  // rowids, so we construct scans here via the shared BuildScan helper.
  // (BuildScan is file-local to the planner; replicate minimal logic by
  // planning through PlanSelect is not possible -- instead we expose the
  // needed behaviour with a direct scan.)
  // Index selection: equality on any btree prefix.
  for (const auto& idx : table->indexes) {
    if (idx->btree == nullptr) continue;
    std::vector<sql::ExprPtr> keys;
    std::set<size_t> used;
    for (int key_col : idx->btree->key_columns()) {
      bool found = false;
      for (size_t i = 0; i < conjuncts.size(); i++) {
        const auto& c = conjuncts[i];
        if (c->kind != sql::ExprKind::kBinary || c->bin_op != sql::BinOp::kEq) {
          continue;
        }
        sql::ExprPtr col_side = c->args[0], val_side = c->args[1];
        if (col_side->kind != sql::ExprKind::kColumnRef ||
            HasColumnRefs(val_side)) {
          std::swap(col_side, val_side);
        }
        if (col_side->kind != sql::ExprKind::kColumnRef ||
            HasColumnRefs(val_side)) {
          continue;
        }
        if (col_side->slot == key_col) {
          keys.push_back(val_side);
          used.insert(i);
          found = true;
          break;
        }
      }
      if (!found) break;
    }
    if (keys.empty()) continue;
    auto scan = std::make_unique<IndexScanNode>();
    scan->table = table;
    scan->index = idx->btree.get();
    scan->equal_keys = std::move(keys);
    // Full recheck: index entries may be stale.
    sql::ExprPtr res;
    for (const auto& r : conjuncts) {
      res = res == nullptr ? r : sql::MakeBinary(sql::BinOp::kAnd, res, r);
    }
    scan->filter = res;
    scan->lock_rows = true;
    scan->emit_rowid = true;
    return ExecNodePtr(std::move(scan));
  }
  auto scan = std::make_unique<SeqScanNode>();
  scan->table = table;
  sql::ExprPtr all;
  for (const auto& c : conjuncts) {
    all = all == nullptr ? c : sql::MakeBinary(sql::BinOp::kAnd, all, c);
  }
  scan->filter = all;
  scan->lock_rows = true;
  scan->emit_rowid = true;
  return ExecNodePtr(std::move(scan));
}

}  // namespace

Result<QueryResult> ExecuteUpdate(const sql::UpdateStmt& stmt,
                                  const PlannerInput& input, ExecContext& ctx) {
  CITUSX_ASSIGN_OR_RETURN(TableInfo * table, input.catalog->Get(stmt.table));
  if (table->is_columnar()) {
    return Status::NotSupported("UPDATE is not supported on columnar tables");
  }
  const sql::Schema& schema = table->schema();
  CITUSX_RETURN_IF_ERROR(
      ctx.locks->Acquire(LockTag{table->oid, LockTag::kTableRid}, ctx.txn,
                         LockMode::kShared));
  // Bind SET expressions against the table scope.
  std::vector<std::pair<int, sql::ExprPtr>> sets;
  for (const auto& [col, expr] : stmt.sets) {
    int pos = schema.FindColumn(col);
    if (pos < 0) {
      return Status::InvalidArgument("column \"" + col + "\" does not exist");
    }
    sql::ExprPtr bound = expr->Clone();
    Status st = Status::OK();
    sql::WalkExprMut(bound, [&](sql::Expr& x) {
      if (x.kind == sql::ExprKind::kColumnRef) {
        int p = schema.FindColumn(x.column);
        if (p < 0) {
          st = Status::InvalidArgument("column \"" + x.column +
                                       "\" does not exist");
        }
        x.slot = p;
      }
    });
    CITUSX_RETURN_IF_ERROR(st);
    sets.emplace_back(pos, std::move(bound));
  }
  CITUSX_ASSIGN_OR_RETURN(ExecNodePtr scan,
                          PlanDmlScan(table, stmt.where, input, ctx));
  // Collect matching (row, rid) pairs first, then apply.
  std::vector<std::pair<sql::Row, storage::RowId>> matches;
  CITUSX_RETURN_IF_ERROR(scan->Execute(ctx, [&](sql::Row& row) -> Result<bool> {
    storage::RowId rid = static_cast<storage::RowId>(row.back().int_value());
    row.pop_back();
    matches.emplace_back(std::move(row), rid);
    return true;
  }));
  int64_t updated = 0;
  for (auto& [row, rid] : matches) {
    sql::Row new_row = row;
    auto ec = ctx.EvalCtx(&row);
    for (const auto& [pos, expr] : sets) {
      CITUSX_ASSIGN_OR_RETURN(sql::Datum v, sql::Eval(*expr, ec));
      new_row[static_cast<size_t>(pos)] = std::move(v);
    }
    CITUSX_RETURN_IF_ERROR(CoerceRowToSchema(schema, &new_row));
    CITUSX_RETURN_IF_ERROR(ctx.ChargeCpu(ctx.cost->cpu_per_row_insert));
    CITUSX_RETURN_IF_ERROR(table->heap->TouchRow(rid, /*dirty=*/true)
                               ? Status::OK()
                               : Status::Cancelled("simulation stopping"));
    CITUSX_RETURN_IF_ERROR(
        table->heap->UpdateRow(rid, new_row, ctx.txn, *ctx.txns));
    CITUSX_RETURN_IF_ERROR(IndexNewVersion(ctx, table, rid, row, new_row));
    updated++;
  }
  CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
  QueryResult result;
  result.rows_affected = updated;
  result.command_tag = StrFormat("UPDATE %lld", static_cast<long long>(updated));
  return result;
}

Result<QueryResult> ExecuteDelete(const sql::DeleteStmt& stmt,
                                  const PlannerInput& input, ExecContext& ctx) {
  CITUSX_ASSIGN_OR_RETURN(TableInfo * table, input.catalog->Get(stmt.table));
  if (table->is_columnar()) {
    return Status::NotSupported("DELETE is not supported on columnar tables");
  }
  CITUSX_RETURN_IF_ERROR(
      ctx.locks->Acquire(LockTag{table->oid, LockTag::kTableRid}, ctx.txn,
                         LockMode::kShared));
  CITUSX_ASSIGN_OR_RETURN(ExecNodePtr scan,
                          PlanDmlScan(table, stmt.where, input, ctx));
  std::vector<storage::RowId> rids;
  CITUSX_RETURN_IF_ERROR(scan->Execute(ctx, [&](sql::Row& row) -> Result<bool> {
    rids.push_back(static_cast<storage::RowId>(row.back().int_value()));
    return true;
  }));
  int64_t deleted = 0;
  for (storage::RowId rid : rids) {
    CITUSX_RETURN_IF_ERROR(table->heap->TouchRow(rid, /*dirty=*/true)
                               ? Status::OK()
                               : Status::Cancelled("simulation stopping"));
    CITUSX_RETURN_IF_ERROR(table->heap->DeleteRow(rid, ctx.txn, *ctx.txns));
    deleted++;
  }
  CITUSX_RETURN_IF_ERROR(ctx.FlushCpu());
  QueryResult result;
  result.rows_affected = deleted;
  result.command_tag =
      StrFormat("DELETE %lld", static_cast<long long>(deleted));
  return result;
}

}  // namespace citusx::engine
