// Local query planner: binds the AST against the catalog, chooses access
// paths (seq scan, B-tree, trigram GIN), builds join/aggregate/sort plans,
// and provides DML execution entry points.
#ifndef CITUSX_ENGINE_PLANNER_H_
#define CITUSX_ENGINE_PLANNER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "engine/exec.h"
#include "sql/ast.h"

namespace citusx::engine {

struct PlannerInput {
  Catalog* catalog = nullptr;
  /// Names resolvable as in-memory relations (distributed intermediate
  /// results); consulted before the catalog.
  const std::map<std::string, const TempRelation*>* temp_relations = nullptr;
  /// Parameters, for evaluating LIMIT/index key constants at plan time.
  const std::vector<sql::Datum>* params = nullptr;
  /// Executing a previously planned prepared statement (generic plan): the
  /// planner charges plan_cached_bind instead of the full plan_local cost.
  bool cached_plan = false;
};

/// Plan a SELECT into an executable tree.
Result<ExecNodePtr> PlanSelect(const sql::SelectStmt& stmt,
                               const PlannerInput& input);

/// Execute statements end-to-end (plan + run). These are what the session
/// calls after transaction setup.
Result<QueryResult> ExecuteSelect(const sql::SelectStmt& stmt,
                                  const PlannerInput& input, ExecContext& ctx);
Result<QueryResult> ExecuteInsert(const sql::InsertStmt& stmt,
                                  const PlannerInput& input, ExecContext& ctx);
Result<QueryResult> ExecuteUpdate(const sql::UpdateStmt& stmt,
                                  const PlannerInput& input, ExecContext& ctx);
Result<QueryResult> ExecuteDelete(const sql::DeleteStmt& stmt,
                                  const PlannerInput& input, ExecContext& ctx);

/// EXPLAIN a SELECT/DML statement: plans it and returns one text row per
/// plan line (PostgreSQL-style "QUERY PLAN" output).
Result<QueryResult> ExplainStatement(const sql::Statement& stmt,
                                     const PlannerInput& input);

/// Insert one row (already in schema order/types) with coercion, defaults
/// applied by the caller. Exposed for COPY.
Status CoerceRowToSchema(const sql::Schema& schema, sql::Row* row);

}  // namespace citusx::engine

#endif  // CITUSX_ENGINE_PLANNER_H_
