#include "common/status.h"

namespace citusx {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace citusx
