#include "common/status.h"

namespace citusx {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kConnectionLost:
      return "ConnectionLost";
    case StatusCode::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

const char* ErrorClassName(ErrorClass ec) {
  switch (ec) {
    case ErrorClass::kNone:
      return "None";
    case ErrorClass::kRetryableTransient:
      return "RetryableTransient";
    case ErrorClass::kNodeDown:
      return "NodeDown";
    case ErrorClass::kFatal:
      return "Fatal";
  }
  return "Unknown";
}

ErrorClass Status::error_class() const {
  switch (code_) {
    case StatusCode::kOk:
      return ErrorClass::kNone;
    case StatusCode::kAborted:
    case StatusCode::kDeadlock:
    case StatusCode::kConnectionLost:
    case StatusCode::kTimeout:
    case StatusCode::kResourceExhausted:
      return ErrorClass::kRetryableTransient;
    case StatusCode::kUnavailable:
      return ErrorClass::kNodeDown;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kNotSupported:
    case StatusCode::kInternal:
    case StatusCode::kCancelled:
    case StatusCode::kIoError:
      return ErrorClass::kFatal;
  }
  return ErrorClass::kFatal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace citusx
