#include "common/status.h"

namespace citusx {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kConnectionLost:
      return "ConnectionLost";
    case StatusCode::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

const char* ErrorClassName(ErrorClass ec) {
  switch (ec) {
    case ErrorClass::kNone:
      return "None";
    case ErrorClass::kRetryableTransient:
      return "RetryableTransient";
    case ErrorClass::kNodeDown:
      return "NodeDown";
    case ErrorClass::kFatal:
      return "Fatal";
  }
  return "Unknown";
}

const char* SqlState(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "00000";  // successful_completion
    case StatusCode::kInvalidArgument:
      return "42601";  // syntax_error
    case StatusCode::kNotFound:
      return "42P01";  // undefined_table
    case StatusCode::kAlreadyExists:
      return "42P07";  // duplicate_table
    case StatusCode::kNotSupported:
      return "0A000";  // feature_not_supported
    case StatusCode::kInternal:
      return "XX000";  // internal_error
    case StatusCode::kAborted:
      return "40001";  // serialization_failure
    case StatusCode::kDeadlock:
      return "40P01";  // deadlock_detected
    case StatusCode::kUnavailable:
      return "08001";  // sqlclient_unable_to_establish_sqlconnection
    case StatusCode::kResourceExhausted:
      return "53300";  // too_many_connections
    case StatusCode::kCancelled:
      return "57014";  // query_canceled
    case StatusCode::kIoError:
      return "58030";  // io_error
    case StatusCode::kConnectionLost:
      return "08006";  // connection_failure
    case StatusCode::kTimeout:
      return "57P05";  // idle_session_timeout (statement deadline)
  }
  return "XX000";
}

StatusCode StatusCodeFromSqlState(const std::string& sqlstate) {
  if (sqlstate == "00000") return StatusCode::kOk;
  if (sqlstate == "42601") return StatusCode::kInvalidArgument;
  if (sqlstate == "42P01") return StatusCode::kNotFound;
  if (sqlstate == "42P07") return StatusCode::kAlreadyExists;
  if (sqlstate == "0A000") return StatusCode::kNotSupported;
  if (sqlstate == "40001") return StatusCode::kAborted;
  if (sqlstate == "40P01") return StatusCode::kDeadlock;
  if (sqlstate == "08001") return StatusCode::kUnavailable;
  if (sqlstate == "53300") return StatusCode::kResourceExhausted;
  if (sqlstate == "57014") return StatusCode::kCancelled;
  if (sqlstate == "58030") return StatusCode::kIoError;
  if (sqlstate == "08006") return StatusCode::kConnectionLost;
  if (sqlstate == "57P05") return StatusCode::kTimeout;
  // Class-level fallbacks: an unrecognized code in a known class keeps the
  // class's transport-vs-SQL handling. 08xxx is a connection exception
  // (transport, retryable on a fresh connection); 40xxx is a transaction
  // rollback (retryable in a new transaction).
  bool wellformed = sqlstate.size() == 5;
  for (char ch : sqlstate) {
    wellformed &= (ch >= '0' && ch <= '9') || (ch >= 'A' && ch <= 'Z');
  }
  if (wellformed) {
    if (sqlstate.compare(0, 2, "08") == 0) return StatusCode::kConnectionLost;
    if (sqlstate.compare(0, 2, "40") == 0) return StatusCode::kAborted;
  }
  // Unknown or malformed: treat as an internal (fatal) error.
  return StatusCode::kInternal;
}

ErrorClass Status::error_class() const {
  switch (code_) {
    case StatusCode::kOk:
      return ErrorClass::kNone;
    case StatusCode::kAborted:
    case StatusCode::kDeadlock:
    case StatusCode::kConnectionLost:
    case StatusCode::kTimeout:
    case StatusCode::kResourceExhausted:
      return ErrorClass::kRetryableTransient;
    case StatusCode::kUnavailable:
      return ErrorClass::kNodeDown;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kNotSupported:
    case StatusCode::kInternal:
    case StatusCode::kCancelled:
    case StatusCode::kIoError:
      return ErrorClass::kFatal;
  }
  return ErrorClass::kFatal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace citusx
