// Small string helpers shared across modules.
#ifndef CITUSX_COMMON_STR_H_
#define CITUSX_COMMON_STR_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace citusx {

/// printf-style formatting into a std::string.
inline std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

inline std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(static_cast<size_t>(n), '\0');
  vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

inline std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

inline std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

inline bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); i++) {
    char x = a[i], y = b[i];
    if (x >= 'A' && x <= 'Z') x = static_cast<char>(x - 'A' + 'a');
    if (y >= 'A' && y <= 'Z') y = static_cast<char>(y - 'A' + 'a');
    if (x != y) return false;
  }
  return true;
}

inline std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); i++) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

inline std::string JoinStrings(const std::vector<std::string>& parts,
                               std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); i++) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

/// SQL string literal quoting: abc -> 'abc', with '' doubling.
inline std::string QuoteSqlLiteral(std::string_view s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

}  // namespace citusx

#endif  // CITUSX_COMMON_STR_H_
