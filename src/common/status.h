// Status and Result<T>: error handling without exceptions, in the style of
// Arrow/RocksDB. Every fallible operation in citusx returns one of these.
#ifndef CITUSX_COMMON_STATUS_H_
#define CITUSX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace citusx {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller supplied bad input (e.g. SQL syntax error)
  kNotFound,          // table/shard/object missing
  kAlreadyExists,     // duplicate object or unique violation
  kNotSupported,      // query shape the engine cannot handle
  kInternal,          // invariant violation inside the engine
  kAborted,           // transaction aborted (deadlock victim, serialization)
  kDeadlock,          // distributed or local deadlock detected
  kUnavailable,       // node down / connection refused
  kResourceExhausted, // out of connections, memory budget, etc.
  kCancelled,         // statement cancelled
  kIoError,           // simulated storage failure
  kConnectionLost,    // connection broken mid-use (reset, crash, desync)
  kTimeout,           // statement deadline exceeded
};

/// Returns a short human-readable name ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Coarse failure taxonomy layered over StatusCode: how the error should be
/// *handled* by a distributed caller (paper §3.2: surviving worker failure).
enum class ErrorClass {
  kNone,               // OK
  kRetryableTransient, // safe to retry: aborts, lost/timed-out connections,
                       // exhausted pools — the cluster itself is healthy
  kNodeDown,           // the target node is unreachable; fail over if a
                       // replica exists, otherwise surface the outage
  kFatal,              // semantic/internal error: retrying cannot help
};

/// Returns a short human-readable name ("RetryableTransient", ...).
const char* ErrorClassName(ErrorClass ec);

/// PostgreSQL-style five-character SQLSTATE for a status code ("00000" for
/// OK, "40P01" for deadlock, "08006" for a lost connection, ...). Used when
/// surfacing errors through SQL-facing views.
const char* SqlState(StatusCode code);

/// Maps a SQLSTATE back to the status code a distributed caller should
/// handle it as. Unknown, malformed, or empty SQLSTATEs map to kInternal
/// (and therefore classify as fatal): an error we cannot identify must not
/// be retried blindly.
StatusCode StatusCodeFromSqlState(const std::string& sqlstate);

/// A success-or-error value. Cheap to copy in the OK case.
///
/// [[nodiscard]]: silently dropping a Status is how 2PC recovery bugs are
/// born (see PAPERS.md on SSI in PostgreSQL) — every call site must either
/// handle the error or discard it explicitly with CITUSX_IGNORE_STATUS.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Deadlock(std::string m) {
    return Status(StatusCode::kDeadlock, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status ConnectionLost(std::string m) {
    return Status(StatusCode::kConnectionLost, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsConnectionLost() const {
    return code_ == StatusCode::kConnectionLost;
  }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }

  /// The handling class of this status (see ErrorClass).
  ErrorClass error_class() const;

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error. Holds T on success, Status otherwise.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Discard a Status/Result on purpose, with a greppable reason. The only
// sanctioned way to drop a [[nodiscard]] value (cituslint rule
// `status-discard` bans ad-hoc `(void)` casts): the reason string documents
// why losing the error is safe at this exact call site.
#define CITUSX_IGNORE_STATUS(expr, reason)                        \
  do {                                                            \
    static_assert(sizeof(reason) > 1, "give a non-empty reason"); \
    [[maybe_unused]] const auto& citusx_ignored_ = (expr);        \
  } while (0)

// Propagate errors up the call stack.
#define CITUSX_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::citusx::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define CITUSX_CONCAT_IMPL(a, b) a##b
#define CITUSX_CONCAT(a, b) CITUSX_CONCAT_IMPL(a, b)

// Evaluate a Result<T> expression, return on error, bind the value otherwise.
#define CITUSX_ASSIGN_OR_RETURN(decl, expr)                     \
  auto CITUSX_CONCAT(_res_, __LINE__) = (expr);                 \
  if (!CITUSX_CONCAT(_res_, __LINE__).ok())                     \
    return CITUSX_CONCAT(_res_, __LINE__).status();             \
  decl = std::move(CITUSX_CONCAT(_res_, __LINE__)).value()

}  // namespace citusx

#endif  // CITUSX_COMMON_STATUS_H_
