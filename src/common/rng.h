// Deterministic random number generation for workloads and tests.
#ifndef CITUSX_COMMON_RNG_H_
#define CITUSX_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"

namespace citusx {

/// xoshiro-style deterministic RNG; seedable and cheap.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : state_(Mix64(seed) | 1) {}

  uint64_t Next() {
    state_ = Mix64(state_);
    return state_;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(hi >= lo);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Chance(double p) { return NextDouble() < p; }

  /// TPC-C style non-uniform random (NURand).
  int64_t NURand(int64_t a, int64_t x, int64_t y, int64_t c) {
    return (((Uniform(0, a) | Uniform(x, y)) + c) % (y - x + 1)) + x;
  }

  /// Random lowercase string of length [min_len, max_len].
  std::string AlphaString(int min_len, int max_len) {
    int len = static_cast<int>(Uniform(min_len, max_len));
    std::string s(static_cast<size_t>(len), 'a');
    for (auto& ch : s) ch = static_cast<char>('a' + Uniform(0, 25));
    return s;
  }

 private:
  uint64_t state_;
};

/// Zipfian generator over [0, n) as used by YCSB.
class Zipf {
 public:
  Zipf(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace citusx

#endif  // CITUSX_COMMON_RNG_H_
