// Lock-rank-ordered mutex: the project's only sanctioned mutual-exclusion
// primitive (cituslint rule `lock-rank` bans raw std::mutex outside this
// header).
//
// Every OrderedMutex is declared with a rank from the global table below,
// and a thread may only acquire mutexes in strictly increasing rank order.
// That makes cross-subsystem lock cycles impossible by construction: rank
// inversions are rejected statically by cituslint (lexically nested guards)
// and dynamically by a per-thread held-rank stack that aborts on violation.
// This is the static/structural complement to the *distributed* deadlock
// detector, which handles data locks held across nodes (paper §3.7.3).
//
// Mutexes here protect in-process registries and scheduler state. Simulated
// processes are cooperatively scheduled (one runs at a time), so the hard
// rule is: never hold an OrderedMutex across a simulation yield
// (sim::Simulation::Block/WaitFor/WaitUntil) — a parked owner would wedge
// the next process that touches the same mutex. Keep critical sections to
// pure memory manipulation.
#ifndef CITUSX_COMMON_ORDERED_MUTEX_H_
#define CITUSX_COMMON_ORDERED_MUTEX_H_

#include <mutex>

namespace citusx {

/// The global lock-rank table, in acquisition order: holding a mutex of
/// rank r, a thread may only acquire mutexes of rank > r. Outer
/// (coarse, extension-level) locks rank low; inner (leaf, scheduler-level)
/// locks rank high. cituslint parses this enum — keep one enumerator per
/// line with an explicit value.
enum class LockRank : int {
  kConnectionPool = 10,   // citus shared connection counters / down markers
  kCatalog = 20,          // engine per-node catalog table registry
  kCitusMetadata = 30,    // citus distributed metadata (pg_dist_*)
  kLockTable = 40,        // engine lock manager's lock table
  kMetricsRegistry = 50,  // obs metrics name -> handle maps
  kTraceCollector = 60,   // obs distributed trace span buffer
  kSimScheduler = 70,     // simulation kernel: event queue + baton handoff
};

/// Short human-readable name ("ConnectionPool", ...).
const char* LockRankName(LockRank rank);

/// A std::mutex that participates in the global rank order. Satisfies
/// BasicLockable, so it composes with std::lock_guard, std::unique_lock,
/// and std::condition_variable_any.
class OrderedMutex {
 public:
  explicit OrderedMutex(LockRank rank) : rank_(rank) {}

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  /// Aborts the process with a diagnostic if the calling thread already
  /// holds a mutex of equal or higher rank.
  void lock();
  void unlock();

  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  LockRank rank_;
};

}  // namespace citusx

#endif  // CITUSX_COMMON_ORDERED_MUTEX_H_
