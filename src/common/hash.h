// Hash functions used for hash-partitioning distributed tables.
//
// PostgreSQL/Citus hash values are signed 32-bit ints and shards own
// contiguous ranges of the int32 hash space; we reproduce that scheme so
// shard-pruning logic matches the paper's description (§3.3.1).
#ifndef CITUSX_COMMON_HASH_H_
#define CITUSX_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace citusx {

/// 64-bit avalanche mix (splitmix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash a 64-bit integer to the signed 32-bit partition hash space.
inline int32_t HashInt64(int64_t v) {
  return static_cast<int32_t>(Mix64(static_cast<uint64_t>(v)) & 0xffffffffULL);
}

/// FNV-1a based string hash folded into the signed 32-bit space.
inline int32_t HashBytes(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<int32_t>(Mix64(h) & 0xffffffffULL);
}

}  // namespace citusx

#endif  // CITUSX_COMMON_HASH_H_
