#include "common/ordered_mutex.h"

#include <cstdio>
#include <cstdlib>

namespace citusx {

namespace {
// Ranks held by the calling thread, in acquisition order. Depth is tiny
// (two or three nested locks at most), so a fixed array beats a vector.
constexpr int kMaxHeld = 8;
thread_local int tl_held_ranks[kMaxHeld];
thread_local int tl_held_depth = 0;
}  // namespace

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kConnectionPool:
      return "ConnectionPool";
    case LockRank::kCatalog:
      return "Catalog";
    case LockRank::kCitusMetadata:
      return "CitusMetadata";
    case LockRank::kLockTable:
      return "LockTable";
    case LockRank::kMetricsRegistry:
      return "MetricsRegistry";
    case LockRank::kTraceCollector:
      return "TraceCollector";
    case LockRank::kSimScheduler:
      return "SimScheduler";
  }
  return "Unknown";
}

void OrderedMutex::lock() {
  const int rank = static_cast<int>(rank_);
  if (tl_held_depth > 0 && tl_held_ranks[tl_held_depth - 1] >= rank) {
    std::fprintf(stderr,
                 "[ordered_mutex] lock-rank inversion: acquiring %s(%d) while "
                 "holding rank %d\n",
                 LockRankName(rank_), rank, tl_held_ranks[tl_held_depth - 1]);
    std::abort();
  }
  if (tl_held_depth >= kMaxHeld) {
    std::fprintf(stderr, "[ordered_mutex] lock depth exceeds %d\n", kMaxHeld);
    std::abort();
  }
  mu_.lock();
  tl_held_ranks[tl_held_depth] = rank;
  tl_held_depth++;
}

void OrderedMutex::unlock() {
  // Guards release LIFO; condition_variable_any also unlocks/relocks the
  // most recently acquired lock. Releasing out of order would desync the
  // stack, so enforce it.
  const int rank = static_cast<int>(rank_);
  if (tl_held_depth <= 0 || tl_held_ranks[tl_held_depth - 1] != rank) {
    std::fprintf(stderr,
                 "[ordered_mutex] non-LIFO unlock of %s(%d)\n",
                 LockRankName(rank_), rank);
    std::abort();
  }
  tl_held_depth--;
  mu_.unlock();
}

}  // namespace citusx
