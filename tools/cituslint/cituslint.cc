// cituslint: in-tree static analysis enforcing citusx's architectural
// invariants. Runs as a tier-1 ctest over src/ with a committed baseline
// (tools/cituslint/baseline.txt) that may only shrink.
//
// Rules:
//   layering       - each src/<layer>/ may only include headers from the
//                    layers below it in the library DAG. src/citus/ (the
//                    "extension") is held to the paper's contract: the only
//                    engine header it may include is engine/hooks.h, and no
//                    storage/ headers at all — everything else must go
//                    through the hook API.
//   status-discard - no `(void)expr` / `static_cast<void>(expr)` discards.
//                    Dropping a Status silently is how distributed bugs are
//                    born; use CITUSX_IGNORE_STATUS(expr, "reason") instead.
//   lock-rank      - OrderedMutex acquisitions must nest in strictly
//                    increasing LockRank order. The rank table is parsed out
//                    of src/common/ordered_mutex.h and acquisition sites are
//                    extracted lexically (lock_guard/unique_lock/scoped_lock
//                    over OrderedMutex members).
//   raw-mutex      - no std::mutex/recursive_mutex/shared_mutex/timed_mutex
//                    outside common/ordered_mutex.{h,cc}: every lock must
//                    carry a rank or the lock-rank rule has holes.
//   nodiscard      - Status and Result must stay [[nodiscard]] in
//                    common/status.h (the compile-time half of the
//                    status-discard rule).
//
// Suppression: append `// cituslint: allow(<rule>)` to the offending line.
// Comments and string/char literals are stripped before matching, so code
// examples in docs don't trip the rules (but suppression markers are read
// from the raw line first).
//
// Usage: cituslint <repo-root> [--baseline <file>] [--counts] [--self-test]

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string rule;
  std::string file;   // repo-relative, forward slashes
  int line = 0;
  std::string detail;

  /// Line-number-free identity used for baseline matching, so unrelated
  /// edits that shift lines do not invalidate baseline entries.
  std::string Key() const { return rule + "|" + file + "|" + detail; }
};

struct LintResult {
  std::vector<Violation> violations;
  std::vector<std::string> errors;  // lint-tool level problems (fail hard)
};

// ---------------------------------------------------------------------------
// Source scanning: per-line text with comments and literals blanked out.

struct SourceFile {
  std::string path;                 // repo-relative
  std::vector<std::string> raw;     // original lines
  std::vector<std::string> code;    // comments/strings replaced by spaces
  std::vector<std::set<std::string>> allows;  // per-line allowed rules
};

/// Collect `cituslint: allow(rule1, rule2)` markers on a raw line.
std::set<std::string> ParseAllows(const std::string& line) {
  std::set<std::string> out;
  const std::string tag = "cituslint: allow(";
  size_t pos = line.find(tag);
  if (pos == std::string::npos) return out;
  size_t start = pos + tag.size();
  size_t end = line.find(')', start);
  if (end == std::string::npos) return out;
  std::string inner = line.substr(start, end - start);
  std::stringstream ss(inner);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    rule.erase(0, rule.find_first_not_of(" \t"));
    rule.erase(rule.find_last_not_of(" \t") + 1);
    if (!rule.empty()) out.insert(rule);
  }
  return out;
}

/// Blank out comments and string/char literals, preserving line structure.
std::vector<std::string> StripCommentsAndStrings(
    const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // raw string closing delimiter: )delim"
  for (const std::string& line : lines) {
    std::string stripped(line.size(), ' ');
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            i = line.size();  // rest of line is a comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || (!isalnum(line[i - 1]) && line[i - 1] != '_'))) {
            size_t paren = line.find('(', i + 2);
            if (paren != std::string::npos) {
              raw_delim = ")" + line.substr(i + 2, paren - i - 2) + "\"";
              state = State::kRawString;
              i = paren;
            }
          } else if (c == '"') {
            state = State::kString;
          } else if (c == '\'') {
            // Heuristic: only treat as a char literal when it looks like one
            // (avoids tripping on digit separators 1'000'000).
            if (i > 0 && isdigit(static_cast<unsigned char>(line[i - 1]))) {
              stripped[i] = c;
            } else {
              state = State::kChar;
            }
          } else {
            stripped[i] = c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            stripped[i] = '"';  // keep delimiters so include paths survive
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
          }
          break;
        case State::kRawString:
          if (line.compare(i, raw_delim.size(), raw_delim) == 0) {
            state = State::kCode;
            i += raw_delim.size() - 1;
          }
          break;
      }
    }
    // Strings and chars do not span lines in this codebase; reset so an
    // unterminated literal cannot poison the rest of the file.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    out.push_back(std::move(stripped));
  }
  return out;
}

SourceFile LoadSource(const std::string& rel_path,
                      const std::vector<std::string>& lines) {
  SourceFile f;
  f.path = rel_path;
  f.raw = lines;
  f.code = StripCommentsAndStrings(lines);
  f.allows.reserve(lines.size());
  for (const std::string& line : lines) f.allows.push_back(ParseAllows(line));
  return f;
}

bool Allowed(const SourceFile& f, size_t line_idx, const std::string& rule) {
  return line_idx < f.allows.size() && f.allows[line_idx].count(rule) > 0;
}

// ---------------------------------------------------------------------------
// Rule: layering.

/// First path component under src/ ("engine/locks.h" -> "engine").
std::string LayerOf(const std::string& src_rel) {
  size_t slash = src_rel.find('/');
  return slash == std::string::npos ? src_rel : src_rel.substr(0, slash);
}

const std::map<std::string, std::set<std::string>>& LayerDag() {
  // Which layers each layer's headers/sources may include from. Mirrors the
  // target_link_libraries graph in src/*/CMakeLists.txt plus transitive
  // closure; keep the two in sync.
  static const std::map<std::string, std::set<std::string>> kDag = {
      {"common", {"common"}},
      {"sim", {"sim", "common"}},
      {"obs", {"obs", "sim", "common"}},
      {"sql", {"sql", "common"}},
      {"storage", {"storage", "sql", "sim", "obs", "common"}},
      {"engine", {"engine", "storage", "sql", "sim", "obs", "common"}},
      // The vectorized executor: like the Citus layer, engine access is
      // restricted to the hook API header (special-cased below); reads
      // columnar storage directly.
      {"exec", {"exec", "storage", "sql", "sim", "obs", "common"}},
      {"net", {"net", "engine", "storage", "sql", "sim", "obs", "common"}},
      // The transaction-pooling front tier sits below the extension: it
      // must work against any backend, so citus/ headers are off limits.
      {"pool", {"pool", "net", "engine", "storage", "sql", "sim", "obs",
                "common"}},
      // The extension: engine access is restricted to the hook API header
      // (special-cased below); storage/ is fully off limits.
      {"citus", {"citus", "exec", "net", "sql", "sim", "obs", "common"}},
      {"workload",
       {"workload", "citus", "pool", "exec", "net", "engine", "storage", "sql",
        "sim", "obs", "common"}},
  };
  return kDag;
}

/// Extract the target of an `#include "..."` (project include), or "".
/// The directive is recognized on the stripped line (so commented-out
/// includes don't count) but the path is read from the raw line, because
/// stripping blanks string-literal contents.
std::string IncludeTarget(const std::string& code_line,
                          const std::string& raw_line) {
  size_t hash = code_line.find_first_not_of(" \t");
  if (hash == std::string::npos || code_line[hash] != '#') return "";
  size_t inc = code_line.find("include", hash);
  if (inc == std::string::npos) return "";
  size_t open = raw_line.find('"', inc);
  if (open == std::string::npos) return "";  // <system> include
  size_t close = raw_line.find('"', open + 1);
  if (close == std::string::npos) return "";
  return raw_line.substr(open + 1, close - open - 1);
}

void CheckLayering(const SourceFile& f, LintResult* out) {
  const std::string kRule = "layering";
  std::string src_rel = f.path.substr(std::string("src/").size());
  std::string layer = LayerOf(src_rel);
  auto it = LayerDag().find(layer);
  if (it == LayerDag().end()) {
    out->errors.push_back("layering: unknown layer '" + layer + "' for " +
                          f.path + " — add it to LayerDag()");
    return;
  }
  const std::set<std::string>& allowed = it->second;
  for (size_t i = 0; i < f.code.size(); ++i) {
    std::string target = IncludeTarget(f.code[i], f.raw[i]);
    if (target.empty()) continue;
    std::string target_layer = LayerOf(target);
    if (LayerDag().count(target_layer) == 0) continue;  // not a src/ layer
    if (Allowed(f, i, kRule)) continue;
    bool ok = allowed.count(target_layer) > 0;
    bool hooks_only =
        (layer == "citus" || layer == "exec") && target_layer == "engine";
    if (hooks_only) {
      ok = (target == "engine/hooks.h");
    }
    if (!ok) {
      out->violations.push_back(
          {kRule, f.path, static_cast<int>(i + 1),
           "includes " + target + " (layer '" + layer + "' may not depend on '" +
               target_layer + "'" + (hooks_only ? " except engine/hooks.h" : "") +
               ")"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: status-discard.

void CheckStatusDiscard(const SourceFile& f, LintResult* out) {
  const std::string kRule = "status-discard";
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    bool hit = false;
    // `(void)expr` cast: '(void)' followed by something castable.
    for (size_t pos = line.find("(void)"); pos != std::string::npos;
         pos = line.find("(void)", pos + 1)) {
      size_t after = pos + strlen("(void)");
      while (after < line.size() && isspace(static_cast<unsigned char>(line[after]))) {
        ++after;
      }
      if (after < line.size() &&
          (isalnum(static_cast<unsigned char>(line[after])) ||
           line[after] == '_' || line[after] == ':' || line[after] == '(' ||
           line[after] == '*')) {
        // Exclude function signatures `f(void)` — C-ism absent here, but be
        // safe: a cast is preceded by start-of-expression, not an identifier.
        size_t before = pos;
        while (before > 0 &&
               isspace(static_cast<unsigned char>(line[before - 1]))) {
          --before;
        }
        if (before > 0 && (isalnum(static_cast<unsigned char>(line[before - 1])) ||
                           line[before - 1] == '_')) {
          continue;  // `name(void)` — a declaration, not a discard
        }
        hit = true;
        break;
      }
    }
    if (!hit && line.find("static_cast<void>(") != std::string::npos) {
      hit = true;
    }
    if (hit && !Allowed(f, i, kRule)) {
      out->violations.push_back(
          {kRule, f.path, static_cast<int>(i + 1),
           "explicit void discard; handle the result or use "
           "CITUSX_IGNORE_STATUS(expr, reason)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-mutex.

void CheckRawMutex(const SourceFile& f, LintResult* out) {
  const std::string kRule = "raw-mutex";
  if (f.path == "src/common/ordered_mutex.h" ||
      f.path == "src/common/ordered_mutex.cc") {
    return;  // the one place std::mutex may live
  }
  static const char* kBanned[] = {"std::mutex", "std::recursive_mutex",
                                  "std::shared_mutex", "std::timed_mutex"};
  for (size_t i = 0; i < f.code.size(); ++i) {
    for (const char* banned : kBanned) {
      size_t pos = f.code[i].find(banned);
      if (pos == std::string::npos) continue;
      // Reject `std::mutex` but not `std::mutex_like_thing`.
      size_t end = pos + strlen(banned);
      if (end < f.code[i].size() &&
          (isalnum(static_cast<unsigned char>(f.code[i][end])) ||
           f.code[i][end] == '_')) {
        continue;
      }
      if (!Allowed(f, i, kRule)) {
        out->violations.push_back(
            {kRule, f.path, static_cast<int>(i + 1),
             std::string("uses ") + banned +
                 "; use common/ordered_mutex.h so the lock carries a rank"});
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard.

void CheckNodiscard(const SourceFile& f, LintResult* out) {
  if (f.path != "src/common/status.h") return;
  bool status_marked = false;
  bool result_marked = false;
  for (const std::string& line : f.code) {
    if (line.find("class [[nodiscard]] Status") != std::string::npos) {
      status_marked = true;
    }
    if (line.find("class [[nodiscard]] Result") != std::string::npos) {
      result_marked = true;
    }
  }
  if (!status_marked) {
    out->violations.push_back({"nodiscard", f.path, 1,
                               "Status lost its [[nodiscard]] marking"});
  }
  if (!result_marked) {
    out->violations.push_back({"nodiscard", f.path, 1,
                               "Result lost its [[nodiscard]] marking"});
  }
}

// ---------------------------------------------------------------------------
// Rule: lock-rank.

/// Parsed from the LockRank enum in common/ordered_mutex.h.
using RankTable = std::map<std::string, int>;  // kName -> value

bool ParseRankTable(const SourceFile& f, RankTable* table,
                    std::vector<std::string>* errors) {
  bool in_enum = false;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (!in_enum) {
      if (line.find("enum class LockRank") != std::string::npos) in_enum = true;
      continue;
    }
    if (line.find("};") != std::string::npos) break;
    // Enumerator lines look like: `kCatalog = 20,`
    size_t k = line.find('k');
    if (k == std::string::npos) continue;
    size_t eq = line.find('=', k);
    if (eq == std::string::npos) continue;
    std::string name = line.substr(k, eq - k);
    name.erase(name.find_last_not_of(" \t") + 1);
    int value = atoi(line.c_str() + eq + 1);
    if (table->count(name) > 0) {
      errors->push_back("lock-rank: duplicate enumerator " + name);
      return false;
    }
    (*table)[name] = value;
  }
  if (table->empty()) {
    errors->push_back(
        "lock-rank: could not parse LockRank enum from common/ordered_mutex.h");
    return false;
  }
  return true;
}

/// Find `OrderedMutex <member>{LockRank::kX}` declarations and map the member
/// name to its rank. Member names must be globally unique per rank — the
/// lexical analysis resolves `foo_mu_` without type information, so a name
/// bound to two different ranks is itself a lint error.
void CollectMutexDecls(const SourceFile& f, const RankTable& ranks,
                       std::map<std::string, int>* decls,
                       std::map<std::string, std::string>* decl_sites,
                       LintResult* out) {
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    size_t om = line.find("OrderedMutex ");
    if (om == std::string::npos) continue;
    if (om > 0 && (isalnum(static_cast<unsigned char>(line[om - 1])) ||
                   line[om - 1] == '_')) {
      continue;
    }
    size_t name_start = om + strlen("OrderedMutex ");
    size_t name_end = name_start;
    while (name_end < line.size() &&
           (isalnum(static_cast<unsigned char>(line[name_end])) ||
            line[name_end] == '_')) {
      ++name_end;
    }
    if (name_end == name_start) continue;
    std::string member = line.substr(name_start, name_end - name_start);
    size_t rank_pos = line.find("LockRank::", name_end);
    if (rank_pos == std::string::npos) continue;  // e.g. a parameter decl
    size_t k = rank_pos + strlen("LockRank::");
    size_t k_end = k;
    while (k_end < line.size() &&
           (isalnum(static_cast<unsigned char>(line[k_end])) ||
            line[k_end] == '_')) {
      ++k_end;
    }
    std::string rank_name = line.substr(k, k_end - k);
    auto rit = ranks.find(rank_name);
    if (rit == ranks.end()) {
      out->errors.push_back("lock-rank: " + f.path + ":" +
                            std::to_string(i + 1) + " unknown rank " +
                            rank_name);
      continue;
    }
    auto [dit, inserted] = decls->emplace(member, rit->second);
    if (inserted) {
      (*decl_sites)[member] = f.path + ":" + std::to_string(i + 1);
    } else if (dit->second != rit->second) {
      out->errors.push_back(
          "lock-rank: mutex member name '" + member +
          "' is declared with two different ranks (" + (*decl_sites)[member] +
          " vs " + f.path + ":" + std::to_string(i + 1) +
          "); rename one — the static analysis resolves acquisitions by name");
    }
  }
}

/// Lexical acquisition-ordering check: track lock_guard/unique_lock/
/// scoped_lock<OrderedMutex> declarations per brace scope and flag inner
/// acquisitions whose rank is <= an outer held rank.
void CheckLockRank(const SourceFile& f, const std::map<std::string, int>& decls,
                   LintResult* out) {
  const std::string kRule = "lock-rank";
  struct Held {
    int rank;
    int depth;
    std::string name;
  };
  std::vector<Held> held;
  int depth = 0;
  for (size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (size_t pos = 0; pos < line.size(); ++pos) {
      char c = line[pos];
      if (c == '{') {
        ++depth;
        continue;
      }
      if (c == '}') {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        if (depth <= 0) {
          depth = 0;
          held.clear();  // function boundary: guards cannot escape
        }
        continue;
      }
      // Match guard declarations at this position.
      static const char* kGuards[] = {"std::lock_guard<OrderedMutex>",
                                      "std::unique_lock<OrderedMutex>",
                                      "std::scoped_lock<OrderedMutex>"};
      for (const char* g : kGuards) {
        size_t glen = strlen(g);
        if (line.compare(pos, glen, g) != 0) continue;
        // The guarded mutex is the last identifier inside the constructor
        // parens; find `(` then the trailing identifier before `)`.
        size_t open = line.find('(', pos + glen);
        if (open == std::string::npos) break;
        size_t close = line.find(')', open);
        std::string arg = close == std::string::npos
                              ? line.substr(open + 1)
                              : line.substr(open + 1, close - open - 1);
        // Strip to the trailing identifier: "sim_->sched_mu_" -> "sched_mu_".
        size_t id_end = arg.find_last_not_of(" \t");
        if (id_end == std::string::npos) break;
        size_t id_start = id_end;
        while (id_start > 0 &&
               (isalnum(static_cast<unsigned char>(arg[id_start - 1])) ||
                arg[id_start - 1] == '_')) {
          --id_start;
        }
        std::string mutex_name = arg.substr(id_start, id_end - id_start + 1);
        auto dit = decls.find(mutex_name);
        if (dit == decls.end()) {
          if (!Allowed(f, i, kRule)) {
            out->violations.push_back(
                {kRule, f.path, static_cast<int>(i + 1),
                 "acquires '" + mutex_name +
                     "' which has no declared LockRank (declare it as "
                     "OrderedMutex name{LockRank::kX})"});
          }
          break;
        }
        int rank = dit->second;
        if (!held.empty() && held.back().rank >= rank && !Allowed(f, i, kRule)) {
          out->violations.push_back(
              {kRule, f.path, static_cast<int>(i + 1),
               "acquires '" + mutex_name + "' (rank " + std::to_string(rank) +
                   ") while holding '" + held.back().name + "' (rank " +
                   std::to_string(held.back().rank) +
                   "); locks must nest in increasing rank order"});
        }
        held.push_back({rank, depth, mutex_name});
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.

std::vector<std::string> ReadLines(const fs::path& p) {
  std::ifstream in(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

LintResult RunLint(const std::vector<SourceFile>& files) {
  LintResult result;
  RankTable ranks;
  std::map<std::string, int> mutex_decls;
  std::map<std::string, std::string> decl_sites;
  const SourceFile* ordered_mutex_h = nullptr;
  for (const SourceFile& f : files) {
    if (f.path == "src/common/ordered_mutex.h") ordered_mutex_h = &f;
  }
  bool have_ranks = false;
  if (ordered_mutex_h != nullptr) {
    have_ranks = ParseRankTable(*ordered_mutex_h, &ranks, &result.errors);
  } else {
    result.errors.push_back("lock-rank: src/common/ordered_mutex.h not found");
  }
  if (have_ranks) {
    for (const SourceFile& f : files) {
      CollectMutexDecls(f, ranks, &mutex_decls, &decl_sites, &result);
    }
  }
  for (const SourceFile& f : files) {
    CheckLayering(f, &result);
    CheckStatusDiscard(f, &result);
    CheckRawMutex(f, &result);
    CheckNodiscard(f, &result);
    if (have_ranks) CheckLockRank(f, mutex_decls, &result);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Baseline.

std::set<std::string> LoadBaseline(const std::string& path,
                                   std::vector<std::string>* errors) {
  std::set<std::string> keys;
  std::ifstream in(path);
  if (!in.is_open()) {
    errors->push_back("cannot open baseline file: " + path);
    return keys;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Self test: feed synthetic sources through the rules and check the verdicts.

int SelfTest() {
  int failures = 0;
  auto expect = [&failures](bool cond, const char* what) {
    if (!cond) {
      fprintf(stderr, "self-test FAILED: %s\n", what);
      failures++;
    }
  };
  auto make = [](const std::string& path, const std::string& text) {
    std::vector<std::string> lines;
    std::stringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) lines.push_back(line);
    return LoadSource(path, lines);
  };
  auto count_rule = [](const LintResult& r, const std::string& rule) {
    int n = 0;
    for (const auto& v : r.violations) {
      if (v.rule == rule) n++;
    }
    return n;
  };

  const std::string kMutexHeader =
      "enum class LockRank {\n"
      "  kLow = 10,\n"
      "  kHigh = 20,\n"
      "};\n"
      "class [[nodiscard]] Status {};\n"
      "template <typename T> class [[nodiscard]] Result {};\n";

  {  // layering: citus may include hooks.h but nothing else from engine.
    LintResult r = RunLint({
        make("src/common/ordered_mutex.h", kMutexHeader),
        make("src/citus/good.cc", "#include \"engine/hooks.h\"\n"),
        make("src/citus/bad.cc", "#include \"engine/locks.h\"\n"
                                 "#include \"storage/heap.h\"\n"),
        make("src/citus/suppressed.cc",
             "#include \"engine/locks.h\"  // cituslint: allow(layering)\n"),
        make("src/sql/bad.cc", "#include \"engine/node.h\"\n"),
    });
    expect(count_rule(r, "layering") == 3, "layering finds 3 violations");
  }
  {  // layering: exec is hooks.h-only towards engine, like citus, and may
     // read storage directly; nothing below exec may include it.
    LintResult r = RunLint({
        make("src/common/ordered_mutex.h", kMutexHeader),
        make("src/exec/good.cc", "#include \"engine/hooks.h\"\n"
                                 "#include \"storage/columnar.h\"\n"),
        make("src/exec/bad.cc", "#include \"engine/exec.h\"\n"
                                "#include \"net/connection.h\"\n"),
        make("src/engine/bad.cc", "#include \"exec/vectorized.h\"\n"),
        make("src/citus/good2.cc", "#include \"exec/vectorized.h\"\n"),
    });
    expect(count_rule(r, "layering") == 3,
           "layering holds exec to hooks.h-only engine access");
  }
  {  // layering: the pool tier may use net/engine but never citus (it must
     // stay backend-agnostic), and net may not reach up into pool.
    LintResult r = RunLint({
        make("src/common/ordered_mutex.h", kMutexHeader),
        make("src/pool/good.cc", "#include \"net/cluster.h\"\n"
                                 "#include \"engine/session.h\"\n"),
        make("src/pool/bad.cc", "#include \"citus/extension.h\"\n"),
        make("src/net/bad.cc", "#include \"pool/pooler.h\"\n"),
        make("src/workload/good.cc", "#include \"pool/pooler.h\"\n"),
    });
    expect(count_rule(r, "layering") == 2,
           "layering keeps pool below citus and above net");
  }
  {  // status-discard: (void) and static_cast<void>, but not f(void) decls
     // or commented/quoted occurrences.
    LintResult r = RunLint({
        make("src/common/ordered_mutex.h", kMutexHeader),
        make("src/common/a.cc",
             "void f() {\n"
             "  (void)DoThing();\n"
             "  static_cast<void>(DoThing());\n"
             "  (void)x;  // cituslint: allow(status-discard)\n"
             "  // (void)commented();\n"
             "  Log(\"(void)quoted\");\n"
             "}\n"
             "int g(void);\n"),
    });
    expect(count_rule(r, "status-discard") == 2,
           "status-discard finds exactly the two real discards");
  }
  {  // raw-mutex: banned outside ordered_mutex.h.
    LintResult r = RunLint({
        make("src/common/ordered_mutex.h",
             kMutexHeader + "#include <mutex>\nstd::mutex mu_;\n"),
        make("src/engine/a.h", "std::mutex bad_;\nstd::shared_mutex worse_;\n"),
    });
    expect(count_rule(r, "raw-mutex") == 2, "raw-mutex finds 2 violations");
  }
  {  // nodiscard: markers must stay on Status/Result.
    LintResult r = RunLint({
        make("src/common/ordered_mutex.h", kMutexHeader),
        make("src/common/status.h", "class Status {};\n"
                                    "template <class T> class Result {};\n"),
    });
    expect(count_rule(r, "nodiscard") == 2, "nodiscard catches lost markers");
  }
  {  // lock-rank: inversion, equal-rank reacquire, unranked mutex, and a
     // clean increasing chain.
    LintResult r = RunLint({
        make("src/common/ordered_mutex.h", kMutexHeader),
        make("src/engine/a.h",
             "class A {\n"
             "  mutable OrderedMutex low_mu_{LockRank::kLow};\n"
             "  mutable OrderedMutex high_mu_{LockRank::kHigh};\n"
             "  OrderedMutex free_mu_;\n"
             "};\n"),
        make("src/engine/a.cc",
             "void Ok() {\n"
             "  std::lock_guard<OrderedMutex> g1(low_mu_);\n"
             "  {\n"
             "    std::lock_guard<OrderedMutex> g2(high_mu_);\n"
             "  }\n"
             "}\n"
             "void Inverted() {\n"
             "  std::lock_guard<OrderedMutex> g1(high_mu_);\n"
             "  std::lock_guard<OrderedMutex> g2(low_mu_);\n"
             "}\n"
             "void SequentialOk() {\n"
             "  { std::lock_guard<OrderedMutex> g(high_mu_); }\n"
             "  { std::lock_guard<OrderedMutex> g(low_mu_); }\n"
             "}\n"
             "void Unranked() {\n"
             "  std::lock_guard<OrderedMutex> g(free_mu_);\n"
             "}\n"),
    });
    expect(count_rule(r, "lock-rank") == 2,
           "lock-rank finds the inversion and the unranked acquisition");
  }
  {  // lock-rank: duplicate member name with conflicting ranks is a hard
     // error, and member access through a pointer resolves correctly.
    LintResult r = RunLint({
        make("src/common/ordered_mutex.h", kMutexHeader),
        make("src/engine/a.h", "OrderedMutex mu_{LockRank::kLow};\n"),
        make("src/net/b.h", "OrderedMutex mu_{LockRank::kHigh};\n"),
    });
    expect(!r.errors.empty(), "conflicting mutex member names are an error");
    LintResult r2 = RunLint({
        make("src/common/ordered_mutex.h", kMutexHeader),
        make("src/engine/a.h", "OrderedMutex low_mu_{LockRank::kLow};\n"
                               "OrderedMutex high_mu_{LockRank::kHigh};\n"),
        make("src/engine/a.cc",
             "void F() {\n"
             "  std::lock_guard<OrderedMutex> g(other_->high_mu_);\n"
             "  std::lock_guard<OrderedMutex> g2(self->low_mu_);\n"
             "}\n"),
    });
    expect(count_rule(r2, "lock-rank") == 1,
           "pointer-qualified mutex members resolve by trailing identifier");
  }
  if (failures == 0) printf("cituslint self-test: all checks passed\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string baseline_path;
  bool counts = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--self-test") return SelfTest();
    if (arg == "--counts") {
      counts = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      root = arg;
    } else {
      fprintf(stderr,
              "usage: cituslint <repo-root> [--baseline <file>] [--counts] "
              "[--self-test]\n");
      return 2;
    }
  }
  if (root.empty()) {
    fprintf(stderr, "cituslint: missing repo root\n");
    return 2;
  }

  std::vector<SourceFile> files;
  fs::path src = fs::path(root) / "src";
  if (!fs::exists(src)) {
    fprintf(stderr, "cituslint: %s does not exist\n", src.string().c_str());
    return 2;
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    std::string rel = fs::relative(p, fs::path(root)).generic_string();
    files.push_back(LoadSource(rel, ReadLines(p)));
  }

  LintResult result = RunLint(files);

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    baseline = LoadBaseline(baseline_path, &result.errors);
  }

  std::map<std::string, int> per_rule_new;
  std::map<std::string, int> per_rule_baselined;
  std::set<std::string> matched_baseline;
  int new_count = 0;
  for (const Violation& v : result.violations) {
    if (baseline.count(v.Key()) > 0) {
      matched_baseline.insert(v.Key());
      per_rule_baselined[v.rule]++;
      continue;
    }
    per_rule_new[v.rule]++;
    new_count++;
    fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
            v.detail.c_str());
  }
  // Monotonic shrink: baseline entries that no longer fire must be removed.
  int stale = 0;
  for (const std::string& key : baseline) {
    if (matched_baseline.count(key) == 0) {
      fprintf(stderr, "stale baseline entry (violation fixed — delete it): %s\n",
              key.c_str());
      stale++;
    }
  }
  for (const std::string& err : result.errors) {
    fprintf(stderr, "cituslint error: %s\n", err.c_str());
  }

  if (counts) {
    static const char* kRules[] = {"layering", "status-discard", "lock-rank",
                                   "raw-mutex", "nodiscard"};
    for (const char* rule : kRules) {
      printf("%s: %d new, %d baselined\n", rule,
             per_rule_new.count(rule) ? per_rule_new.at(rule) : 0,
             per_rule_baselined.count(rule) ? per_rule_baselined.at(rule) : 0);
    }
  }

  if (new_count == 0 && stale == 0 && result.errors.empty()) {
    printf("cituslint: %zu files clean (%d baselined violations remain)\n",
           files.size(), static_cast<int>(matched_baseline.size()));
    return 0;
  }
  fprintf(stderr, "cituslint: %d new violation(s), %d stale baseline entr%s\n",
          new_count, stale, stale == 1 ? "y" : "ies");
  return 1;
}
