#!/usr/bin/env bash
# Run clang-tidy over the project sources using the checks in .clang-tidy.
# No-ops gracefully (exit 0) when clang-tidy is not installed, so CI images
# without LLVM tooling still pass; when available, tidy findings are printed
# but only `WarningsAsErrors` entries (none today) fail the run.
#
# Usage: scripts/tidy.sh [extra clang-tidy args...]
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping (checks live in .clang-tidy)"
  exit 0
fi

# A compile database makes the run hermetic; generate one if missing.
if [[ ! -f build/compile_commands.json ]]; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t sources < <(find src tools -name '*.cc' | sort)
echo "clang-tidy over ${#sources[@]} files"
clang-tidy -p build --quiet "$@" "${sources[@]}"
