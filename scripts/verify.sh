#!/usr/bin/env bash
# Single entry point for CI and local verification:
#   tier 1: release build + full ctest suite (includes cituslint: layering,
#           status-discard, lock-rank, raw-mutex, nodiscard — see
#           tools/cituslint/ and the baseline burn-down report below)
#   tier 2: AddressSanitizer build + full ctest suite
#   tier 3: ThreadSanitizer build + full ctest suite
#   tier 4: UndefinedBehaviorSanitizer build + full ctest suite
#   bench smoke: fig9 (2PC invariant) and abl_plancache (>= 2x plan-cache
#                speedup), both with JSON reports the binaries self-check
#   chaos smoke: chaos_ycsb --quick under a fixed seed against both the
#                release and the ASan build — zero acked-commit losses,
#                all prepared transactions resolved, post-recovery
#                throughput within 20% of baseline (binary self-checks)
#
# Usage: scripts/verify.sh [--tier1-only]
set -euo pipefail

cd "$(dirname "$0")/.."

TIER1_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --tier1-only) TIER1_ONLY=1 ;;
    *) echo "unknown argument: $arg (expected --tier1-only)" >&2; exit 2 ;;
  esac
done

echo "==> tier 1: release build + ctest"
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"
(cd build && ctest --output-on-failure -j"$(nproc)")

echo "==> cituslint: per-rule violations vs committed baseline"
# The lint gate itself already ran as a ctest above; this prints the
# burn-down state ("N new, M baselined" per rule — baselined counts must
# only ever shrink, enforced by the stale-entry check in the tool).
./build/tools/cituslint/cituslint . \
    --baseline tools/cituslint/baseline.txt --counts || true

if [[ "$TIER1_ONLY" == "1" ]]; then
  echo "OK (tier 1 only)"
  exit 0
fi

echo "==> tier 2: AddressSanitizer build + ctest"
cmake -B build-asan -S . -DCITUSX_SANITIZE=address >/dev/null
cmake --build build-asan -j"$(nproc)"
(cd build-asan && ctest --output-on-failure -j"$(nproc)")

echo "==> tier 3: ThreadSanitizer build + ctest"
cmake -B build-tsan -S . -DCITUSX_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$(nproc)"
(cd build-tsan && ctest --output-on-failure -j"$(nproc)")

echo "==> tier 4: UndefinedBehaviorSanitizer build + ctest"
cmake -B build-ubsan -S . -DCITUSX_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j"$(nproc)"
(cd build-ubsan && ctest --output-on-failure -j"$(nproc)")

echo "==> bench smoke: fig9 (2PC) + abl_plancache (plan cache)"
./build/bench/fig9_2pc --quick --json=build/BENCH_fig9_smoke.json
./build/bench/abl_plancache --quick --json=build/BENCH_plancache_smoke.json

echo "==> chaos smoke: crash/restart schedule under a fixed seed (release + ASan)"
./build/bench/chaos_ycsb --quick --seed=42 --json=build/BENCH_chaos_smoke.json
./build-asan/bench/chaos_ycsb --quick --seed=42 \
    --json=build-asan/BENCH_chaos_smoke.json

echo "OK"
