#!/usr/bin/env bash
# Single entry point for CI and local verification:
#   tier 1: release build + full ctest suite (includes cituslint: layering,
#           status-discard, lock-rank, raw-mutex, nodiscard — see
#           tools/cituslint/ and the baseline burn-down report below)
#   tier 2: AddressSanitizer build + full ctest suite
#   tier 3: ThreadSanitizer build + full ctest suite
#   tier 4: UndefinedBehaviorSanitizer build + full ctest suite
#   tier bench: bench + chaos smoke — fig9 (2PC invariant), abl_plancache
#               (>= 2x plan-cache speedup), abl_mx (>= 2x any-node read
#               scaling), abl_olap (vectorized executor matches the volcano
#               oracle on every TPC-H query, >= 10x on scan/agg-heavy ones),
#               abl_scale (>= 2x pooled tps at >= 100k sessions on a bounded
#               connection budget, delta-sync cost flat per node),
#               chaos_ycsb --quick under a fixed seed (release and, when
#               present, the ASan build); every binary self-checks its own
#               invariants and JSON report
#
# Usage: scripts/verify.sh [--tier N]
#   --tier N       run only that tier (1-4, or "bench"); "bench" expects a
#                  tier-1 build to exist and reuses the ASan build if one
#                  is already present
#   --tier1-only   alias for --tier 1 (kept for older callers)
#   (no flag)      run every tier in order
set -euo pipefail

cd "$(dirname "$0")/.."

TIER=all
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tier)
      [[ $# -ge 2 ]] || { echo "--tier needs an argument (1-4 or bench)" >&2; exit 2; }
      TIER="$2"; shift 2 ;;
    --tier=*) TIER="${1#--tier=}"; shift ;;
    --tier1-only) TIER=1; shift ;;
    *) echo "unknown argument: $1 (expected --tier N or --tier1-only)" >&2; exit 2 ;;
  esac
done
case "$TIER" in
  all|1|2|3|4|bench) ;;
  *) echo "unknown tier: $TIER (expected 1-4 or bench)" >&2; exit 2 ;;
esac

run_tier() { [[ "$TIER" == all || "$TIER" == "$1" ]]; }

if run_tier 1; then
  echo "==> tier 1: release build + ctest"
  cmake -B build -S . >/dev/null
  cmake --build build -j"$(nproc)"
  (cd build && ctest --output-on-failure -j"$(nproc)")

  echo "==> cituslint: per-rule violations vs committed baseline"
  # Prints the burn-down state ("N new, M baselined" per rule) and FAILS
  # the run on any new violation or stale baseline entry — baselined
  # counts must only ever shrink.
  ./build/tools/cituslint/cituslint . \
      --baseline tools/cituslint/baseline.txt --counts
fi

if run_tier 2; then
  echo "==> tier 2: AddressSanitizer build + ctest"
  cmake -B build-asan -S . -DCITUSX_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$(nproc)"
  (cd build-asan && ctest --output-on-failure -j"$(nproc)")
fi

if run_tier 3; then
  echo "==> tier 3: ThreadSanitizer build + ctest"
  cmake -B build-tsan -S . -DCITUSX_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$(nproc)"
  (cd build-tsan && ctest --output-on-failure -j"$(nproc)")
fi

if run_tier 4; then
  echo "==> tier 4: UndefinedBehaviorSanitizer build + ctest"
  cmake -B build-ubsan -S . -DCITUSX_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j"$(nproc)"
  (cd build-ubsan && ctest --output-on-failure -j"$(nproc)")
fi

if run_tier bench; then
  if [[ ! -x build/bench/fig9_2pc ]]; then
    echo "==> tier bench: building release binaries first"
    cmake -B build -S . >/dev/null
    cmake --build build -j"$(nproc)"
  fi
  echo "==> bench smoke: fig9 (2PC) + abl_plancache (plan cache) + abl_mx (MX)"
  ./build/bench/fig9_2pc --quick --json=build/BENCH_fig9_smoke.json
  ./build/bench/abl_plancache --quick --json=build/BENCH_plancache_smoke.json
  ./build/bench/abl_mx --quick --json=build/BENCH_mx_smoke.json

  echo "==> scale smoke: transaction pooling + delta metadata sync"
  ./build/bench/abl_scale --quick --json=build/BENCH_scale_smoke.json

  echo "==> olap smoke: vectorized executor vs volcano oracle on TPC-H"
  ./build/bench/abl_olap --quick --json=build/BENCH_olap.json

  echo "==> chaos smoke: crash/restart schedule under a fixed seed"
  ./build/bench/chaos_ycsb --quick --seed=42 --json=build/BENCH_chaos_smoke.json
  if [[ -x build-asan/bench/chaos_ycsb ]]; then
    ./build-asan/bench/chaos_ycsb --quick --seed=42 \
        --json=build-asan/BENCH_chaos_smoke.json
  else
    echo "    (no ASan build present; skipping the ASan chaos pass)"
  fi
fi

echo "OK (tier: $TIER)"
