// End-to-end workload tests at miniature scale: TPC-C, YCSB, TPC-H, and the
// GitHub-archive pipeline, each against a Citus cluster and (where cheap)
// against a plain single node.
#include <gtest/gtest.h>

#include "citus/deploy.h"
#include "common/str.h"
#include "workload/driver.h"
#include "workload/gharchive.h"
#include "workload/tpcc.h"
#include "workload/tpch.h"
#include "workload/ycsb.h"

namespace citusx::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void MakeDeployment(int workers, bool install_citus = true) {
    citus::DeploymentOptions options;
    options.num_workers = workers;
    options.install_citus = install_citus;
    deploy_ = std::make_unique<citus::Deployment>(&sim_, options);
  }

  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }

  void TearDown() override {
    sim_.Shutdown();
    deploy_.reset();
  }

  sim::Simulation sim_;
  std::unique_ptr<citus::Deployment> deploy_;
};

TEST_F(WorkloadTest, TpccLoadsAndRunsOnCitus) {
  MakeDeployment(2);
  TpccConfig config;
  config.warehouses = 4;
  config.items = 100;
  config.customers_per_district = 20;
  config.orders_per_district = 20;
  config.districts_per_warehouse = 3;
  for (size_t i = 0; i < deploy_->cluster().num_nodes(); i++) {
    TpccRegisterProcedures(deploy_->cluster().node(i), config);
  }
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    auto st = TpccCreateSchema(**conn, config);
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = TpccLoad(**conn, config, 1, config.warehouses);
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = TpccDistributeProcedures(**conn);
    ASSERT_TRUE(st.ok()) << st.ToString();
    // Sanity: row counts.
    auto r = (*conn)->Query("SELECT count(*) FROM customer");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].int_value(), 4 * 3 * 20);
    r = (*conn)->Query("SELECT count(*) FROM item");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].int_value(), 100);
  });
  // Run a short mixed workload.
  DriverOptions opts;
  opts.clients = 8;
  opts.warmup = sim::kSecond;
  opts.duration = 5 * sim::kSecond;
  DriverResult result =
      RunDriver(&sim_, &deploy_->cluster().directory(), opts, TpccMix(config));
  EXPECT_GT(result.transactions, 100);
  EXPECT_EQ(result.fatal_errors, 0) << result.last_error;
  // A few deadlock aborts are normal for TPC-C (stock updates in random
  // order); they must stay rare.
  EXPECT_LT(result.retryable_errors, result.transactions / 20);
  // Consistency after concurrency.
  RunSim([&] {
    auto conn = deploy_->Connect();
    auto st = TpccCheckConsistency(**conn, config);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
}

TEST_F(WorkloadTest, TpccRunsOnPlainPostgres) {
  MakeDeployment(0, /*install_citus=*/false);
  TpccConfig config;
  config.warehouses = 2;
  config.items = 50;
  config.customers_per_district = 10;
  config.orders_per_district = 10;
  config.districts_per_warehouse = 2;
  config.use_citus = false;
  TpccRegisterProcedures(deploy_->coordinator(), config);
  RunSim([&] {
    auto conn = deploy_->Connect();
    auto st = TpccCreateSchema(**conn, config);
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = TpccLoad(**conn, config, 1, config.warehouses);
    ASSERT_TRUE(st.ok()) << st.ToString();
  });
  DriverOptions opts;
  opts.clients = 4;
  opts.warmup = sim::kSecond;
  opts.duration = 3 * sim::kSecond;
  DriverResult result =
      RunDriver(&sim_, &deploy_->cluster().directory(), opts, TpccMix(config));
  EXPECT_GT(result.transactions, 50);
  EXPECT_EQ(result.fatal_errors, 0) << result.last_error;
  EXPECT_LT(result.retryable_errors, result.transactions / 20);
}

TEST_F(WorkloadTest, YcsbWorkloadA) {
  MakeDeployment(2);
  YcsbConfig config;
  config.record_count = 2000;
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(YcsbCreateSchema(**conn, config).ok());
    ASSERT_TRUE(YcsbLoad(**conn, config, 0, config.record_count).ok());
    auto r = (*conn)->Query("SELECT count(*) FROM usertable");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].int_value(), config.record_count);
  });
  DriverOptions opts;
  opts.clients = 8;
  opts.warmup = sim::kSecond;
  opts.duration = 4 * sim::kSecond;
  opts.sleep_between = 0;
  // Every worker acts as a coordinator (§4.3).
  opts.endpoints = {"worker1", "worker2"};
  DriverResult result = RunDriver(&sim_, &deploy_->cluster().directory(), opts,
                                  YcsbWorkloadA(config));
  EXPECT_GT(result.transactions, 1000);
  EXPECT_EQ(result.fatal_errors, 0) << result.last_error;
}

TEST_F(WorkloadTest, TpchQueriesReturnConsistentResultsAcrossConfigs) {
  // The gold standard: every TPC-H query must return identical results on
  // plain PostgreSQL (local tables) and on a 4-worker Citus cluster.
  TpchConfig config;
  config.scale = 0.003;  // ~450 orders
  std::map<std::string, std::string> plain_results;
  {
    sim::Simulation sim;
    citus::DeploymentOptions options;
    options.num_workers = 0;
    options.install_citus = false;
    citus::Deployment deploy(&sim, options);
    TpchConfig local = config;
    local.use_citus = false;
    sim.Spawn("t", [&] {
      auto conn = deploy.Connect();
      ASSERT_TRUE(TpchCreateSchema(**conn, local).ok());
      ASSERT_TRUE(TpchLoad(**conn, local).ok());
      for (const auto& [name, sql] : TpchQueries()) {
        auto r = (*conn)->Query(sql);
        ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
        std::string repr;
        for (const auto& row : r->rows) {
          for (const auto& d : row) {
            // Round floats: plans differ, so float addition order differs.
            repr += d.type() == sql::TypeId::kFloat8
                        ? StrFormat("%.2f|", d.float_value())
                        : d.ToText() + "|";
          }
          repr += "\n";
        }
        plain_results[name] = repr;
      }
    });
    sim.Run();
    sim.Shutdown();
  }
  ASSERT_EQ(plain_results.size(), TpchQueries().size());
  MakeDeployment(4);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(TpchCreateSchema(**conn, config).ok());
    ASSERT_TRUE(TpchLoad(**conn, config).ok());
    for (const auto& [name, sql] : TpchQueries()) {
      auto r = (*conn)->Query(sql);
      ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
      std::string repr;
      for (const auto& row : r->rows) {
        for (const auto& d : row) {
          repr += d.type() == sql::TypeId::kFloat8
                      ? StrFormat("%.2f|", d.float_value())
                      : d.ToText() + "|";
        }
        repr += "\n";
      }
      EXPECT_EQ(repr, plain_results[name]) << "query " << name;
    }
  });
}

TEST_F(WorkloadTest, GitHubArchivePipeline) {
  MakeDeployment(2);
  GhArchiveConfig config;
  config.postgres_mention_pct = 0.1;
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(GhCreateSchema(**conn, config).ok());
    ASSERT_TRUE(GhCreateCommitsTable(**conn, config).ok());
    Rng rng(42);
    auto rows = GhGenerateEvents(rng, config, 400, 2020, 2, 1);
    auto copied = (*conn)->CopyIn("github_events", {}, rows);
    ASSERT_TRUE(copied.ok()) << copied.status().ToString();
    EXPECT_EQ(copied->rows_affected, 400);
    // Dashboard query (uses the trigram index on the workers).
    auto dash = (*conn)->Query(GhDashboardQuery());
    ASSERT_TRUE(dash.ok()) << dash.status().ToString();
    ASSERT_EQ(dash->rows.size(), 1u);  // one day loaded
    EXPECT_GT(dash->rows[0][1].int_value(), 0);
    // INSERT..SELECT transformation (co-located).
    auto transform = (*conn)->Query(GhTransformQuery());
    ASSERT_TRUE(transform.ok()) << transform.status().ToString();
    EXPECT_GT(transform->rows_affected, 100);
    auto check = (*conn)->Query(
        "SELECT count(*), sum(n_commits) FROM push_commits");
    ASSERT_TRUE(check.ok());
    EXPECT_EQ(check->rows[0][0].int_value(), transform->rows_affected);
  });
}

TEST_F(WorkloadTest, GhArchiveJsonIsValid) {
  Rng rng(1);
  GhArchiveConfig config;
  auto rows = GhGenerateEvents(rng, config, 100, 2020, 2, 1);
  ASSERT_EQ(rows.size(), 100u);
  int pushes = 0;
  for (const auto& row : rows) {
    auto parsed = sql::Json::Parse(row[1]);
    ASSERT_TRUE(parsed.ok()) << row[1];
    auto type = (*parsed)->GetField("type");
    ASSERT_NE(type, nullptr);
    if (type->string_value() == "PushEvent") {
      pushes++;
      auto commits = (*parsed)->GetField("payload")->GetField("commits");
      ASSERT_NE(commits, nullptr);
      EXPECT_GT(commits->array_size(), 0);
    }
  }
  EXPECT_GT(pushes, 30);
}

}  // namespace
}  // namespace citusx::workload
