// Tests for the observability subsystem (src/obs/): the metrics registry,
// node/subsystem instrumentation, distributed tracing span trees, EXPLAIN
// ANALYZE rendering across all four planner tiers, the citus_stat_* views,
// and the 2PC counter invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "citus/deploy.h"
#include "citus/planner.h"
#include "common/str.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace citusx::citus {
namespace {

using engine::QueryResult;

// ---------------------------------------------------------------------------
// obs primitives
// ---------------------------------------------------------------------------

TEST(MetricsTest, CountersGaugesHistograms) {
  obs::Metrics m;
  obs::Counter* c = m.counter("a.count");
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->value(), 5);
  EXPECT_EQ(m.counter("a.count"), c);  // stable get-or-create
  EXPECT_EQ(m.CounterValue("a.count"), 5);
  EXPECT_EQ(m.CounterValue("never.registered"), 0);

  obs::Gauge* g = m.gauge("b.gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);

  obs::Histogram* h = m.histogram("c.hist");
  for (int i = 1; i <= 100; i++) h->Record(i * 1000);
  EXPECT_EQ(h->count(), 100);
  EXPECT_GE(h->Percentile(99), h->Percentile(50));

  std::vector<obs::MetricSample> snap = m.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end(),
                             [](const obs::MetricSample& a,
                                const obs::MetricSample& b) {
                               return a.name < b.name;
                             }));
  EXPECT_EQ(snap[0].name, "a.count");
  EXPECT_EQ(snap[0].value, 5);
  EXPECT_EQ(snap[2].kind, obs::MetricSample::Kind::kHistogram);
  EXPECT_EQ(snap[2].value, 100);  // histogram count
}

TEST(TraceTest, ContextFormatAndParse) {
  EXPECT_EQ(obs::FormatTraceContext(5, 7), "5:7");
  obs::TraceId trace = 0;
  obs::SpanId span = 0;
  EXPECT_TRUE(obs::ParseTraceContext("5:7", &trace, &span));
  EXPECT_EQ(trace, 5u);
  EXPECT_EQ(span, 7u);
  EXPECT_FALSE(obs::ParseTraceContext("", &trace, &span));
  EXPECT_FALSE(obs::ParseTraceContext("5", &trace, &span));
  EXPECT_FALSE(obs::ParseTraceContext("x:y", &trace, &span));
  EXPECT_FALSE(obs::ParseTraceContext("5:", &trace, &span));
}

TEST(TraceTest, SpanTreeCollection) {
  obs::TraceCollector tc;
  obs::TraceId t = tc.NewTraceId();
  obs::SpanId root = tc.StartSpan(t, 0, "distributed query", "n1", 100);
  obs::SpanId child = tc.StartSpan(t, root, "task", "n1", 150);
  tc.SetAttr(child, "worker", "w1");
  tc.SetRows(child, 3);
  tc.EndSpan(child, 250);
  tc.EndSpan(root, 300);
  std::vector<obs::Span> spans = tc.TraceSpans(t);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "distributed query");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[1].attrs.at("worker"), "w1");
  EXPECT_EQ(spans[1].rows, 3);
  EXPECT_EQ(spans[1].duration(), 100);
  EXPECT_EQ(tc.last_trace_id(), t);
}

// ---------------------------------------------------------------------------
// Cluster-level observability
// ---------------------------------------------------------------------------

class ObsTest : public ::testing::Test {
 protected:
  void MakeDeployment(int workers) {
    DeploymentOptions options;
    options.num_workers = workers;
    deploy_ = std::make_unique<Deployment>(&sim_, options);
  }

  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }

  QueryResult MustQuery(net::Connection& conn, const std::string& sql) {
    auto r = conn.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  static std::string Text(const QueryResult& r) {
    std::string out;
    for (const auto& row : r.rows) {
      out += row[0].text_value();
      out += "\n";
    }
    return out;
  }

  // Validate the span tree of the most recent trace: exactly one root
  // ("distributed query"), every task span a child of the root and nested
  // in its time range, every worker-execution span a child of a task and
  // nested in that task's time range. Returns the number of task spans.
  int CheckSpanTree(int* worker_spans_out = nullptr) {
    obs::TraceCollector& tc = deploy_->cluster().tracer();
    std::vector<obs::Span> spans = tc.TraceSpans(tc.last_trace_id());
    EXPECT_FALSE(spans.empty());
    const obs::Span* root = nullptr;
    for (const auto& s : spans) {
      if (s.parent_id == 0) {
        EXPECT_EQ(root, nullptr) << "more than one root span";
        EXPECT_EQ(s.name, "distributed query");
        root = &s;
      }
    }
    EXPECT_NE(root, nullptr);
    if (root == nullptr) return 0;
    std::map<obs::SpanId, const obs::Span*> by_id;
    for (const auto& s : spans) by_id[s.id] = &s;
    int tasks = 0, workers = 0;
    for (const auto& s : spans) {
      if (s.name == "task") {
        tasks++;
        EXPECT_EQ(s.parent_id, root->id);
        EXPECT_GE(s.start, root->start);
        EXPECT_LE(s.end, root->end);
        EXPECT_FALSE(s.attrs.at("worker").empty());
        EXPECT_EQ(s.node, deploy_->coordinator()->name());
      } else if (s.name == "worker execution") {
        workers++;
        auto it = by_id.find(s.parent_id);
        EXPECT_NE(it, by_id.end());
        if (it == by_id.end()) continue;
        EXPECT_EQ(it->second->name, "task");
        EXPECT_GE(s.start, it->second->start);
        EXPECT_LE(s.end, it->second->end);
        // The execution span is stamped by the worker that ran the task.
        EXPECT_EQ(s.node, it->second->attrs.at("worker"));
      }
    }
    if (worker_spans_out != nullptr) *worker_spans_out = workers;
    return tasks;
  }

  void TearDown() override {
    sim_.Shutdown();
    deploy_.reset();
  }

  sim::Simulation sim_;
  std::unique_ptr<Deployment> deploy_;
};

TEST_F(ObsTest, NodeSubsystemMetrics) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    for (int i = 0; i < 30; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO kv VALUES (%d, 'v%d')", i, i));
    }
    for (int i = 0; i < 30; i++) {
      MustQuery(**conn, StrFormat("SELECT v FROM kv WHERE key = %d", i));
    }
    // Worker-side storage and transaction metrics moved.
    int64_t hits = 0, commits = 0;
    for (engine::Node* w : deploy_->workers()) {
      hits += w->metrics().CounterValue("bufferpool.hits");
      commits += w->metrics().CounterValue("txn.commits");
    }
    EXPECT_GT(hits, 0);
    EXPECT_GT(commits, 0);
    // Coordinator-side executor and net metrics moved.
    obs::Metrics& cm = deploy_->coordinator()->metrics();
    EXPECT_GE(cm.CounterValue("citus.executor.tasks"), 60);
    EXPECT_GT(cm.CounterValue("net.round_trips"), 0);
    EXPECT_GT(cm.CounterValue("net.connections_opened"), 0);
    EXPECT_GE(cm.CounterValue("citus.planner.fast_path"), 60);
  });
}

TEST_F(ObsTest, ExplainAnalyzeFastPath) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn, "INSERT INTO kv VALUES (5, 'five')");
    QueryResult r =
        MustQuery(**conn, "EXPLAIN ANALYZE SELECT v FROM kv WHERE key = 5");
    std::string text = Text(r);
    EXPECT_NE(text.find("Custom Scan (Citus Fast Path Router)"),
              std::string::npos) << text;
    EXPECT_NE(text.find("Planner Tier: fast path"), std::string::npos) << text;
    EXPECT_NE(text.find("Task Count: 1"), std::string::npos) << text;
    EXPECT_NE(text.find("->  Task on worker"), std::string::npos) << text;
    EXPECT_NE(text.find("Worker Execution on worker"), std::string::npos)
        << text;
    EXPECT_NE(text.find("actual time="), std::string::npos) << text;
    EXPECT_NE(text.find("rows=1"), std::string::npos) << text;
    int workers = 0;
    EXPECT_EQ(CheckSpanTree(&workers), 1);
    EXPECT_EQ(workers, 1);
  });
}

TEST_F(ObsTest, ExplainAnalyzeRouter) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn, "INSERT INTO kv VALUES (5, 50)");
    // GROUP BY disqualifies the fast path but the key restriction still
    // routes to a single shard group.
    QueryResult r = MustQuery(
        **conn,
        "EXPLAIN ANALYZE SELECT key, sum(v) FROM kv WHERE key = 5 GROUP BY "
        "key");
    std::string text = Text(r);
    EXPECT_NE(text.find("Custom Scan (Citus Router)"), std::string::npos)
        << text;
    EXPECT_NE(text.find("Planner Tier: router"), std::string::npos) << text;
    EXPECT_NE(text.find("Task Count: 1"), std::string::npos) << text;
    int workers = 0;
    EXPECT_EQ(CheckSpanTree(&workers), 1);
    EXPECT_EQ(workers, 1);
  });
}

TEST_F(ObsTest, ExplainAnalyzePushdown) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    for (int i = 0; i < 20; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO kv VALUES (%d, %d)", i, i));
    }
    QueryResult r =
        MustQuery(**conn, "EXPLAIN ANALYZE SELECT count(*) FROM kv");
    std::string text = Text(r);
    EXPECT_NE(text.find("Custom Scan (Citus Adaptive)"), std::string::npos)
        << text;
    EXPECT_NE(text.find("Planner Tier: pushdown"), std::string::npos) << text;
    EXPECT_NE(text.find("Task Count: 32"), std::string::npos) << text;
    int workers = 0;
    EXPECT_EQ(CheckSpanTree(&workers), 32);
    EXPECT_EQ(workers, 32);
  });
}

TEST_F(ObsTest, ExplainAnalyzeJoinOrder) {
  MakeDeployment(3);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    MustQuery(**conn, "CREATE TABLE big (a bigint, bkey bigint)");
    MustQuery(**conn, "CREATE TABLE other (b bigint, val bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('big', 'a')");
    MustQuery(**conn, "SELECT create_distributed_table('other', 'b')");
    for (int i = 0; i < 20; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO big VALUES (%d, %d)", i, i % 5));
      MustQuery(**conn, StrFormat("INSERT INTO other VALUES (%d, %d)", i, i));
    }
    // Non-co-located join: forced through the logical join-order planner.
    QueryResult r = MustQuery(
        **conn,
        "EXPLAIN ANALYZE SELECT count(*) FROM big JOIN other ON big.bkey = "
        "other.b");
    std::string text = Text(r);
    EXPECT_NE(text.find("Custom Scan (Citus Adaptive)"), std::string::npos)
        << text;
    EXPECT_NE(text.find("Planner Tier: join-order"), std::string::npos)
        << text;
    EXPECT_GE(CheckSpanTree(), 1);
  });
}

TEST_F(ObsTest, StatStatementsAggregatesNormalizedQueries) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn, "INSERT INTO kv VALUES (1, 'a')");
    MustQuery(**conn, "INSERT INTO kv VALUES (2, 'b')");
    // Same shape, different constants: one normalized entry, calls = 3.
    MustQuery(**conn, "SELECT v FROM kv WHERE key = 1");
    MustQuery(**conn, "SELECT v FROM kv WHERE key = 2");
    MustQuery(**conn, "SELECT v FROM kv WHERE key = 3");
    QueryResult r = MustQuery(
        **conn,
        "SELECT query, tier, calls, shards_hit FROM citus_stat_statements "
        "WHERE tier = 'fast path' ORDER BY calls DESC");
    ASSERT_FALSE(r.rows.empty());
    // The hottest fast-path entry is the normalized SELECT with 3 calls.
    EXPECT_NE(r.rows[0][0].text_value().find("?"), std::string::npos)
        << r.rows[0][0].text_value();
    EXPECT_EQ(r.rows[0][1].text_value(), "fast path");
    EXPECT_EQ(r.rows[0][2].int_value(), 3);
    EXPECT_EQ(r.rows[0][3].int_value(), 3);  // one shard task per call
    // Single-row INSERTs also route through the fast path; they normalize
    // to one entry with calls = 2.
    r = MustQuery(**conn,
                  "SELECT tier, calls FROM citus_stat_statements WHERE "
                  "query = 'INSERT INTO kv VALUES (?, ?)'");
    ASSERT_FALSE(r.rows.empty());
    EXPECT_EQ(r.rows[0][0].text_value(), "fast path");
    EXPECT_EQ(r.rows[0][1].int_value(), 2);
    // Reset clears the view.
    MustQuery(**conn, "SELECT citus_stat_statements_reset()");
    r = MustQuery(**conn, "SELECT count(*) FROM citus_stat_statements");
    EXPECT_EQ(r.rows[0][0].int_value(), 0);
  });
}

TEST_F(ObsTest, StatActivityShowsDistributedTransactions) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    auto observer = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(observer.ok());
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn, "INSERT INTO kv VALUES (1, 'a')");
    QueryResult idle = MustQuery(
        **observer, "SELECT count(*) FROM citus_stat_activity");
    EXPECT_EQ(idle.rows[0][0].int_value(), 0);
    // Open a distributed transaction and observe it from another session.
    MustQuery(**conn, "BEGIN");
    MustQuery(**conn, "UPDATE kv SET v = 'x' WHERE key = 1");
    QueryResult active = MustQuery(
        **observer,
        "SELECT node_name, dist_txn_id, state FROM citus_stat_activity");
    ASSERT_FALSE(active.rows.empty());
    for (const auto& row : active.rows) {
      EXPECT_FALSE(row[0].text_value().empty());
      EXPECT_NE(row[1].text_value().find("coordinator_"), std::string::npos);
      EXPECT_EQ(row[2].text_value(), "active");
    }
    MustQuery(**conn, "ROLLBACK");
    idle = MustQuery(**observer, "SELECT count(*) FROM citus_stat_activity");
    EXPECT_EQ(idle.rows[0][0].int_value(), 0);
  });
}

TEST_F(ObsTest, TwoPhaseCommitCounterInvariant) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    ASSERT_TRUE(conn.ok());
    MustQuery(**conn, "CREATE TABLE t (key bigint PRIMARY KEY, v bigint)");
    MustQuery(**conn, "SELECT create_distributed_table('t', 'key')");
    const CitusTable* ct = deploy_->metadata().Find("t");
    auto worker_of = [&](int64_t key) {
      int idx = ct->ShardIndexForHash(sql::Datum::Int8(key).PartitionHash());
      return ct->shards[static_cast<size_t>(idx)].placement;
    };
    int64_t k1 = 1;
    while (worker_of(k1) != "worker1") k1++;
    int64_t k2 = k1 + 1;
    while (worker_of(k2) != "worker2") k2++;
    MustQuery(**conn, StrFormat("INSERT INTO t VALUES (%lld, 0), (%lld, 0)",
                                static_cast<long long>(k1),
                                static_cast<long long>(k2)));
    CitusExtension* ext = deploy_->extension(deploy_->coordinator());
    int64_t commits_before = ext->two_phase_commits;
    int64_t prepares_before = ext->two_phase_prepares;
    // A transaction writing on two nodes commits with 2PC: one PREPARE
    // TRANSACTION per participating worker connection.
    MustQuery(**conn, "BEGIN");
    MustQuery(**conn, StrFormat("UPDATE t SET v = 1 WHERE key = %lld",
                                static_cast<long long>(k1)));
    MustQuery(**conn, StrFormat("UPDATE t SET v = 1 WHERE key = %lld",
                                static_cast<long long>(k2)));
    MustQuery(**conn, "COMMIT");
    EXPECT_EQ(ext->two_phase_commits, commits_before + 1);
    EXPECT_EQ(ext->two_phase_prepares, prepares_before + 2);
    EXPECT_EQ(ext->two_phase_prepares, 2 * ext->two_phase_commits);
    // The counters are mirrored into the metrics registry.
    obs::Metrics& cm = deploy_->coordinator()->metrics();
    EXPECT_EQ(cm.CounterValue("citus.2pc.prepares"), ext->two_phase_prepares);
    EXPECT_EQ(cm.CounterValue("citus.2pc.commits"), ext->two_phase_commits);
  });
}

}  // namespace
}  // namespace citusx::citus
