// Regression test pinning each fig8 TPC-H query to its expected planner
// tier. A planner regression that silently demotes a query to a cheaper
// tier (or fails over to a slower one) changes what figure 8 measures, so
// the expected tier is asserted per query via the planner's tier counters.
// Shards are stored columnar, so worker fragments run through the
// vectorized columnar read path.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "citus/deploy.h"
#include "citus/planner.h"
#include "workload/tpch.h"

namespace citusx {
namespace {

struct TierCounts {
  int64_t fast_path, router, pushdown, join_order;
};

TierCounts Snapshot() {
  return {citus::DistributedPlanner::fast_path_count,
          citus::DistributedPlanner::router_count,
          citus::DistributedPlanner::pushdown_count,
          citus::DistributedPlanner::join_order_count};
}

class TpchTierTest : public ::testing::Test {
 protected:
  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }
  void TearDown() override {
    sim_.Shutdown();
    deploy_.reset();
  }
  sim::Simulation sim_;
  std::unique_ptr<citus::Deployment> deploy_;
};

TEST_F(TpchTierTest, Fig8QueriesPlanAtExpectedTier) {
  citus::DeploymentOptions options;
  options.num_workers = 2;
  deploy_ = std::make_unique<citus::Deployment>(&sim_, options);
  citus::Deployment& deploy = *deploy_;
  RunSim([&] {
    auto conn_r = deploy.Connect();
    ASSERT_TRUE(conn_r.ok());
    net::Connection& conn = **conn_r;
    workload::TpchConfig cfg;
    cfg.scale = 0.01;  // 1500 orders: enough to exercise every query path
    cfg.columnar = true;
    ASSERT_TRUE(workload::TpchCreateSchema(conn, cfg).ok());
    ASSERT_TRUE(workload::TpchLoad(conn, cfg).ok());

    // Every fig8 query joins only co-located distributed tables
    // (lineitem/orders on the order key) and reference tables, so each one
    // must plan at the logical-pushdown tier — never router (it would run
    // on one shard and drop rows) and never join-order (it would
    // repartition needlessly).
    for (const auto& [name, sql] : workload::TpchQueries()) {
      TierCounts before = Snapshot();
      auto r = conn.Query(sql);
      ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
      TierCounts after = Snapshot();
      EXPECT_GT(after.pushdown, before.pushdown)
          << name << " did not plan at the pushdown tier";
      EXPECT_EQ(after.join_order, before.join_order)
          << name << " unexpectedly used the join-order tier";
      EXPECT_EQ(after.router, before.router)
          << name << " unexpectedly planned as a router query";
      EXPECT_EQ(after.fast_path, before.fast_path)
          << name << " unexpectedly planned as a fast-path query";
    }

    // A single-order lookup must stay on the fast path; demoting it to the
    // pushdown tier would fan a point query out to every shard.
    {
      TierCounts before = Snapshot();
      auto r = conn.Query("SELECT o_totalprice FROM orders "
                          "WHERE o_orderkey = 42");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      TierCounts after = Snapshot();
      EXPECT_GT(after.fast_path, before.fast_path);
      EXPECT_EQ(after.pushdown, before.pushdown);
    }

    // A join between distributed tables that are NOT co-located (partsupp
    // hashed on ps_partkey, in its own co-location group) must escalate to
    // the join-order (repartition) tier, not fail and not silently run as
    // pushdown with wrong per-shard joins.
    ASSERT_TRUE(conn.Query("CREATE TABLE partsupp (ps_partkey bigint, "
                           "ps_suppkey bigint, ps_availqty bigint)")
                    .ok());
    ASSERT_TRUE(
        conn.Query("SELECT create_distributed_table('partsupp', "
                   "'ps_partkey', colocate_with := 'none')")
            .ok());
    auto ins = conn.Query(
        "INSERT INTO partsupp SELECT p_partkey, p_partkey % 10 + 1, "
        "p_partkey % 100 FROM part");
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
    {
      TierCounts before = Snapshot();
      auto r = conn.Query(
          "SELECT count(*), sum(ps_availqty) FROM lineitem JOIN partsupp "
          "ON l_partkey = ps_partkey");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      TierCounts after = Snapshot();
      EXPECT_GT(after.join_order, before.join_order)
          << "non-co-located join did not use the join-order tier";
      ASSERT_EQ(r->rows.size(), 1u);
      EXPECT_GT(r->rows[0][0].int_value(), 0);
    }
  });
}

}  // namespace
}  // namespace citusx
