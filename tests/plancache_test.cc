// Tests for the distributed plan cache and PREPARE/EXECUTE: cache hits and
// template splicing, worker-side prepared statements, parameter coercion,
// shard routing per parameter, metadata-generation invalidation after shard
// moves / rebalances / node removal, and the observability surface.
#include <gtest/gtest.h>

#include <set>

#include "citus/deploy.h"
#include "citus/plancache.h"
#include "citus/planner.h"
#include "citus/rebalancer.h"
#include "common/str.h"

namespace citusx::citus {
namespace {

using engine::QueryResult;

class PlanCacheTest : public ::testing::Test {
 protected:
  void MakeDeployment(int workers, bool enable_plan_cache = true) {
    DeploymentOptions options;
    options.num_workers = workers;
    options.citus.enable_plan_cache = enable_plan_cache;
    deploy_ = std::make_unique<Deployment>(&sim_, options);
  }

  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
  }

  QueryResult MustQuery(net::Connection& conn, const std::string& sql) {
    auto r = conn.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  int64_t CoordCounter(const std::string& name) {
    return deploy_->coordinator()->metrics().CounterValue(name);
  }

  void TearDown() override {
    sim_.Shutdown();
    deploy_.reset();
  }

  sim::Simulation sim_;
  std::unique_ptr<Deployment> deploy_;
};

TEST_F(PlanCacheTest, RepeatedQueriesHitTheCache) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    for (int i = 0; i < 10; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO kv VALUES (%d, 'v%d')", i, i));
    }
    int64_t hits0 = CoordCounter("citus.plancache.hit");
    int64_t miss0 = CoordCounter("citus.plancache.miss");
    // Same shape, different constants: one miss, then hits.
    for (int i = 0; i < 10; i++) {
      QueryResult r = MustQuery(
          **conn, StrFormat("SELECT v FROM kv WHERE key = %d", i));
      ASSERT_EQ(r.rows.size(), 1u);
      EXPECT_EQ(r.rows[0][0].text_value(), StrFormat("v%d", i));
    }
    EXPECT_EQ(CoordCounter("citus.plancache.miss") - miss0, 1);
    EXPECT_EQ(CoordCounter("citus.plancache.hit") - hits0, 9);
  });
}

TEST_F(PlanCacheTest, PrepareExecuteRoundTripAndErrors) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn,
              "PREPARE ins (bigint, text) AS INSERT INTO kv VALUES ($1, $2)");
    MustQuery(**conn, "PREPARE sel (bigint) AS SELECT v FROM kv WHERE key = $1");
    for (int i = 0; i < 20; i++) {
      MustQuery(**conn, StrFormat("EXECUTE ins (%d, 'val%d')", i, i));
    }
    for (int i = 0; i < 20; i++) {
      QueryResult r = MustQuery(**conn, StrFormat("EXECUTE sel (%d)", i));
      ASSERT_EQ(r.rows.size(), 1u);
      EXPECT_EQ(r.rows[0][0].text_value(), StrFormat("val%d", i));
    }
    // The 20 keys cover more than one shard, so parameter values really
    // drive the routing.
    const CitusTable* t = deploy_->metadata().Find("kv");
    ASSERT_NE(t, nullptr);
    std::set<int> shard_indexes;
    for (int i = 0; i < 20; i++) {
      auto h = sql::Datum::Int8(i).PartitionHash();
      shard_indexes.insert(t->ShardIndexForHash(h));
    }
    EXPECT_GT(shard_indexes.size(), 1u);

    // Unknown prepared statement.
    auto missing = (*conn)->Query("EXECUTE nosuch (1)");
    EXPECT_FALSE(missing.ok());
    EXPECT_NE(missing.status().message().find("does not exist"),
              std::string::npos);
    // Wrong parameter count.
    EXPECT_FALSE((*conn)->Query("EXECUTE sel (1, 2)").ok());
    // Duplicate PREPARE with a different body errors.
    EXPECT_FALSE(
        (*conn)
            ->Query("PREPARE sel (bigint) AS SELECT key FROM kv WHERE key = $1")
            .ok());
    // DEALLOCATE removes it; re-EXECUTE then fails.
    MustQuery(**conn, "DEALLOCATE sel");
    EXPECT_FALSE((*conn)->Query("EXECUTE sel (1)").ok());
    MustQuery(**conn, "DEALLOCATE ALL");
    EXPECT_FALSE((*conn)->Query("EXECUTE ins (99, 'x')").ok());
  });
}

TEST_F(PlanCacheTest, ExecuteCoercesParameterTypes) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn,
              "PREPARE ins (bigint, text) AS INSERT INTO kv VALUES ($1, $2)");
    // Text literal for the bigint key and an int literal for the text value:
    // both must be coerced to the declared types, so routing hashes the key
    // as a bigint (matching non-prepared INSERTs).
    MustQuery(**conn, "EXECUTE ins ('7', 123)");
    QueryResult r = MustQuery(**conn, "SELECT v FROM kv WHERE key = 7");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].text_value(), "123");
  });
}

TEST_F(PlanCacheTest, ExecuteInsideExplicitTransaction) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn, "INSERT INTO kv VALUES (1, 'one'), (2, 'two')");
    MustQuery(**conn,
              "PREPARE upd (bigint, text) AS UPDATE kv SET v = $2 WHERE key = $1");
    MustQuery(**conn, "PREPARE sel (bigint) AS SELECT v FROM kv WHERE key = $1");

    MustQuery(**conn, "BEGIN");
    MustQuery(**conn, "EXECUTE upd (1, 'uno')");
    QueryResult in_txn = MustQuery(**conn, "EXECUTE sel (1)");
    ASSERT_EQ(in_txn.rows.size(), 1u);
    EXPECT_EQ(in_txn.rows[0][0].text_value(), "uno");
    MustQuery(**conn, "ROLLBACK");
    QueryResult after = MustQuery(**conn, "EXECUTE sel (1)");
    ASSERT_EQ(after.rows.size(), 1u);
    EXPECT_EQ(after.rows[0][0].text_value(), "one");

    MustQuery(**conn, "BEGIN");
    MustQuery(**conn, "EXECUTE upd (2, 'dos')");
    MustQuery(**conn, "COMMIT");
    QueryResult committed = MustQuery(**conn, "EXECUTE sel (2)");
    ASSERT_EQ(committed.rows.size(), 1u);
    EXPECT_EQ(committed.rows[0][0].text_value(), "dos");
  });
}

// The regression test of the invalidation protocol: a cached plan must be
// discarded — and the statement re-routed to the new placement — after
// citus_move_shard_placement, a rebalance, and citus_remove_node.
TEST_F(PlanCacheTest, CachedPlanInvalidatedByShardMoveRebalanceRemoveNode) {
  MakeDeployment(3);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    for (int i = 0; i < 30; i++) {
      MustQuery(**conn, StrFormat("INSERT INTO kv VALUES (%d, 'v%d')", i, i));
    }
    MustQuery(**conn, "PREPARE sel (bigint) AS SELECT v FROM kv WHERE key = $1");
    MustQuery(**conn,
              "PREPARE upd (bigint, text) AS UPDATE kv SET v = $2 WHERE key = $1");
    // Warm the cache.
    for (int i = 0; i < 30; i++) {
      QueryResult r = MustQuery(**conn, StrFormat("EXECUTE sel (%d)", i));
      ASSERT_EQ(r.rows.size(), 1u) << "key " << i;
    }
    CitusTable* t = deploy_->metadata().Find("kv");
    ASSERT_NE(t, nullptr);

    // 1) Move the shard holding key 5 to a different worker.
    int idx = t->ShardIndexForHash(sql::Datum::Int8(5).PartitionHash());
    ASSERT_GE(idx, 0);
    uint64_t shard_id = t->shards[static_cast<size_t>(idx)].shard_id;
    std::string source = t->shards[static_cast<size_t>(idx)].placement;
    std::string target = source == "worker1" ? "worker2" : "worker1";
    int64_t inval0 = CoordCounter("citus.plancache.invalidation");
    MustQuery(**conn,
              StrFormat("SELECT citus_move_shard_placement(%llu, '%s', '%s')",
                        static_cast<unsigned long long>(shard_id),
                        source.c_str(), target.c_str()));
    EXPECT_EQ(t->shards[static_cast<size_t>(idx)].placement, target);
    QueryResult moved = MustQuery(**conn, "EXECUTE sel (5)");
    ASSERT_EQ(moved.rows.size(), 1u);
    EXPECT_EQ(moved.rows[0][0].text_value(), "v5");
    EXPECT_GT(CoordCounter("citus.plancache.invalidation"), inval0);
    // Writes re-route too.
    MustQuery(**conn, "EXECUTE upd (5, 'v5-moved')");
    QueryResult updated = MustQuery(**conn, "EXECUTE sel (5)");
    EXPECT_EQ(updated.rows[0][0].text_value(), "v5-moved");

    // 2) Rebalance the cluster; cached plans must keep answering correctly.
    Rebalancer rebalancer(deploy_->extension(deploy_->coordinator()));
    auto session = deploy_->coordinator()->OpenSession();
    auto moves =
        rebalancer.Rebalance(*session, RebalanceStrategy::kByShardCount);
    ASSERT_TRUE(moves.ok()) << moves.status().ToString();
    for (int i = 0; i < 30; i++) {
      QueryResult r = MustQuery(**conn, StrFormat("EXECUTE sel (%d)", i));
      ASSERT_EQ(r.rows.size(), 1u) << "key " << i << " after rebalance";
    }

    // 3) Drain worker3 and remove it; cached plans must re-route off it.
    std::vector<std::pair<uint64_t, std::string>> on_w3;
    for (const auto& s : t->shards) {
      if (s.placement == "worker3") on_w3.emplace_back(s.shard_id, s.placement);
    }
    for (const auto& [sid, src] : on_w3) {
      ASSERT_TRUE(rebalancer.MoveShard(*session, sid, src, "worker1").ok());
    }
    MustQuery(**conn, "SELECT citus_remove_node('worker3')");
    for (int i = 0; i < 30; i++) {
      QueryResult r = MustQuery(**conn, StrFormat("EXECUTE sel (%d)", i));
      ASSERT_EQ(r.rows.size(), 1u) << "key " << i << " after remove_node";
      EXPECT_NE(r.rows[0][0].text_value(), "");
    }
    for (const auto& s : t->shards) EXPECT_NE(s.placement, "worker3");
  });
}

TEST_F(PlanCacheTest, ExplainMarksCachedShapes) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    auto explain_text = [&](const QueryResult& r) {
      std::string all;
      for (const auto& row : r.rows) all += row[0].text_value() + "\n";
      return all;
    };
    QueryResult cold =
        MustQuery(**conn, "EXPLAIN SELECT v FROM kv WHERE key = 3");
    ASSERT_FALSE(cold.rows.empty());
    EXPECT_EQ(explain_text(cold).find("(cached)"), std::string::npos);
    MustQuery(**conn, "SELECT v FROM kv WHERE key = 3");
    QueryResult warm =
        MustQuery(**conn, "EXPLAIN SELECT v FROM kv WHERE key = 99");
    // Same shape, different constant: the cache serves it, EXPLAIN says so.
    EXPECT_NE(explain_text(warm).find("Fast Path Router"), std::string::npos);
    EXPECT_NE(explain_text(warm).find("(cached)"), std::string::npos);
  });
}

TEST_F(PlanCacheTest, StatPlanCacheViewExposesCounters) {
  MakeDeployment(2);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn, "INSERT INTO kv VALUES (1, 'one')");
    for (int i = 0; i < 5; i++) {
      MustQuery(**conn, "SELECT v FROM kv WHERE key = 1");
    }
    QueryResult r = MustQuery(
        **conn,
        "SELECT query, hits, misses FROM citus_stat_plan_cache ORDER BY query");
    ASSERT_FALSE(r.rows.empty());
    bool found = false;
    for (const auto& row : r.rows) {
      if (row[0].text_value().find("SELECT v FROM kv") != std::string::npos) {
        found = true;
        EXPECT_GE(row[1].int_value(), 4);  // hits
        EXPECT_GE(row[2].int_value(), 1);  // misses
      }
    }
    EXPECT_TRUE(found);
    // The raw obs counters are exposed on the coordinator node as well.
    EXPECT_GE(CoordCounter("citus.plancache.hit"), 4);
    EXPECT_GE(CoordCounter("citus.plancache.miss"), 1);
    EXPECT_EQ(CoordCounter("citus.plancache.invalidation"), 0);
  });
}

TEST_F(PlanCacheTest, DisablingThePlanCacheStillAnswersQueries) {
  MakeDeployment(2, /*enable_plan_cache=*/false);
  RunSim([&] {
    auto conn = deploy_->Connect();
    MustQuery(**conn, "CREATE TABLE kv (key bigint PRIMARY KEY, v text)");
    MustQuery(**conn, "SELECT create_distributed_table('kv', 'key')");
    MustQuery(**conn, "PREPARE ins (bigint, text) AS INSERT INTO kv VALUES ($1, $2)");
    MustQuery(**conn, "PREPARE sel (bigint) AS SELECT v FROM kv WHERE key = $1");
    for (int i = 0; i < 8; i++) {
      MustQuery(**conn, StrFormat("EXECUTE ins (%d, 'x%d')", i, i));
      QueryResult r = MustQuery(**conn, StrFormat("EXECUTE sel (%d)", i));
      ASSERT_EQ(r.rows.size(), 1u);
      EXPECT_EQ(r.rows[0][0].text_value(), StrFormat("x%d", i));
    }
    EXPECT_EQ(CoordCounter("citus.plancache.hit"), 0);
    EXPECT_EQ(CoordCounter("citus.plancache.miss"), 0);
  });
}

// The binary-search pruning must agree with a linear scan over the
// min_hash-sorted intervals, including gap and boundary hashes.
TEST(ShardPruningTest, BinarySearchMatchesLinearScan) {
  CitusTable t;
  t.name = "t";
  auto intervals = MakeHashIntervals(32);
  uint64_t sid = 1;
  for (auto [lo, hi] : intervals) {
    ShardInterval s;
    s.shard_id = sid++;
    s.min_hash = lo;
    s.max_hash = hi;
    t.shards.push_back(s);
  }
  auto linear = [&](int32_t h) {
    for (size_t i = 0; i < t.shards.size(); i++) {
      if (h >= t.shards[i].min_hash && h <= t.shards[i].max_hash) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  std::vector<int32_t> probes = {INT32_MIN, INT32_MIN + 1, -1, 0, 1,
                                 INT32_MAX - 1, INT32_MAX};
  for (const auto& s : t.shards) {
    probes.push_back(s.min_hash);
    probes.push_back(s.max_hash);
    if (s.min_hash > INT32_MIN) probes.push_back(s.min_hash - 1);
    if (s.max_hash < INT32_MAX) probes.push_back(s.max_hash + 1);
  }
  for (uint32_t i = 0; i < 5000; i++) {
    probes.push_back(static_cast<int32_t>(i * 858993459u + 7u));
  }
  for (int32_t h : probes) {
    EXPECT_EQ(t.ShardIndexForHash(h), linear(h)) << "hash " << h;
  }
  // With a gap (a dropped interval), hashes inside the gap miss.
  t.shards.erase(t.shards.begin() + 10);
  for (int32_t h : probes) {
    EXPECT_EQ(t.ShardIndexForHash(h), linear(h)) << "gap hash " << h;
  }
}

}  // namespace
}  // namespace citusx::citus
