// Engine-level tests of the vectorized morsel-driven executor (src/exec):
// result parity with the volcano oracle on columnar and heap tables,
// min/max stripe pruning I/O savings, multi-core morsel speedup in virtual
// time, and clean fallback for unsupported plan shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common/str.h"
#include "engine/node.h"
#include "engine/session.h"
#include "exec/vectorized.h"
#include "sim/simulation.h"

namespace citusx::exec {
namespace {

using engine::QueryResult;
using engine::Session;
using sql::Datum;

/// Datum equality with a relative tolerance for floats: the vectorized
/// executor sums float aggregates in a different order than the volcano
/// path, so bit-exact equality is too strict for float8.
bool DatumClose(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.type() == sql::TypeId::kFloat8 || b.type() == sql::TypeId::kFloat8) {
    double x = a.AsDouble(), y = b.AsDouble();
    double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= 1e-9 * scale;
  }
  return Datum::Compare(a, b) == 0;
}

bool RowsClose(const std::vector<sql::Row>& a, const std::vector<sql::Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t c = 0; c < a[i].size(); c++) {
      if (!DatumClose(a[i][c], b[i][c])) return false;
    }
  }
  return true;
}

std::string RowsToString(const std::vector<sql::Row>& rows, size_t limit = 5) {
  std::string out;
  for (size_t i = 0; i < rows.size() && i < limit; i++) {
    out += "[";
    for (const auto& d : rows[i]) out += d.ToText() + ",";
    out += "] ";
  }
  return out + StrFormat("(%zu rows)", rows.size());
}

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : node_(&sim_, "pg1", sim::DefaultCostModel()) {
    InstallVectorizedExecutor(&node_);
  }

  void RunSim(std::function<void()> fn) {
    sim_.Spawn("test", std::move(fn));
    sim_.Run();
    sim_.Shutdown();
  }

  QueryResult MustExec(Session& s, const std::string& sql) {
    auto r = s.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  /// Run `sql` through the volcano oracle and the vectorized executor and
  /// require equivalent results. Returns the vectorized result.
  QueryResult Diff(Session& s, const std::string& sql) {
    MustExec(s, "SET citus.use_vectorized_executor = 'off'");
    QueryResult oracle = MustExec(s, sql);
    MustExec(s, "SET citus.use_vectorized_executor = 'on'");
    QueryResult vec = MustExec(s, sql);
    EXPECT_TRUE(RowsClose(oracle.rows, vec.rows))
        << sql << "\n  volcano:    " << RowsToString(oracle.rows)
        << "\n  vectorized: " << RowsToString(vec.rows);
    return vec;
  }

  /// Populate `name`: n rows of (a sequential, b = a % 97 with NULLs every
  /// 13th row, c float with NULLs every 11th row, g small group key).
  void FillTable(Session& s, const std::string& name, int n, bool columnar) {
    MustExec(s, StrFormat("CREATE TABLE %s (a bigint, b bigint, c double "
                          "precision, g bigint) USING %s",
                          name.c_str(), columnar ? "columnar" : "heap"));
    for (int base = 0; base < n; base += 500) {
      std::string values;
      for (int i = base; i < std::min(n, base + 500); i++) {
        if (!values.empty()) values += ",";
        std::string b = i % 13 == 0 ? "NULL" : std::to_string(i % 97);
        std::string c =
            i % 11 == 0 ? "NULL" : StrFormat("%d.%d", i % 31, i % 10);
        values += StrFormat("(%d, %s, %s, %d)", i, b.c_str(), c.c_str(), i % 7);
      }
      MustExec(s, StrFormat("INSERT INTO %s VALUES %s", name.c_str(),
                            values.c_str()));
    }
  }

  void RunDiffSuite(Session& s, const std::string& t) {
    // Filter + projection.
    Diff(s, StrFormat("SELECT a, b * 2, c FROM %s WHERE b %% 3 = 0 AND "
                      "a > 100 ORDER BY a",
                      t.c_str()));
    // Ungrouped aggregates over columns with NULLs.
    Diff(s, StrFormat("SELECT count(*), count(b), sum(b), avg(c), min(b), "
                      "max(c) FROM %s",
                      t.c_str()));
    // Grouped aggregates.
    Diff(s, StrFormat("SELECT g, count(*), sum(b), avg(c) FROM %s "
                      "GROUP BY g ORDER BY g",
                      t.c_str()));
    // DISTINCT aggregate (exercises merge-time fold across morsels).
    Diff(s, StrFormat("SELECT count(DISTINCT b) FROM %s", t.c_str()));
    Diff(s, StrFormat("SELECT g, count(DISTINCT b) FROM %s GROUP BY g "
                      "ORDER BY g",
                      t.c_str()));
    // Sort + limit/offset.
    Diff(s, StrFormat("SELECT a, b FROM %s WHERE a < 400 ORDER BY b DESC, a "
                      "LIMIT 17 OFFSET 3",
                      t.c_str()));
    // DISTINCT.
    Diff(s, StrFormat("SELECT DISTINCT g FROM %s ORDER BY g", t.c_str()));
    // Expression-heavy projection (CASE).
    Diff(s, StrFormat("SELECT sum(CASE WHEN b > 50 THEN 1 ELSE 0 END) "
                      "FROM %s",
                      t.c_str()));
  }

  sim::Simulation sim_;
  engine::Node node_;
};

TEST_F(ExecTest, MatchesVolcanoOnColumnar) {
  RunSim([&] {
    auto s = node_.OpenSession();
    // > 2 sealed stripes (kStripeRows = 10000) plus a partial open stripe,
    // so morsels span sealed/open and visibility paths.
    FillTable(*s, "t", 25000, /*columnar=*/true);
    RunDiffSuite(*s, "t");
  });
}

TEST_F(ExecTest, MatchesVolcanoOnHeap) {
  RunSim([&] {
    auto s = node_.OpenSession();
    FillTable(*s, "t", 4000, /*columnar=*/false);
    RunDiffSuite(*s, "t");
  });
}

TEST_F(ExecTest, MatchesVolcanoOnJoins) {
  RunSim([&] {
    auto s = node_.OpenSession();
    FillTable(*s, "t", 6000, /*columnar=*/true);
    MustExec(*s, "CREATE TABLE u (k bigint, v text)");
    // Key 6 is absent so LEFT JOIN produces NULL padding.
    MustExec(*s, "INSERT INTO u VALUES (0,'zero'), (1,'one'), (2,'two'), "
                 "(3,'three'), (4,'four'), (5,'five')");
    Diff(*s, "SELECT t.a, u.v FROM t JOIN u ON t.g = u.k "
             "WHERE t.a < 500 ORDER BY t.a");
    Diff(*s, "SELECT t.a, u.v FROM t LEFT JOIN u ON t.g = u.k "
             "WHERE t.a < 500 ORDER BY t.a");
    Diff(*s, "SELECT u.v, count(*), sum(t.b) FROM t JOIN u ON t.g = u.k "
             "GROUP BY u.v ORDER BY u.v");
    // Join with residual predicate.
    Diff(*s, "SELECT t.a FROM t JOIN u ON t.g = u.k AND t.b > 10 "
             "WHERE t.a < 300 ORDER BY t.a");
  });
}

TEST_F(ExecTest, EmptyAndEdgeCases) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE e (a bigint, b double precision) "
                 "USING columnar");
    // Aggregate over an empty table: one row, count 0, NULL sum.
    QueryResult r = Diff(*s, "SELECT count(*), sum(a), avg(b) FROM e");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].int_value(), 0);
    EXPECT_TRUE(r.rows[0][1].is_null());
    Diff(*s, "SELECT a FROM e ORDER BY a");
    Diff(*s, "SELECT a, count(*) FROM e GROUP BY a ORDER BY a");
    // All-NULL column.
    MustExec(*s, "INSERT INTO e VALUES (1, NULL), (2, NULL)");
    Diff(*s, "SELECT sum(b), min(b), count(b) FROM e");
    // NULL join keys never match (and LEFT JOIN pads them).
    MustExec(*s, "CREATE TABLE j1 (k bigint, v bigint)");
    MustExec(*s, "CREATE TABLE j2 (k bigint, w bigint)");
    MustExec(*s, "INSERT INTO j1 VALUES (1, 10), (NULL, 20), (2, 30)");
    MustExec(*s, "INSERT INTO j2 VALUES (1, 100), (NULL, 200), (3, 300)");
    Diff(*s, "SELECT j1.v, j2.w FROM j1 JOIN j2 ON j1.k = j2.k ORDER BY j1.v");
    Diff(*s, "SELECT j1.v, j2.w FROM j1 LEFT JOIN j2 ON j1.k = j2.k "
             "ORDER BY j1.v");
  });
}

TEST_F(ExecTest, FallsBackOnUnsupportedPlans) {
  RunSim([&] {
    auto s = node_.OpenSession();
    MustExec(*s, "CREATE TABLE pk (k bigint PRIMARY KEY, v bigint)");
    MustExec(*s, "INSERT INTO pk VALUES (1, 10), (2, 20), (3, 30)");
    // Primary-key equality plans an index scan, which the vectorized
    // executor declines; the query must still answer via volcano.
    QueryResult r = MustExec(*s, "SELECT v FROM pk WHERE k = 2");
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].int_value(), 20);
    // FOR UPDATE requires row locking: also a fallback.
    r = MustExec(*s, "SELECT v FROM pk WHERE v > 15 ORDER BY v FOR UPDATE");
    ASSERT_EQ(r.rows.size(), 2u);
  });
}

TEST_F(ExecTest, MorselParallelismSpeedsUpAggregates) {
  RunSim([&] {
    auto s = node_.OpenSession();
    FillTable(*s, "big", 60000, /*columnar=*/true);
    const char* q =
        "SELECT g, count(*), sum(b) FROM big WHERE b > 5 GROUP BY g "
        "ORDER BY g";
    MustExec(*s, "SET citus.use_vectorized_executor = 'off'");
    sim::Time t0 = sim_.now();
    QueryResult oracle = MustExec(*s, q);
    sim::Time volcano_ns = sim_.now() - t0;
    MustExec(*s, "SET citus.use_vectorized_executor = 'on'");
    t0 = sim_.now();
    QueryResult vec = MustExec(*s, q);
    sim::Time vec_ns = sim_.now() - t0;
    EXPECT_TRUE(RowsClose(oracle.rows, vec.rows));
    // Batched costs plus 16-core morsel parallelism: >= 10x in virtual time
    // (this also proves the vectorized path actually ran).
    EXPECT_GE(volcano_ns, 10 * vec_ns)
        << "volcano " << volcano_ns << "ns vs vectorized " << vec_ns << "ns";
  });
}

TEST_F(ExecTest, StripePruningSkipsColdIo) {
  RunSim([&] {
    auto s = node_.OpenSession();
    // `a` is inserted in order, so sealed stripes have disjoint [min,max]
    // ranges and a selective predicate prunes all but the first.
    FillTable(*s, "t", 40000, /*columnar=*/true);
    obs::Counter* hits = node_.metrics().counter("bufferpool.hits");
    obs::Counter* misses = node_.metrics().counter("bufferpool.misses");
    // Measure the vectorized run alone: Diff's volcano oracle pass would
    // drown the signal, since volcano never prunes.
    MustExec(*s, "SET citus.use_vectorized_executor = 'on'");
    auto pages_touched = [&](const std::string& sql) {
      int64_t before = hits->value() + misses->value();
      QueryResult r = MustExec(*s, sql);
      EXPECT_FALSE(r.rows.empty());
      return hits->value() + misses->value() - before;
    };
    int64_t full = pages_touched("SELECT count(*), sum(b) FROM t");
    int64_t pruned = pages_touched(
        "SELECT count(*), sum(b) FROM t WHERE a < 100");
    // The pruned scan must touch strictly fewer pages — stripes whose
    // [min,max] on `a` excludes the predicate are skipped without I/O,
    // even though the pruned query reads one more column (a) than the full
    // one.
    EXPECT_LT(pruned, full)
        << "pruned=" << pruned << " pages, full=" << full << " pages";
    // And pruning must not change answers on a boundary-straddling range.
    Diff(*s, "SELECT count(*), sum(b) FROM t WHERE a >= 9995 AND a < 10005");
    Diff(*s, "SELECT count(*) FROM t WHERE a = 10000");
    Diff(*s, "SELECT count(*) FROM t WHERE a > 39990");
    Diff(*s, "SELECT count(*) FROM t WHERE a < 0");
  });
}

TEST_F(ExecTest, SnapshotIsolationAcrossStripes) {
  RunSim([&] {
    auto s1 = node_.OpenSession();
    auto s2 = node_.OpenSession();
    MustExec(*s1, "CREATE TABLE t (a bigint) USING columnar");
    MustExec(*s1, "INSERT INTO t VALUES (1), (2), (3)");
    // Uncommitted insert from another session must stay invisible.
    MustExec(*s2, "BEGIN");
    MustExec(*s2, "INSERT INTO t VALUES (100)");
    QueryResult r = Diff(*s1, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 3);
    MustExec(*s2, "COMMIT");
    r = Diff(*s1, "SELECT count(*) FROM t");
    EXPECT_EQ(r.rows[0][0].int_value(), 4);
  });
}

}  // namespace
}  // namespace citusx::exec
